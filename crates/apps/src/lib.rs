//! Downstream application use cases (§5 of the paper) — the consumers
//! that demonstrate SpectraGAN-generated data is *useful*, not just
//! statistically similar:
//!
//! * [`power`] — data-driven micro base-station sleeping (§5.1):
//!   traffic-aware on/off switching with the standard linear BS power
//!   model and the Table 6 parameters; reproduces Fig. 10.
//! * [`vran`] — RU-to-CU load balancing in virtualized RANs (§5.2):
//!   balanced contiguous partitioning of the RU adjacency graph,
//!   assessed by Jain's fairness index; reproduces Table 7.
//! * [`population`] — dynamic urban population tracking (§5.3): the
//!   multivariate regression of Eq. 8 mapping traffic to people
//!   presence; reproduces Table 8 / Fig. 11.

pub mod population;
pub mod power;
pub mod vran;

pub use population::{population_map, ActivityProfile, PopulationModel};
pub use power::{BsParams, PowerReport, MACRO_BS, MICRO_BS, RHO_MIN};
pub use vran::{partition_rus, VranAssessment};
