//! Dynamic urban population tracking (§5.3).
//!
//! The multivariate regression of Khodabandelou et al. [42], Eq. 8 of
//! the paper:
//!
//! ```text
//! p_i(t) = exp(k1·λ_i(t) + k2) · x_i(t)^(k3·λ_i(t) + k4)
//! ```
//!
//! maps measured traffic `x_i(t)` to people presence, modulated by the
//! network activity level `λ_i(t)` (mean events per subscriber). The
//! paper parameterizes λ from the original study's Fig. 8 (a diurnal
//! profile) and the constants from its Table 4; [`ActivityProfile`]
//! and [`PopulationModel::default_urban`] carry representative values
//! of the same shape (documented in DESIGN.md as a substitution).

use spectragan_geo::TrafficMap;

/// Hourly network activity level λ(t): events per subscriber per hour,
/// higher during waking hours — the diurnal shape of the original
/// study's Fig. 8.
#[derive(Debug, Clone)]
pub struct ActivityProfile {
    /// λ for each hour of the day (24 values).
    pub hourly: [f64; 24],
}

impl ActivityProfile {
    /// Representative urban activity profile: low overnight (≈0.4),
    /// peaking in the evening (≈1.6).
    pub fn default_urban() -> Self {
        let mut hourly = [0.0; 24];
        for (h, slot) in hourly.iter_mut().enumerate() {
            let phase = 2.0 * std::f64::consts::PI * (h as f64 - 16.0) / 24.0;
            *slot = 1.0 + 0.6 * phase.cos() - if h < 6 { 0.3 } else { 0.0 };
        }
        ActivityProfile { hourly }
    }

    /// λ at a given hour of day.
    pub fn at_hour(&self, hour: usize) -> f64 {
        self.hourly[hour % 24]
    }
}

/// The Eq. 8 regression constants.
#[derive(Debug, Clone, Copy)]
pub struct PopulationModel {
    /// Exponential activity coefficient `k1`.
    pub k1: f64,
    /// Exponential offset `k2`.
    pub k2: f64,
    /// Power-law activity coefficient `k3`.
    pub k3: f64,
    /// Power-law offset `k4`.
    pub k4: f64,
}

impl PopulationModel {
    /// Representative constants of the original study's Table 4 (same
    /// signs and magnitudes: activity raises the scale and slightly
    /// sub-linear traffic exponent).
    pub fn default_urban() -> Self {
        PopulationModel {
            k1: 0.3,
            k2: 1.0,
            k3: 0.15,
            k4: 0.45,
        }
    }

    /// Estimated population at one pixel given traffic `x ≥ 0` and
    /// activity `λ`.
    pub fn estimate(&self, x: f64, lambda: f64) -> f64 {
        let x = x.max(0.0);
        if x == 0.0 {
            return 0.0;
        }
        (self.k1 * lambda + self.k2).exp() * x.powf(self.k3 * lambda + self.k4)
    }
}

/// Computes the population presence map at time step `t` of `traffic`
/// (hourly steps assumed: `steps_per_hour` converts indices to hours).
pub fn population_map(
    traffic: &TrafficMap,
    t: usize,
    model: &PopulationModel,
    activity: &ActivityProfile,
    steps_per_hour: usize,
) -> Vec<f64> {
    let hour = (t / steps_per_hour) % 24;
    let lambda = activity.at_hour(hour);
    traffic
        .frame(t)
        .iter()
        .map(|&x| model.estimate(x as f64, lambda))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_profile_has_a_diurnal_swing() {
        let a = ActivityProfile::default_urban();
        let night = a.at_hour(3);
        let evening = a.at_hour(17);
        assert!(evening > 1.2 * night, "evening {evening} night {night}");
        assert!(a.hourly.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn population_is_monotone_in_traffic() {
        let m = PopulationModel::default_urban();
        let lambda = 1.0;
        assert!(m.estimate(0.8, lambda) > m.estimate(0.4, lambda));
        assert_eq!(m.estimate(0.0, lambda), 0.0);
        assert!(m.estimate(-0.5, lambda) == 0.0, "negative traffic clamps");
    }

    #[test]
    fn higher_activity_means_fewer_people_per_byte() {
        // With k3 > 0 and x < 1, higher λ *lowers* the power-law factor
        // while raising the exponential scale; the combined model must
        // stay finite and positive either way.
        let m = PopulationModel::default_urban();
        let p_low = m.estimate(0.5, 0.4);
        let p_high = m.estimate(0.5, 1.6);
        assert!(p_low > 0.0 && p_high > 0.0);
        assert!(p_low != p_high);
    }

    #[test]
    fn population_map_follows_traffic_shape() {
        let mut traffic = TrafficMap::zeros(1, 2, 2);
        traffic.data_mut().copy_from_slice(&[0.1, 0.9, 0.5, 0.0]);
        let pm = population_map(
            &traffic,
            0,
            &PopulationModel::default_urban(),
            &ActivityProfile::default_urban(),
            1,
        );
        assert_eq!(pm.len(), 4);
        assert!(pm[1] > pm[2] && pm[2] > pm[0]);
        assert_eq!(pm[3], 0.0);
    }
}
