//! Data-driven micro-BS sleeping (§5.1).
//!
//! Deployment model: every pixel hosts a micro BS; macro BSs provide
//! umbrella coverage over 5×5 pixel areas. The per-BS power model is
//! the standard linear one,
//! `P(t) = N_trx · (P0 + Δp · Pmax · ρ(t))` with `0 ≤ ρ ≤ 1`,
//! parameterized per Table 6. A micro BS whose load is at or below
//! `ρ_min = 0.37` offloads to its macro and sleeps (negligible power).
//!
//! The experiment of Fig. 10 drives the sleeping *decisions* with
//! synthetic traffic and evaluates the resulting *consumption* against
//! decisions driven by the real traffic: savings land in the same
//! 47–62 % band either way.

use spectragan_geo::TrafficMap;

/// Parameters of the linear BS power model (Table 6 units: arbitrary
/// consistent power units as in the original study).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BsParams {
    /// Number of radio transceivers.
    pub n_trx: f64,
    /// Power at maximum load.
    pub p_max: f64,
    /// Static power at zero load.
    pub p0: f64,
    /// Load-proportional scaling.
    pub delta_p: f64,
}

impl BsParams {
    /// Instantaneous power at relative load `rho ∈ [0, 1]`.
    pub fn power(&self, rho: f64) -> f64 {
        let rho = rho.clamp(0.0, 1.0);
        self.n_trx * (self.p0 + self.delta_p * self.p_max * rho)
    }
}

/// Macro BS parameters (Table 6).
pub const MACRO_BS: BsParams = BsParams {
    n_trx: 6.0,
    p_max: 20.0,
    p0: 84.0,
    delta_p: 2.8,
};

/// Micro BS parameters (Table 6).
pub const MICRO_BS: BsParams = BsParams {
    n_trx: 2.0,
    p_max: 6.3,
    p0: 56.0,
    delta_p: 2.6,
};

/// Sleep threshold `ρ_min` recommended by Dalmasso et al. [23].
pub const RHO_MIN: f64 = 0.37;

/// Side of the macro umbrella area in pixels.
pub const MACRO_AREA: usize = 5;

/// Outcome of a power-consumption evaluation over one map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Mean power per pixel (unit area) with all micro BSs always on.
    pub always_on: f64,
    /// Mean power per pixel with the sleeping strategy.
    pub with_sleeping: f64,
}

impl PowerReport {
    /// Fractional saving of sleeping over always-on.
    pub fn saving(&self) -> f64 {
        if self.always_on <= 0.0 {
            0.0
        } else {
            1.0 - self.with_sleeping / self.always_on
        }
    }
}

/// Number of macro BSs covering an `h×w` grid with 5×5 umbrellas.
fn macro_count(h: usize, w: usize) -> usize {
    h.div_ceil(MACRO_AREA) * w.div_ceil(MACRO_AREA)
}

/// Sweeps the sleep threshold: returns `(rho_min, saving)` pairs for
/// decisions and billing both on `map` — the ablation DESIGN.md calls
/// out for the ρ_min = 0.37 recommendation.
pub fn rho_min_sweep(map: &TrafficMap, thresholds: &[f64]) -> Vec<(f64, f64)> {
    thresholds
        .iter()
        .map(|&thr| (thr, evaluate_with_threshold(map, map, thr).saving()))
        .collect()
}

/// Evaluates power per unit area when sleep decisions come from
/// `decision` traffic but the energy is computed on `actual` traffic
/// (per §5.1: synthetic data informs the policy, reality pays the
/// bill). Pass the same map twice for the real-data-informed reference.
///
/// # Panics
/// Panics if the maps' shapes differ.
pub fn evaluate(decision: &TrafficMap, actual: &TrafficMap) -> PowerReport {
    evaluate_with_threshold(decision, actual, RHO_MIN)
}

/// [`evaluate`] with an explicit sleep threshold (for the ρ_min sweep).
pub fn evaluate_with_threshold(
    decision: &TrafficMap,
    actual: &TrafficMap,
    rho_min: f64,
) -> PowerReport {
    assert_eq!(
        (decision.len_t(), decision.height(), decision.width()),
        (actual.len_t(), actual.height(), actual.width()),
        "decision and actual maps must be congruent"
    );
    let (t_len, h, w) = (actual.len_t(), actual.height(), actual.width());
    let n_macro = macro_count(h, w) as f64;
    let n_px = (h * w) as f64;
    let mut total_on = 0.0;
    let mut total_sleep = 0.0;
    for t in 0..t_len {
        // Always-on: every micro serves its own load; macros idle at
        // their own base load (they still carry umbrella signalling).
        let mut on = 0.0;
        for y in 0..h {
            for x in 0..w {
                on += MICRO_BS.power(actual.at(t, y, x) as f64);
            }
        }
        on += n_macro * MACRO_BS.power(0.0);

        // Sleeping: micros at or below ρ_min (according to the decision
        // data) sleep; their actual load moves to the macro.
        let mut sleep = 0.0;
        let mut macro_load = vec![0.0f64; macro_count(h, w)];
        let macros_per_row = w.div_ceil(MACRO_AREA);
        for y in 0..h {
            for x in 0..w {
                let rho_dec = decision.at(t, y, x) as f64;
                let rho_act = actual.at(t, y, x) as f64;
                if rho_dec <= rho_min {
                    let m = (y / MACRO_AREA) * macros_per_row + x / MACRO_AREA;
                    macro_load[m] += rho_act;
                } else {
                    sleep += MICRO_BS.power(rho_act);
                }
            }
        }
        for load in macro_load {
            // Macro capacity is larger; normalize offloaded load by the
            // umbrella area so ρ stays in [0, 1] for typical traffic.
            sleep += MACRO_BS.power(load / (MACRO_AREA * MACRO_AREA) as f64);
        }
        total_on += on;
        total_sleep += sleep;
    }
    PowerReport {
        always_on: total_on / (t_len as f64 * n_px),
        with_sleeping: total_sleep / (t_len as f64 * n_px),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_map(value: f32, t: usize, h: usize, w: usize) -> TrafficMap {
        TrafficMap::from_vec(vec![value; t * h * w], t, h, w)
    }

    #[test]
    fn power_model_matches_table6_extremes() {
        assert_eq!(MICRO_BS.power(0.0), 2.0 * 56.0);
        assert_eq!(MICRO_BS.power(1.0), 2.0 * (56.0 + 2.6 * 6.3));
        assert_eq!(MACRO_BS.power(0.0), 6.0 * 84.0);
        assert_eq!(MACRO_BS.power(1.0), 6.0 * (84.0 + 2.8 * 20.0));
        // Loads are clamped.
        assert_eq!(MICRO_BS.power(2.0), MICRO_BS.power(1.0));
    }

    #[test]
    fn low_traffic_city_saves_a_lot() {
        // Everything below ρ_min → all micros sleep.
        let m = uniform_map(0.1, 24, 10, 10);
        let r = evaluate(&m, &m);
        assert!(r.saving() > 0.4, "saving {}", r.saving());
        assert!(r.with_sleeping < r.always_on);
    }

    #[test]
    fn high_traffic_city_saves_nothing() {
        let m = uniform_map(0.9, 24, 10, 10);
        let r = evaluate(&m, &m);
        assert!(r.saving().abs() < 1e-9, "saving {}", r.saving());
    }

    #[test]
    fn bad_decision_data_sleeps_busy_cells_but_macro_pays() {
        // Decision says idle everywhere; actual traffic is heavy: the
        // sleeping config must charge macros with the offloaded load.
        let decision = uniform_map(0.0, 4, 10, 10);
        let actual = uniform_map(1.0, 4, 10, 10);
        let r = evaluate(&decision, &actual);
        // All micros sleep, macros run at full load.
        let expected = 4.0 * MACRO_BS.power(1.0) / 100.0;
        assert!((r.with_sleeping - expected).abs() < 1e-9);
    }

    #[test]
    fn rho_min_sweep_is_monotone() {
        // Higher threshold → more BSs sleep → savings never decrease
        // when decisions and billing use the same map.
        let mut m = TrafficMap::zeros(12, 10, 10);
        for (i, v) in m.data_mut().iter_mut().enumerate() {
            *v = ((i % 10) as f32) / 10.0;
        }
        let sweep = rho_min_sweep(&m, &[0.1, 0.3, 0.5, 0.7]);
        assert_eq!(sweep.len(), 4);
        for pair in sweep.windows(2) {
            assert!(pair[1].1 >= pair[0].1 - 1e-9, "sweep {sweep:?}");
        }
    }

    #[test]
    fn realistic_diurnal_traffic_lands_in_papers_savings_band() {
        // Day/night pattern: busy half the time, idle otherwise — the
        // regime where sleeping shines (Fig. 10 reports 47–62 %).
        let (t, h, w) = (48, 15, 15);
        let mut m = TrafficMap::zeros(t, h, w);
        for ti in 0..t {
            let load = if (ti % 24) >= 8 && (ti % 24) < 22 {
                0.6
            } else {
                0.05
            };
            for v in 0..h * w {
                m.data_mut()[ti * h * w + v] = load;
            }
        }
        let r = evaluate(&m, &m);
        assert!(
            (0.2..0.8).contains(&r.saving()),
            "saving {} outside plausible band",
            r.saving()
        );
    }
}
