//! RU-to-CU load balancing in virtualized RANs (§5.2).
//!
//! Every pixel hosts one Radio Unit (RU); RUs serving adjacent pixels
//! are connected in the deployment graph. The optimization of Eq. 3–7
//! partitions RUs into |C| spatially-contiguous groups (one per
//! Central Unit) whose summed traffic loads are balanced, minimizing
//! cut edges. The paper solves it with a balanced graph-partitioning
//! heuristic [62]; we implement the same idea from scratch: spread
//! seeds, grow regions greedily by least-loaded-first breadth growth,
//! then refine with load-improving boundary moves.
//!
//! Table 7 drives partitions with synthetic vs real traffic for one
//! day and scores the *realized* CU loads on a different day with
//! Jain's fairness index.

use spectragan_geo::{GridSpec, TrafficMap};
use spectragan_metrics::jain_index;

/// A partition of the grid's pixels into `|C|` CU groups: entry `i` is
/// the CU index of pixel `i` (row-major).
pub type Partition = Vec<usize>;

/// Partitions the RUs of an `h×w` grid into `num_cu` contiguous,
/// load-balanced groups, given per-RU loads (row-major, length `h·w`).
///
/// # Panics
/// Panics if `num_cu` is zero or exceeds the number of pixels.
pub fn partition_rus(loads: &[f64], h: usize, w: usize, num_cu: usize) -> Partition {
    let grid = GridSpec::new(h, w);
    assert_eq!(loads.len(), h * w, "load vector size mismatch");
    assert!(num_cu >= 1 && num_cu <= h * w, "bad CU count {num_cu}");

    // --- Seeds: approximately evenly spread over the grid -------------
    let mut seeds = Vec::with_capacity(num_cu);
    let cols = (num_cu as f64).sqrt().ceil() as usize;
    let rows = num_cu.div_ceil(cols);
    let mut k = 0;
    'outer: for r in 0..rows {
        for c in 0..cols {
            if k == num_cu {
                break 'outer;
            }
            let y = ((r as f64 + 0.5) / rows as f64 * h as f64) as usize;
            let x = ((c as f64 + 0.5) / cols as f64 * w as f64) as usize;
            seeds.push(grid.index(y.min(h - 1), x.min(w - 1)));
            k += 1;
        }
    }
    seeds.dedup();
    while seeds.len() < num_cu {
        // Degenerate tiny grids: fill with first unused pixels.
        for i in 0..h * w {
            if !seeds.contains(&i) {
                seeds.push(i);
                break;
            }
        }
    }

    // --- Greedy balanced region growing --------------------------------
    let mut assign: Vec<Option<usize>> = vec![None; h * w];
    let mut cu_load = vec![0.0f64; num_cu];
    let mut frontiers: Vec<Vec<usize>> = vec![Vec::new(); num_cu];
    for (cu, &s) in seeds.iter().enumerate() {
        assign[s] = Some(cu);
        cu_load[cu] += loads[s];
        let (y, x) = grid.coords(s);
        for (ny, nx) in grid.neighbors4(y, x) {
            frontiers[cu].push(grid.index(ny, nx));
        }
    }
    let mut remaining = h * w - seeds.len();
    while remaining > 0 {
        // The least-loaded CU with a non-empty frontier grows next.
        let mut order: Vec<usize> = (0..num_cu).collect();
        order.sort_by(|&a, &b| cu_load[a].partial_cmp(&cu_load[b]).expect("finite load"));
        let mut grew = false;
        for &cu in &order {
            // Pop unassigned frontier pixels.
            while let Some(px) = frontiers[cu].pop() {
                if assign[px].is_some() {
                    continue;
                }
                assign[px] = Some(cu);
                cu_load[cu] += loads[px];
                let (y, x) = grid.coords(px);
                for (ny, nx) in grid.neighbors4(y, x) {
                    let n = grid.index(ny, nx);
                    if assign[n].is_none() {
                        frontiers[cu].push(n);
                    }
                }
                remaining -= 1;
                grew = true;
                break;
            }
            if grew {
                break;
            }
        }
        if !grew {
            // Disconnected leftovers (cannot happen on a 4-connected
            // rectangle, but guard anyway): assign to least loaded CU.
            for px in 0..h * w {
                if assign[px].is_none() {
                    let cu = order[0];
                    assign[px] = Some(cu);
                    cu_load[cu] += loads[px];
                    remaining -= 1;
                }
            }
        }
    }
    let mut partition: Partition = assign.into_iter().map(|a| a.expect("assigned")).collect();

    // --- Local refinement: boundary moves improving balance ------------
    // Move a boundary pixel from its CU to an adjacent CU whenever that
    // reduces the pairwise load gap, provided the donor region stays
    // connected and non-empty (exact flood-fill check; grids are small).
    for _pass in 0..40 {
        let mut improved = false;
        for px in 0..h * w {
            let from = partition[px];
            let (y, x) = grid.coords(px);
            let mut candidates: Vec<usize> = grid
                .neighbors4(y, x)
                .into_iter()
                .map(|(ny, nx)| partition[grid.index(ny, nx)])
                .filter(|&to| to != from)
                .collect();
            candidates.sort_unstable();
            candidates.dedup();
            // Prefer the least-loaded candidate.
            candidates.sort_by(|&a, &b| cu_load[a].partial_cmp(&cu_load[b]).expect("finite"));
            for to in candidates {
                let before = (cu_load[from] - cu_load[to]).abs();
                let after = ((cu_load[from] - loads[px]) - (cu_load[to] + loads[px])).abs();
                if after + 1e-12 < before && donor_stays_connected(&partition, grid, px, from) {
                    partition[px] = to;
                    cu_load[from] -= loads[px];
                    cu_load[to] += loads[px];
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            break;
        }
    }
    partition
}

/// Exact connectivity guard: `px` may leave CU `cu` only if the rest of
/// the CU remains non-empty and connected (flood fill excluding `px`).
fn donor_stays_connected(partition: &Partition, grid: GridSpec, px: usize, cu: usize) -> bool {
    let members: Vec<usize> = (0..grid.num_pixels())
        .filter(|&i| i != px && partition[i] == cu)
        .collect();
    let Some(&start) = members.first() else {
        return false; // would empty the CU
    };
    let mut seen = vec![false; grid.num_pixels()];
    seen[start] = true;
    let mut stack = vec![start];
    let mut count = 1;
    while let Some(p) = stack.pop() {
        let (y, x) = grid.coords(p);
        for (ny, nx) in grid.neighbors4(y, x) {
            let n = grid.index(ny, nx);
            if n != px && partition[n] == cu && !seen[n] {
                seen[n] = true;
                count += 1;
                stack.push(n);
            }
        }
    }
    count == members.len()
}

/// CU loads realized by `partition` at time `t` of `traffic`.
pub fn cu_loads(partition: &Partition, traffic: &TrafficMap, t: usize, num_cu: usize) -> Vec<f64> {
    let hw = traffic.height() * traffic.width();
    let mut loads = vec![0.0f64; num_cu];
    let frame = traffic.frame(t);
    for px in 0..hw {
        loads[partition[px]] += frame[px] as f64;
    }
    loads
}

/// Outcome of a Table 7 style assessment: Jain index of realized CU
/// loads over time.
#[derive(Debug, Clone)]
pub struct VranAssessment {
    /// Jain index per evaluated time step.
    pub jain_per_step: Vec<f64>,
}

impl VranAssessment {
    /// Mean of the per-step Jain indices.
    pub fn mean(&self) -> f64 {
        self.jain_per_step.iter().sum::<f64>() / self.jain_per_step.len() as f64
    }

    /// Standard deviation of the per-step Jain indices.
    pub fn std(&self) -> f64 {
        let m = self.mean();
        (self
            .jain_per_step
            .iter()
            .map(|v| (v - m) * (v - m))
            .sum::<f64>()
            / self.jain_per_step.len() as f64)
            .sqrt()
    }
}

/// Runs the §5.2 protocol: for each time step of `planning_day`,
/// partition the RUs using that step's loads; realize the association
/// on the *same* step of `evaluation_day` and record Jain's index of
/// the realized CU loads.
///
/// # Panics
/// Panics if the two maps differ in shape.
pub fn assess(
    planning_day: &TrafficMap,
    evaluation_day: &TrafficMap,
    num_cu: usize,
) -> VranAssessment {
    assert_eq!(
        (
            planning_day.len_t(),
            planning_day.height(),
            planning_day.width()
        ),
        (
            evaluation_day.len_t(),
            evaluation_day.height(),
            evaluation_day.width()
        ),
        "planning and evaluation maps must be congruent"
    );
    let (h, w) = (planning_day.height(), planning_day.width());
    let jain_per_step = (0..planning_day.len_t())
        .map(|t| {
            let plan_loads: Vec<f64> = planning_day.frame(t).iter().map(|&v| v as f64).collect();
            let partition = partition_rus(&plan_loads, h, w, num_cu);
            jain_index(&cu_loads(&partition, evaluation_day, t, num_cu))
        })
        .collect();
    VranAssessment { jain_per_step }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_pixels_with_all_cus() {
        let loads = vec![1.0; 100];
        let p = partition_rus(&loads, 10, 10, 4);
        assert_eq!(p.len(), 100);
        for cu in 0..4 {
            assert!(p.contains(&cu), "CU {cu} empty");
        }
    }

    #[test]
    fn uniform_loads_partition_nearly_evenly() {
        let loads = vec![1.0; 144];
        let p = partition_rus(&loads, 12, 12, 4);
        let mut sizes = [0usize; 4];
        for &c in &p {
            sizes[c] += 1;
        }
        for &s in &sizes {
            assert!((30..=42).contains(&s), "sizes {sizes:?}");
        }
        let j = jain_index(&sizes.map(|s| s as f64));
        assert!(j > 0.97, "jain {j}");
    }

    #[test]
    fn skewed_loads_still_balance_by_load() {
        // One hot corner: the hot CU should cover fewer pixels.
        let (h, w) = (10, 10);
        let mut loads = vec![0.1; h * w];
        for y in 0..3 {
            for x in 0..3 {
                loads[y * w + x] = 5.0;
            }
        }
        let p = partition_rus(&loads, h, w, 4);
        let mut cu_load = [0.0f64; 4];
        for (px, &c) in p.iter().enumerate() {
            cu_load[c] += loads[px];
        }
        let j = jain_index(&cu_load);
        assert!(j > 0.7, "jain {j}, loads {cu_load:?}");
    }

    #[test]
    fn partitions_are_contiguous() {
        let loads: Vec<f64> = (0..64).map(|i| 0.2 + (i % 7) as f64 * 0.1).collect();
        let p = partition_rus(&loads, 8, 8, 4);
        let grid = GridSpec::new(8, 8);
        // Flood-fill each CU from one member; all members reachable.
        for cu in 0..4 {
            let members: Vec<usize> = (0..64).filter(|&i| p[i] == cu).collect();
            let mut seen = [false; 64];
            let mut stack = vec![members[0]];
            seen[members[0]] = true;
            while let Some(px) = stack.pop() {
                let (y, x) = grid.coords(px);
                for (ny, nx) in grid.neighbors4(y, x) {
                    let n = grid.index(ny, nx);
                    if p[n] == cu && !seen[n] {
                        seen[n] = true;
                        stack.push(n);
                    }
                }
            }
            for &m in &members {
                assert!(seen[m], "CU {cu} disconnected at {m}");
            }
        }
    }

    #[test]
    fn assessment_on_identical_days_is_highly_fair() {
        let mut m = TrafficMap::zeros(6, 8, 8);
        for t in 0..6 {
            for px in 0..64 {
                m.data_mut()[t * 64 + px] = 0.2 + ((px * 13 + t) % 10) as f32 * 0.05;
            }
        }
        let a = assess(&m, &m, 4);
        assert_eq!(a.jain_per_step.len(), 6);
        assert!(a.mean() > 0.9, "mean {}", a.mean());
        assert!(a.std() < 0.1);
    }
}
