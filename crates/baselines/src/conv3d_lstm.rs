//! Conv{3D+LSTM}-lite — a black-box spatiotemporal conditional GAN
//! (§3.3).
//!
//! Represents the spatiotemporal-generation state of the art (Saxena &
//! Cao style Conv3D + ConvLSTM): it reuses the same context encoder as
//! SpectraGAN (as the paper does), then rolls a pixel-batched LSTM
//! whose per-step hidden states are *convolutionally mixed* into each
//! output frame — local spatial dynamics from convolution, long-term
//! correlations from recurrence, but **no spectral inductive bias**:
//! all computation is correlated and agnostic to the periodic structure
//! of traffic, the weakness §4.1 attributes to this family.

use crate::util::{lrelu, randn1, stack};
use crate::BaselineTrainConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spectragan_geo::{City, ContextMap, GridSpec, PatchLayout, PatchSpec, TrafficMap};
use spectragan_nn::{Adam, Binding, Conv2d, Linear, Lstm, ParamStore, Tape, Tensor, Var};

/// Hyper-parameters (geometry kept in line with the core model).
#[derive(Debug, Clone, Copy)]
pub struct Conv3dLstmConfig {
    /// Context attribute count.
    pub context_channels: usize,
    /// Traffic patch side.
    pub patch_traffic: usize,
    /// Generation stride.
    pub patch_stride: usize,
    /// Training series length.
    pub train_len: usize,
    /// Noise dimension.
    pub noise_dim: usize,
    /// Encoder channels.
    pub encoder_channels: usize,
    /// LSTM hidden size.
    pub hidden: usize,
    /// L1 weight.
    pub lambda: f32,
    /// Random time window the discriminator sees per step (0 = full).
    pub disc_time_window: usize,
}

impl Conv3dLstmConfig {
    /// CPU-scale defaults.
    pub fn default_hourly() -> Self {
        Conv3dLstmConfig {
            context_channels: 27,
            patch_traffic: 8,
            patch_stride: 4,
            train_len: 168,
            noise_dim: 4,
            encoder_channels: 12,
            hidden: 16,
            lambda: 10.0,
            disc_time_window: 48,
        }
    }

    /// Tiny test configuration.
    pub fn tiny() -> Self {
        Conv3dLstmConfig {
            context_channels: 27,
            patch_traffic: 4,
            patch_stride: 2,
            train_len: 24,
            noise_dim: 2,
            encoder_channels: 6,
            hidden: 6,
            lambda: 10.0,
            disc_time_window: 0,
        }
    }

    fn patch_context(&self) -> usize {
        2 * self.patch_traffic
    }

    fn pixels(&self) -> usize {
        self.patch_traffic * self.patch_traffic
    }
}

/// The Conv{3D+LSTM}-lite model.
pub struct Conv3dLstmLite {
    cfg: Conv3dLstmConfig,
    store: ParamStore,
    enc1: Conv2d,
    enc2: Conv2d,
    lstm: Lstm,
    mix: Conv2d,
    d_enc1: Conv2d,
    d_enc2: Conv2d,
    d_lstm: Lstm,
    d_head: Linear,
    gen_param_end: usize,
}

impl Conv3dLstmLite {
    /// Builds the model with fresh weights.
    pub fn new(cfg: Conv3dLstmConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let (c, ch) = (cfg.context_channels, cfg.encoder_channels);
        let enc1 = Conv2d::new(&mut store, c, ch, 3, 1, &mut rng);
        let enc2 = Conv2d::new(&mut store, ch, ch, 3, 1, &mut rng);
        let lstm = Lstm::new(&mut store, ch + cfg.noise_dim, cfg.hidden, &mut rng);
        let mix = Conv2d::new(&mut store, cfg.hidden, 1, 3, 1, &mut rng);
        let gen_param_end = store.len();
        let d_enc1 = Conv2d::new(&mut store, c, ch, 3, 1, &mut rng);
        let d_enc2 = Conv2d::new(&mut store, ch, ch, 3, 1, &mut rng);
        let d_lstm = Lstm::new(&mut store, 1 + ch, cfg.hidden, &mut rng);
        let d_head = Linear::new(&mut store, cfg.hidden, 1, &mut rng);
        Conv3dLstmLite {
            cfg,
            store,
            enc1,
            enc2,
            lstm,
            mix,
            d_enc1,
            d_enc2,
            d_lstm,
            d_head,
            gen_param_end,
        }
    }

    /// Generator on the tape: per-step frames `[P, 1, H_t, W_t]`,
    /// concatenated to series rows `[N_px, T]`.
    fn gen_forward(&self, bind: &Binding<'_>, ctx: &Var, z: &Var, t: usize) -> Var {
        let cfg = &self.cfg;
        let h = self.enc1.forward(bind, ctx).leaky_relu(0.2).avg_pool2();
        let h = self.enc2.forward(bind, &h).leaky_relu(0.2);
        let hz = Var::concat(&[h, z.clone()], 1);
        let d = hz.shape();
        let (p, c_in, ht, wt) = (d.dim(0), d.dim(1), d.dim(2), d.dim(3));
        let rows = hz.permute(&[0, 2, 3, 1]).reshape([p * ht * wt, c_in]);
        let xw = self.lstm.precompute_input(bind, &rows);
        let mut state = self.lstm.zero_state(bind, p * ht * wt);
        let mut outs = Vec::with_capacity(t);
        for _ in 0..t {
            state = self.lstm.step_projected(bind, &xw, &state);
            // Hidden rows → spatial layout → conv mix → frame rows.
            let hid = state
                .h
                .reshape([p, ht, wt, cfg.hidden])
                .permute(&[0, 3, 1, 2]);
            let frame = self.mix.forward(bind, &hid); // [P,1,ht,wt]
            outs.push(frame.permute(&[0, 2, 3, 1]).reshape([p * ht * wt, 1]));
        }
        Var::concat(&outs, 1)
    }

    fn disc_ctx_rows(&self, bind: &Binding<'_>, ctx: &Var) -> Var {
        let h = self.d_enc1.forward(bind, ctx).leaky_relu(0.2).avg_pool2();
        let h = self.d_enc2.forward(bind, &h).leaky_relu(0.2);
        let d = h.shape();
        let (p, c, ht, wt) = (d.dim(0), d.dim(1), d.dim(2), d.dim(3));
        h.permute(&[0, 2, 3, 1]).reshape([p * ht * wt, c])
    }

    fn disc_logits(&self, bind: &Binding<'_>, series: &Var, ctx_rows: &Var) -> Var {
        let t = series.shape().dim(1);
        let n = series.shape().dim(0);
        let mut state = self.d_lstm.zero_state(bind, n);
        for step in 0..t {
            let x_t = series.narrow(1, step, 1);
            let inp = Var::concat(&[x_t, ctx_rows.clone()], 1);
            state = self.d_lstm.step(bind, &inp, &state);
        }
        self.d_head.forward(bind, &state.h)
    }

    /// Adversarial training with an L1 term (the usual conditional-GAN
    /// recipe for this architecture family).
    pub fn train(&mut self, cities: &[City], tc: &BaselineTrainConfig) {
        let cfg = self.cfg;
        let mut rng = StdRng::seed_from_u64(tc.seed);
        let mut samples: Vec<(Tensor, Tensor)> = Vec::new();
        for city in cities {
            assert!(city.traffic.len_t() >= cfg.train_len);
            let ctx = city.context.standardized();
            let layout = PatchLayout::new(
                city.grid(),
                PatchSpec::new(cfg.patch_traffic, cfg.patch_context(), cfg.patch_traffic),
            );
            for &pos in layout.positions() {
                let c = layout.extract_context(&ctx, pos);
                let x = layout.extract_traffic(&city.traffic, pos, 0, cfg.train_len);
                // Series rows [px, T].
                let rows = x.permute(&[1, 2, 0]).reshape([cfg.pixels(), cfg.train_len]);
                samples.push((c, rows));
            }
        }
        let mut opt_g = Adam::gan(tc.lr).with_clip_norm(5.0);
        let mut opt_d = Adam::gan(tc.lr).with_clip_norm(5.0);
        let tape = Tape::new();
        for _ in 0..tc.steps {
            tape.reset_keep_capacity();
            let batch: Vec<&(Tensor, Tensor)> = (0..tc.batch)
                .map(|_| &samples[rng.gen_range(0..samples.len())])
                .collect();
            let ctx_batch = stack(&batch.iter().map(|(c, _)| c).collect::<Vec<_>>());
            let real_rows = {
                let refs: Vec<&Tensor> = batch.iter().map(|(_, r)| r).collect();
                Tensor::concat(&refs, 0)
            };
            let mut z = Tensor::zeros([
                tc.batch,
                cfg.noise_dim,
                cfg.patch_traffic,
                cfg.patch_traffic,
            ]);
            for p in 0..tc.batch {
                for d in 0..cfg.noise_dim {
                    let v = randn1(&mut rng);
                    let hw = cfg.pixels();
                    for e in 0..hw {
                        z.data_mut()[(p * cfg.noise_dim + d) * hw + e] = v;
                    }
                }
            }
            let bind = Binding::new(&tape, &self.store);
            let ctx_var = tape.leaf(ctx_batch);
            let fake = self.gen_forward(&bind, &ctx_var, &tape.leaf(z), cfg.train_len);
            let ctx_rows = self.disc_ctx_rows(&bind, &ctx_var);
            let real_var = tape.leaf(real_rows.clone());
            let fake_det = tape.leaf(fake.value().as_ref().clone());
            let t_full = cfg.train_len;
            let win = if cfg.disc_time_window == 0 {
                t_full
            } else {
                cfg.disc_time_window.min(t_full)
            };
            let w0 = if win < t_full {
                rng.gen_range(0..=t_full - win)
            } else {
                0
            };
            let d_loss = self
                .disc_logits(&bind, &real_var.narrow(1, w0, win), &ctx_rows)
                .bce_with_logits(1.0)
                .add(
                    &self
                        .disc_logits(&bind, &fake_det.narrow(1, w0, win), &ctx_rows)
                        .bce_with_logits(0.0),
                );
            let g_loss = self
                .disc_logits(&bind, &fake.narrow(1, w0, win), &ctx_rows)
                .bce_with_logits(1.0)
                .add(&fake.l1_to(&real_rows).scale(cfg.lambda));
            let grads_d = tape.backward(&d_loss);
            let grads_g = tape.backward(&g_loss);
            let bound = bind.bound();
            let boundary = self.gen_param_end;
            let (g_bound, d_bound): (Vec<_>, Vec<_>) =
                bound.into_iter().partition(|(id, _)| id.index() < boundary);
            opt_d.step(&mut self.store, &d_bound, &grads_d);
            opt_g.step(&mut self.store, &g_bound, &grads_g);
        }
    }

    /// Tape-free generation with sliding-window sewing (same pipeline
    /// shape as the core model; shared noise across patches).
    pub fn generate(&self, context: &ContextMap, t_out: usize, seed: u64) -> TrafficMap {
        let cfg = self.cfg;
        let grid = GridSpec::new(context.height(), context.width());
        let layout = PatchLayout::new(
            grid,
            PatchSpec::new(cfg.patch_traffic, cfg.patch_context(), cfg.patch_stride),
        );
        let ctx_std = context.standardized();
        let mut rng = StdRng::seed_from_u64(seed);
        let z_vec: Vec<f32> = (0..cfg.noise_dim).map(|_| randn1(&mut rng)).collect();
        let side = cfg.patch_traffic;
        let px = cfg.pixels();
        // Stream each patch straight into the running sew sums instead
        // of materializing every overlapping patch for the whole city.
        let mut acc = layout.sew_accumulator(t_out);
        for &pos in layout.positions().to_vec().iter() {
            let ctx_t = layout.extract_context(&ctx_std, pos);
            let d = ctx_t.shape().dims().to_vec();
            let ctx_b = ctx_t.reshape([1, d[0], d[1], d[2]]);
            let h = lrelu(self.enc1.forward_infer(&self.store, &ctx_b)).avg_pool2();
            let h = lrelu(self.enc2.forward_infer(&self.store, &h));
            let mut z = Tensor::zeros([1, cfg.noise_dim, side, side]);
            for (dd, &zv) in z_vec.iter().enumerate() {
                for e in 0..px {
                    z.data_mut()[dd * px + e] = zv;
                }
            }
            let hz = Tensor::concat(&[&h, &z], 1);
            let c_in = hz.shape().dim(1);
            let rows = hz.permute(&[0, 2, 3, 1]).reshape([px, c_in]);
            let xw = rows.matmul(self.store.get(self.lstm.wx_param()));
            let (mut hh, mut cc) = self.lstm.zero_state_infer(px);
            let mut patch = Tensor::zeros([t_out, side, side]);
            for t in 0..t_out {
                let (h2, c2) = self.lstm.step_infer_projected(&self.store, &xw, &hh, &cc);
                hh = h2;
                cc = c2;
                let hid = hh
                    .reshape([1, side, side, cfg.hidden])
                    .permute(&[0, 3, 1, 2]);
                let frame = self.mix.forward_infer(&self.store, &hid);
                for yy in 0..side {
                    for xx in 0..side {
                        *patch.at_mut(&[t, yy, xx]) = frame.at(&[0, 0, yy, xx]).max(0.0);
                    }
                }
            }
            acc.push(&patch);
        }
        let mut map = acc.finish();
        for v in map.data_mut() {
            *v = v.max(0.0);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};

    fn city(seed: u64) -> City {
        let ds = DatasetConfig {
            weeks: 1,
            steps_per_hour: 1,
            size_scale: 0.36,
        };
        generate_city(
            &CityConfig {
                name: "C3".into(),
                height: 33,
                width: 33,
                seed,
            },
            &ds,
        )
    }

    #[test]
    fn trains_and_generates() {
        let c = city(1);
        let mut model = Conv3dLstmLite::new(Conv3dLstmConfig::tiny(), 0);
        let tc = BaselineTrainConfig {
            steps: 3,
            batch: 1,
            lr: 1e-3,
            seed: 0,
        };
        model.train(std::slice::from_ref(&c), &tc);
        let out = model.generate(&c.context, 30, 0);
        assert_eq!(out.len_t(), 30);
        assert_eq!(out.height(), c.traffic.height());
        assert!(out.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn output_conv_couples_neighbouring_pixels() {
        // Unlike DoppelGANger, per-step conv mixing makes neighbouring
        // pixels correlated even under spatially uniform context.
        let model = Conv3dLstmLite::new(Conv3dLstmConfig::tiny(), 2);
        let mut uniform = ContextMap::zeros(27, 8, 8);
        for v in uniform.data_mut() {
            *v = 0.3;
        }
        let out = model.generate(&uniform, 24, 1);
        let a = out.pixel_series(3, 3);
        let b = out.pixel_series(3, 4);
        let pcc = spectragan_metrics::pearson(&a, &b);
        assert!(pcc.abs() > 0.5 || a == b, "no spatial coupling: {pcc}");
    }
}
