//! DoppelGANger-lite — per-pixel conditional time-series GAN (§3.3).
//!
//! Lin et al.'s DoppelGANger generates networked time series with a
//! batched RNN conditioned on per-series metadata. It has no spatial
//! dimension, so the paper applies one independent instance per pixel,
//! conditioned on that pixel's own context attributes. This
//! reproduction batches pixels through one shared conditional LSTM
//! generator/discriminator pair (equivalent to weight-tied independent
//! instances, which is also how DoppelGANger amortizes training), and
//! draws *independent* noise per pixel at generation time — the source
//! of the salt-and-pepper spatial artifacts in Fig. 7.

use crate::util::randn1;
use crate::BaselineTrainConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spectragan_geo::{City, ContextMap, TrafficMap};
use spectragan_nn::{Activation, Adam, Binding, Linear, Lstm, ParamStore, Tape, Tensor, Var};

/// Hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct DoppelGangerConfig {
    /// Context attribute count (per pixel).
    pub context_channels: usize,
    /// Training series length.
    pub train_len: usize,
    /// Noise dimension.
    pub noise_dim: usize,
    /// Conditioning embedding width.
    pub embed: usize,
    /// LSTM hidden size (generator and discriminator).
    pub hidden: usize,
    /// Random time window the discriminator sees per step (0 = full
    /// series); same temporal-patch trick as the core model.
    pub disc_time_window: usize,
}

impl DoppelGangerConfig {
    /// CPU-scale defaults.
    pub fn default_hourly() -> Self {
        DoppelGangerConfig {
            context_channels: 27,
            train_len: 168,
            noise_dim: 4,
            embed: 12,
            hidden: 16,
            disc_time_window: 48,
        }
    }

    /// Tiny test configuration.
    pub fn tiny() -> Self {
        DoppelGangerConfig {
            context_channels: 27,
            train_len: 24,
            noise_dim: 2,
            embed: 6,
            hidden: 6,
            disc_time_window: 0,
        }
    }
}

/// The DoppelGANger-lite model.
pub struct DoppelGangerLite {
    cfg: DoppelGangerConfig,
    store: ParamStore,
    g_embed: Linear,
    g_lstm: Lstm,
    g_head: Linear,
    d_embed: Linear,
    d_lstm: Lstm,
    d_head: Linear,
    gen_param_end: usize,
}

/// One pixel's training record: standardized context + series.
struct PixelSample {
    ctx: Vec<f32>,
    series: Vec<f32>,
}

impl DoppelGangerLite {
    /// Builds the model with fresh weights.
    pub fn new(cfg: DoppelGangerConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let g_embed = Linear::new(
            &mut store,
            cfg.context_channels + cfg.noise_dim,
            cfg.embed,
            &mut rng,
        );
        let g_lstm = Lstm::new(&mut store, cfg.embed, cfg.hidden, &mut rng);
        let g_head = Linear::new(&mut store, cfg.hidden, 1, &mut rng);
        let gen_param_end = store.len();
        let d_embed = Linear::new(&mut store, cfg.context_channels, cfg.embed, &mut rng);
        let d_lstm = Lstm::new(&mut store, 1 + cfg.embed, cfg.hidden, &mut rng);
        let d_head = Linear::new(&mut store, cfg.hidden, 1, &mut rng);
        DoppelGangerLite {
            cfg,
            store,
            g_embed,
            g_lstm,
            g_head,
            d_embed,
            d_lstm,
            d_head,
            gen_param_end,
        }
    }

    fn collect_pixels(cities: &[City]) -> Vec<PixelSample> {
        let mut out = Vec::new();
        for city in cities {
            let ctx = city.context.standardized();
            for y in 0..city.traffic.height() {
                for x in 0..city.traffic.width() {
                    let c: Vec<f32> = (0..ctx.channels()).map(|k| ctx.at(k, y, x)).collect();
                    let s: Vec<f32> = (0..city.traffic.len_t())
                        .map(|t| city.traffic.at(t, y, x))
                        .collect();
                    out.push(PixelSample { ctx: c, series: s });
                }
            }
        }
        out
    }

    /// Generator forward: conditioning rows `[N, C+Z]` → series
    /// `[N, T]` on the tape.
    fn gen_forward(&self, bind: &Binding<'_>, cond: &Var, t: usize) -> Var {
        let feat = self.g_embed.forward_act(bind, cond, Activation::LeakyRelu);
        let xw = self.g_lstm.precompute_input(bind, &feat);
        let n = feat.shape().dim(0);
        let mut state = self.g_lstm.zero_state(bind, n);
        let mut outs = Vec::with_capacity(t);
        for _ in 0..t {
            state = self.g_lstm.step_projected(bind, &xw, &state);
            outs.push(self.g_head.forward(bind, &state.h));
        }
        Var::concat(&outs, 1)
    }

    /// Discriminator logits for series rows under per-pixel context.
    fn disc_logits(&self, bind: &Binding<'_>, series: &Var, ctx: &Var) -> Var {
        let emb = self.d_embed.forward_act(bind, ctx, Activation::LeakyRelu);
        let t = series.shape().dim(1);
        let n = series.shape().dim(0);
        let mut state = self.d_lstm.zero_state(bind, n);
        for step in 0..t {
            let x_t = series.narrow(1, step, 1);
            let inp = Var::concat(&[x_t, emb.clone()], 1);
            state = self.d_lstm.step(bind, &inp, &state);
        }
        self.d_head.forward(bind, &state.h)
    }

    /// Adversarial training on pixel batches. `tc.batch` is interpreted
    /// as *dozens* of pixels (batch × 32 pixel rows per step) so the
    /// budget is comparable to the patch models.
    pub fn train(&mut self, cities: &[City], tc: &BaselineTrainConfig) {
        let pixels = Self::collect_pixels(cities);
        assert!(!pixels.is_empty(), "no training pixels");
        let t = self.cfg.train_len;
        let rows_per_step = tc.batch * 32;
        let mut rng = StdRng::seed_from_u64(tc.seed);
        let mut opt_g = Adam::gan(tc.lr).with_clip_norm(5.0);
        let mut opt_d = Adam::gan(tc.lr).with_clip_norm(5.0);
        let tape = Tape::new();
        for _ in 0..tc.steps {
            tape.reset_keep_capacity();
            let c = self.cfg.context_channels;
            let z_dim = self.cfg.noise_dim;
            let mut cond = Tensor::zeros([rows_per_step, c + z_dim]);
            let mut ctx_only = Tensor::zeros([rows_per_step, c]);
            let mut real = Tensor::zeros([rows_per_step, t]);
            for i in 0..rows_per_step {
                let px = &pixels[rng.gen_range(0..pixels.len())];
                assert!(
                    px.series.len() >= t,
                    "training series shorter than train_len"
                );
                cond.data_mut()[i * (c + z_dim)..i * (c + z_dim) + c].copy_from_slice(&px.ctx);
                for d in 0..z_dim {
                    cond.data_mut()[i * (c + z_dim) + c + d] = randn1(&mut rng);
                }
                ctx_only.data_mut()[i * c..(i + 1) * c].copy_from_slice(&px.ctx);
                real.data_mut()[i * t..(i + 1) * t].copy_from_slice(&px.series[..t]);
            }
            let bind = Binding::new(&tape, &self.store);
            let cond_var = tape.leaf(cond);
            let ctx_var = tape.leaf(ctx_only);
            let fake = self.gen_forward(&bind, &cond_var, t);
            let real_var = tape.leaf(real.clone());
            let fake_det = tape.leaf(fake.value().as_ref().clone());
            let win = if self.cfg.disc_time_window == 0 {
                t
            } else {
                self.cfg.disc_time_window.min(t)
            };
            let w0 = if win < t {
                rng.gen_range(0..=t - win)
            } else {
                0
            };
            let d_loss = self
                .disc_logits(&bind, &real_var.narrow(1, w0, win), &ctx_var)
                .bce_with_logits(1.0)
                .add(
                    &self
                        .disc_logits(&bind, &fake_det.narrow(1, w0, win), &ctx_var)
                        .bce_with_logits(0.0),
                );
            // DoppelGANger trains purely adversarially.
            let g_loss = self
                .disc_logits(&bind, &fake.narrow(1, w0, win), &ctx_var)
                .bce_with_logits(1.0);
            let grads_d = tape.backward(&d_loss);
            let grads_g = tape.backward(&g_loss);
            let bound = bind.bound();
            let boundary = self.gen_param_end;
            let (g_bound, d_bound): (Vec<_>, Vec<_>) =
                bound.into_iter().partition(|(id, _)| id.index() < boundary);
            opt_d.step(&mut self.store, &d_bound, &grads_d);
            opt_g.step(&mut self.store, &g_bound, &grads_g);
        }
    }

    /// Generates `t_out` steps for every pixel of the target region,
    /// each pixel independently conditioned and independently noised.
    pub fn generate(&self, context: &ContextMap, t_out: usize, seed: u64) -> TrafficMap {
        let mut out = self.generate_raw(context, t_out, seed);
        for v in out.data_mut() {
            *v = v.max(0.0);
        }
        out
    }

    /// Like [`DoppelGangerLite::generate`] but without the final
    /// non-negativity clamp (used by tests to observe raw outputs).
    fn generate_raw(&self, context: &ContextMap, t_out: usize, seed: u64) -> TrafficMap {
        let (h, w) = (context.height(), context.width());
        let ctx = context.standardized();
        let c = self.cfg.context_channels;
        let z_dim = self.cfg.noise_dim;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = h * w;
        let mut cond = Tensor::zeros([n, c + z_dim]);
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                for k in 0..c {
                    cond.data_mut()[i * (c + z_dim) + k] = ctx.at(k, y, x);
                }
                for d in 0..z_dim {
                    cond.data_mut()[i * (c + z_dim) + c + d] = randn1(&mut rng);
                }
            }
        }
        // Tape-free rollout.
        let feat = crate::util::lrelu(self.g_embed.forward_infer(&self.store, &cond));
        let xw = feat.matmul(self.store.get(self.g_lstm.wx_param()));
        let (mut hh, mut cc) = self.g_lstm.zero_state_infer(n);
        let mut out = TrafficMap::zeros(t_out, h, w);
        for t in 0..t_out {
            let (h2, c2) = self.g_lstm.step_infer_projected(&self.store, &xw, &hh, &cc);
            hh = h2;
            cc = c2;
            let frame = self.g_head.forward_infer(&self.store, &hh);
            for i in 0..n {
                out.data_mut()[t * n + i] = frame.data()[i];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};

    fn city(seed: u64) -> City {
        let ds = DatasetConfig {
            weeks: 1,
            steps_per_hour: 1,
            size_scale: 0.36,
        };
        generate_city(
            &CityConfig {
                name: "D".into(),
                height: 33,
                width: 33,
                seed,
            },
            &ds,
        )
    }

    #[test]
    fn trains_and_generates() {
        let c = city(1);
        let mut model = DoppelGangerLite::new(DoppelGangerConfig::tiny(), 0);
        let tc = BaselineTrainConfig {
            steps: 3,
            batch: 1,
            lr: 1e-3,
            seed: 0,
        };
        model.train(std::slice::from_ref(&c), &tc);
        let out = model.generate(&c.context, 30, 0);
        assert_eq!(out.len_t(), 30);
        assert_eq!(out.height(), c.traffic.height());
        assert!(out.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn pixels_get_independent_noise() {
        // Two pixels with identical context must still differ, because
        // each draws its own noise — the defining spatial weakness.
        let c = city(2);
        let model = DoppelGangerLite::new(DoppelGangerConfig::tiny(), 1);
        let _ = c;
        let mut uniform = ContextMap::zeros(27, 6, 6);
        for v in uniform.data_mut() {
            *v = 0.5;
        }
        // Raw (unclamped) outputs expose the per-pixel noise directly.
        let out = model.generate_raw(&uniform, 24, 3);
        let a = out.pixel_series(0, 0);
        let b = out.pixel_series(0, 1);
        assert_ne!(a, b, "identical-context pixels should differ via noise");
    }
}
