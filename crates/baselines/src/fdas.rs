//! FDAS — fit distribution and sample (§3.3).
//!
//! Following Di Francesco et al. [26] and Oliveira et al. [54], fit an
//! empirical distribution to the traffic and sample from it. Like the
//! paper's instantiation, we fit a *separate log-normal per hour of the
//! day* over pixel-level traffic, then draw every pixel and time step
//! independently. This keeps the marginal distribution (good M-TV) but
//! has no spatial, temporal or spatiotemporal correlation — the failure
//! mode shown in Fig. 6.

use crate::util::randn1;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spectragan_geo::{City, ContextMap, TrafficMap};
use spectragan_metrics::LogNormal;

/// The FDAS baseline: 24 per-hour log-normal fits.
#[derive(Debug, Clone)]
pub struct Fdas {
    hourly: Vec<LogNormal>,
    steps_per_hour: usize,
}

impl Fdas {
    /// Fits the per-hour distributions on the training cities.
    ///
    /// `steps_per_hour` maps series indices to hours (1 for hourly
    /// data).
    pub fn fit(cities: &[City], steps_per_hour: usize) -> Self {
        assert!(!cities.is_empty(), "FDAS needs at least one training city");
        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); 24];
        for city in cities {
            let hw = city.traffic.height() * city.traffic.width();
            for t in 0..city.traffic.len_t() {
                let hour = (t / steps_per_hour) % 24;
                let frame = &city.traffic.data()[t * hw..(t + 1) * hw];
                buckets[hour].extend(frame.iter().map(|&v| v as f64));
            }
        }
        let hourly = buckets
            .into_iter()
            .map(|b| {
                assert!(!b.is_empty(), "no samples for some hour of day");
                LogNormal::fit(&b, 1e-4)
            })
            .collect();
        Fdas {
            hourly,
            steps_per_hour,
        }
    }

    /// The fitted distribution for a given hour of day.
    pub fn distribution(&self, hour: usize) -> LogNormal {
        self.hourly[hour % 24]
    }

    /// Samples a synthetic map: every pixel × step draw is independent,
    /// from the distribution of that step's hour. Context only sets the
    /// spatial extent.
    pub fn generate(&self, context: &ContextMap, t_out: usize, seed: u64) -> TrafficMap {
        let (h, w) = (context.height(), context.width());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = TrafficMap::zeros(t_out, h, w);
        for t in 0..t_out {
            let hour = (t / self.steps_per_hour) % 24;
            let dist = self.hourly[hour];
            for y in 0..h {
                for x in 0..w {
                    let v = dist.sample_from_normal(randn1(&mut rng) as f64);
                    *out.at_mut(t, y, x) = (v as f32).clamp(0.0, 1.0);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};

    fn city(seed: u64) -> City {
        let ds = DatasetConfig {
            weeks: 1,
            steps_per_hour: 1,
            size_scale: 0.4,
        };
        generate_city(
            &CityConfig {
                name: "F".into(),
                height: 33,
                width: 33,
                seed,
            },
            &ds,
        )
    }

    #[test]
    fn fits_and_generates_requested_shape() {
        let c = city(1);
        let model = Fdas::fit(std::slice::from_ref(&c), 1);
        let out = model.generate(&c.context, 48, 0);
        assert_eq!(out.len_t(), 48);
        assert_eq!(
            (out.height(), out.width()),
            (c.traffic.height(), c.traffic.width())
        );
        assert!(out.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn hourly_means_follow_the_diurnal_cycle() {
        let c = city(2);
        let model = Fdas::fit(std::slice::from_ref(&c), 1);
        // The real data has a pronounced day/night difference; the
        // per-hour fits must reflect it.
        let series = c.traffic.city_series();
        let real_peak_hour = (0..24)
            .max_by(|&a, &b| {
                let va: f64 = (0..7).map(|d| series[d * 24 + a]).sum();
                let vb: f64 = (0..7).map(|d| series[d * 24 + b]).sum();
                va.partial_cmp(&vb).unwrap()
            })
            .unwrap();
        let real_trough_hour = (0..24)
            .min_by(|&a, &b| {
                let va: f64 = (0..7).map(|d| series[d * 24 + a]).sum();
                let vb: f64 = (0..7).map(|d| series[d * 24 + b]).sum();
                va.partial_cmp(&vb).unwrap()
            })
            .unwrap();
        assert!(
            model.distribution(real_peak_hour).mean() > model.distribution(real_trough_hour).mean()
        );
    }

    #[test]
    fn generated_pixels_are_spatially_uncorrelated() {
        // The defining failure: neighbouring pixels share no structure.
        let c = city(3);
        let model = Fdas::fit(std::slice::from_ref(&c), 1);
        let out = model.generate(&c.context, 168, 1);
        let a = out.pixel_series(2, 2);
        let b = out.pixel_series(2, 3);
        let pcc = spectragan_metrics::pearson(&a, &b);
        // Hour-of-day means induce some common structure; full spatial
        // correlation like real data (≈0.9 for neighbours) must be gone.
        let real_pcc = spectragan_metrics::pearson(
            &c.traffic.pixel_series(2, 2),
            &c.traffic.pixel_series(2, 3),
        );
        assert!(pcc < real_pcc, "fdas {pcc} vs real {real_pcc}");
    }
}
