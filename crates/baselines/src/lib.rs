//! Baseline generators from the paper's evaluation (§3.3), each
//! representing a family of prior work:
//!
//! * [`Fdas`] — **Fit-Distribution-And-Sample**: the pre-deep-learning
//!   state of the art on mobile traffic synthesis (Di Francesco et al.,
//!   Oliveira et al.): fit a log-normal per hour of day, then sample
//!   pixels and time steps independently. Captures marginals, destroys
//!   all correlation (Fig. 6).
//! * [`Pix2PixLite`] — spatial-only conditional GAN in the image-to-
//!   image translation mold: context window → one traffic frame, no
//!   notion of time.
//! * [`DoppelGangerLite`] — per-pixel conditional time-series GAN
//!   (RNN-based, following Lin et al.); pixels are generated
//!   independently given only their own context, so spatial and
//!   spatiotemporal correlations are lost.
//! * [`Conv3dLstmLite`] — spatiotemporal conditional GAN combining the
//!   SpectraGAN context encoder with a convolutionally-mixed LSTM
//!   rollout; a black-box architecture with no spectral inductive bias.
//!
//! Model scale matches `spectragan-core`'s CPU-sized configuration so
//! comparisons are apples-to-apples.

pub mod conv3d_lstm;
pub mod doppelganger;
pub mod fdas;
pub mod pix2pix;
pub(crate) mod util;

pub use conv3d_lstm::Conv3dLstmLite;
pub use doppelganger::DoppelGangerLite;
pub use fdas::Fdas;
pub use pix2pix::Pix2PixLite;

/// Training budget shared by the neural baselines.
#[derive(Debug, Clone, Copy)]
pub struct BaselineTrainConfig {
    /// Optimizer steps.
    pub steps: usize,
    /// Patches (or pixel groups) per minibatch.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl BaselineTrainConfig {
    /// Short run for tests.
    pub fn smoke() -> Self {
        BaselineTrainConfig {
            steps: 5,
            batch: 2,
            lr: 2e-3,
            seed: 0,
        }
    }

    /// Harness-scale run.
    pub fn eval() -> Self {
        BaselineTrainConfig {
            steps: 160,
            batch: 4,
            lr: 2e-3,
            seed: 0,
        }
    }
}
