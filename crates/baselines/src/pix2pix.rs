//! Pix2Pix-lite — a spatial-only conditional GAN (§3.3).
//!
//! Adapts the image-to-image translation recipe of Isola et al. [38] to
//! traffic: a convolutional generator maps a (wider) context window
//! plus noise to a single traffic *frame*; training pairs each context
//! patch with a randomly chosen real frame (adversarial + L1, the
//! Pix2Pix loss). The model has **no notion of time**: generation
//! draws a pool of frames per patch and assigns each time step one of
//! them at random, so maps look right but all temporal structure is
//! absent — matching the Fig. 7/8 behaviour (good SSIM, worst AC-L1).

use crate::util::{lrelu, randn1, stack};
use crate::BaselineTrainConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spectragan_geo::{City, ContextMap, GridSpec, PatchLayout, PatchSpec, TrafficMap};
use spectragan_nn::layers::Activation;
use spectragan_nn::{Adam, Binding, Conv2d, Mlp, ParamStore, Tape, Tensor, Var};

/// Geometry/width hyper-parameters (kept in line with the core model).
#[derive(Debug, Clone, Copy)]
pub struct Pix2PixConfig {
    /// Context attribute count.
    pub context_channels: usize,
    /// Traffic patch side.
    pub patch_traffic: usize,
    /// Generation stride.
    pub patch_stride: usize,
    /// Noise dimension.
    pub noise_dim: usize,
    /// Encoder channels.
    pub encoder_channels: usize,
    /// Feature channels before the output head.
    pub gen_channels: usize,
    /// L1 weight.
    pub lambda: f32,
    /// Distinct frames drawn per patch at generation time.
    pub frame_pool: usize,
}

impl Pix2PixConfig {
    /// CPU-scale defaults.
    pub fn default_hourly() -> Self {
        Pix2PixConfig {
            context_channels: 27,
            patch_traffic: 8,
            patch_stride: 4,
            noise_dim: 4,
            encoder_channels: 12,
            gen_channels: 24,
            lambda: 10.0,
            frame_pool: 16,
        }
    }

    /// Tiny test configuration.
    pub fn tiny() -> Self {
        Pix2PixConfig {
            context_channels: 27,
            patch_traffic: 4,
            patch_stride: 2,
            noise_dim: 2,
            encoder_channels: 6,
            gen_channels: 8,
            lambda: 10.0,
            frame_pool: 4,
        }
    }

    fn patch_context(&self) -> usize {
        2 * self.patch_traffic
    }
}

/// The Pix2Pix-lite model.
pub struct Pix2PixLite {
    cfg: Pix2PixConfig,
    store: ParamStore,
    enc1: Conv2d,
    enc2: Conv2d,
    feat: Conv2d,
    head: Conv2d,
    d_enc1: Conv2d,
    d_enc2: Conv2d,
    d_mlp: Mlp,
    gen_param_end: usize,
}

impl Pix2PixLite {
    /// Builds the model with fresh weights.
    pub fn new(cfg: Pix2PixConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let (c, ch, cs, z) = (
            cfg.context_channels,
            cfg.encoder_channels,
            cfg.gen_channels,
            cfg.noise_dim,
        );
        let enc1 = Conv2d::new(&mut store, c, ch, 3, 1, &mut rng);
        let enc2 = Conv2d::new(&mut store, ch, ch, 3, 1, &mut rng);
        let feat = Conv2d::new(&mut store, ch + z, cs, 3, 1, &mut rng);
        let head = Conv2d::new(&mut store, cs, 1, 3, 1, &mut rng);
        let gen_param_end = store.len();
        let d_enc1 = Conv2d::new(&mut store, c, ch, 3, 1, &mut rng);
        let d_enc2 = Conv2d::new(&mut store, ch, ch, 3, 1, &mut rng);
        let d_mlp = Mlp::new(
            &mut store,
            &[1 + ch, 2 * ch, 1],
            Activation::LeakyRelu,
            Activation::Identity,
            &mut rng,
        );
        Pix2PixLite {
            cfg,
            store,
            enc1,
            enc2,
            feat,
            head,
            d_enc1,
            d_enc2,
            d_mlp,
            gen_param_end,
        }
    }

    /// Generator forward on the tape: context `[P, C, Hc, Wc]` + noise
    /// `[P, Z, Ht, Wt]` → frame `[P, 1, Ht, Wt]`.
    fn gen_forward(&self, bind: &Binding<'_>, ctx: &Var, z: &Var) -> Var {
        let h = self.enc1.forward(bind, ctx).leaky_relu(0.2).avg_pool2();
        let h = self.enc2.forward(bind, &h).leaky_relu(0.2);
        let hz = Var::concat(&[h, z.clone()], 1);
        let f = self.feat.forward(bind, &hz).leaky_relu(0.2);
        self.head.forward(bind, &f)
    }

    /// Discriminator: per-pixel logits for a frame under its context.
    fn disc_logits(&self, bind: &Binding<'_>, frame: &Var, ctx: &Var) -> Var {
        let h = self.d_enc1.forward(bind, ctx).leaky_relu(0.2).avg_pool2();
        let h = self.d_enc2.forward(bind, &h).leaky_relu(0.2);
        let joint = Var::concat(&[frame.clone(), h], 1);
        let d = joint.shape();
        let (p, c, ht, wt) = (d.dim(0), d.dim(1), d.dim(2), d.dim(3));
        let rows = joint.permute(&[0, 2, 3, 1]).reshape([p * ht * wt, c]);
        self.d_mlp.forward(bind, &rows)
    }

    /// Trains on random (context window, real frame) pairs.
    pub fn train(&mut self, cities: &[City], tc: &BaselineTrainConfig) {
        let cfg = self.cfg;
        let mut rng = StdRng::seed_from_u64(tc.seed);
        // Pre-extract layouts and standardized contexts.
        let prepped: Vec<(PatchLayout, spectragan_geo::ContextMap, &TrafficMap)> = cities
            .iter()
            .map(|c| {
                (
                    PatchLayout::new(
                        c.grid(),
                        PatchSpec::new(cfg.patch_traffic, cfg.patch_context(), cfg.patch_traffic),
                    ),
                    c.context.standardized(),
                    &c.traffic,
                )
            })
            .collect();
        let mut opt_g = Adam::gan(tc.lr).with_clip_norm(5.0);
        let mut opt_d = Adam::gan(tc.lr).with_clip_norm(5.0);
        let tape = Tape::new();
        for _ in 0..tc.steps {
            tape.reset_keep_capacity();
            let mut ctxs = Vec::new();
            let mut frames = Vec::new();
            for _ in 0..tc.batch {
                let (layout, ctx, traffic) = &prepped[rng.gen_range(0..prepped.len())];
                let pos = layout.positions()[rng.gen_range(0..layout.positions().len())];
                let t = rng.gen_range(0..traffic.len_t());
                ctxs.push(layout.extract_context(ctx, pos));
                frames.push(layout.extract_traffic(traffic, pos, t, t + 1));
            }
            let ctx_batch = stack(&ctxs.iter().collect::<Vec<_>>());
            let frame_batch = stack(&frames.iter().collect::<Vec<_>>());
            let mut z = Tensor::zeros([
                tc.batch,
                cfg.noise_dim,
                cfg.patch_traffic,
                cfg.patch_traffic,
            ]);
            for v in z.data_mut() {
                *v = randn1(&mut rng);
            }

            let bind = Binding::new(&tape, &self.store);
            let ctx_var = tape.leaf(ctx_batch);
            let fake = self.gen_forward(&bind, &ctx_var, &tape.leaf(z));
            let real_var = tape.leaf(frame_batch.clone());
            let fake_det = tape.leaf(fake.value().as_ref().clone());
            let d_loss = self
                .disc_logits(&bind, &real_var, &ctx_var)
                .bce_with_logits(1.0)
                .add(
                    &self
                        .disc_logits(&bind, &fake_det, &ctx_var)
                        .bce_with_logits(0.0),
                );
            let g_loss = self
                .disc_logits(&bind, &fake, &ctx_var)
                .bce_with_logits(1.0)
                .add(&fake.l1_to(&frame_batch).scale(cfg.lambda));
            let grads_d = tape.backward(&d_loss);
            let grads_g = tape.backward(&g_loss);
            let bound = bind.bound();
            let boundary = self.gen_param_end;
            let (g_bound, d_bound): (Vec<_>, Vec<_>) =
                bound.into_iter().partition(|(id, _)| id.index() < boundary);
            opt_d.step(&mut self.store, &d_bound, &grads_d);
            opt_g.step(&mut self.store, &g_bound, &grads_g);
        }
    }

    /// Tape-free frame generation for one batch of context patches.
    fn infer_frames(&self, ctx: &Tensor, z: &Tensor) -> Tensor {
        let h = lrelu(self.enc1.forward_infer(&self.store, ctx)).avg_pool2();
        let h = lrelu(self.enc2.forward_infer(&self.store, &h));
        let hz = Tensor::concat(&[&h, z], 1);
        let f = lrelu(self.feat.forward_infer(&self.store, &hz));
        self.head.forward_infer(&self.store, &f)
    }

    /// Generates `t_out` steps: a pool of frames per patch, one frame
    /// chosen per time step at random (no temporal model by design).
    pub fn generate(&self, context: &ContextMap, t_out: usize, seed: u64) -> TrafficMap {
        let cfg = self.cfg;
        let grid = GridSpec::new(context.height(), context.width());
        let layout = PatchLayout::new(
            grid,
            PatchSpec::new(cfg.patch_traffic, cfg.patch_context(), cfg.patch_stride),
        );
        let ctx_std = context.standardized();
        let mut rng = StdRng::seed_from_u64(seed);
        let side = cfg.patch_traffic;
        let pool = cfg.frame_pool.max(1);
        // Stream each patch straight into the running sew sums instead
        // of materializing every overlapping patch for the whole city.
        let mut acc = layout.sew_accumulator(t_out);
        for &pos in layout.positions().to_vec().iter() {
            let ctx_t = layout.extract_context(&ctx_std, pos);
            let ctx_b = stack(&vec![&ctx_t; pool]);
            let mut z = Tensor::zeros([pool, cfg.noise_dim, side, side]);
            for v in z.data_mut() {
                *v = randn1(&mut rng);
            }
            let frames = self.infer_frames(&ctx_b, &z); // [pool, 1, s, s]
            let mut patch = Tensor::zeros([t_out, side, side]);
            for t in 0..t_out {
                let pick = rng.gen_range(0..pool);
                for yy in 0..side {
                    for xx in 0..side {
                        *patch.at_mut(&[t, yy, xx]) = frames.at(&[pick, 0, yy, xx]).max(0.0);
                    }
                }
            }
            acc.push(&patch);
        }
        let mut map = acc.finish();
        for v in map.data_mut() {
            *v = v.max(0.0);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};

    fn city(seed: u64) -> City {
        let ds = DatasetConfig {
            weeks: 1,
            steps_per_hour: 1,
            size_scale: 0.36,
        };
        generate_city(
            &CityConfig {
                name: "P".into(),
                height: 33,
                width: 33,
                seed,
            },
            &ds,
        )
    }

    #[test]
    fn trains_and_generates() {
        let c = city(1);
        let mut model = Pix2PixLite::new(Pix2PixConfig::tiny(), 0);
        model.train(std::slice::from_ref(&c), &BaselineTrainConfig::smoke());
        let out = model.generate(&c.context, 12, 0);
        assert_eq!(out.len_t(), 12);
        assert_eq!(out.height(), c.traffic.height());
        assert!(out.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn output_has_no_diurnal_autocorrelation() {
        let c = city(2);
        let mut model = Pix2PixLite::new(Pix2PixConfig::tiny(), 0);
        model.train(std::slice::from_ref(&c), &BaselineTrainConfig::smoke());
        let out = model.generate(&c.context, 96, 1);
        let series = out.city_series();
        let ac = spectragan_dsp_autocorr(&series);
        // Real traffic has strong lag-24 correlation; Pix2Pix must not.
        assert!(ac < 0.5, "unexpected diurnal structure: {ac}");
    }

    fn spectragan_dsp_autocorr(series: &[f64]) -> f64 {
        spectragan_dsp::autocorrelation(series, 25)[24]
    }
}
