//! Shared helpers for the neural baselines.

use rand::Rng;
use spectragan_tensor::Tensor;

/// Draws one standard normal using Box–Muller.
pub fn randn1(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Stacks equal-shape tensors along a new leading axis.
pub fn stack(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "stack of zero tensors");
    let mut dims = vec![1usize];
    dims.extend_from_slice(parts[0].shape().dims());
    let reshaped: Vec<Tensor> = parts.iter().map(|p| p.reshape(dims.clone())).collect();
    let refs: Vec<&Tensor> = reshaped.iter().collect();
    Tensor::concat(&refs, 0)
}

/// Leaky-ReLU on a plain tensor (slope 0.2).
pub fn lrelu(t: Tensor) -> Tensor {
    t.map(|v| if v > 0.0 { v } else { 0.2 * v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stack_shapes() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::ones([2, 3]);
        let s = stack(&[&a, &b]);
        assert_eq!(s.shape().dims(), &[2, 2, 3]);
        assert_eq!(s.at(&[1, 0, 0]), 1.0);
    }

    #[test]
    fn randn1_varies() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = randn1(&mut rng);
        let b = randn1(&mut rng);
        assert_ne!(a, b);
    }
}
