//! Criterion microbenches for the DSP substrate: FFT across the sizes
//! the pipeline actually uses (168 = one hourly week, 672 = 15-min
//! week, powers of two for the radix-2 path), real FFT round-trips,
//! masking and k-multiple expansion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spectragan_dsp::{expand_spectrum, fft, irfft, mask_quantile, rfft, Complex};
use std::hint::black_box;

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| {
            1.0 + (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin()
                + 0.2 * (t as f64 * 0.7).cos()
        })
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [128usize, 168, 256, 672, 1024] {
        let x: Vec<Complex> = signal(n).into_iter().map(Complex::real).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| fft(black_box(x)))
        });
    }
    g.finish();
}

fn bench_rfft_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("rfft_roundtrip");
    for n in [168usize, 672] {
        let x = signal(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| {
                let s = rfft(black_box(x));
                irfft(&s, x.len())
            })
        });
    }
    g.finish();
}

fn bench_mask_and_expand(c: &mut Criterion) {
    let x = signal(168);
    let spec = rfft(&x);
    c.bench_function("mask_quantile_q75_168", |b| {
        b.iter(|| mask_quantile(black_box(&spec), 0.75))
    });
    c.bench_function("expand_spectrum_k3_168", |b| {
        b.iter(|| expand_spectrum(black_box(&spec), 168, 3))
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_rfft_roundtrip,
    bench_mask_and_expand
);
criterion_main!(benches);
