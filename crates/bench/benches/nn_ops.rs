//! Criterion microbenches for the neural substrate: conv2d
//! forward/backward at model shapes, LSTM steps, and a full
//! SpectraGAN training step.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spectragan_core::{SpectraGan, SpectraGanConfig, TrainConfig};
use spectragan_nn::{Binding, Conv2d, Lstm, ParamStore};
use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};
use spectragan_tensor::{Tape, Tensor};
use std::hint::black_box;

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let x = Tensor::randn([3, 27, 16, 16], &mut rng);
    let w = Tensor::randn([12, 27, 3, 3], &mut rng);
    c.bench_function("conv2d_forward_27ch_16px", |b| {
        b.iter(|| black_box(&x).conv2d(black_box(&w), 1))
    });
    let mut store = ParamStore::new();
    let conv = Conv2d::new(&mut store, 27, 12, 3, 1, &mut rng);
    c.bench_function("conv2d_fwd_bwd_27ch_16px", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let bind = Binding::new(&tape, &store);
            let xv = tape.leaf(x.clone());
            let loss = conv.forward(&bind, &xv).mean();
            tape.backward(&loss)
        })
    });
}

fn bench_lstm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let lstm = Lstm::new(&mut store, 24, 16, &mut rng);
    let x = Tensor::randn([192, 24], &mut rng);
    c.bench_function("lstm_step_infer_192rows", |b| {
        let (h, cst) = lstm.zero_state_infer(192);
        b.iter(|| lstm.step_infer(&store, black_box(&x), &h, &cst))
    });
    c.bench_function("lstm_48steps_fwd_bwd_192rows", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let bind = Binding::new(&tape, &store);
            let xv = tape.leaf(x.clone());
            let xw = lstm.precompute_input(&bind, &xv);
            let mut state = lstm.zero_state(&bind, 192);
            for _ in 0..48 {
                state = lstm.step_projected(&bind, &xw, &state);
            }
            let loss = state.h.mean();
            tape.backward(&loss)
        })
    });
}

fn bench_train_step(c: &mut Criterion) {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.5,
    };
    let city = generate_city(
        &CityConfig {
            name: "B".into(),
            height: 40,
            width: 40,
            seed: 1,
        },
        &ds,
    );
    c.bench_function("spectragan_train_step", |b| {
        // One optimizer step (fresh model per iteration batch to keep
        // the cost measured stable); batch 3 patches at T = 168.
        let mut model = SpectraGan::new(SpectraGanConfig::default_hourly(), 0);
        let tc = TrainConfig {
            steps: 1,
            batch_patches: 3,
            lr: 2e-3,
            seed: 0,
        };
        let cities = vec![city.clone()];
        b.iter(|| model.train(black_box(&cities), &tc).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_conv2d, bench_lstm, bench_train_step
}
criterion_main!(benches);
