//! Serial-vs-parallel benches for the deterministic compute pool:
//! conv2d forward/backward at model shapes and full-city generation,
//! swept over worker counts. Because the pool guarantees bit-identical
//! results at every count, these benches measure pure scheduling —
//! the speedup table in EXPERIMENTS.md comes from this file.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spectragan_core::{SpectraGan, SpectraGanConfig};
use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};
use spectragan_tensor::{pool, Tensor};
use std::hint::black_box;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn bench_conv2d_threads(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let x = Tensor::randn([4, 27, 16, 16], &mut rng);
    let w = Tensor::randn([12, 27, 3, 3], &mut rng);
    let grad_out = Tensor::randn([4, 12, 16, 16], &mut rng);

    let mut g = c.benchmark_group("conv2d_forward");
    for &t in &THREAD_SWEEP {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            pool::set_threads(Some(t));
            b.iter(|| black_box(&x).conv2d(black_box(&w), 1));
            pool::set_threads(None);
        });
    }
    g.finish();

    let mut g = c.benchmark_group("conv2d_grad_input");
    for &t in &THREAD_SWEEP {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            pool::set_threads(Some(t));
            b.iter(|| Tensor::conv2d_grad_input(black_box(&grad_out), &w, x.shape(), 1));
            pool::set_threads(None);
        });
    }
    g.finish();

    let mut g = c.benchmark_group("conv2d_grad_weight");
    for &t in &THREAD_SWEEP {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            pool::set_threads(Some(t));
            b.iter(|| Tensor::conv2d_grad_weight(black_box(&grad_out), &x, w.shape(), 1));
            pool::set_threads(None);
        });
    }
    g.finish();
}

fn bench_generate_threads(c: &mut Criterion) {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.5,
    };
    let city = generate_city(
        &CityConfig {
            name: "P".into(),
            height: 40,
            width: 40,
            seed: 2,
        },
        &ds,
    );
    let model = SpectraGan::new(SpectraGanConfig::tiny(), 3);

    let mut g = c.benchmark_group("generate_city_40px_24steps");
    g.sample_size(10);
    for &t in &THREAD_SWEEP {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            pool::set_threads(Some(t));
            b.iter(|| model.generate(black_box(&city.context), 24, 7));
            pool::set_threads(None);
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12);
    targets = bench_conv2d_threads, bench_generate_threads
}
criterion_main!(benches);
