//! Criterion macrobenches for the generation pipeline: patch
//! extraction/sewing throughput, city generation rate, and the
//! fidelity metrics' own cost.

use criterion::{criterion_group, criterion_main, Criterion};
use spectragan_core::{SpectraGan, SpectraGanConfig};
use spectragan_geo::{PatchLayout, PatchSpec};
use spectragan_metrics::{ac_l1, fvd, m_tv, ssim_mean_maps, tstr_r2};
use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};
use spectragan_tensor::Tensor;
use std::hint::black_box;

fn bench_patches(c: &mut Criterion) {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.5,
    };
    let city = generate_city(
        &CityConfig {
            name: "P".into(),
            height: 40,
            width: 40,
            seed: 2,
        },
        &ds,
    );
    let layout = PatchLayout::new(city.grid(), PatchSpec::new(8, 16, 4));
    let ctx = city.context.standardized();
    c.bench_function("extract_all_context_patches", |b| {
        b.iter(|| {
            layout
                .positions()
                .iter()
                .map(|&pos| layout.extract_context(black_box(&ctx), pos))
                .collect::<Vec<_>>()
        })
    });
    let patches: Vec<Tensor> = layout
        .positions()
        .iter()
        .map(|&pos| layout.extract_traffic(&city.traffic, pos, 0, 168))
        .collect();
    c.bench_function("sew_city_168steps", |b| {
        b.iter(|| layout.sew(black_box(&patches)))
    });
}

fn bench_generation(c: &mut Criterion) {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.5,
    };
    let city = generate_city(
        &CityConfig {
            name: "G".into(),
            height: 33,
            width: 33,
            seed: 3,
        },
        &ds,
    );
    let model = SpectraGan::new(SpectraGanConfig::default_hourly(), 0);
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    group.bench_function("city_1week", |b| {
        b.iter(|| model.generate(black_box(&city.context), 168, 0))
    });
    group.bench_function("city_3weeks", |b| {
        b.iter(|| model.generate(black_box(&city.context), 504, 0))
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let ds = DatasetConfig {
        weeks: 2,
        steps_per_hour: 1,
        size_scale: 0.5,
    };
    let city = generate_city(
        &CityConfig {
            name: "M".into(),
            height: 33,
            width: 33,
            seed: 4,
        },
        &ds,
    );
    let a = city.traffic.slice_time(0, 168);
    let b2 = city.traffic.slice_time(168, 336);
    let mut group = c.benchmark_group("metrics");
    group.sample_size(10);
    group.bench_function("m_tv", |b| b.iter(|| m_tv(black_box(&a), black_box(&b2))));
    group.bench_function("ssim", |b| {
        b.iter(|| ssim_mean_maps(black_box(&a), black_box(&b2)))
    });
    group.bench_function("ac_l1", |b| {
        b.iter(|| ac_l1(black_box(&a), black_box(&b2), 168))
    });
    group.bench_function("tstr", |b| {
        b.iter(|| tstr_r2(black_box(&a), black_box(&b2), 1))
    });
    group.bench_function("fvd", |b| b.iter(|| fvd(black_box(&a), black_box(&b2), 1)));
    group.finish();
}

criterion_group!(benches, bench_patches, bench_generation, bench_metrics);
criterion_main!(benches);
