//! CI checker for observability artifacts: validates a Chrome trace
//! file, a Prometheus text snapshot, and a `train_log.jsonl` beyond
//! "the file exists" — shape, internal consistency, and span nesting.
//!
//! ```text
//! obs_check [--trace trace.json] [--prom metrics.prom] [--log train_log.jsonl]
//! ```
//!
//! At least one artifact must be given. Exits non-zero with a reason
//! on the first violation; prints one summary line per artifact
//! otherwise.
//!
//! Checks per artifact:
//! * trace — parses as JSON, `traceEvents` is a non-empty array, every
//!   event is a `ph:"X"` complete event with name/cat/ts/dur/pid/tid,
//!   and per-tid intervals nest (LIFO spans never partially overlap).
//! * prom — every line is a `# TYPE` header or a sample row, every
//!   `# TYPE` kind is known, histogram `_bucket` rows are cumulative
//!   (monotone) and the `+Inf` bucket equals `_count`.
//! * log — every line parses as a JSON object with a numeric `step`,
//!   and at least one record embeds a non-empty `spans` array whose
//!   entries carry `path`/`calls`/`nanos`.

use serde::Value;

fn fail(msg: String) -> ! {
    eprintln!("obs_check: FAIL: {msg}");
    std::process::exit(1)
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("read {path}: {e}")))
}

fn num(v: Option<&Value>) -> Option<f64> {
    match v {
        Some(Value::Num(n)) => Some(*n),
        _ => None,
    }
}

fn check_trace(path: &str) -> String {
    let doc: Value = serde_json::from_str(&read(path))
        .unwrap_or_else(|e| fail(format!("{path}: not valid JSON: {e}")));
    let events = match doc.get("traceEvents") {
        Some(Value::Arr(items)) => items,
        _ => fail(format!("{path}: no traceEvents array")),
    };
    if events.is_empty() {
        fail(format!("{path}: traceEvents is empty"));
    }
    // (tid, start_us, end_us) triples, for the per-thread nesting scan.
    let mut intervals: Vec<(u64, f64, f64)> = Vec::with_capacity(events.len());
    for (i, e) in events.iter().enumerate() {
        let ph = match e.get("ph") {
            Some(Value::Str(s)) => s.clone(),
            _ => fail(format!("{path}: event {i} has no ph")),
        };
        if ph != "X" {
            fail(format!("{path}: event {i} has ph {ph:?}, expected \"X\""));
        }
        match e.get("name") {
            Some(Value::Str(_)) => {}
            _ => fail(format!("{path}: event {i} has no name")),
        }
        match e.get("cat") {
            Some(Value::Str(_)) => {}
            _ => fail(format!("{path}: event {i} has no cat")),
        }
        let ts = num(e.get("ts")).unwrap_or_else(|| fail(format!("{path}: event {i} has no ts")));
        let dur =
            num(e.get("dur")).unwrap_or_else(|| fail(format!("{path}: event {i} has no dur")));
        if num(e.get("pid")).is_none() {
            fail(format!("{path}: event {i} has no pid"));
        }
        let tid =
            num(e.get("tid")).unwrap_or_else(|| fail(format!("{path}: event {i} has no tid")));
        if !(ts >= 0.0 && dur >= 0.0) {
            fail(format!("{path}: event {i} has negative ts/dur"));
        }
        intervals.push((tid as u64, ts, ts + dur));
    }
    // Per-tid LIFO nesting: sweep starts in order with a stack of open
    // ends; an event must either start after the top ends (sibling) or
    // end within it (child). The span clock pairs a shared epoch with
    // a per-span Instant, so allow a small skew.
    const SKEW_US: f64 = 100.0;
    intervals.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap());
    let mut stack: Vec<(u64, f64)> = Vec::new();
    for &(tid, start, end) in &intervals {
        while let Some(&(top_tid, top_end)) = stack.last() {
            if top_tid != tid || top_end < start + SKEW_US {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(_, top_end)) = stack.last() {
            if end > top_end + SKEW_US {
                fail(format!(
                    "{path}: tid {tid} span [{start}, {end}]us partially overlaps \
                     an enclosing span ending at {top_end}us — spans must nest"
                ));
            }
        }
        stack.push((tid, end));
    }
    format!("trace {path}: {} events, spans nest per tid", events.len())
}

fn check_prom(path: &str) -> String {
    let text = read(path);
    let mut samples = 0usize;
    let mut histograms = 0usize;
    // name → (cumulative bucket rows seen, count row).
    let mut buckets: Vec<u64> = Vec::new();
    let mut bucket_name = String::new();
    let check_hist = |name: &str, buckets: &mut Vec<u64>, count: u64| {
        if !buckets.windows(2).all(|w| w[0] <= w[1]) {
            fail(format!(
                "{path}: histogram {name} bucket rows are not cumulative: {buckets:?}"
            ));
        }
        match buckets.last() {
            Some(&inf) if inf == count => {}
            other => fail(format!(
                "{path}: histogram {name}: +Inf bucket {other:?} != _count {count}"
            )),
        }
        buckets.clear();
    };
    for (ln, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next(), it.next());
            match (name, kind) {
                (Some(_), Some("counter" | "gauge")) => {}
                (Some(n), Some("histogram")) => {
                    histograms += 1;
                    bucket_name = n.to_string();
                }
                _ => fail(format!("{path}:{}: malformed TYPE line: {line}", ln + 1)),
            }
            continue;
        }
        let (series, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => fail(format!("{path}:{}: malformed sample row: {line}", ln + 1)),
        };
        let parsed = match value {
            "NaN" | "+Inf" | "-Inf" => 0.0,
            v => v
                .parse::<f64>()
                .unwrap_or_else(|_| fail(format!("{path}:{}: bad value {v:?}", ln + 1))),
        };
        samples += 1;
        if !bucket_name.is_empty() {
            if series.starts_with(&format!("{bucket_name}_bucket{{le=\"")) {
                buckets.push(parsed as u64);
            } else if series == format!("{bucket_name}_count") {
                check_hist(&bucket_name, &mut buckets, parsed as u64);
                bucket_name.clear();
            }
        }
    }
    if !bucket_name.is_empty() {
        fail(format!(
            "{path}: histogram {bucket_name} has bucket rows but no _count"
        ));
    }
    if samples == 0 {
        fail(format!("{path}: no samples"));
    }
    format!("prom {path}: {samples} samples, {histograms} histograms consistent")
}

fn check_log(path: &str) -> String {
    let text = read(path);
    let mut records = 0usize;
    let mut with_spans = 0usize;
    for (ln, line) in text.lines().enumerate() {
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| fail(format!("{path}:{}: not valid JSON: {e}", ln + 1)));
        if num(v.get("step")).is_none() {
            fail(format!("{path}:{}: record has no numeric step", ln + 1));
        }
        records += 1;
        if let Some(Value::Arr(spans)) = v.get("spans") {
            if spans.is_empty() {
                fail(format!("{path}:{}: spans array is empty", ln + 1));
            }
            for s in spans {
                let ok = matches!(s.get("path"), Some(Value::Str(_)))
                    && num(s.get("calls")).is_some()
                    && num(s.get("nanos")).is_some();
                if !ok {
                    fail(format!("{path}:{}: malformed span stat: {s:?}", ln + 1));
                }
            }
            with_spans += 1;
        }
    }
    if records == 0 {
        fail(format!("{path}: no records"));
    }
    if with_spans == 0 {
        fail(format!("{path}: no record embeds a spans array"));
    }
    format!("log {path}: {records} records, {with_spans} with span aggregates")
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut summaries = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        let value = argv
            .get(i + 1)
            .unwrap_or_else(|| fail(format!("{} needs a path", argv[i])));
        match argv[i].as_str() {
            "--trace" => summaries.push(check_trace(value)),
            "--prom" => summaries.push(check_prom(value)),
            "--log" => summaries.push(check_log(value)),
            other => fail(format!("unknown flag {other} (use --trace/--prom/--log)")),
        }
        i += 2;
    }
    if summaries.is_empty() {
        fail("nothing to check: pass --trace, --prom and/or --log".into());
    }
    for s in &summaries {
        println!("obs_check: OK: {s}");
    }
}
