//! Perf smoke gate for CI: times the hot nn kernels, a short training
//! run, and a full-city generation sweep, prints fixed-width tables
//! (step time, buffer-pool traffic per step, generation throughput and
//! peak arena bytes) and writes the numbers to `BENCH_pr4.json` so
//! regressions show up in the job summary rather than only in local
//! Criterion runs.
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin perf_gate
//! ```
//!
//! This is a *smoke* gate: one process, a handful of seconds, absolute
//! numbers that drift with runner hardware. The useful signals are the
//! relative ones — fused vs. unfused kernel time, fresh allocations per
//! steady-state training step (which must stay ~0; the hard assertion
//! lives in `spectragan-nn`'s `alloc_steady_state` test), and peak
//! arena bytes during city generation (which must stay O(in-flight
//! window), not O(city × overlap); the hard assertion lives in
//! `spectragan-core`'s `streaming_generation` test).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use spectragan_core::{SpectraGan, SpectraGanConfig, TrainConfig};
use spectragan_nn::{Binding, Conv2d, Linear, ParamStore};
use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};
use spectragan_tensor::{arena, FusedAct, Tape, Tensor};
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct MicroRow {
    name: String,
    iters: u64,
    micros_per_iter: f64,
}

#[derive(Serialize)]
struct TrainGate {
    steps: usize,
    ms_per_step: f64,
    fresh_allocs_per_step: f64,
    fresh_kib_per_step: f64,
    reused_buffers_per_step: f64,
    pooled_mib: f64,
}

#[derive(Serialize)]
struct GenRow {
    city: String,
    t_out: usize,
    wall_s: f64,
    mpx_steps_per_s: f64,
    peak_arena_mib: f64,
}

#[derive(Serialize)]
struct Report {
    micro: Vec<MicroRow>,
    train: TrainGate,
    generate: Vec<GenRow>,
}

/// Times `f` over `iters` iterations after `warmup` unrecorded ones.
fn bench(name: &str, warmup: u64, iters: u64, mut f: impl FnMut()) -> MicroRow {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let micros = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
    MicroRow {
        name: name.to_string(),
        iters,
        micros_per_iter: micros,
    }
}

fn micro_benches() -> Vec<MicroRow> {
    let mut rng = StdRng::seed_from_u64(0);
    let mut rows = Vec::new();

    // conv2d at the model's encoder shape.
    let x = Tensor::randn([3, 27, 16, 16], &mut rng);
    let w = Tensor::randn([12, 27, 3, 3], &mut rng);
    rows.push(bench("conv2d_forward_27ch_16px", 3, 20, || {
        black_box(black_box(&x).conv2d(black_box(&w), 1));
    }));

    let mut store = ParamStore::new();
    let conv = Conv2d::new(&mut store, 27, 12, 3, 1, &mut rng);
    let tape = Tape::new();
    rows.push(bench("conv2d_bias_fwd_bwd_27ch_16px", 3, 20, || {
        tape.reset_keep_capacity();
        let bind = Binding::new(&tape, &store);
        let xv = tape.leaf(x.clone());
        let loss = conv.forward(&bind, &xv).mean();
        black_box(tape.backward(&loss));
    }));

    // Fused vs. unfused linear chain at discriminator-MLP shape.
    let mut store = ParamStore::new();
    let lin = Linear::new(&mut store, 256, 128, &mut rng);
    let xr = Tensor::randn([192, 256], &mut rng);
    let tape = Tape::new();
    rows.push(bench("linear_fused_fwd_bwd_192x256", 5, 50, || {
        tape.reset_keep_capacity();
        let bind = Binding::new(&tape, &store);
        let xv = tape.leaf(xr.clone());
        let loss = lin
            .forward_act(&bind, &xv, spectragan_nn::Activation::LeakyRelu)
            .mean();
        black_box(tape.backward(&loss));
    }));
    rows.push(bench("linear_unfused_fwd_bwd_192x256", 5, 50, || {
        tape.reset_keep_capacity();
        let bind = Binding::new(&tape, &store);
        let xv = tape.leaf(xr.clone());
        // Same math as the fused row, node by node.
        let loss = lin.forward(&bind, &xv).leaky_relu(0.2).mean();
        black_box(tape.backward(&loss));
    }));

    // Raw fused kernel (no layer indirection), to pin the op cost.
    let a = Tensor::randn([192, 256], &mut rng);
    let wm = Tensor::randn([256, 128], &mut rng);
    let b = Tensor::randn([128], &mut rng);
    let tape = Tape::new();
    rows.push(bench("matmul_bias_act_fwd_192x256x128", 5, 50, || {
        tape.reset_keep_capacity();
        let av = tape.leaf(a.clone());
        let wv = tape.leaf(wm.clone());
        let bv = tape.leaf(b.clone());
        black_box(av.matmul_bias_act(&wv, &bv, FusedAct::LeakyRelu(0.2)));
    }));
    rows
}

fn train_gate() -> TrainGate {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.36,
    };
    let city = generate_city(
        &CityConfig {
            name: "PG".into(),
            height: 17,
            width: 17,
            seed: 4,
        },
        &ds,
    );
    let mut model = SpectraGan::new(SpectraGanConfig::tiny(), 0);
    let tc = TrainConfig {
        steps: 10,
        batch_patches: 2,
        lr: 3e-3,
        seed: 7,
    };
    // Warm-up run fills the buffer pool; the measured run should then
    // be served from it.
    model
        .train(std::slice::from_ref(&city), &tc)
        .expect("warm-up training failed");
    arena::stats_take();
    let start = Instant::now();
    model
        .train(std::slice::from_ref(&city), &tc)
        .expect("measured training failed");
    let elapsed = start.elapsed();
    let stats = arena::stats_take();
    let steps = tc.steps;
    TrainGate {
        steps,
        ms_per_step: elapsed.as_secs_f64() * 1e3 / steps as f64,
        fresh_allocs_per_step: stats.fresh_allocs as f64 / steps as f64,
        fresh_kib_per_step: stats.fresh_bytes as f64 / 1024.0 / steps as f64,
        reused_buffers_per_step: stats.reused as f64 / steps as f64,
        pooled_mib: arena::pooled_bytes() as f64 / (1024.0 * 1024.0),
    }
}

/// Full-city generation sweep: untrained weights (throughput and peak
/// memory do not depend on weight values), tiny config, three city ×
/// duration shapes that cover k = 1 and long spectral expansion.
fn gen_gate() -> Vec<GenRow> {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        // Unit scale so the requested city extents are the real ones.
        size_scale: 1.0,
    };
    let model = SpectraGan::new(SpectraGanConfig::tiny(), 0);
    let mut rows = Vec::new();
    for (side, t_out) in [(64usize, 24usize), (64, 72), (128, 336)] {
        let city = generate_city(
            &CityConfig {
                name: format!("GG{side}"),
                height: side,
                width: side,
                seed: 11,
            },
            &ds,
        );
        arena::reset_high_water();
        let base = arena::live_bytes();
        let start = Instant::now();
        let map = model.generate(&city.context, t_out, 5);
        let wall = start.elapsed().as_secs_f64();
        let peak = (arena::high_water_bytes() - base).max(0) as f64;
        let px_steps = (map.len_t() * map.height() * map.width()) as f64;
        rows.push(GenRow {
            city: format!("{side}x{side}"),
            t_out,
            wall_s: wall,
            mpx_steps_per_s: px_steps / wall / 1e6,
            peak_arena_mib: peak / (1024.0 * 1024.0),
        });
    }
    rows
}

fn main() {
    let micro = micro_benches();
    let train = train_gate();
    let generate = gen_gate();

    println!("perf gate — kernel microbenches");
    println!("{:<36} {:>8} {:>14}", "bench", "iters", "us/iter");
    for r in &micro {
        println!("{:<36} {:>8} {:>14.1}", r.name, r.iters, r.micros_per_iter);
    }
    println!();
    println!("perf gate — 10-step training run (after warm-up)");
    println!(
        "{:<28} {:>12}",
        "ms/step",
        format!("{:.1}", train.ms_per_step)
    );
    println!(
        "{:<28} {:>12}",
        "fresh allocs/step",
        format!("{:.1}", train.fresh_allocs_per_step)
    );
    println!(
        "{:<28} {:>12}",
        "fresh KiB/step",
        format!("{:.1}", train.fresh_kib_per_step)
    );
    println!(
        "{:<28} {:>12}",
        "reused buffers/step",
        format!("{:.0}", train.reused_buffers_per_step)
    );
    println!(
        "{:<28} {:>12}",
        "pooled MiB",
        format!("{:.1}", train.pooled_mib)
    );
    println!();
    println!("perf gate — full-city generation (streaming sew)");
    println!(
        "{:<10} {:>7} {:>10} {:>14} {:>16}",
        "city", "t_out", "wall s", "Mpx·steps/s", "peak arena MiB"
    );
    for r in &generate {
        println!(
            "{:<10} {:>7} {:>10.2} {:>14.2} {:>16.1}",
            r.city, r.t_out, r.wall_s, r.mpx_steps_per_s, r.peak_arena_mib
        );
    }

    let report = Report {
        micro,
        train,
        generate,
    };
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write("BENCH_pr4.json", json).expect("write BENCH_pr4.json");
    eprintln!("wrote BENCH_pr4.json");
}
