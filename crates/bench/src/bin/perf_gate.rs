//! Perf smoke gate for CI: times the hot nn kernels, a short training
//! run, a full-city generation sweep under **each kernel backend**
//! (scalar reference, simd), a shard-count sweep over the multiprocess
//! gradient reducer, the observability layer's disabled-mode overhead,
//! and the weight-storage sweep (JSON vs f32/f16/int8 `SGWT`
//! containers, plus dequantizing-GEMM bandwidth), prints fixed-width
//! tables and writes the numbers to `BENCH_pr10.json` so regressions
//! show up in the job summary rather than only in local Criterion
//! runs.
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin perf_gate
//! ```
//!
//! This is a *smoke* gate: one process, a handful of seconds, absolute
//! numbers that drift with runner hardware. The useful signals are the
//! relative ones — fused vs. unfused kernel time, fresh allocations per
//! steady-state training step (which must stay ~0; the hard assertion
//! lives in `spectragan-nn`'s `alloc_steady_state` test), peak arena
//! bytes during city generation (hard assertion in `spectragan-core`'s
//! `streaming_generation` test), and the simd-over-scalar speedups.
//!
//! Three checks here *are* hard:
//!
//! * the simd backend must beat the scalar reference by at least
//!   [`MIN_SIMD_CONV_SPEEDUP`]× on the `conv2d_bias_fwd_bwd_27ch_16px`
//!   microbench — the backend split earns its complexity with that
//!   speedup, so losing it is a regression;
//! * the projected per-step cost of the disabled observability layer
//!   must stay under [`MAX_DISABLED_OBS_OVERHEAD_PCT`] of a training
//!   step (measured under the scalar backend, whose step is the
//!   baseline the budget was set against). The projection multiplies
//!   the measured cost of one disabled gate probe by a counted (not
//!   guessed) number of gate sites per step, so it cannot be fooled by
//!   wall-clock noise the way a naive off-vs-on comparison can;
//! * the projected per-step cost of the `GradReducer` seam at
//!   `--shards 1` — what the compute/reduce/apply refactor added to
//!   the single-process loop — must stay under
//!   [`MAX_SEAM_OVERHEAD_PCT`] of a scalar training step. Measured the
//!   same projection way: microbench the `LocalReducer` dispatch with
//!   a no-op driver and divide by the real step time.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use spectragan_core::{
    GradReducer, LocalReducer, Phase, SpectraGan, SpectraGanConfig, StepGrads, TrainConfig,
    TrainOptions,
};
use spectragan_nn::{Binding, Conv2d, Linear, ParamStore};
use spectragan_obs as obs;
use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};
use spectragan_tensor::{arena, set_backend, BackendKind, FusedAct, Tape, Tensor};
use std::hint::black_box;
use std::time::Instant;

/// Hard ceiling on the projected disabled-mode obs cost per training
/// step, as a percentage of the step itself.
const MAX_DISABLED_OBS_OVERHEAD_PCT: f64 = 2.0;

/// Hard floor on the simd-over-scalar speedup of the
/// `conv2d_bias_fwd_bwd_27ch_16px` microbench.
const MIN_SIMD_CONV_SPEEDUP: f64 = 2.0;

/// Hard ceiling on the projected per-step cost of the `GradReducer`
/// seam at `--shards 1`, as a percentage of a scalar training step —
/// the "lifting reduction behind a trait object must not slow down
/// single-process training" contract.
const MAX_SEAM_OVERHEAD_PCT: f64 = 3.0;

/// The microbench the hard speedup gate keys on.
const CONV_GATE_BENCH: &str = "conv2d_bias_fwd_bwd_27ch_16px";

/// Hard floor on the resident-weight reduction of serving out of an
/// f16 `SGWT` container vs. the JSON model file — the point of the
/// half-precision path.
const MIN_F16_RESIDENT_REDUCTION: f64 = 2.0;

/// Hard floor on the resident-weight reduction of serving out of an
/// int8 `SGWT` container vs. the full-f32 (JSON) footprint. The ideal
/// is 4×; per-row f32 scales and the biases kept in f32 cost a little,
/// so the floor sits at 3.5× on the paper-scale config.
const MIN_INT8_RESIDENT_REDUCTION: f64 = 3.5;

#[derive(Serialize)]
struct MicroRow {
    name: String,
    iters: u64,
    micros_per_iter: f64,
}

#[derive(Serialize)]
struct TrainGate {
    steps: usize,
    ms_per_step: f64,
    fresh_allocs_per_step: f64,
    fresh_kib_per_step: f64,
    reused_buffers_per_step: f64,
    pooled_mib: f64,
}

#[derive(Serialize)]
struct GenRow {
    city: String,
    t_out: usize,
    wall_s: f64,
    mpx_steps_per_s: f64,
    peak_arena_mib: f64,
}

/// One backend's full sweep: kernel microbenches, a short training
/// run, and the city-generation shapes.
#[derive(Serialize)]
struct BackendSweep {
    backend: String,
    micro: Vec<MicroRow>,
    train: TrainGate,
    generate: Vec<GenRow>,
}

/// Simd-over-scalar ratio for one measurement (>1 means simd is
/// faster).
#[derive(Serialize)]
struct SpeedupRow {
    name: String,
    scalar: f64,
    simd: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct ObsGate {
    ns_per_disabled_span: f64,
    ns_per_disabled_counter: f64,
    ns_per_disabled_hist: f64,
    ns_per_enabled_check: f64,
    spans_per_step: f64,
    pool_tasks_per_step: f64,
    gate_sites_per_step: f64,
    ms_per_step_off: f64,
    ms_per_step_on: f64,
    projected_overhead_pct: f64,
}

/// One shard topology's measured step time (scalar backend).
#[derive(Serialize)]
struct ShardRow {
    shards: usize,
    /// `local` = in-process `LocalReducer`; `multiprocess` = forked
    /// workers speaking gradient frames over pipes (at shards = 1 the
    /// multiprocess row covers the framing path with zero workers).
    mode: String,
    ms_per_step: f64,
}

#[derive(Serialize)]
struct ShardGate {
    sweep: Vec<ShardRow>,
    ns_per_seam_roundtrip: f64,
    seam_overhead_pct: f64,
}

/// One model-storage format's load latency and residency profile.
#[derive(Serialize)]
struct WeightsRow {
    format: String,
    file_bytes: u64,
    /// Open + validate + build the model (best of 3). For SGWT this
    /// includes every section checksum; layer payloads still load
    /// lazily.
    load_ms: f64,
    /// Weight bytes resident immediately after load (before any
    /// generation touches a layer).
    resident_after_load: usize,
    /// Weight bytes resident after generating a city — the steady
    /// serving footprint.
    resident_after_generate: usize,
    mapped: bool,
}

/// Weight-stream bandwidth of one GEMM kernel on one backend: how many
/// bytes of weight operand the kernel pulls per second.
#[derive(Serialize)]
struct MatmulBwRow {
    backend: String,
    kernel: String,
    m: usize,
    k: usize,
    n: usize,
    micros_per_iter: f64,
    /// Weight-operand bytes (f32: 4·k·n; int8: k·n + 4·k scales)
    /// divided by iteration time.
    weight_gib_per_s: f64,
}

#[derive(Serialize)]
struct WeightsGate {
    rows: Vec<WeightsRow>,
    /// JSON resident footprint over the f16 container's, post-generate.
    f16_resident_reduction: f64,
    /// JSON (full f32) resident footprint over the int8 container's,
    /// post-generate. Hard-gated at [`MIN_INT8_RESIDENT_REDUCTION`].
    int8_resident_reduction: f64,
    /// f32 matmul vs dequantizing int8 GEMM, per backend.
    matmul_bandwidth: Vec<MatmulBwRow>,
}

#[derive(Serialize)]
struct Report {
    backends: Vec<BackendSweep>,
    speedups: Vec<SpeedupRow>,
    shard: ShardGate,
    obs: ObsGate,
    weights: WeightsGate,
}

/// Times `f` over `iters` iterations after `warmup` unrecorded ones.
fn bench(name: &str, warmup: u64, iters: u64, mut f: impl FnMut()) -> MicroRow {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let micros = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
    MicroRow {
        name: name.to_string(),
        iters,
        micros_per_iter: micros,
    }
}

fn micro_benches() -> Vec<MicroRow> {
    let mut rng = StdRng::seed_from_u64(0);
    let mut rows = Vec::new();

    // conv2d at the model's encoder shape.
    let x = Tensor::randn([3, 27, 16, 16], &mut rng);
    let w = Tensor::randn([12, 27, 3, 3], &mut rng);
    rows.push(bench("conv2d_forward_27ch_16px", 3, 20, || {
        black_box(black_box(&x).conv2d(black_box(&w), 1));
    }));

    let mut store = ParamStore::new();
    let conv = Conv2d::new(&mut store, 27, 12, 3, 1, &mut rng);
    let tape = Tape::new();
    rows.push(bench(CONV_GATE_BENCH, 3, 20, || {
        tape.reset_keep_capacity();
        let bind = Binding::new(&tape, &store);
        let xv = tape.leaf(x.clone());
        let loss = conv.forward(&bind, &xv).mean();
        black_box(tape.backward(&loss));
    }));

    // Fused vs. unfused linear chain at discriminator-MLP shape.
    let mut store = ParamStore::new();
    let lin = Linear::new(&mut store, 256, 128, &mut rng);
    let xr = Tensor::randn([192, 256], &mut rng);
    let tape = Tape::new();
    rows.push(bench("linear_fused_fwd_bwd_192x256", 5, 50, || {
        tape.reset_keep_capacity();
        let bind = Binding::new(&tape, &store);
        let xv = tape.leaf(xr.clone());
        let loss = lin
            .forward_act(&bind, &xv, spectragan_nn::Activation::LeakyRelu)
            .mean();
        black_box(tape.backward(&loss));
    }));
    rows.push(bench("linear_unfused_fwd_bwd_192x256", 5, 50, || {
        tape.reset_keep_capacity();
        let bind = Binding::new(&tape, &store);
        let xv = tape.leaf(xr.clone());
        // Same math as the fused row, node by node.
        let loss = lin.forward(&bind, &xv).leaky_relu(0.2).mean();
        black_box(tape.backward(&loss));
    }));

    // Raw fused kernel (no layer indirection), to pin the op cost.
    let a = Tensor::randn([192, 256], &mut rng);
    let wm = Tensor::randn([256, 128], &mut rng);
    let b = Tensor::randn([128], &mut rng);
    let tape = Tape::new();
    rows.push(bench("matmul_bias_act_fwd_192x256x128", 5, 50, || {
        tape.reset_keep_capacity();
        let av = tape.leaf(a.clone());
        let wv = tape.leaf(wm.clone());
        let bv = tape.leaf(b.clone());
        black_box(av.matmul_bias_act(&wv, &bv, FusedAct::LeakyRelu(0.2)));
    }));
    rows
}

fn train_gate() -> TrainGate {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.36,
    };
    let city = generate_city(
        &CityConfig {
            name: "PG".into(),
            height: 17,
            width: 17,
            seed: 4,
        },
        &ds,
    );
    let mut model = SpectraGan::new(SpectraGanConfig::tiny(), 0);
    let tc = TrainConfig {
        steps: 10,
        batch_patches: 2,
        lr: 3e-3,
        seed: 7,
    };
    // Warm-up run fills the buffer pool; the measured runs should then
    // be served from it. Best-of-three keeps one scheduler hiccup from
    // skewing the cross-backend speedup table.
    model
        .train(std::slice::from_ref(&city), &tc)
        .expect("warm-up training failed");
    let mut best = f64::INFINITY;
    let mut stats = arena::ArenaStats::default();
    for _ in 0..3 {
        arena::stats_take();
        let start = Instant::now();
        model
            .train(std::slice::from_ref(&city), &tc)
            .expect("measured training failed");
        let elapsed = start.elapsed().as_secs_f64();
        stats = arena::stats_take();
        best = best.min(elapsed);
    }
    let steps = tc.steps;
    TrainGate {
        steps,
        ms_per_step: best * 1e3 / steps as f64,
        fresh_allocs_per_step: stats.fresh_allocs as f64 / steps as f64,
        fresh_kib_per_step: stats.fresh_bytes as f64 / 1024.0 / steps as f64,
        reused_buffers_per_step: stats.reused as f64 / steps as f64,
        pooled_mib: arena::pooled_bytes() as f64 / (1024.0 * 1024.0),
    }
}

/// Shard sweep and seam-overhead gate for the sharded-training seam.
///
/// The sweep wall-clocks a short scalar training run at shards ∈
/// {1, 2, 4} (plus the `--shards 1` multiprocess framing path, which
/// runs the full codec with zero forked workers). Compute is
/// *replicated* across shards — that is what buys bit-identical
/// weights at any shard count — so on a small host the sweep shows
/// process/framing overhead, not speedup; the rows exist to catch that
/// overhead growing, not to demonstrate scaling.
///
/// The hard gate is a projection, like the obs gate: what the
/// compute/reduce/apply refactor added to the single-process loop is
/// one `LocalReducer` round trip per step (two dynamic dispatches, a
/// `Phase` discriminant, one `StepGrads` move), so microbench exactly
/// that with a no-op driver and hard-assert it under
/// [`MAX_SEAM_OVERHEAD_PCT`] of the measured scalar step. A wall-clock
/// diff against a loop that no longer exists would be noise; the
/// projection cannot be.
fn shard_gate(ms_per_step_local: f64) -> ShardGate {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.36,
    };
    let city = generate_city(
        &CityConfig {
            name: "SG".into(),
            height: 17,
            width: 17,
            seed: 4,
        },
        &ds,
    );
    let tc = TrainConfig {
        steps: 10,
        batch_patches: 2,
        lr: 3e-3,
        seed: 7,
    };

    let mut sweep = vec![ShardRow {
        shards: 1,
        mode: "local".to_string(),
        ms_per_step: ms_per_step_local,
    }];
    for (shards, force) in [(1usize, true), (2, false), (4, false)] {
        let opts = TrainOptions {
            shards,
            force_multiprocess: force,
            ..TrainOptions::default()
        };
        let mut best = f64::INFINITY;
        // Best-of-2 after one warm-up: each run re-forks its workers,
        // so the warm-up only pre-fills the tensor pools.
        let mut model = SpectraGan::new(SpectraGanConfig::tiny(), 0);
        model
            .train_with(std::slice::from_ref(&city), &tc, &opts)
            .expect("shard sweep warm-up failed");
        for _ in 0..2 {
            let start = Instant::now();
            model
                .train_with(std::slice::from_ref(&city), &tc, &opts)
                .expect("shard sweep run failed");
            best = best.min(start.elapsed().as_secs_f64());
        }
        sweep.push(ShardRow {
            shards,
            mode: "multiprocess".to_string(),
            ms_per_step: best * 1e3 / tc.steps as f64,
        });
    }

    // The seam microbench: one compute + apply round trip through the
    // `LocalReducer` with a driver that does no arithmetic.
    let mut reducer = LocalReducer;
    let mut driver = |phase: Phase<'_>| match phase {
        Phase::Compute { step, lane } => {
            black_box((step, lane));
            Some(StepGrads {
                d_loss: 0.0,
                g_adv: 0.0,
                l1: 0.0,
                grad_norm_d: 0.0,
                grad_norm_g: 0.0,
                d_updates: Vec::new(),
                g_updates: Vec::new(),
            })
        }
        Phase::Apply { grads } => {
            black_box(grads.d_loss);
            None
        }
    };
    let iters = 2_000_000u64;
    for i in 0..1000u64 {
        let g = reducer.compute(i, 0, &mut driver).expect("seam compute");
        reducer.apply(i, 0, &g, &mut driver).expect("seam apply");
    }
    let t = Instant::now();
    for i in 0..iters {
        let g = reducer.compute(i, 0, &mut driver).expect("seam compute");
        reducer
            .apply(i, 0, black_box(&g), &mut driver)
            .expect("seam apply");
    }
    let ns_roundtrip = t.elapsed().as_secs_f64() * 1e9 / iters as f64;
    let seam_overhead_pct = ns_roundtrip / (ms_per_step_local * 1e6) * 100.0;
    assert!(
        seam_overhead_pct < MAX_SEAM_OVERHEAD_PCT,
        "GradReducer seam projects to {seam_overhead_pct:.4}% of a \
         {ms_per_step_local:.1} ms step ({ns_roundtrip:.1} ns/round trip) — \
         over the {MAX_SEAM_OVERHEAD_PCT}% budget"
    );

    ShardGate {
        sweep,
        ns_per_seam_roundtrip: ns_roundtrip,
        seam_overhead_pct,
    }
}

/// Overhead gate for the observability layer.
///
/// Disabled-mode cost is projected, not wall-clocked: each disabled
/// gate is one relaxed atomic load, far below the noise floor of a
/// step timing, so the gate (a) microbenches the disabled primitives
/// to get ns/probe, (b) runs an instrumented training run to *count*
/// gate sites per step (emitted spans from the drained sink, pool
/// tasks from the metrics registry), and (c) hard-asserts
/// `sites × ns/probe` under [`MAX_DISABLED_OBS_OVERHEAD_PCT`] of the
/// measured disabled-mode step. Off-vs-on step times are reported as
/// an informative cross-check only.
fn obs_gate(ms_per_step_off: f64) -> ObsGate {
    assert!(!obs::enabled(), "gate must start with obs disabled");

    // (a) Disabled primitives. `span` returns `None` after one relaxed
    // load; registry handles self-gate the same way.
    let iters = 4_000_000u64;
    let t = Instant::now();
    for _ in 0..iters {
        black_box(obs::span(black_box("gate_probe")));
    }
    let ns_span = t.elapsed().as_secs_f64() * 1e9 / iters as f64;
    let c = obs::counter("perf_gate_probe_total");
    let t = Instant::now();
    for _ in 0..iters {
        c.inc(black_box(1));
    }
    let ns_counter = t.elapsed().as_secs_f64() * 1e9 / iters as f64;
    let h = obs::histogram("perf_gate_probe_ns");
    let t = Instant::now();
    for _ in 0..iters {
        h.record(black_box(7));
    }
    let ns_hist = t.elapsed().as_secs_f64() * 1e9 / iters as f64;
    let t = Instant::now();
    for _ in 0..iters {
        black_box(obs::enabled());
    }
    let ns_check = t.elapsed().as_secs_f64() * 1e9 / iters as f64;

    // (b) Count gate sites with the layer live. The guard keeps the
    // flag on across the run; `train` itself leaves draining to us, so
    // the sink holds every span of the run afterwards.
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.36,
    };
    let city = generate_city(
        &CityConfig {
            name: "OG".into(),
            height: 17,
            width: 17,
            seed: 4,
        },
        &ds,
    );
    let tc = TrainConfig {
        steps: 10,
        batch_patches: 2,
        lr: 3e-3,
        seed: 7,
    };
    let mut model = SpectraGan::new(SpectraGanConfig::tiny(), 0);
    model
        .train(std::slice::from_ref(&city), &tc)
        .expect("obs gate warm-up failed");

    let guard = obs::ObsGuard::new(true);
    obs::drain_events();
    obs::reset_metrics();
    let start = Instant::now();
    model
        .train(std::slice::from_ref(&city), &tc)
        .expect("obs gate instrumented run failed");
    let ms_per_step_on = start.elapsed().as_secs_f64() * 1e3 / tc.steps as f64;
    let events = obs::drain_events();
    let pool_tasks = obs::counter("spectragan_pool_tasks_total").get();
    drop(guard);

    let steps = tc.steps as f64;
    let spans_per_step = events.len() as f64 / steps;
    let pool_tasks_per_step = pool_tasks as f64 / steps;

    // (c) Project. Disabled sites per step: every span open is one
    // probe; every pool task passes up to three timer gates (claim /
    // task / fold-wait); a fixed handful covers optimizer, IO and
    // checkpoint gates. Cost each at the *most expensive* disabled
    // probe measured, for a conservative bound.
    let gate_sites_per_step = spans_per_step + 3.0 * pool_tasks_per_step + 16.0;
    let worst_ns = ns_span.max(ns_counter).max(ns_hist).max(ns_check);
    let projected_overhead_pct = gate_sites_per_step * worst_ns / (ms_per_step_off * 1e6) * 100.0;
    assert!(
        projected_overhead_pct < MAX_DISABLED_OBS_OVERHEAD_PCT,
        "disabled obs layer projects to {projected_overhead_pct:.3}% of a \
         {ms_per_step_off:.1} ms step ({gate_sites_per_step:.0} sites × \
         {worst_ns:.1} ns) — over the {MAX_DISABLED_OBS_OVERHEAD_PCT}% budget"
    );

    ObsGate {
        ns_per_disabled_span: ns_span,
        ns_per_disabled_counter: ns_counter,
        ns_per_disabled_hist: ns_hist,
        ns_per_enabled_check: ns_check,
        spans_per_step,
        pool_tasks_per_step,
        gate_sites_per_step,
        ms_per_step_off,
        ms_per_step_on,
        projected_overhead_pct,
    }
}

/// Full-city generation sweep: untrained weights (throughput and peak
/// memory do not depend on weight values), tiny config, three city ×
/// duration shapes that cover k = 1 and long spectral expansion.
fn gen_gate() -> Vec<GenRow> {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        // Unit scale so the requested city extents are the real ones.
        size_scale: 1.0,
    };
    let model = SpectraGan::new(SpectraGanConfig::tiny(), 0);
    let mut rows = Vec::new();
    for (side, t_out) in [(64usize, 24usize), (64, 72), (128, 336)] {
        let city = generate_city(
            &CityConfig {
                name: format!("GG{side}"),
                height: side,
                width: side,
                seed: 11,
            },
            &ds,
        );
        let (map, report) = model.generate_batched_report(&city.context, t_out, 5, true, 16);
        let px_steps = (map.len_t() * map.height() * map.width()) as f64;
        rows.push(GenRow {
            city: format!("{side}x{side}"),
            t_out,
            wall_s: report.wall_s,
            mpx_steps_per_s: px_steps / report.wall_s / 1e6,
            peak_arena_mib: report.peak_arena_bytes as f64 / (1024.0 * 1024.0),
        });
    }
    rows
}

/// Weight-storage sweep: load latency and resident weight bytes for
/// the JSON model file vs. f32, f16 and int8 `SGWT` containers,
/// measured around a real generation so lazy sections get their first
/// touch. Runs the paper-scale `default_hourly` config — the residency
/// floors are statements about real models, where matrices dominate
/// the f32 biases that int8 containers keep.
///
/// Two hard gates: the f16 container's post-generation resident weight
/// footprint must be at most 1/[`MIN_F16_RESIDENT_REDUCTION`] of the
/// JSON path's, and the int8 container's at most
/// 1/[`MIN_INT8_RESIDENT_REDUCTION`] — the memory contracts that pay
/// for the reduced-precision machinery.
fn weights_gate() -> WeightsGate {
    use spectragan_core::weights::{self, Precision, WeightStore};

    let dir = std::env::temp_dir().join(format!("sg_perf_weights_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create weights gate dir");
    let model = SpectraGan::new(SpectraGanConfig::default_hourly(), 0);
    let json_path = dir.join("model.json");
    std::fs::write(&json_path, model.to_model_json()).expect("write model.json");
    let f32_path = dir.join("model_f32.sgwt");
    weights::save_weights(&model, &f32_path, Precision::F32).expect("write f32 sgwt");
    let f16_path = dir.join("model_f16.sgwt");
    weights::save_weights(&model, &f16_path, Precision::F16).expect("write f16 sgwt");
    let int8_path = dir.join("model_int8.sgwt");
    weights::save_weights(&model, &int8_path, Precision::Int8).expect("write int8 sgwt");

    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 1.0,
    };
    let city = generate_city(
        &CityConfig {
            name: "WG".into(),
            height: 33,
            width: 33,
            seed: 11,
        },
        &ds,
    );

    let mut rows = Vec::new();
    let mut measure =
        |format: &str, path: &std::path::Path, load: &dyn Fn() -> (SpectraGan, bool)| {
            let mut best = f64::INFINITY;
            let mut loaded = None;
            for _ in 0..3 {
                let start = Instant::now();
                let out = load();
                best = best.min(start.elapsed().as_secs_f64() * 1e3);
                loaded = Some(out);
            }
            let (m, mapped) = loaded.expect("at least one load");
            let resident_after_load = m.store().resident_weight_bytes();
            black_box(m.generate_batched_report(&city.context, 24, 5, true, 16));
            rows.push(WeightsRow {
                format: format.to_string(),
                file_bytes: std::fs::metadata(path).expect("stat model file").len(),
                load_ms: best,
                resident_after_load,
                resident_after_generate: m.store().resident_weight_bytes(),
                mapped,
            });
        };
    measure("json", &json_path, &|| {
        let json = std::fs::read_to_string(&json_path).expect("read model.json");
        (
            SpectraGan::from_model_json(&json).expect("parse model.json"),
            false,
        )
    });
    for (format, path, _precision) in [
        ("sgwt-f32", &f32_path, Precision::F32),
        ("sgwt-f16", &f16_path, Precision::F16),
        ("sgwt-int8", &int8_path, Precision::Int8),
    ] {
        measure(format, path, &|| {
            let store = WeightStore::open(path).expect("open sgwt");
            store.validate_all().expect("validate sgwt");
            let mapped = store.is_mapped();
            (store.load_model().expect("load sgwt model"), mapped)
        });
    }
    let _ = std::fs::remove_dir_all(&dir);

    let json_resident = rows[0].resident_after_generate as f64;
    let f16_resident = rows[2].resident_after_generate as f64;
    let f16_resident_reduction = json_resident / f16_resident;
    assert!(
        f16_resident_reduction >= MIN_F16_RESIDENT_REDUCTION,
        "f16 container keeps {f16_resident:.0} weight bytes resident vs {json_resident:.0} \
         for JSON — only {f16_resident_reduction:.2}x under the \
         {MIN_F16_RESIDENT_REDUCTION}x floor"
    );
    let int8_resident = rows[3].resident_after_generate as f64;
    let int8_resident_reduction = json_resident / int8_resident;
    assert!(
        int8_resident_reduction >= MIN_INT8_RESIDENT_REDUCTION,
        "int8 container keeps {int8_resident:.0} weight bytes resident vs {json_resident:.0} \
         for JSON — only {int8_resident_reduction:.2}x under the \
         {MIN_INT8_RESIDENT_REDUCTION}x floor"
    );

    WeightsGate {
        rows,
        f16_resident_reduction,
        int8_resident_reduction,
        matmul_bandwidth: matmul_bandwidth(),
    }
}

/// Weight-stream bandwidth of the f32 matmul vs the dequantizing int8
/// GEMM, per backend: the int8 kernel reads a 4×-narrower weight
/// operand, so at equal arithmetic throughput it serves the same GEMM
/// from a quarter of the memory traffic. A serving-shaped problem —
/// a modest activation batch against a wide weight matrix — keeps the
/// weight stream the dominant operand.
fn matmul_bandwidth() -> Vec<MatmulBwRow> {
    use spectragan_tensor::backend::scalar::ScalarBackend;
    use spectragan_tensor::backend::simd::SimdBackend;
    use spectragan_tensor::backend::Backend;
    use spectragan_tensor::q8;

    let (m, k, n) = (64usize, 256usize, 256usize);
    let mut rng = StdRng::seed_from_u64(9);
    let a = Tensor::randn([m, k], &mut rng);
    let b = Tensor::randn([k, n], &mut rng);
    let q = q8::quantize_tensor(b.data(), b.shape());

    let mut rows = Vec::new();
    let backends: [(&str, &dyn Backend); 2] = [("scalar", &ScalarBackend), ("simd", &SimdBackend)];
    for (name, backend) in backends {
        let f32_row = bench(&format!("{name}_matmul_f32"), 3, 30, || {
            black_box(backend.matmul(&a, &b));
        });
        let q8_row = bench(&format!("{name}_matmul_q8"), 3, 30, || {
            black_box(backend.matmul_q8(&a, &q.data, &q.scales, n));
        });
        let gibs = |bytes: usize, micros: f64| bytes as f64 / (micros * 1e-6) / (1u64 << 30) as f64;
        rows.push(MatmulBwRow {
            backend: name.to_string(),
            kernel: "matmul_f32".into(),
            m,
            k,
            n,
            micros_per_iter: f32_row.micros_per_iter,
            weight_gib_per_s: gibs(4 * k * n, f32_row.micros_per_iter),
        });
        rows.push(MatmulBwRow {
            backend: name.to_string(),
            kernel: "matmul_q8".into(),
            m,
            k,
            n,
            micros_per_iter: q8_row.micros_per_iter,
            weight_gib_per_s: gibs(k * n + 4 * k, q8_row.micros_per_iter),
        });
    }
    rows
}

/// Runs the full measurement sweep under one pinned backend.
fn backend_sweep(kind: BackendKind) -> BackendSweep {
    set_backend(Some(kind));
    let sweep = BackendSweep {
        backend: kind.name().to_string(),
        micro: micro_benches(),
        train: train_gate(),
        generate: gen_gate(),
    };
    set_backend(None);
    sweep
}

/// Pairs up scalar vs. simd measurements into speedup rows. All rows
/// are time-per-unit (µs/iter, ms/step, wall s), so speedup is always
/// `scalar / simd`.
fn speedups(scalar: &BackendSweep, simd: &BackendSweep) -> Vec<SpeedupRow> {
    let mut rows = Vec::new();
    for (s, v) in scalar.micro.iter().zip(&simd.micro) {
        assert_eq!(s.name, v.name, "micro bench lists diverged");
        rows.push(SpeedupRow {
            name: s.name.clone(),
            scalar: s.micros_per_iter,
            simd: v.micros_per_iter,
            speedup: s.micros_per_iter / v.micros_per_iter,
        });
    }
    rows.push(SpeedupRow {
        name: "train.ms_per_step".to_string(),
        scalar: scalar.train.ms_per_step,
        simd: simd.train.ms_per_step,
        speedup: scalar.train.ms_per_step / simd.train.ms_per_step,
    });
    for (s, v) in scalar.generate.iter().zip(&simd.generate) {
        assert_eq!(s.city, v.city, "generation sweep lists diverged");
        rows.push(SpeedupRow {
            name: format!("generate.{}x{}", s.city, s.t_out),
            scalar: s.wall_s,
            simd: v.wall_s,
            speedup: s.wall_s / v.wall_s,
        });
    }
    rows
}

fn print_sweep(sweep: &BackendSweep) {
    println!("perf gate [{}] — kernel microbenches", sweep.backend);
    println!("{:<36} {:>8} {:>14}", "bench", "iters", "us/iter");
    for r in &sweep.micro {
        println!("{:<36} {:>8} {:>14.1}", r.name, r.iters, r.micros_per_iter);
    }
    println!();
    println!(
        "perf gate [{}] — 10-step training run (after warm-up)",
        sweep.backend
    );
    let t = &sweep.train;
    println!("{:<28} {:>12}", "ms/step", format!("{:.1}", t.ms_per_step));
    println!(
        "{:<28} {:>12}",
        "fresh allocs/step",
        format!("{:.1}", t.fresh_allocs_per_step)
    );
    println!(
        "{:<28} {:>12}",
        "fresh KiB/step",
        format!("{:.1}", t.fresh_kib_per_step)
    );
    println!(
        "{:<28} {:>12}",
        "reused buffers/step",
        format!("{:.0}", t.reused_buffers_per_step)
    );
    println!(
        "{:<28} {:>12}",
        "pooled MiB",
        format!("{:.1}", t.pooled_mib)
    );
    println!();
    println!(
        "perf gate [{}] — full-city generation (streaming sew)",
        sweep.backend
    );
    println!(
        "{:<10} {:>7} {:>10} {:>14} {:>16}",
        "city", "t_out", "wall s", "Mpx·steps/s", "peak arena MiB"
    );
    for r in &sweep.generate {
        println!(
            "{:<10} {:>7} {:>10.2} {:>14.2} {:>16.1}",
            r.city, r.t_out, r.wall_s, r.mpx_steps_per_s, r.peak_arena_mib
        );
    }
    println!();
}

fn main() {
    let scalar = backend_sweep(BackendKind::Scalar);
    let simd = backend_sweep(BackendKind::Simd);

    // The obs and seam budgets are defined against the scalar
    // reference step (the ratio inflates mechanically as kernels get
    // faster, which would punish the simd backend for being fast, not
    // the gated layer for being slow). Pin the backend so the
    // instrumented runs match the step the budgets divide by. The
    // shard sweep forks workers, which is safe here: the pool's
    // threads are scoped per call, so nothing else is running at fork
    // time.
    set_backend(Some(BackendKind::Scalar));
    let shard = shard_gate(scalar.train.ms_per_step);
    let obs = obs_gate(scalar.train.ms_per_step);
    let weights = weights_gate();
    set_backend(None);

    print_sweep(&scalar);
    print_sweep(&simd);

    let speedups = speedups(&scalar, &simd);
    println!("perf gate — simd over scalar");
    println!(
        "{:<36} {:>12} {:>12} {:>9}",
        "measurement", "scalar", "simd", "speedup"
    );
    for r in &speedups {
        println!(
            "{:<36} {:>12.2} {:>12.2} {:>8.2}x",
            r.name, r.scalar, r.simd, r.speedup
        );
    }
    let conv = speedups
        .iter()
        .find(|r| r.name == CONV_GATE_BENCH)
        .expect("conv gate bench missing from sweep");
    assert!(
        conv.speedup >= MIN_SIMD_CONV_SPEEDUP,
        "simd {CONV_GATE_BENCH} is only {:.2}x over scalar \
         ({:.1} vs {:.1} us/iter) — under the {MIN_SIMD_CONV_SPEEDUP}x floor",
        conv.speedup,
        conv.simd,
        conv.scalar
    );

    println!();
    println!("perf gate — shard sweep (scalar, replicated compute)");
    println!("{:<8} {:<14} {:>12}", "shards", "mode", "ms/step");
    for r in &shard.sweep {
        println!("{:<8} {:<14} {:>12.1}", r.shards, r.mode, r.ms_per_step);
    }
    println!(
        "{:<28} {:>12}",
        "seam ns/round trip",
        format!("{:.1}", shard.ns_per_seam_roundtrip)
    );
    println!(
        "{:<28} {:>12}",
        "seam overhead %",
        format!("{:.5}", shard.seam_overhead_pct)
    );

    println!();
    println!("perf gate — observability overhead");
    println!(
        "{:<28} {:>12}",
        "disabled span ns/probe",
        format!("{:.2}", obs.ns_per_disabled_span)
    );
    println!(
        "{:<28} {:>12}",
        "gate sites/step",
        format!("{:.0}", obs.gate_sites_per_step)
    );
    println!(
        "{:<28} {:>12}",
        "ms/step off | on",
        format!("{:.1} | {:.1}", obs.ms_per_step_off, obs.ms_per_step_on)
    );
    println!(
        "{:<28} {:>12}",
        "projected overhead %",
        format!("{:.4}", obs.projected_overhead_pct)
    );

    println!();
    println!("perf gate — weight storage (load + generate, default_hourly model)");
    println!(
        "{:<10} {:>10} {:>10} {:>14} {:>14} {:>7}",
        "format", "file B", "load ms", "resident@load", "resident@gen", "mapped"
    );
    for r in &weights.rows {
        println!(
            "{:<10} {:>10} {:>10.2} {:>14} {:>14} {:>7}",
            r.format,
            r.file_bytes,
            r.load_ms,
            r.resident_after_load,
            r.resident_after_generate,
            r.mapped
        );
    }
    println!(
        "{:<28} {:>12}",
        "f16 resident reduction",
        format!("{:.2}x", weights.f16_resident_reduction)
    );
    println!(
        "{:<28} {:>12}",
        "int8 resident reduction",
        format!("{:.2}x", weights.int8_resident_reduction)
    );

    println!();
    println!("perf gate — weight-stream bandwidth (64x256 @ 256x256 GEMM)");
    println!(
        "{:<10} {:<12} {:>12} {:>16}",
        "backend", "kernel", "us/iter", "weight GiB/s"
    );
    for r in &weights.matmul_bandwidth {
        println!(
            "{:<10} {:<12} {:>12.2} {:>16.2}",
            r.backend, r.kernel, r.micros_per_iter, r.weight_gib_per_s
        );
    }

    let report = Report {
        backends: vec![scalar, simd],
        speedups,
        shard,
        obs,
        weights,
    };
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write("BENCH_pr10.json", json).expect("write BENCH_pr10.json");
    eprintln!("wrote BENCH_pr10.json");
}
