//! Reproduces the **Figure 7 / Figure 8** artefacts: for one
//! leave-one-out fold, the time-averaged traffic maps of every model
//! (Fig. 7) and the 3-week mean city-wide series (Fig. 8, CITY B by
//! default).
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin repro_country1 -- [--fold N] [--steps N]
//! ```

use spectragan_bench::data::country1_with_reference;
use spectragan_bench::report::write_csv;
use spectragan_bench::{parse_scale, train_and_generate, ModelKind, OutDir};
use spectragan_metrics::pearson;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let fold = args
        .iter()
        .position(|a| a == "--fold")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1); // CITY B, as in Fig. 8
    let (cities, _) = country1_with_reference(&scale);
    let name = cities[fold].name.replace(' ', "_");
    let out = OutDir::create();

    let mut series_cols: Vec<(String, Vec<f64>)> = Vec::new();
    let mut real_series: Option<Vec<f64>> = None;
    for kind in ModelKind::headline() {
        eprintln!("training {}…", kind.name());
        let (real, synth) = train_and_generate(kind, &cities, fold, &scale);
        if real_series.is_none() {
            real_series = Some(real.city_series());
            let mm = real.mean_map();
            let w = real.width();
            write_csv(
                &out.path(&format!("fig7_map_Data_{name}.csv")),
                "y,x,traffic",
                (0..mm.len()).map(|i| format!("{},{},{:.6}", i / w, i % w, mm[i])),
            );
        }
        let mm = synth.mean_map();
        let w = synth.width();
        let tag = kind.name().replace(['{', '}', '+'], "");
        write_csv(
            &out.path(&format!("fig7_map_{tag}_{name}.csv")),
            "y,x,traffic",
            (0..mm.len()).map(|i| format!("{},{},{:.6}", i / w, i % w, mm[i])),
        );
        let real_mm = real.mean_map();
        println!(
            "{:<14} mean-map spatial PCC vs real: {:.3}",
            kind.name(),
            pearson(&mm, &real_mm)
        );
        series_cols.push((kind.name().to_string(), synth.city_series()));
    }

    let real_series = real_series.expect("at least one model ran");
    let header = {
        let mut h = String::from("hour,real");
        for (n, _) in &series_cols {
            h.push(',');
            h.push_str(&n.replace([' ', '{', '}', '+'], ""));
        }
        h
    };
    write_csv(
        &out.path(&format!("fig8_series_{name}.csv")),
        &header,
        (0..real_series.len()).map(|t| {
            let mut row = format!("{t},{:.6}", real_series[t]);
            for (_, s) in &series_cols {
                row.push_str(&format!(",{:.6}", s[t]));
            }
            row
        }),
    );
    println!("wrote Fig. 7 maps and Fig. 8 series for {name}");
}
