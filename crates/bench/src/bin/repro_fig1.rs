//! Reproduces the **Figure 1** artefacts for CITY A: (a) time-averaged
//! traffic map, (b) census context, (c) weekly city/max/median pixel
//! series, (d) frequency-domain representation, (e) 5-component
//! reconstruction, (f) residual — plus the **Figure 2** traffic-flow
//! check (hourly location of the peak pixel).
//!
//! Everything is written as CSV under `repro_out/` for plotting.
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin repro_fig1
//! ```

use spectragan_bench::report::write_csv;
use spectragan_bench::{parse_scale, OutDir};
use spectragan_dsp::{magnitude, rfft};
use spectragan_geo::context::CENSUS;
use spectragan_metrics::pearson;
use spectragan_synthdata::{country1_configs, generate_city};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = parse_scale(&args);
    scale.weeks = 1;
    let ds = scale.dataset();
    let city = generate_city(&country1_configs()[0], &ds);
    let out = OutDir::create();
    let (h, w, t) = (
        city.traffic.height(),
        city.traffic.width(),
        city.traffic.len_t(),
    );

    // (a) time-averaged map + (b) census map.
    let mean_map = city.traffic.mean_map();
    write_csv(
        &out.path("fig1a_mean_traffic_map.csv"),
        "y,x,traffic",
        (0..h * w).map(|i| format!("{},{},{:.6}", i / w, i % w, mean_map[i])),
    );
    write_csv(
        &out.path("fig1b_census_map.csv"),
        "y,x,census",
        (0..h * w).map(|i| {
            format!(
                "{},{},{:.6}",
                i / w,
                i % w,
                city.context.at(CENSUS, i / w, i % w)
            )
        }),
    );

    // (c) weekly series: city mean, max pixel, median pixel.
    let city_series = city.traffic.city_series();
    let mut totals: Vec<(usize, f64)> = (0..h * w)
        .map(|i| {
            (
                i,
                (0..t)
                    .map(|ti| city.traffic.at(ti, i / w, i % w) as f64)
                    .sum(),
            )
        })
        .collect();
    totals.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    let median_px = totals[totals.len() / 2].0;
    let max_px = totals.last().expect("non-empty").0;
    let max_series = city.traffic.pixel_series(max_px / w, max_px % w);
    let med_series = city.traffic.pixel_series(median_px / w, median_px % w);
    write_csv(
        &out.path("fig1c_weekly_series.csv"),
        "hour,city_mean,max_pixel,median_pixel",
        (0..t).map(|ti| {
            format!(
                "{},{:.6},{:.6},{:.6}",
                ti, city_series[ti], max_series[ti], med_series[ti]
            )
        }),
    );

    // (d) spectra: city-average magnitude spectrum plus two pixels.
    let spec_city = magnitude(&rfft(&city_series));
    let spec_max = magnitude(&rfft(&max_series));
    write_csv(
        &out.path("fig1d_spectrum.csv"),
        "bin,period_hours,city_avg,max_pixel",
        (0..spec_city.len()).map(|k| {
            let period = if k == 0 {
                f64::INFINITY
            } else {
                t as f64 / k as f64
            };
            format!("{k},{period:.2},{:.6},{:.6}", spec_city[k], spec_max[k])
        }),
    );
    // The significant components (Fig. 1d labels): weekly, daily and
    // intra-day harmonics dominate.
    let mut order: Vec<usize> = (1..spec_city.len()).collect();
    order.sort_by(|&a, &b| spec_city[b].partial_cmp(&spec_city[a]).expect("finite"));
    println!("top spectral components (excluding DC):");
    for &k in order.iter().take(5) {
        println!(
            "  bin {k}: period {:.1} h, magnitude {:.3}",
            t as f64 / k as f64,
            spec_city[k]
        );
    }

    // (e)+(f) reconstruction from 5 components and residual.
    let recon = spectragan_dsp::reconstruct_top_k(&city_series, 5);
    write_csv(
        &out.path("fig1ef_reconstruction.csv"),
        "hour,data,reconstruction,residual",
        (0..t).map(|ti| {
            format!(
                "{},{:.6},{:.6},{:.6}",
                ti,
                city_series[ti],
                recon[ti],
                city_series[ti] - recon[ti]
            )
        }),
    );
    let energy: f64 = city_series.iter().map(|v| v * v).sum();
    let err: f64 = city_series
        .iter()
        .zip(&recon)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    println!(
        "5-component reconstruction captures {:.2}% of energy",
        100.0 * (1.0 - err / energy)
    );

    // Census–traffic correlation headline (ties Fig. 1a to 1b).
    let census: Vec<f64> = city
        .context
        .channel(CENSUS)
        .iter()
        .map(|&v| v as f64)
        .collect();
    println!("census↔traffic PCC: {:.3}", pearson(&census, &mean_map));

    // Fig. 2: hourly argmax location (the moving peak).
    write_csv(
        &out.path("fig2_peak_location.csv"),
        "hour,y,x",
        (0..24.min(t)).map(|ti| {
            let frame = city.traffic.frame(ti);
            let (mut bi, mut bv) = (0usize, f32::MIN);
            for (i, &v) in frame.iter().enumerate() {
                if v > bv {
                    bv = v;
                    bi = i;
                }
            }
            format!("{ti},{},{}", bi / w, bi % w)
        }),
    );
    println!("done; artefacts in repro_out/fig1*.csv and fig2_peak_location.csv");
}
