//! Reproduces **Figure 12** (Appendix A): the spatiotemporal CDF of
//! traffic per grid cell across all time intervals, for every city of
//! both countries.
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin repro_fig12
//! ```

use spectragan_bench::report::write_csv;
use spectragan_bench::{parse_scale, OutDir};
use spectragan_synthdata::{country1, country2};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = parse_scale(&args);
    scale.weeks = 1;
    let ds = scale.dataset();
    let out = OutDir::create();
    let mut cities = country1(&ds);
    cities.extend(country2(&ds));

    let quantile_grid: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
    let header = {
        let mut h = String::from("quantile");
        for c in &cities {
            h.push(',');
            h.push_str(&c.name.replace(' ', "_"));
        }
        h
    };
    let mut sorted: Vec<Vec<f64>> = Vec::new();
    for city in &cities {
        let mut v: Vec<f64> = city.traffic.data().iter().map(|&x| x as f64).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite traffic"));
        sorted.push(v);
    }
    write_csv(
        &out.path("fig12_cdf.csv"),
        &header,
        quantile_grid.iter().map(|&q| {
            let mut row = format!("{q:.2}");
            for v in &sorted {
                let idx = ((q * (v.len() - 1) as f64).round() as usize).min(v.len() - 1);
                row.push_str(&format!(",{:.6}", v[idx]));
            }
            row
        }),
    );
    // Headline: cities are heterogeneous (Fig. 12's point) — medians
    // span a wide range.
    println!("per-city median traffic:");
    for (city, v) in cities.iter().zip(&sorted) {
        println!("  {:<8} {:.5}", city.name, v[v.len() / 2]);
    }
}
