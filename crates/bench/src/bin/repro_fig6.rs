//! Reproduces the **Figure 6** artefacts: qualitative FDAS failure —
//! the generated weekly series for CITY A (vs Fig. 1c) and the
//! time-averaged maps for CITY C, CITY D and CITY H (vs Fig. 7).
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin repro_fig6
//! ```

use spectragan_baselines::Fdas;
use spectragan_bench::report::write_csv;
use spectragan_bench::{parse_scale, OutDir};
use spectragan_dsp::autocorrelation;
use spectragan_synthdata::country1;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let ds = scale.dataset();
    let cities = country1(&ds);
    let out = OutDir::create();

    // Leave CITY A out; fit on the rest (first week only).
    let train: Vec<_> = cities[1..]
        .iter()
        .map(|c| spectragan_geo::City {
            name: c.name.clone(),
            traffic: c.traffic.slice_time(0, scale.train_len()),
            context: c.context.clone(),
        })
        .collect();
    let fdas = Fdas::fit(&train, scale.steps_per_hour);

    // (a) weekly series for CITY A.
    let a = &cities[0];
    let synth = fdas.generate(&a.context, scale.train_len(), 1);
    let series = synth.city_series();
    write_csv(
        &out.path("fig6a_fdas_series_cityA.csv"),
        "hour,fdas_city_mean,real_city_mean",
        (0..series.len())
            .map(|t| format!("{t},{:.6},{:.6}", series[t], a.traffic.city_series()[t])),
    );
    // Headline numbers: FDAS destroys the diurnal autocorrelation.
    // City-wide averaging partially restores the hourly means, so the
    // per-pixel numbers are the telling ones (the paper's Fig. 6a plots
    // individual pixels for the same reason).
    let real_ac24 = autocorrelation(&a.traffic.city_series(), 25)[24];
    let fdas_ac24 = autocorrelation(&series, 25)[24];
    println!("lag-24 autocorrelation (city mean): real {real_ac24:.3}, FDAS {fdas_ac24:.3}");
    let (by, bx) = {
        let mm = a.traffic.mean_map();
        let w = a.traffic.width();
        let (mut bi, mut bv) = (0usize, f64::MIN);
        for (i, &v) in mm.iter().enumerate() {
            if v > bv {
                bv = v;
                bi = i;
            }
        }
        (bi / w, bi % w)
    };
    let real_px = autocorrelation(&a.traffic.pixel_series(by, bx), 25)[24];
    let fdas_px = autocorrelation(&synth.pixel_series(by, bx), 25)[24];
    println!("lag-24 autocorrelation (busiest pixel): real {real_px:.3}, FDAS {fdas_px:.3}");

    // (b)(c)(d) time-averaged maps for CITY C, D, H.
    for name in ["CITY C", "CITY D", "CITY H"] {
        let city = cities.iter().find(|c| c.name == name).expect("city exists");
        let synth = fdas.generate(&city.context, scale.train_len(), 2);
        let mm = synth.mean_map();
        let real_mm = city.traffic.mean_map();
        let w = city.traffic.width();
        let tag = name.replace(' ', "_");
        write_csv(
            &out.path(&format!("fig6_fdas_map_{tag}.csv")),
            "y,x,fdas,real",
            (0..mm.len()).map(|i| format!("{},{},{:.6},{:.6}", i / w, i % w, mm[i], real_mm[i])),
        );
        let pcc = spectragan_metrics::pearson(&mm, &real_mm);
        println!("{name}: FDAS mean-map spatial PCC with real = {pcc:.3} (≈0 expected)");
    }
}
