//! Reproduces **Figure 9**: per-pixel peak-hour distributions for
//! CITY B — real data vs DoppelGANger vs SpectraGAN. DoppelGANger's
//! per-pixel independence concentrates the peaks; SpectraGAN tracks
//! the real spread.
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin repro_fig9 -- [--steps N]
//! ```

use spectragan_bench::data::country1_with_reference;
use spectragan_bench::report::write_csv;
use spectragan_bench::{parse_scale, train_and_generate, OutDir};
use spectragan_metrics::peak_hour_histogram;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = parse_scale(&args);
    scale.max_folds = 2;
    let (cities, _) = country1_with_reference(&scale);
    let fold = 1; // CITY B
    let out = OutDir::create();

    eprintln!("training SpectraGAN (fold CITY B)…");
    let (real, synth_sg) = train_and_generate(
        spectragan_bench::ModelKind::SpectraGan,
        &cities,
        fold,
        &scale,
    );
    eprintln!("training DoppelGANger (fold CITY B)…");
    let (_, synth_dg) = train_and_generate(
        spectragan_bench::ModelKind::DoppelGanger,
        &cities,
        fold,
        &scale,
    );

    let h_real = peak_hour_histogram(&real, scale.steps_per_hour);
    let h_sg = peak_hour_histogram(&synth_sg, scale.steps_per_hour);
    let h_dg = peak_hour_histogram(&synth_dg, scale.steps_per_hour);

    println!("\nFig. 9: peak-hour distribution for CITY B (fraction of pixels)");
    println!(
        "{:<6} {:>8} {:>12} {:>12}",
        "hour", "real", "SpectraGAN", "DoppelGANger"
    );
    for hr in 0..24 {
        println!(
            "{:<6} {:>8.3} {:>12.3} {:>12.3}",
            hr, h_real[hr], h_sg[hr], h_dg[hr]
        );
    }
    write_csv(
        &out.path("fig9_peak_hours.csv"),
        "hour,real,spectragan,doppelganger",
        (0..24).map(|hr| format!("{hr},{:.5},{:.5},{:.5}", h_real[hr], h_sg[hr], h_dg[hr])),
    );

    // L1 distances to the real distribution — SpectraGAN should be
    // closer (the paper's qualitative claim).
    let l1 =
        |a: &[f64; 24], b: &[f64; 24]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
    println!(
        "\nL1 to real peak distribution: SpectraGAN {:.3}, DoppelGANger {:.3}",
        l1(&h_sg, &h_real),
        l1(&h_dg, &h_real)
    );
}
