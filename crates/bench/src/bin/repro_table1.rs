//! Reproduces **Table 1**: mean and standard deviation, across all 13
//! cities, of the Pearson correlation between each context attribute
//! and the time-averaged traffic.
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin repro_table1
//! ```

use spectragan_bench::{parse_scale, write_json, OutDir};
use spectragan_geo::context::ATTRIBUTES;
use spectragan_geo::City;
use spectragan_metrics::pearson;
use spectragan_synthdata::{country1, country2};

fn city_pccs(city: &City) -> Vec<f64> {
    let mean_map = city.traffic.mean_map();
    (0..city.context.channels())
        .map(|k| {
            let plane: Vec<f64> = city.context.channel(k).iter().map(|&v| v as f64).collect();
            pearson(&plane, &mean_map)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = parse_scale(&args);
    scale.weeks = 1; // one week of traffic is enough for the PCCs
    let ds = scale.dataset();
    let mut cities = country1(&ds);
    cities.extend(country2(&ds));
    eprintln!("computing attribute PCCs over {} cities", cities.len());

    let per_city: Vec<Vec<f64>> = cities.iter().map(city_pccs).collect();
    let n = per_city.len() as f64;

    println!("\nTable 1: context attribute PCC with traffic (13 cities)");
    println!(
        "{:<24} {:>10} {:>10} {:>10}",
        "Attribute", "Mean", "Std", "Paper"
    );
    let mut records = Vec::new();
    for (k, (name, paper_mean)) in ATTRIBUTES.iter().enumerate() {
        let vals: Vec<f64> = per_city.iter().map(|c| c[k]).collect();
        let mean = vals.iter().sum::<f64>() / n;
        let std = (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n).sqrt();
        println!("{name:<24} {mean:>10.3} {std:>10.3} {paper_mean:>10.3}");
        records.push(serde_json::json!({
            "attribute": name, "mean": mean, "std": std, "paper_mean": paper_mean,
        }));
    }
    let out = OutDir::create();
    write_json(&out, "table1.json", &records);

    // Shape check mirrored from the paper: census is the strongest
    // positive attribute, barren lands the most negative.
    let census_mean: f64 = per_city.iter().map(|c| c[0]).sum::<f64>() / n;
    let barren_mean: f64 = per_city.iter().map(|c| c[11]).sum::<f64>() / n;
    println!(
        "\ncensus mean PCC {census_mean:.3} (paper 0.597), barren {barren_mean:.3} (paper -0.281)"
    );
}
