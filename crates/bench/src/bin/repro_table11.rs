//! Reproduces **Table 11** (Appendix B): SpectraGAN performance at
//! finer time granularities (60/30/15 minutes), with the DATA
//! reference at each granularity.
//!
//! Only the model's output length changes with granularity (the paper
//! modifies only the output layer); training budget is held fixed.
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin repro_table11 -- [--steps N]
//! ```

use spectragan_bench::data::country1_with_reference;
use spectragan_bench::{
    evaluate_pair, parse_scale, print_table, train_and_generate, write_json, MetricRecord,
    ModelKind, OutDir,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let base = parse_scale(&args);
    let out = OutDir::create();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (label, steps_per_hour) in [("60-min", 1usize), ("30-min", 2), ("15-min", 4)] {
        let mut scale = base;
        scale.steps_per_hour = steps_per_hour;
        // Hold the wall-clock budget roughly constant: the series is
        // `steps_per_hour`× longer, so divide the step count.
        scale.train_steps = (base.train_steps / steps_per_hour).max(10);
        scale.max_folds = 1;
        eprintln!("granularity {label}: building data…");
        let (cities, reference) = country1_with_reference(&scale);
        let (real, synth) = train_and_generate(ModelKind::SpectraGan, &cities, 0, &scale);
        let m = evaluate_pair(&real, &synth, steps_per_hour, true);
        rows.push((label.to_string(), m));
        records.push(MetricRecord::new("SpectraGAN", label, &m));
        // DATA reference at this granularity.
        let t0 = scale.train_len();
        let t1 = (t0 + scale.gen_len()).min(reference[0].traffic.len_t());
        let ref_slice = reference[0].traffic.slice_time(t0, t1);
        let dm = evaluate_pair(&real, &ref_slice, steps_per_hour, true);
        rows.push((format!("{label} Data"), dm));
        records.push(MetricRecord::new("Data", label, &dm));
    }
    print_table("Table 11: SpectraGAN at finer time granularity", &rows);
    println!(
        "\nPaper (Table 11): 60-min 0.0362/0.787/46.8/0.893/205 · 30-min 0.113/0.758/101/0.908/241 ·\n\
         15-min 0.114/0.786/175/0.905/318; Data AC-L1 degrades 25.2→44.5→78.0 with granularity."
    );
    write_json(&out, "table11.json", &records);
}
