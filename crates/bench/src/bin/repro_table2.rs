//! Reproduces **Table 2**: average leave-one-city-out testing
//! performance in Country 1 for SpectraGAN, Pix2Pix, DoppelGANger,
//! Conv{3D+LSTM} and the DATA reference, over the five fidelity
//! metrics (M-TV, SSIM, AC-L1, TSTR, FVD).
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin repro_table2 -- [--full] [--folds N] [--steps N]
//! ```

use spectragan_bench::data::country1_with_reference;
use spectragan_bench::{
    average_by_model, leave_one_out, parse_scale, print_table, write_json, MetricRecord, ModelKind,
    OutDir,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    eprintln!("building Country 1 dataset…");
    let (cities, reference) = country1_with_reference(&scale);
    let results = leave_one_out(&cities, &reference, &ModelKind::headline(), &scale, true);

    let avg = average_by_model(&results);
    print_table("Table 2: average testing performance in COUNTRY 1", &avg);
    println!(
        "\nPaper (Table 2): SpectraGAN 0.0362/0.787/46.8/0.893/205 · Pix2Pix 0.0522/0.800/84.4/0.557/214 ·\n\
         DoppelGANger 0.0498/0.744/54.8/0.890/247 · Conv{{3D+LSTM}} 0.0460/0.750/60.2/0.895/281 · Data 0.00359/0.999/25.2/0.903/128"
    );

    let out = OutDir::create();
    let mut records: Vec<MetricRecord> = results
        .iter()
        .map(|r| MetricRecord::new(&r.model, &r.test_city, &r.metrics))
        .collect();
    records.extend(avg.iter().map(|(m, s)| MetricRecord::new(m, "avg", s)));
    write_json(&out, "table2.json", &records);
}
