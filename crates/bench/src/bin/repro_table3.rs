//! Reproduces **Table 3**: average leave-one-city-out testing
//! performance in Country 2 (4 cities, FVD omitted as in the paper —
//! too little data for a reliable embedding).
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin repro_table3 -- [--full] [--folds N] [--steps N]
//! ```

use spectragan_bench::data::country2_with_reference;
use spectragan_bench::{
    average_by_model, leave_one_out, parse_scale, print_table, write_json, MetricRecord, ModelKind,
    OutDir,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    eprintln!("building Country 2 dataset…");
    let (cities, reference) = country2_with_reference(&scale);
    let results = leave_one_out(&cities, &reference, &ModelKind::headline(), &scale, false);

    let avg = average_by_model(&results);
    print_table("Table 3: average testing performance in COUNTRY 2", &avg);
    println!(
        "\nPaper (Table 3): SpectraGAN 0.0607/0.686/34.8/0.977 · Pix2Pix 0.121/0.564/117/0.653 ·\n\
         DoppelGANger 0.0521/0.472/40.9/0.964 · Conv{{3D+LSTM}} 0.0514/0.613/99.5/0.946 · Data 0.0076/0.996/22.8/0.978"
    );

    let out = OutDir::create();
    let mut records: Vec<MetricRecord> = results
        .iter()
        .map(|r| MetricRecord::new(&r.model, &r.test_city, &r.metrics))
        .collect();
    records.extend(avg.iter().map(|(m, s)| MetricRecord::new(m, "avg", s)));
    write_json(&out, "table3.json", &records);
}
