//! Reproduces **Table 4** (ablation: importance of wider spatial
//! context): SpectraGAN vs SpectraGAN−, the variant conditioned only
//! on pixel-level context.
//!
//! With `--noise`, additionally runs the shared-vs-fresh-noise
//! ablation DESIGN.md calls out: per-patch noise plus Eq. 2 averaging
//! collapses toward the expected traffic and over-smooths the maps.
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin repro_table4 -- [--full] [--noise]
//! ```

use spectragan_bench::data::country1_with_reference;
use spectragan_bench::{
    average_by_model, leave_one_out, parse_scale, print_table, write_json, MetricRecord, ModelKind,
    OutDir, Scale, TrainedModel,
};
use spectragan_geo::City;

fn noise_ablation(cities: &[City], scale: &Scale) {
    println!("\nNoise-sharing ablation (§2.2.4): sample diversity across noise seeds");
    println!("(fresh per-patch noise + Eq. 2 averaging collapses every sample toward the");
    println!(
        " expected traffic — low inter-seed spread means over-smoothed, expectation-like maps)"
    );
    let train_cities: Vec<City> = cities[1..].to_vec();
    let model = TrainedModel::train(ModelKind::SpectraGan, &train_cities, scale, 7);
    let TrainedModel::Spectra(sg) = &model else {
        unreachable!()
    };
    let test = &cities[0];
    let seeds: Vec<u64> = (0..5).map(|s| 300 + s).collect();
    for (label, shared) in [("shared noise", true), ("fresh noise per patch", false)] {
        let maps: Vec<Vec<f64>> = seeds
            .iter()
            .map(|&seed| {
                sg.generate_opts(&test.context, scale.train_len(), seed, shared)
                    .mean_map()
            })
            .collect();
        // Mean per-pixel standard deviation across seeds.
        let n_px = maps[0].len();
        let mut spread = 0.0;
        for px in 0..n_px {
            let vals: Vec<f64> = maps.iter().map(|m| m[px]).collect();
            let mu = vals.iter().sum::<f64>() / vals.len() as f64;
            spread +=
                (vals.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / vals.len() as f64).sqrt();
        }
        println!(
            "  {label:<24} mean inter-seed std per pixel {:.6}",
            spread / n_px as f64
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    eprintln!("building Country 1 dataset…");
    let (cities, reference) = country1_with_reference(&scale);
    let kinds = [ModelKind::SpectraGan, ModelKind::SpectraGanMinus];
    let results = leave_one_out(&cities, &reference, &kinds, &scale, true);
    let avg = average_by_model(&results);
    print_table("Table 4: importance of wider spatial contexts", &avg);
    println!(
        "\nPaper (Table 4): SpectraGAN 0.0362/0.787/46.8/0.893/205 · SpectraGAN- 0.0465/0.745/48.9/0.894/183"
    );

    let out = OutDir::create();
    let records: Vec<MetricRecord> = results
        .iter()
        .map(|r| MetricRecord::new(&r.model, &r.test_city, &r.metrics))
        .collect();
    write_json(&out, "table4.json", &records);

    if args.iter().any(|a| a == "--noise") {
        noise_ablation(&cities, &scale);
    }
}
