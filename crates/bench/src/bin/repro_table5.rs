//! Reproduces **Table 5** (ablation: importance of the spectrum
//! generator): the full SpectraGAN against Spec-only, Time-only and
//! Time-only+.
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin repro_table5 -- [--full] [--folds N]
//! ```

use spectragan_bench::data::country1_with_reference;
use spectragan_bench::{
    average_by_model, leave_one_out, parse_scale, print_table, write_json, MetricRecord, ModelKind,
    OutDir,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    eprintln!("building Country 1 dataset…");
    let (cities, reference) = country1_with_reference(&scale);
    let kinds = [
        ModelKind::SpectraGan,
        ModelKind::SpecOnly,
        ModelKind::TimeOnly,
        ModelKind::TimeOnlyPlus,
    ];
    let results = leave_one_out(&cities, &reference, &kinds, &scale, true);
    let avg = average_by_model(&results);
    print_table("Table 5: importance of the spectrum generator", &avg);
    println!(
        "\nPaper (Table 5): SpectraGAN 0.0362/0.787/46.8/0.893/205 · Spec-only 0.0427/0.759/53.0/0.885/229 ·\n\
         Time-only 0.0557/0.769/46.1/0.899/230 · Time-only+ 0.0445/0.763/38.0/0.898/255"
    );

    let out = OutDir::create();
    let records: Vec<MetricRecord> = results
        .iter()
        .map(|r| MetricRecord::new(&r.model, &r.test_city, &r.metrics))
        .collect();
    write_json(&out, "table5.json", &records);
}
