//! Reproduces **Table 7** (vRAN use case, §5.2): Jain's fairness index
//! of RU-to-CU load balancing when the association is planned with
//! SpectraGAN-generated traffic vs real traffic, for |C| ∈ {4, 6, 8}.
//!
//! Protocol: partitions are computed per time step from one day of
//! planning traffic and assessed on the *next* real day.
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin repro_table7 -- [--full] [--folds N]
//! ```

use spectragan_apps::vran::assess;
use spectragan_bench::data::country1_with_reference;
use spectragan_bench::{parse_scale, train_and_generate, write_json, ModelKind, OutDir};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let (cities, _) = country1_with_reference(&scale);
    let folds = cities.len().min(scale.max_folds);
    let day = 24 * scale.steps_per_hour;

    println!("\nTable 7: Jain's fairness of RU-to-CU associations (mean ± std)");
    println!(
        "{:<6} {:<12} {:<10} {:<18}",
        "CUs", "Method", "City", "Jain"
    );
    let mut records = Vec::new();
    // Cache per-fold generated maps — the same synthetic data drives
    // all three CU counts.
    let mut maps = Vec::new();
    for fold in 0..folds {
        eprintln!("[fold {}/{folds}] {}", fold + 1, cities[fold].name);
        maps.push(train_and_generate(
            ModelKind::SpectraGan,
            &cities,
            fold,
            &scale,
        ));
    }
    for num_cu in [4usize, 6, 8] {
        for fold in 0..folds {
            let (real, synth) = &maps[fold];
            let name = &cities[fold].name;
            // Planning day: day 1 of the generated/real period;
            // evaluation: day 2 of the real period.
            let plan_synth = synth.slice_time(0, day);
            let plan_real = real.slice_time(0, day);
            let eval_day = real.slice_time(day, 2 * day);
            for (method, plan) in [("SpectraGAN", &plan_synth), ("Real Data", &plan_real)] {
                let a = assess(plan, &eval_day, num_cu);
                println!(
                    "{:<6} {:<12} {:<10} {:.2} ± {:.2}",
                    num_cu,
                    method,
                    name,
                    a.mean(),
                    a.std()
                );
                records.push(serde_json::json!({
                    "num_cu": num_cu, "method": method, "city": name,
                    "jain_mean": a.mean(), "jain_std": a.std(),
                }));
            }
        }
    }
    println!(
        "\nPaper (Table 7): SpectraGAN ≈ 0.80–0.99, Real Data ≈ 0.95–1.0; gap ≈ 0.059 on average."
    );
    let out = OutDir::create();
    write_json(&out, "table7.json", &records);
}
