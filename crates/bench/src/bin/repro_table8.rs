//! Reproduces **Table 8 / Fig. 11** (population tracking, §5.3): PSNR
//! between hourly population-presence maps estimated from
//! SpectraGAN-generated traffic vs from real traffic, via the Eq. 8
//! regression.
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin repro_table8 -- [--full] [--folds N]
//! ```

use spectragan_apps::{population_map, ActivityProfile, PopulationModel};
use spectragan_bench::data::country1_with_reference;
use spectragan_bench::report::write_csv;
use spectragan_bench::{parse_scale, train_and_generate, write_json, ModelKind, OutDir};
use spectragan_metrics::psnr;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let (cities, _) = country1_with_reference(&scale);
    let folds = cities.len().min(scale.max_folds);
    let model = PopulationModel::default_urban();
    let activity = ActivityProfile::default_urban();
    let out = OutDir::create();

    println!("\nTable 8: population-map PSNR, synthetic- vs real-informed (mean ± std over hours)");
    println!("{:<10} {:<18}", "City", "PSNR (dB)");
    let mut records = Vec::new();
    for fold in 0..folds {
        let name = cities[fold].name.clone();
        eprintln!("[fold {}/{} ] {}", fold + 1, folds, name);
        let (real, synth) = train_and_generate(ModelKind::SpectraGan, &cities, fold, &scale);
        let hours = real.len_t().min(7 * 24 * scale.steps_per_hour);
        let mut vals = Vec::with_capacity(hours);
        for t in 0..hours {
            let p_real = population_map(&real, t, &model, &activity, scale.steps_per_hour);
            let p_synth = population_map(&synth, t, &model, &activity, scale.steps_per_hour);
            let v = psnr(&p_real, &p_synth);
            if v.is_finite() {
                vals.push(v);
            }
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let std =
            (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64).sqrt();
        println!("{name:<10} {mean:.1} ± {std:.2}");
        records.push(serde_json::json!({
            "city": name, "psnr_mean": mean, "psnr_std": std,
        }));

        // Fig. 11 artefact: dynamic presence maps at five times of day
        // for the first fold.
        if fold == 0 {
            for &hour in &[3usize, 9, 13, 18, 22] {
                let p_synth = population_map(&synth, hour, &model, &activity, scale.steps_per_hour);
                let p_real = population_map(&real, hour, &model, &activity, scale.steps_per_hour);
                let w = real.width();
                write_csv(
                    &out.path(&format!("fig11_presence_h{hour:02}.csv")),
                    "y,x,real,synthetic",
                    (0..p_real.len())
                        .map(|i| format!("{},{},{:.5},{:.5}", i / w, i % w, p_real[i], p_synth[i])),
                );
            }
        }
    }
    println!("\nPaper (Table 8): PSNR 25.1–31.6 dB across cities; >20 dB is acceptable quality.");
    write_json(&out, "table8.json", &records);
}
