//! Reproduces **Tables 9 and 10** (Appendix A): mean and median of the
//! peak-normalized traffic over all grid cells and time steps, per
//! city, for both countries.
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin repro_table9_10
//! ```

use spectragan_bench::{parse_scale, write_json, OutDir};
use spectragan_geo::City;
use spectragan_synthdata::{country1, country2};

fn stats(city: &City) -> (f64, f64) {
    let mut vals: Vec<f64> = city.traffic.data().iter().map(|&v| v as f64).collect();
    vals.sort_by(|a, b| a.partial_cmp(b).expect("finite traffic"));
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    let median = vals[vals.len() / 2];
    (mean, median)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = parse_scale(&args);
    scale.weeks = 1;
    let ds = scale.dataset();
    let out = OutDir::create();
    let mut records = Vec::new();
    for (title, cities, paper_note) in [
        (
            "Table 9: COUNTRY 1 traffic statistics",
            country1(&ds),
            "paper means 0.006–0.035, medians 0.002–0.018",
        ),
        (
            "Table 10: COUNTRY 2 traffic statistics",
            country2(&ds),
            "paper means 0.035–0.097, medians 0.021–0.081",
        ),
    ] {
        println!("\n{title} ({paper_note})");
        println!("{:<10} {:>10} {:>10}", "City", "Mean", "Median");
        for city in &cities {
            let (mean, median) = stats(city);
            println!("{:<10} {:>10.5} {:>10.5}", city.name, mean, median);
            records.push(serde_json::json!({
                "city": city.name, "mean": mean, "median": median,
            }));
        }
    }
    write_json(&out, "table9_10.json", &records);
}
