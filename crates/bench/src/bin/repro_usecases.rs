//! Reproduces **Table 6** (BS power-model settings) and **Figure 10**
//! (micro-BS sleeping, §5.1): average power per unit area with micro
//! BSs always on, vs the sleeping strategy informed by real traffic,
//! vs the same strategy informed by SpectraGAN-generated traffic.
//! Paper: savings in the 47–62 % band, equivalent for both sources.
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin repro_usecases -- [--folds N] [--steps N]
//! ```

use spectragan_apps::power::{evaluate, MACRO_BS, MICRO_BS, RHO_MIN};
use spectragan_bench::data::country1_with_reference;
use spectragan_bench::{parse_scale, train_and_generate, write_json, ModelKind, OutDir};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    println!("\nTable 6: BS power model settings");
    println!(
        "Macro: Ntrx {} Pmax {} P0 {} delta_p {}",
        MACRO_BS.n_trx, MACRO_BS.p_max, MACRO_BS.p0, MACRO_BS.delta_p
    );
    println!(
        "Micro: Ntrx {} Pmax {} P0 {} delta_p {}",
        MICRO_BS.n_trx, MICRO_BS.p_max, MICRO_BS.p0, MICRO_BS.delta_p
    );
    println!("rho_min = {RHO_MIN}");

    let (cities, _) = country1_with_reference(&scale);
    let folds = cities.len().min(scale.max_folds);
    let out = OutDir::create();
    println!("\nFig. 10: average power per unit area (always-on / sleep-real / sleep-synthetic)");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "City", "AlwaysOn", "SleepReal", "SleepSynth", "SaveReal", "SaveSynth"
    );
    let mut records = Vec::new();
    for fold in 0..folds {
        let name = cities[fold].name.clone();
        eprintln!("[fold {}/{} ] {}", fold + 1, folds, name);
        let (real, synth) = train_and_generate(ModelKind::SpectraGan, &cities, fold, &scale);
        let week = (7 * 24 * scale.steps_per_hour).min(real.len_t());
        let real_w = real.slice_time(0, week);
        let synth_w = synth.slice_time(0, week);
        let with_real = evaluate(&real_w, &real_w);
        let with_synth = evaluate(&synth_w, &real_w);
        println!(
            "{:<10} {:>10.2} {:>12.2} {:>12.2} {:>9.1}% {:>9.1}%",
            name,
            with_real.always_on,
            with_real.with_sleeping,
            with_synth.with_sleeping,
            100.0 * with_real.saving(),
            100.0 * with_synth.saving()
        );
        records.push(serde_json::json!({
            "city": name,
            "always_on": with_real.always_on,
            "sleep_real": with_real.with_sleeping,
            "sleep_synth": with_synth.with_sleeping,
            "saving_real": with_real.saving(),
            "saving_synth": with_synth.saving(),
        }));
    }
    println!("\nPaper (Fig. 10): savings 47–62 % across cities; synthetic ≈ real decisions.");
    write_json(&out, "fig10_power.json", &records);
}
