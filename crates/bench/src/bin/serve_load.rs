//! Load-test harness for `spectragan serve`: concurrent mixed-city,
//! mixed-duration request storms against an in-process server, with
//! three hard gates and a JSON artifact for CI.
//!
//! ```text
//! cargo run --release -p spectragan-bench --bin serve_load -- \
//!     [--requests N] [--clients N] [--workers N] [--p99-budget-ms N] [--out FILE]
//! ```
//!
//! Gates (process exits non-zero when any fails):
//!
//! 1. **Byte identity** — every streamed response reassembles to the
//!    exact bytes of the offline `generate_batched` reference for its
//!    `(city, t_out, seed)`.
//! 2. **Zero 5xx under budget** — with the default admission budget no
//!    request is shed or errored.
//! 3. **Resource bounds** — p99 latency under `--p99-budget-ms`, and
//!    the arena high-water mark stays at or under the admission
//!    budget.
//!
//! A separate tiny-budget probe pins the admission budget full and
//! verifies the 503 + `Retry-After` shed path fires.

use spectragan_core::{SpectraGan, SpectraGanConfig};
use spectragan_geo::io::save_context;
use spectragan_geo::TrafficMap;
use spectragan_serve::client::{assemble_bands, request};
use spectragan_serve::{ServeConfig, Server};
use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};
use spectragan_tensor::arena;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fail(msg: String) -> ! {
    eprintln!("serve_load: FAIL: {msg}");
    std::process::exit(1)
}

fn main() {
    let n_requests: usize = arg("--requests", 24);
    let n_clients: usize = arg("--clients", 6);
    let workers: usize = arg("--workers", 4);
    let p99_budget_ms: u64 = arg("--p99-budget-ms", 30_000);
    let out: String = arg("--out", "BENCH_pr7.json".to_string());

    // Fixture: a shared tiny model over three cities of unequal size.
    let dir = std::env::temp_dir().join(format!("sg_serve_load_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let model = SpectraGan::new(SpectraGanConfig::tiny(), 11);
    std::fs::write(dir.join("model.json"), model.to_model_json()).unwrap();
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.36,
    };
    let specs = [
        ("city_a", 33usize, 33usize, 1u64),
        ("city_b", 41, 37, 2),
        ("city_c", 29, 45, 3),
    ];
    let mut contexts = HashMap::new();
    for (name, height, width, seed) in specs {
        let city = generate_city(
            &CityConfig {
                name: name.to_string(),
                height,
                width,
                seed,
            },
            &ds,
        );
        save_context(&city.context, dir.join(format!("{name}.sgcm"))).unwrap();
        contexts.insert(name.to_string(), city.context);
    }

    // The storm's job mix: cities × durations × seeds, cycled to
    // n_requests. Offline references computed once per distinct job.
    let durations = [24usize, 30, 48];
    let jobs: Vec<(String, usize, u64)> = (0..n_requests)
        .map(|i| {
            let (name, ..) = specs[i % specs.len()];
            let t_out = durations[(i / specs.len()) % durations.len()];
            let seed = (i % 5) as u64;
            (name.to_string(), t_out, seed)
        })
        .collect();
    let mut references: HashMap<(String, usize, u64), TrafficMap> = HashMap::new();
    for job in &jobs {
        let (city, t_out, seed) = job;
        references.entry(job.clone()).or_insert_with(|| {
            model
                .generate_batched_report(&contexts[city], *t_out, *seed, true, 8)
                .0
        });
    }

    let budget_bytes: usize = 2 << 30;
    let mut cfg = ServeConfig::new("127.0.0.1:0", &dir);
    cfg.workers = workers;
    cfg.arena_budget_bytes = budget_bytes;
    let server = Server::bind(cfg).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let run_thread = std::thread::spawn(move || server.run().unwrap());

    arena::reset_high_water();
    let next = AtomicUsize::new(0);
    let latencies_ms: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let n_shed = AtomicUsize::new(0);
    let n_5xx = AtomicUsize::new(0);
    let bytes_streamed = AtomicUsize::new(0);
    let storm_started = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..n_clients {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    return;
                }
                let (city, t_out, seed) = &jobs[i];
                let body = format!(
                    "{{\"city\":\"{city}\",\"t_out\":{t_out},\"seed\":{seed},\"gen_batch\":8}}"
                );
                let t0 = Instant::now();
                let resp = request(&addr, "POST", "/generate", body.as_bytes())
                    .unwrap_or_else(|e| fail(format!("request {i} ({city}, {t_out}): {e}")));
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                match resp.status {
                    200 => {
                        bytes_streamed.fetch_add(resp.body.len(), Ordering::Relaxed);
                        let got = assemble_bands(&resp)
                            .unwrap_or_else(|e| fail(format!("request {i}: bad stream: {e}")));
                        let want = &references[&jobs[i]];
                        if got.data() != want.data() {
                            fail(format!(
                                "request {i} ({city}, t_out {t_out}, seed {seed}): \
                                 streamed bytes differ from offline generation"
                            ));
                        }
                    }
                    503 => {
                        n_shed.fetch_add(1, Ordering::Relaxed);
                    }
                    s if s >= 500 => {
                        n_5xx.fetch_add(1, Ordering::Relaxed);
                    }
                    other => fail(format!("request {i}: unexpected status {other}")),
                }
                latencies_ms.lock().unwrap().push(ms);
            });
        }
    });
    let storm_s = storm_started.elapsed().as_secs_f64();
    let peak_arena = arena::high_water_bytes().max(0) as usize;

    // Tiny-budget probe on the same server: pin the budget full and
    // confirm the shed path answers 503 + Retry-After deterministically.
    let admission = {
        // A second server instance with a 1 MiB budget — the running
        // one keeps its production-shaped budget.
        let mut probe_cfg = ServeConfig::new("127.0.0.1:0", &dir);
        probe_cfg.arena_budget_bytes = 1 << 20;
        let probe = Server::bind(probe_cfg).unwrap();
        let probe_addr = probe.local_addr().unwrap().to_string();
        let probe_handle = probe.handle();
        let probe_admission = probe.admission();
        let probe_thread = std::thread::spawn(move || probe.run().unwrap());
        let permit = probe_admission.try_admit(1 << 20).expect("idle budget");
        let shed = request(
            &probe_addr,
            "POST",
            "/generate",
            b"{\"city\":\"city_a\",\"t_out\":24}",
        )
        .unwrap_or_else(|e| fail(format!("probe request: {e}")));
        if shed.status != 503 || shed.header("retry-after") != Some("1") {
            fail(format!(
                "admission probe expected 503 + Retry-After, got {}",
                shed.status
            ));
        }
        drop(permit);
        probe_handle.shutdown();
        probe_thread.join().unwrap();
        true
    };

    handle.shutdown();
    run_thread.join().unwrap();

    let mut lat = latencies_ms.into_inner().unwrap();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| lat[((lat.len() as f64 - 1.0) * p).round() as usize];
    let (p50, p99, max) = (pct(0.50), pct(0.99), lat[lat.len() - 1]);
    let shed = n_shed.load(Ordering::Relaxed);
    let err5 = n_5xx.load(Ordering::Relaxed);

    println!("serve_load: {n_requests} requests, {n_clients} clients, {workers} workers");
    println!("  wall {storm_s:.2} s, p50 {p50:.0} ms, p99 {p99:.0} ms, max {max:.0} ms");
    println!(
        "  peak arena {:.1} MiB (budget {:.0} MiB), 503s {shed}, 5xx {err5}",
        peak_arena as f64 / (1 << 20) as f64,
        budget_bytes as f64 / (1 << 20) as f64
    );

    let json = format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"requests\": {n_requests},\n  \"clients\": {n_clients},\n  \"workers\": {workers},\n  \"wall_s\": {storm_s:.3},\n  \"p50_ms\": {p50:.1},\n  \"p99_ms\": {p99:.1},\n  \"max_ms\": {max:.1},\n  \"bytes_streamed\": {},\n  \"peak_arena_bytes\": {peak_arena},\n  \"admission_budget_bytes\": {budget_bytes},\n  \"n_503\": {shed},\n  \"n_5xx\": {err5},\n  \"byte_equal\": true,\n  \"admission_probe_503\": {admission}\n}}\n",
        bytes_streamed.load(Ordering::Relaxed)
    );
    std::fs::write(PathBuf::from(&out), json).unwrap_or_else(|e| fail(format!("write {out}: {e}")));
    println!("  wrote {out}");

    // Gates.
    if shed != 0 || err5 != 0 {
        fail(format!(
            "expected zero shed/error responses under the default budget, got 503={shed} 5xx={err5}"
        ));
    }
    if p99 > p99_budget_ms as f64 {
        fail(format!(
            "p99 {p99:.0} ms over the {p99_budget_ms} ms budget"
        ));
    }
    if peak_arena > budget_bytes {
        fail(format!(
            "peak arena {peak_arena} bytes exceeded the {budget_bytes}-byte admission budget"
        ));
    }
    println!("serve_load: all gates passed");
    let _ = std::fs::remove_dir_all(&dir);
}
