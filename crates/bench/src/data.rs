//! Dataset assembly for the harness: builds the two country corpora at
//! a given scale, together with the independent temporal realizations
//! used as the DATA reference.

use crate::scale::Scale;
use spectragan_geo::City;
use spectragan_synthdata::{
    country1_configs, country2_configs, generate_city, generate_city_variant, CityConfig,
};

fn build(configs: &[CityConfig], scale: &Scale) -> (Vec<City>, Vec<City>) {
    let ds = scale.dataset();
    let cities = configs.iter().map(|c| generate_city(c, &ds)).collect();
    let variants = configs
        .iter()
        .map(|c| generate_city_variant(c, &ds, 0xDA7A))
        .collect();
    (cities, variants)
}

/// Country 1 (9 cities) plus DATA-reference realizations.
pub fn country1_with_reference(scale: &Scale) -> (Vec<City>, Vec<City>) {
    build(&country1_configs(), scale)
}

/// Country 2 (4 cities) plus DATA-reference realizations.
pub fn country2_with_reference(scale: &Scale) -> (Vec<City>, Vec<City>) {
    build(&country2_configs(), scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_corpora() {
        let mut scale = Scale::fast();
        scale.weeks = 1;
        scale.size_scale = 0.35;
        let (c1, r1) = country1_with_reference(&scale);
        assert_eq!(c1.len(), 9);
        assert_eq!(r1.len(), 9);
        assert_eq!(c1[0].context.data(), r1[0].context.data());
        let (c2, _) = country2_with_reference(&scale);
        assert_eq!(c2.len(), 4);
    }
}
