//! The leave-one-city-out evaluation protocol of §4.1 and the five
//! fidelity metrics of §3.2.

use crate::models::{ModelKind, TrainedModel};
use crate::scale::Scale;
use spectragan_geo::{City, TrafficMap};
use spectragan_metrics::{ac_l1, fvd, m_tv, ssim_mean_maps, tstr_r2};

/// The five quantitative metrics for one (real, synthetic) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSet {
    /// Marginal total-variation distance (lower better).
    pub m_tv: f64,
    /// SSIM of time-averaged maps (higher better).
    pub ssim: f64,
    /// Autocorrelation L1 distance (lower better).
    pub ac_l1: f64,
    /// Train-synthetic-test-real R² (higher better).
    pub tstr: f64,
    /// Fréchet video distance (lower better); `None` when skipped
    /// (Country 2, per the paper).
    pub fvd: Option<f64>,
}

/// Computes all metrics for a (real, synthetic) pair.
pub fn evaluate_pair(
    real: &TrafficMap,
    synth: &TrafficMap,
    steps_per_hour: usize,
    with_fvd: bool,
) -> MetricSet {
    MetricSet {
        m_tv: m_tv(real, synth),
        ssim: ssim_mean_maps(real, synth),
        ac_l1: ac_l1(real, synth, real.len_t()),
        tstr: tstr_r2(real, synth, steps_per_hour),
        fvd: with_fvd.then(|| fvd(real, synth, steps_per_hour)),
    }
}

/// Result of one leave-one-out fold for one model.
#[derive(Debug, Clone)]
pub struct FoldResult {
    /// The held-out test city.
    pub test_city: String,
    /// Model display name.
    pub model: String,
    /// Metrics on the held-out city.
    pub metrics: MetricSet,
}

/// Runs the §4.1 protocol: for each fold, train every `kind` on all
/// cities but one (first week), generate `scale.gen_weeks` weeks for
/// the held-out city from its context alone, and score against that
/// city's real weeks 2…(1+gen_weeks).
///
/// `data_reference` supplies, per city index, an independent temporal
/// realization used for the DATA rows (pass city variants from
/// `spectragan_synthdata::generate_city_variant`).
///
/// Folds run in parallel on the [`spectragan_tensor::pool`] pool: each
/// fold already owns an independent training/generation seed pair
/// (`7 + fold`, `100 + fold`), so results are identical to the serial
/// protocol, and they are returned — and the progress log printed — in
/// fold order regardless of completion order.
pub fn leave_one_out(
    cities: &[City],
    data_reference: &[City],
    kinds: &[ModelKind],
    scale: &Scale,
    with_fvd: bool,
) -> Vec<FoldResult> {
    assert_eq!(
        cities.len(),
        data_reference.len(),
        "reference set size mismatch"
    );
    let train_len = scale.train_len();
    let gen_len = scale.gen_len();
    let folds = cities.len().min(scale.max_folds);
    let per_fold: Vec<(Vec<String>, Vec<FoldResult>)> =
        spectragan_tensor::pool::par_map(folds, |fold| {
            let mut log = Vec::new();
            let mut rows = Vec::new();
            let test = &cities[fold];
            let train_cities: Vec<City> = cities
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != fold)
                .map(|(_, c)| c.clone())
                .collect();
            let real = test
                .traffic
                .slice_time(train_len, (train_len + gen_len).min(test.traffic.len_t()));
            log.push(format!(
                "[fold {}/{folds}] test city {}",
                fold + 1,
                test.name
            ));
            for &kind in kinds {
                let model = TrainedModel::train(kind, &train_cities, scale, 7 + fold as u64);
                let synth = model.generate(&test.context, real.len_t(), 100 + fold as u64);
                let metrics = evaluate_pair(&real, &synth, scale.steps_per_hour, with_fvd);
                log.push(format!(
                    "    {:<14} m-tv {:.4} ssim {:.3} ac-l1 {:.1} tstr {:.3}",
                    kind.name(),
                    metrics.m_tv,
                    metrics.ssim,
                    metrics.ac_l1,
                    metrics.tstr
                ));
                rows.push(FoldResult {
                    test_city: test.name.clone(),
                    model: kind.name().to_string(),
                    metrics,
                });
            }
            // DATA reference: an independent realization of the same weeks.
            let reference = data_reference[fold].traffic.slice_time(
                train_len,
                (train_len + gen_len).min(data_reference[fold].traffic.len_t()),
            );
            let metrics = evaluate_pair(&real, &reference, scale.steps_per_hour, with_fvd);
            rows.push(FoldResult {
                test_city: test.name.clone(),
                model: "Data".to_string(),
                metrics,
            });
            (log, rows)
        });
    let mut out = Vec::new();
    for (log, rows) in per_fold {
        for line in log {
            eprintln!("{line}");
        }
        out.extend(rows);
    }
    out
}

/// Trains `kind` on all cities except `fold` and generates traffic for
/// the held-out city; returns `(real held-out weeks, synthetic)`.
/// Used by the figure/use-case binaries that need the actual maps
/// rather than aggregate metrics.
pub fn train_and_generate(
    kind: ModelKind,
    cities: &[City],
    fold: usize,
    scale: &Scale,
) -> (TrafficMap, TrafficMap) {
    let train_len = scale.train_len();
    let gen_len = scale.gen_len();
    let test = &cities[fold];
    let train_cities: Vec<City> = cities
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != fold)
        .map(|(_, c)| c.clone())
        .collect();
    let real = test
        .traffic
        .slice_time(train_len, (train_len + gen_len).min(test.traffic.len_t()));
    let model = TrainedModel::train(kind, &train_cities, scale, 7 + fold as u64);
    let synth = model.generate(&test.context, real.len_t(), 100 + fold as u64);
    (real, synth)
}

/// Averages fold results per model, preserving first-seen model order.
pub fn average_by_model(results: &[FoldResult]) -> Vec<(String, MetricSet)> {
    let mut order: Vec<String> = Vec::new();
    for r in results {
        if !order.contains(&r.model) {
            order.push(r.model.clone());
        }
    }
    order
        .into_iter()
        .map(|model| {
            let rows: Vec<&MetricSet> = results
                .iter()
                .filter(|r| r.model == model)
                .map(|r| &r.metrics)
                .collect();
            let n = rows.len() as f64;
            let fvd_vals: Vec<f64> = rows.iter().filter_map(|m| m.fvd).collect();
            let avg = MetricSet {
                m_tv: rows.iter().map(|m| m.m_tv).sum::<f64>() / n,
                ssim: rows.iter().map(|m| m.ssim).sum::<f64>() / n,
                ac_l1: rows.iter().map(|m| m.ac_l1).sum::<f64>() / n,
                tstr: rows.iter().map(|m| m.tstr).sum::<f64>() / n,
                fvd: if fvd_vals.is_empty() {
                    None
                } else {
                    Some(fvd_vals.iter().sum::<f64>() / fvd_vals.len() as f64)
                },
            };
            (model, avg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_from_fn(t: usize, f: impl Fn(usize, usize) -> f32) -> TrafficMap {
        let (h, w) = (6, 6);
        let mut m = TrafficMap::zeros(t, h, w);
        for ti in 0..t {
            for px in 0..h * w {
                m.data_mut()[ti * h * w + px] = f(ti, px);
            }
        }
        m
    }

    #[test]
    fn identical_maps_score_perfectly() {
        let m = map_from_fn(48, |t, px| {
            (px as f32 / 36.0) * (1.0 + ((t as f32) * 0.26).sin()).abs()
        });
        let s = evaluate_pair(&m, &m, 1, true);
        assert!(s.m_tv < 1e-9);
        assert!((s.ssim - 1.0).abs() < 1e-9);
        assert!(s.ac_l1 < 1e-9);
        assert!(s.fvd.unwrap() < 1e-6);
    }

    #[test]
    fn fvd_skippable() {
        let m = map_from_fn(24, |t, px| (t + px) as f32 / 60.0);
        let s = evaluate_pair(&m, &m, 1, false);
        assert!(s.fvd.is_none());
    }

    #[test]
    fn average_by_model_groups_and_orders() {
        let mk = |model: &str, v: f64| FoldResult {
            test_city: "X".into(),
            model: model.into(),
            metrics: MetricSet {
                m_tv: v,
                ssim: v,
                ac_l1: v,
                tstr: v,
                fvd: Some(v),
            },
        };
        let rows = vec![mk("A", 1.0), mk("B", 3.0), mk("A", 2.0)];
        let avg = average_by_model(&rows);
        assert_eq!(avg.len(), 2);
        assert_eq!(avg[0].0, "A");
        assert!((avg[0].1.m_tv - 1.5).abs() < 1e-12);
        assert!((avg[1].1.m_tv - 3.0).abs() < 1e-12);
    }
}
