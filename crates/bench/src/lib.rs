//! Benchmark harness: one `repro_*` binary per table/figure of the
//! paper (see DESIGN.md §4 for the experiment index), plus Criterion
//! microbenches under `benches/`.
//!
//! Shared machinery:
//!
//! * [`scale`] — `--fast` / `--full` presets controlling dataset size
//!   and training budget.
//! * [`models`] — a uniform wrapper over SpectraGAN, its ablation
//!   variants and the four baselines.
//! * [`eval`] — the leave-one-city-out protocol of §4.1 and the five
//!   fidelity metrics.
//! * [`report`] — fixed-width table printing plus JSON dumps under
//!   `repro_out/`.

pub mod data;
pub mod eval;
pub mod models;
pub mod report;
pub mod scale;

pub use eval::{
    average_by_model, evaluate_pair, leave_one_out, train_and_generate, FoldResult, MetricSet,
};
pub use models::{ModelKind, TrainedModel};
pub use report::{print_table, write_csv, write_json, MetricRecord, OutDir};
pub use scale::{parse_scale, Scale};
