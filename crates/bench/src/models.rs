//! Uniform wrapper over every generative model under evaluation.

use crate::scale::Scale;
use spectragan_baselines::conv3d_lstm::Conv3dLstmConfig;
use spectragan_baselines::doppelganger::DoppelGangerConfig;
use spectragan_baselines::pix2pix::Pix2PixConfig;
use spectragan_baselines::{
    BaselineTrainConfig, Conv3dLstmLite, DoppelGangerLite, Fdas, Pix2PixLite,
};
use spectragan_core::{SpectraGan, SpectraGanConfig, TrainConfig, Variant};
use spectragan_geo::{City, ContextMap, TrafficMap};

/// Which model to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// The full SpectraGAN.
    SpectraGan,
    /// SpectraGAN− (pixel-level context only; Table 4).
    SpectraGanMinus,
    /// Spec-only ablation (Table 5).
    SpecOnly,
    /// Time-only ablation (Table 5).
    TimeOnly,
    /// Time-only+ ablation (Table 5).
    TimeOnlyPlus,
    /// FDAS baseline.
    Fdas,
    /// Pix2Pix baseline.
    Pix2Pix,
    /// DoppelGANger baseline.
    DoppelGanger,
    /// Conv{3D+LSTM} baseline.
    Conv3dLstm,
}

impl ModelKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::SpectraGan => "SpectraGAN",
            ModelKind::SpectraGanMinus => "SpectraGAN-",
            ModelKind::SpecOnly => "Spec-only",
            ModelKind::TimeOnly => "Time-only",
            ModelKind::TimeOnlyPlus => "Time-only+",
            ModelKind::Fdas => "FDAS",
            ModelKind::Pix2Pix => "Pix2Pix",
            ModelKind::DoppelGanger => "DoppelGANger",
            ModelKind::Conv3dLstm => "Conv{3D+LSTM}",
        }
    }

    /// The four methods of Table 2/3.
    pub fn headline() -> [ModelKind; 4] {
        [
            ModelKind::SpectraGan,
            ModelKind::Pix2Pix,
            ModelKind::DoppelGanger,
            ModelKind::Conv3dLstm,
        ]
    }
}

/// A trained model ready to generate.
pub enum TrainedModel {
    /// Any SpectraGAN variant.
    Spectra(Box<SpectraGan>),
    /// FDAS.
    Fdas(Fdas),
    /// Pix2Pix-lite.
    Pix2Pix(Box<Pix2PixLite>),
    /// DoppelGANger-lite.
    DoppelGanger(Box<DoppelGangerLite>),
    /// Conv{3D+LSTM}-lite.
    Conv3dLstm(Box<Conv3dLstmLite>),
}

impl TrainedModel {
    /// Trains `kind` on (the first training week of) `cities` at the
    /// given scale.
    pub fn train(kind: ModelKind, cities: &[City], scale: &Scale, seed: u64) -> TrainedModel {
        // All models train on the first week only (§4.1 protocol).
        let train_len = scale.train_len();
        let training: Vec<City> = cities
            .iter()
            .map(|c| City {
                name: c.name.clone(),
                traffic: c.traffic.slice_time(0, train_len.min(c.traffic.len_t())),
                context: c.context.clone(),
            })
            .collect();
        let btc = BaselineTrainConfig {
            steps: scale.train_steps,
            batch: scale.batch,
            lr: scale.lr,
            seed,
        };
        match kind {
            ModelKind::SpectraGan
            | ModelKind::SpectraGanMinus
            | ModelKind::SpecOnly
            | ModelKind::TimeOnly
            | ModelKind::TimeOnlyPlus => {
                let variant = match kind {
                    ModelKind::SpectraGanMinus => Variant::PixelContext,
                    ModelKind::SpecOnly => Variant::SpecOnly,
                    ModelKind::TimeOnly => Variant::TimeOnly,
                    ModelKind::TimeOnlyPlus => Variant::TimeOnlyPlus,
                    _ => Variant::Full,
                };
                let cfg = SpectraGanConfig {
                    train_len,
                    ..SpectraGanConfig::default_hourly()
                }
                .with_variant(variant);
                let mut model = SpectraGan::new(cfg, seed);
                let tc = TrainConfig {
                    steps: scale.train_steps,
                    batch_patches: scale.batch,
                    lr: scale.lr,
                    seed,
                };
                model
                    .train(&training, &tc)
                    .expect("SpectraGAN training failed");
                TrainedModel::Spectra(Box::new(model))
            }
            ModelKind::Fdas => TrainedModel::Fdas(Fdas::fit(&training, scale.steps_per_hour)),
            ModelKind::Pix2Pix => {
                let mut model = Pix2PixLite::new(Pix2PixConfig::default_hourly(), seed);
                model.train(&training, &btc);
                TrainedModel::Pix2Pix(Box::new(model))
            }
            ModelKind::DoppelGanger => {
                let cfg = DoppelGangerConfig {
                    train_len,
                    ..DoppelGangerConfig::default_hourly()
                };
                let mut model = DoppelGangerLite::new(cfg, seed);
                model.train(&training, &btc);
                TrainedModel::DoppelGanger(Box::new(model))
            }
            ModelKind::Conv3dLstm => {
                let cfg = Conv3dLstmConfig {
                    train_len,
                    ..Conv3dLstmConfig::default_hourly()
                };
                let mut model = Conv3dLstmLite::new(cfg, seed);
                model.train(&training, &btc);
                TrainedModel::Conv3dLstm(Box::new(model))
            }
        }
    }

    /// Generates `t_out` steps for a target context.
    pub fn generate(&self, ctx: &ContextMap, t_out: usize, seed: u64) -> TrafficMap {
        match self {
            TrainedModel::Spectra(m) => m.generate(ctx, t_out, seed),
            TrainedModel::Fdas(m) => m.generate(ctx, t_out, seed),
            TrainedModel::Pix2Pix(m) => m.generate(ctx, t_out, seed),
            TrainedModel::DoppelGanger(m) => m.generate(ctx, t_out, seed),
            TrainedModel::Conv3dLstm(m) => m.generate(ctx, t_out, seed),
        }
    }
}
