//! Table printing and JSON result dumps.
//!
//! Every `repro_*` binary prints the paper-style table to stdout and
//! writes a machine-readable copy under `repro_out/` so EXPERIMENTS.md
//! can be regenerated from artifacts.

use crate::eval::MetricSet;
use serde::Serialize;
use std::fs;
use std::path::{Path, PathBuf};

/// Output directory handling for reproduction artifacts.
pub struct OutDir(PathBuf);

impl OutDir {
    /// Creates (if needed) and returns `repro_out/` relative to the
    /// workspace root or current directory.
    pub fn create() -> OutDir {
        let dir = PathBuf::from("repro_out");
        fs::create_dir_all(&dir).expect("create repro_out/");
        OutDir(dir)
    }

    /// Path of a file inside the output directory.
    pub fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

/// Serializes `value` as pretty JSON into `repro_out/<name>`.
pub fn write_json<T: Serialize>(out: &OutDir, name: &str, value: &T) {
    let path = out.path(name);
    let json = serde_json::to_string_pretty(value).expect("serialize result");
    fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

/// Prints a Table 2/3-style metric table.
pub fn print_table(title: &str, rows: &[(String, MetricSet)]) {
    println!("\n{title}");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Method", "M-TV↓", "SSIM↑", "AC-L1↓", "TSTR↑", "FVD↓"
    );
    for (name, m) in rows {
        println!(
            "{:<16} {:>8.4} {:>8.3} {:>8.1} {:>8.3} {:>8}",
            name,
            m.m_tv,
            m.ssim,
            m.ac_l1,
            m.tstr,
            m.fvd
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".into())
        );
    }
}

/// Writes a simple CSV file (header + rows) — used by the figure
/// binaries so the series can be plotted externally.
pub fn write_csv(path: &Path, header: &str, rows: impl Iterator<Item = String>) {
    let mut body = String::from(header);
    body.push('\n');
    for r in rows {
        body.push_str(&r);
        body.push('\n');
    }
    fs::write(path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

// Serialization helper so MetricSet can be dumped without a serde
// derive on the eval type (kept plain for copy semantics).
#[derive(Serialize)]
pub struct MetricRecord {
    /// Model name.
    pub model: String,
    /// Test city ("avg" for aggregate rows).
    pub city: String,
    /// M-TV.
    pub m_tv: f64,
    /// SSIM.
    pub ssim: f64,
    /// AC-L1.
    pub ac_l1: f64,
    /// TSTR R².
    pub tstr: f64,
    /// FVD (if computed).
    pub fvd: Option<f64>,
}

impl MetricRecord {
    /// Builds a record from a metric set.
    pub fn new(model: &str, city: &str, m: &MetricSet) -> Self {
        MetricRecord {
            model: model.to_string(),
            city: city.to_string(),
            m_tv: m.m_tv,
            ssim: m.ssim,
            ac_l1: m.ac_l1,
            tstr: m.tstr,
            fvd: m.fvd,
        }
    }
}
