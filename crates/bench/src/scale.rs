//! Experiment scale presets.
//!
//! The paper's experiments ran on GPU days; the harness defaults to a
//! CPU-sized `fast` preset that preserves the protocol (leave-one-
//! city-out, 1 training week → 3 generated weeks) at reduced grid
//! sizes and training budgets. `--full` raises budgets for overnight
//! runs; absolute metric values shift but rankings are the point
//! (EXPERIMENTS.md discusses shape agreement).

use spectragan_synthdata::DatasetConfig;

/// Scale preset for a harness run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Dataset configuration (weeks, granularity, city size).
    pub weeks: usize,
    /// Steps per hour of the dataset.
    pub steps_per_hour: usize,
    /// City size multiplier.
    pub size_scale: f64,
    /// Training steps for the neural models.
    pub train_steps: usize,
    /// Minibatch size (patches or pixel groups).
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Cap on the number of leave-one-out folds (`usize::MAX` = all).
    pub max_folds: usize,
    /// Generated duration in weeks (the paper generates 3).
    pub gen_weeks: usize,
}

impl Scale {
    /// Default CPU-friendly preset.
    pub fn fast() -> Self {
        Scale {
            weeks: 4,
            steps_per_hour: 1,
            size_scale: 0.5,
            train_steps: 60,
            batch: 3,
            lr: 2e-3,
            max_folds: 3,
            gen_weeks: 3,
        }
    }

    /// Heavier preset: all folds, longer training.
    pub fn full() -> Self {
        Scale {
            max_folds: usize::MAX,
            train_steps: 200,
            ..Scale::fast()
        }
    }

    /// The dataset configuration for this scale.
    pub fn dataset(&self) -> DatasetConfig {
        DatasetConfig {
            weeks: self.weeks,
            steps_per_hour: self.steps_per_hour,
            size_scale: self.size_scale,
        }
    }

    /// Training-series length in steps (1 week).
    pub fn train_len(&self) -> usize {
        7 * 24 * self.steps_per_hour
    }

    /// Generated-series length in steps.
    pub fn gen_len(&self) -> usize {
        self.gen_weeks * self.train_len()
    }
}

/// Parses `--fast` (default) / `--full` plus an optional
/// `--folds N` override from CLI args.
pub fn parse_scale(args: &[String]) -> Scale {
    let mut scale = if args.iter().any(|a| a == "--full") {
        Scale::full()
    } else {
        Scale::fast()
    };
    if let Some(pos) = args.iter().position(|a| a == "--folds") {
        if let Some(n) = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
            scale.max_folds = n;
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--steps") {
        if let Some(n) = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
            scale.train_steps = n;
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--lr") {
        if let Some(v) = args.get(pos + 1).and_then(|v| v.parse::<f32>().ok()) {
            scale.lr = v;
        }
    }
    scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_budget() {
        assert!(Scale::full().train_steps > Scale::fast().train_steps);
        assert_eq!(Scale::fast().train_len(), 168);
        assert_eq!(Scale::fast().gen_len(), 504);
    }

    #[test]
    fn parse_overrides() {
        let args: Vec<String> = ["--full", "--folds", "2", "--steps", "13"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let s = parse_scale(&args);
        assert_eq!(s.max_folds, 2);
        assert_eq!(s.train_steps, 13);
        let fast = parse_scale(&[]);
        assert_eq!(fast, Scale::fast());
    }
}
