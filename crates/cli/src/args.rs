//! A small, dependency-free argument parser: subcommand + `--flag
//! value` pairs + boolean `--switch`es.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: the subcommand and its options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// First positional token (the subcommand), if any.
    pub command: Option<String>,
    /// `--key value` options.
    options: BTreeMap<String, String>,
    /// `--switch` flags that take no value.
    switches: Vec<String>,
}

/// Errors from argument parsing and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` appeared where its value was expected.
    MissingValue(String),
    /// A required option is absent.
    Required(String),
    /// A value failed to parse.
    BadValue {
        flag: String,
        value: String,
        expected: &'static str,
    },
    /// Unexpected extra positional argument.
    UnexpectedPositional(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "--{flag} expects a value"),
            ArgError::Required(flag) => write!(f, "--{flag} is required"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag} got '{value}', expected {expected}")
            }
            ArgError::UnexpectedPositional(tok) => {
                write!(f, "unexpected argument '{tok}'")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Flags that never take a value.
const SWITCHES: &[&str] = &["csv", "full", "help", "noise", "op-stats", "quiet"];

impl Args {
    /// Parses tokens (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(flag) = tok.strip_prefix("--") {
                if SWITCHES.contains(&flag) {
                    out.switches.push(flag.to_string());
                    continue;
                }
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = iter.next().expect("peeked");
                        out.options.insert(flag.to_string(), v);
                    }
                    _ => return Err(ArgError::MissingValue(flag.to_string())),
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                return Err(ArgError::UnexpectedPositional(tok));
            }
        }
        Ok(out)
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// An optional string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A required string option.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError::Required(name.into()))
    }

    /// An optional parsed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse::<T>().map_err(|_| ArgError::BadValue {
                flag: name.into(),
                value: v.into(),
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_subcommand_options_and_switches() {
        let a = Args::parse(toks("train --steps 200 --out m.json --full")).unwrap();
        assert_eq!(a.command.as_deref(), Some("train"));
        assert_eq!(a.get("steps"), Some("200"));
        assert_eq!(a.get("out"), Some("m.json"));
        assert!(a.switch("full"));
        assert!(!a.switch("csv"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert_eq!(
            Args::parse(toks("train --steps --out m.json")).unwrap_err(),
            ArgError::MissingValue("steps".into())
        );
        assert_eq!(
            Args::parse(toks("train --steps")).unwrap_err(),
            ArgError::MissingValue("steps".into())
        );
    }

    #[test]
    fn extra_positional_is_an_error() {
        assert!(matches!(
            Args::parse(toks("train extra")).unwrap_err(),
            ArgError::UnexpectedPositional(_)
        ));
    }

    #[test]
    fn typed_access() {
        let a = Args::parse(toks("x --steps 12 --lr 0.01")).unwrap();
        assert_eq!(a.get_parsed("steps", 0usize, "integer").unwrap(), 12);
        assert_eq!(a.get_parsed("lr", 0.0f32, "float").unwrap(), 0.01);
        assert_eq!(a.get_parsed("missing", 7usize, "integer").unwrap(), 7);
        assert!(a.get_parsed::<usize>("lr", 0, "integer").is_err());
        assert!(a.require("nope").is_err());
    }
}
