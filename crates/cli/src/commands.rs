//! The CLI subcommands. Each takes parsed [`Args`] and returns a
//! human-readable error on failure; `main` maps that to exit codes.

use crate::args::Args;
use crate::dataset_dir::{read_dataset, write_dataset};
use spectragan_core::{
    checkpoint, weights, SpectraGan, SpectraGanConfig, TrainConfig, TrainOptions, Variant,
};
use spectragan_geo::io::{atomic_write, load_context, load_traffic, save_traffic, traffic_to_csv};
use spectragan_metrics::{ac_l1, fvd, m_emd, m_tv, ssim_mean_maps, tstr_r2};
use spectragan_obs as obs;
use spectragan_synthdata::{country1, country2, DatasetConfig};
use std::fs;
use std::path::Path;

/// `spectragan dataset --out DIR [--country 1|2|all] [--weeks N]
/// [--granularity 60|30|15] [--scale F]` — materialize the synthetic
/// corpus as a dataset directory.
pub fn cmd_dataset(args: &Args) -> Result<(), String> {
    let out = Path::new(args.require("out").map_err(|e| e.to_string())?);
    let weeks = args
        .get_parsed("weeks", 4usize, "integer")
        .map_err(|e| e.to_string())?;
    let scale = args
        .get_parsed("scale", 0.5f64, "float")
        .map_err(|e| e.to_string())?;
    let granularity = args
        .get_parsed("granularity", 60usize, "minutes (60, 30 or 15)")
        .map_err(|e| e.to_string())?;
    let steps_per_hour = match granularity {
        60 => 1,
        30 => 2,
        15 => 4,
        other => {
            return Err(format!(
                "unsupported granularity {other} (use 60, 30 or 15)"
            ))
        }
    };
    let ds = DatasetConfig {
        weeks,
        steps_per_hour,
        size_scale: scale,
    };
    let cities = match args.get("country").unwrap_or("all") {
        "1" => country1(&ds),
        "2" => country2(&ds),
        "all" => {
            let mut c = country1(&ds);
            c.extend(country2(&ds));
            c
        }
        other => return Err(format!("unknown country '{other}' (use 1, 2 or all)")),
    };
    write_dataset(out, &cities, steps_per_hour)?;
    println!(
        "wrote {} cities ({} weeks at {}-min steps) to {}",
        cities.len(),
        weeks,
        granularity,
        out.display()
    );
    Ok(())
}

fn parse_variant(name: &str) -> Result<Variant, String> {
    Ok(match name {
        "full" => Variant::Full,
        "spec-only" => Variant::SpecOnly,
        "time-only" => Variant::TimeOnly,
        "time-only-plus" => Variant::TimeOnlyPlus,
        "pixel-context" => Variant::PixelContext,
        other => return Err(format!("unknown variant '{other}'")),
    })
}

/// `spectragan train --data DIR --out MODEL [--steps N] [--lr F]
/// [--variant V] [--holdout CITY] [--seed N] [--run-dir DIR]
/// [--checkpoint-every N] [--resume RUN_DIR]` — train on a dataset
/// directory (first week of each city), optionally writing crash-safe
/// checkpoints, or resume a killed run from its last checkpoint
/// (bit-identical to an uninterrupted run).
pub fn cmd_train(args: &Args) -> Result<(), String> {
    let data = Path::new(args.require("data").map_err(|e| e.to_string())?);
    let out = args.require("out").map_err(|e| e.to_string())?;

    // Resume restores every hyper-parameter from the checkpoint; a
    // fresh run takes them from flags. `--steps` may extend a resumed
    // run; other conflicting flags are rejected by validate_against.
    let resume = match args.get("resume") {
        None => None,
        Some(dir) => {
            let run_dir = Path::new(dir);
            let found = checkpoint::latest(run_dir)
                .map_err(|e| e.to_string())?
                .ok_or_else(|| format!("no checkpoint to resume in {dir}"))?;
            for (path, why) in &found.skipped {
                // One structured line per fallback, machine-parseable
                // by log shippers; the matching fleet counter
                // (spectragan_checkpoint_fallbacks_total) is bumped
                // inside checkpoint::latest.
                let event = serde_json::json!({
                    "event": "checkpoint_fallback",
                    "path": path.display().to_string(),
                    "reason": why,
                    "resumed_from": found.path.display().to_string(),
                });
                eprintln!(
                    "{}",
                    serde_json::to_string(&event).unwrap_or_else(|_| format!(
                        "warning: skipped corrupt checkpoint {} ({why})",
                        path.display()
                    ))
                );
            }
            Some((run_dir, found))
        }
    };

    let (manifest, mut cities) = read_dataset(data)?;
    let (cfg, mut tc) = match &resume {
        Some((_, found)) => (found.checkpoint.config, found.checkpoint.train),
        None => {
            let variant = parse_variant(args.get("variant").unwrap_or("full"))?;
            let train_len = 7 * 24 * manifest.steps_per_hour;
            let cfg = SpectraGanConfig {
                train_len,
                ..SpectraGanConfig::default_hourly()
            }
            .with_variant(variant);
            let tc = TrainConfig {
                steps: args
                    .get_parsed("steps", 200usize, "integer")
                    .map_err(|e| e.to_string())?,
                batch_patches: 3,
                lr: args
                    .get_parsed("lr", 2e-3f32, "float")
                    .map_err(|e| e.to_string())?,
                seed: args
                    .get_parsed("seed", 0u64, "integer")
                    .map_err(|e| e.to_string())?,
            };
            (cfg, tc)
        }
    };
    if resume.is_some() {
        // Only an explicit --steps overrides the checkpointed target
        // (extension or early finish); defaults must not.
        if let Some(steps) = args.get("steps") {
            tc.steps = steps
                .parse()
                .map_err(|_| format!("--steps got '{steps}', expected integer"))?;
        }
    }

    if let Some(holdout) = args.get("holdout") {
        let before = cities.len();
        cities.retain(|c| c.name != holdout);
        if cities.len() == before {
            return Err(format!("holdout city '{holdout}' not in dataset"));
        }
    }
    let train_len = cfg.train_len;
    let training: Vec<_> = cities
        .iter()
        .map(|c| spectragan_geo::City {
            name: c.name.clone(),
            traffic: c.traffic.slice_time(0, train_len.min(c.traffic.len_t())),
            context: c.context.clone(),
        })
        .collect();

    let mut model = match &resume {
        Some((_, found)) => {
            SpectraGan::from_checkpoint(&found.checkpoint).map_err(|e| e.to_string())?
        }
        None => SpectraGan::new(cfg, tc.seed),
    };

    let run_dir = match (&resume, args.get("run-dir")) {
        (Some((dir, _)), _) => Some(*dir),
        (None, Some(dir)) => Some(Path::new(dir)),
        (None, None) => None,
    };
    let opts = TrainOptions {
        run_dir,
        checkpoint_every: args
            .get_parsed("checkpoint-every", 25usize, "integer")
            .map_err(|e| e.to_string())?,
        resume_from: resume.as_ref().map(|(_, found)| &found.checkpoint),
        guard_grad_norm: args
            .get_parsed("guard-grad-norm", 1e4f32, "float")
            .map_err(|e| e.to_string())?,
        guard_max_retries: args
            .get_parsed("guard-max-retries", 3u32, "integer")
            .map_err(|e| e.to_string())?,
        // Crash injection for the kill/resume end-to-end test.
        abort_at_step: args
            .get_parsed("abort-at-step", 0usize, "integer")
            .map(|s| if s == 0 { None } else { Some(s) })
            .map_err(|e| e.to_string())?,
        op_stats: args.switch("op-stats"),
        obs: false,
        trace: args.get("trace").map(Path::new),
        metrics_snapshot: args.get("metrics-snapshot").map(Path::new),
        // Shard topology is free to change across resumes (it never
        // changes the math); the flag wins, then SPECTRAGAN_SHARDS.
        shards: match args.get("shards") {
            Some(s) => {
                let n: usize = s
                    .parse()
                    .map_err(|_| format!("--shards got '{s}', expected integer"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".into());
                }
                n
            }
            None => spectragan_tensor::envctl::shards(),
        },
        // Accumulation is part of the step arithmetic: a resumed run
        // inherits the checkpoint's value unless overridden (train_with
        // rejects a mismatch).
        grad_accum: match (args.get("grad-accum"), &resume) {
            (Some(s), _) => {
                let k: usize = s
                    .parse()
                    .map_err(|_| format!("--grad-accum got '{s}', expected integer"))?;
                if k == 0 {
                    return Err("--grad-accum must be at least 1".into());
                }
                k
            }
            (None, Some((_, found))) => found.checkpoint.grad_accum,
            (None, None) => 1,
        },
        // Crash injection for the worker-death end-to-end test.
        kill_worker_at_step: args
            .get_parsed("kill-worker-at-step", 0usize, "integer")
            .map(|s| if s == 0 { None } else { Some(s) })
            .map_err(|e| e.to_string())?,
        force_multiprocess: false,
    };
    if !args.switch("quiet") {
        match &resume {
            Some((dir, found)) => println!(
                "resuming from {} at step {} ({} steps total)…",
                dir.display(),
                found.checkpoint.step,
                tc.steps
            ),
            None => println!(
                "training {:?} on {} cities, {} steps (T = {train_len})…",
                cfg.variant,
                training.len(),
                tc.steps
            ),
        }
    }
    let stats = model
        .train_with(&training, &tc, &opts)
        .map_err(|e| e.to_string())?;
    atomic_write(Path::new(out), model.to_model_json().as_bytes())
        .map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "saved {out} (final L1 {:.4})",
        stats.l1.last().copied().unwrap_or(f32::NAN)
    );
    Ok(())
}

/// Parses `--weights-precision` into an optional override.
fn weights_precision_arg(args: &Args) -> Result<Option<weights::Precision>, String> {
    args.get("weights-precision")
        .map(|s| weights::Precision::parse(s).map_err(|e| e.to_string()))
        .transpose()
}

/// `spectragan generate --model MODEL --context FILE.sgcm --hours N
/// --out FILE.sgtm [--seed N] [--gen-batch N] [--csv]
/// [--weights-precision f32|f16|int8]` — generate traffic for a
/// region, reporting throughput and peak buffer memory. MODEL may be
/// a JSON model file or an `SGWT` weight container (detected by
/// magic); `--weights-precision f16` narrows the weights in memory,
/// halving their resident bytes for the run, and `int8` quantizes
/// them (~4× smaller, streamed through the dequantizing GEMM).
pub fn cmd_generate(args: &Args) -> Result<(), String> {
    let model_path = args.require("model").map_err(|e| e.to_string())?;
    let ctx_path = args.require("context").map_err(|e| e.to_string())?;
    let out = args.require("out").map_err(|e| e.to_string())?;
    let hours = args
        .get_parsed("hours", 168usize, "integer")
        .map_err(|e| e.to_string())?;
    let seed = args
        .get_parsed("seed", 0u64, "integer")
        .map_err(|e| e.to_string())?;
    let gen_batch = args
        .get_parsed("gen-batch", 16usize, "integer")
        .map_err(|e| e.to_string())?;
    if gen_batch == 0 {
        return Err("--gen-batch must be at least 1".into());
    }

    let mut model =
        weights::load_model_auto(model_path).map_err(|e| format!("{model_path}: {e}"))?;
    match weights_precision_arg(args)? {
        Some(weights::Precision::F16) if !model.store().has_half_storage() => {
            weights::narrow_to_f16(&mut model);
        }
        Some(weights::Precision::Int8) if !model.store().has_int8_storage() => {
            weights::narrow_to_int8(&mut model);
        }
        _ => {}
    }
    let model = model;
    let context = load_context(ctx_path).map_err(|e| format!("{ctx_path}: {e}"))?;
    let steps_per_hour = {
        // Model train_len is a week; derive granularity from it.
        model.config().train_len / 168
    };
    let t_out = hours * steps_per_hour.max(1);
    let trace = args.get("trace").map(Path::new);
    let metrics_snapshot = args.get("metrics-snapshot").map(Path::new);
    let obs_on = trace.is_some() || metrics_snapshot.is_some();
    let _obs_guard = obs::ObsGuard::new(obs_on);
    let (map, report) = model.generate_batched_report(&context, t_out, seed, true, gen_batch);
    if obs_on {
        let events = obs::drain_events();
        if let Some(path) = trace {
            atomic_write(path, obs::chrome_trace(&events).as_bytes())
                .map_err(|e| format!("write {}: {e}", path.display()))?;
        }
        if let Some(path) = metrics_snapshot {
            atomic_write(path, obs::prometheus_snapshot().as_bytes())
                .map_err(|e| format!("write {}: {e}", path.display()))?;
        }
    }
    let wall = report.wall_s;
    let peak_mib = report.peak_arena_bytes as f64 / (1024.0 * 1024.0);
    let px_steps = (map.len_t() * map.height() * map.width()) as f64;
    if args.switch("csv") {
        atomic_write(Path::new(out), traffic_to_csv(&map).as_bytes())
            .map_err(|e| format!("write {out}: {e}"))?;
    } else {
        save_traffic(&map, out).map_err(|e| format!("write {out}: {e}"))?;
    }
    println!(
        "generated {}×{}×{} traffic → {out}",
        map.len_t(),
        map.height(),
        map.width()
    );
    println!(
        "  {:.2} s, {:.2} Mpx·steps/s, peak buffers {:.1} MiB (gen-batch {gen_batch})",
        wall,
        px_steps / wall / 1e6,
        peak_mib
    );
    Ok(())
}

/// `spectragan serve --models DIR [--addr HOST:PORT] [--workers N]
/// [--queue-depth N] [--budget-mib N] [--max-hours N]` — long-running
/// multi-city generation server. Blocks until SIGTERM/SIGINT, then
/// drains in-flight requests before exiting.
pub fn cmd_serve(args: &Args) -> Result<(), String> {
    let models = args.require("models").map_err(|e| e.to_string())?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7077");
    let mut cfg = spectragan_serve::ServeConfig::new(addr, models);
    cfg.workers = args
        .get_parsed("workers", cfg.workers, "integer")
        .map_err(|e| e.to_string())?;
    cfg.queue_depth = args
        .get_parsed("queue-depth", cfg.queue_depth, "integer")
        .map_err(|e| e.to_string())?;
    let budget_mib: usize = args
        .get_parsed("budget-mib", 2048usize, "integer")
        .map_err(|e| e.to_string())?;
    cfg.arena_budget_bytes = budget_mib << 20;
    let max_hours: usize = args
        .get_parsed("max-hours", 24 * 366, "integer")
        .map_err(|e| e.to_string())?;
    cfg.max_t_out = max_hours; // hourly models; sub-hourly caps are stricter
    cfg.weights_precision = weights_precision_arg(args)?;

    let workers = cfg.workers;
    let server = spectragan_serve::Server::bind(cfg).map_err(|e| e.to_string())?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    let handle = server.handle();
    println!(
        "serving models from {models} on http://{bound} (workers {workers}, budget {budget_mib} MiB)"
    );
    println!("endpoints: POST /generate · GET /healthz /metrics /cities");

    // SIGTERM/SIGINT → graceful drain. The handler only sets a flag;
    // this monitor thread turns it into a shutdown request.
    spectragan_serve::signal::install_handlers();
    std::thread::spawn(move || loop {
        if spectragan_serve::signal::terminated() {
            handle.shutdown();
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
    server.run().map_err(|e| e.to_string())?;
    println!("drained in-flight requests, shut down cleanly");
    Ok(())
}

/// `spectragan export-weights --model MODEL --out FILE.sgwt
/// [--precision f32|f16|int8]` — convert a model (JSON or SGWT) into
/// an `SGWT` weight container: checksummed, 64-byte-aligned raw
/// tensor sections that `generate` and `serve` open zero-copy via
/// mmap. `--precision f16` stores half-precision sections, halving
/// both the file and the resident serving footprint; `--precision
/// int8` stores symmetric-absmax-quantized sections with per-row
/// scales in the directory (~4× smaller than f32, biases stay f32).
pub fn cmd_export_weights(args: &Args) -> Result<(), String> {
    let model_path = args.require("model").map_err(|e| e.to_string())?;
    let out = args.require("out").map_err(|e| e.to_string())?;
    let precision = args
        .get("precision")
        .map(weights::Precision::parse)
        .transpose()
        .map_err(|e| e.to_string())?
        .unwrap_or(weights::Precision::F32);
    let model = weights::load_model_auto(model_path).map_err(|e| format!("{model_path}: {e}"))?;
    weights::save_weights(&model, out, precision).map_err(|e| e.to_string())?;
    let store = weights::WeightStore::open(out).map_err(|e| e.to_string())?;
    println!(
        "exported {} layers ({} weights, {} section bytes, {}) → {out}",
        store.len(),
        model.store().num_weights(),
        store.section_bytes(),
        precision.name()
    );
    Ok(())
}

/// `spectragan evaluate --real FILE --synth FILE [--steps-per-hour N]`
/// — all five fidelity metrics (plus EMD) between two traffic files.
pub fn cmd_evaluate(args: &Args) -> Result<(), String> {
    let real_path = args.require("real").map_err(|e| e.to_string())?;
    let synth_path = args.require("synth").map_err(|e| e.to_string())?;
    let sph = args
        .get_parsed("steps-per-hour", 1usize, "integer")
        .map_err(|e| e.to_string())?;
    let real = load_traffic(real_path).map_err(|e| format!("{real_path}: {e}"))?;
    let synth = load_traffic(synth_path).map_err(|e| format!("{synth_path}: {e}"))?;
    if (real.height(), real.width()) != (synth.height(), synth.width()) {
        return Err("maps cover different grids".into());
    }
    let t = real.len_t().min(synth.len_t());
    let real = real.slice_time(0, t);
    let synth = synth.slice_time(0, t);
    println!("M-TV   {:.4}  (lower better)", m_tv(&real, &synth));
    println!("M-EMD  {:.4}  (lower better)", m_emd(&real, &synth));
    println!(
        "SSIM   {:.4}  (higher better)",
        ssim_mean_maps(&real, &synth)
    );
    println!("AC-L1  {:.2}  (lower better)", ac_l1(&real, &synth, t));
    println!("TSTR   {:.4}  (higher better)", tstr_r2(&real, &synth, sph));
    println!("FVD    {:.4}  (lower better)", fvd(&real, &synth, sph));
    Ok(())
}

/// `spectragan info --file PATH` — describe a map or model file.
pub fn cmd_info(args: &Args) -> Result<(), String> {
    let path = args.require("file").map_err(|e| e.to_string())?;
    if path.ends_with(".sgtm") {
        let m = load_traffic(path).map_err(|e| format!("{path}: {e}"))?;
        let series = m.city_series();
        println!(
            "traffic map: {} steps × {}×{} pixels",
            m.len_t(),
            m.height(),
            m.width()
        );
        println!(
            "  city-mean traffic: min {:.4}, max {:.4}",
            series.iter().cloned().fold(f64::INFINITY, f64::min),
            series.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        );
    } else if path.ends_with(".sgcm") {
        let m = load_context(path).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "context map: {} attributes × {}×{} pixels",
            m.channels(),
            m.height(),
            m.width()
        );
    } else if path.ends_with(".sgwt") {
        let store = weights::WeightStore::open(path).map_err(|e| format!("{path}: {e}"))?;
        store.validate_all().map_err(|e| format!("{path}: {e}"))?;
        let cfg = store.config();
        println!(
            "SGWT weight container: variant {:?}, {} precision",
            cfg.variant,
            store.precision().name()
        );
        println!(
            "  T = {}, {} layers, {} section bytes{}",
            cfg.train_len,
            store.len(),
            store.section_bytes(),
            if store.is_mapped() {
                ", memory-mapped"
            } else {
                ""
            }
        );
    } else {
        let json = fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let model = SpectraGan::from_model_json(&json).map_err(|e| e.to_string())?;
        let cfg = model.config();
        println!("SpectraGAN model: variant {:?}", cfg.variant);
        println!(
            "  T = {}, patch {}/{} (traffic/context), {} weights",
            cfg.train_len,
            cfg.patch_traffic,
            cfg.patch_context(),
            model.store().num_weights()
        );
    }
    Ok(())
}

/// Usage text.
pub const USAGE: &str = "\
spectragan — spectrum-based generation of city-scale mobile traffic

USAGE:
  spectragan dataset  --out DIR [--country 1|2|all] [--weeks N] [--granularity 60|30|15] [--scale F]
  spectragan train    --data DIR --out MODEL.json [--steps N] [--lr F] [--variant V] [--holdout CITY] [--seed N] [--quiet]
                      [--run-dir DIR] [--checkpoint-every N] [--guard-grad-norm F] [--guard-max-retries N] [--op-stats]
                      [--shards N] [--grad-accum K] [--trace TRACE.json] [--metrics-snapshot FILE.prom]
  spectragan train    --data DIR --out MODEL.json --resume RUN_DIR [--steps N] [--holdout CITY] [--quiet]
  spectragan generate --model MODEL --context FILE.sgcm --hours N --out FILE.sgtm [--seed N] [--gen-batch N] [--csv]
                      [--weights-precision f32|f16|int8] [--trace TRACE.json] [--metrics-snapshot FILE.prom]
  spectragan export-weights --model MODEL --out FILE.sgwt [--precision f32|f16|int8]
  spectragan serve    --models DIR [--addr HOST:PORT] [--workers N] [--queue-depth N] [--budget-mib N] [--max-hours N]
                      [--weights-precision f32|f16|int8]
  spectragan evaluate --real FILE.sgtm --synth FILE.sgtm [--steps-per-hour N]
  spectragan info     --file PATH

Variants: full, spec-only, time-only, time-only-plus, pixel-context.

Checkpointing: with --run-dir, training writes a checksummed snapshot of
the full state (weights, optimizer moments, loss traces) every
--checkpoint-every steps (default 25) plus a per-step train_log.jsonl;
--resume picks up the newest valid snapshot and yields final weights
bit-identical to an uninterrupted run. Steps whose loss goes NaN/inf or
whose gradient norm exceeds --guard-grad-norm are skipped, logged, and
retried with a re-rolled RNG lane (at most --guard-max-retries times).
--op-stats adds a per-op instrumentation table (call counts, wall time,
buffer-pool traffic) to every train_log.jsonl record.

Sharded training: --shards N (or SPECTRAGAN_SHARDS) forks N-1 worker
processes that replicate each step and own slices of the reduced
gradient, exchanged as CRC-framed messages over pipes; any shard count
yields weights bit-identical to --shards 1, workers killed mid-step are
respawned transparently, and the shard topology may change across a
--resume. --grad-accum K averages K minibatch gradients per optimizer
step (K is checkpointed and must match on resume).

Generation streams patch chunks through a bounded in-flight window, so
peak memory is independent of city size and patch overlap; --gen-batch
sets the patches per generator chunk (default 16) and the summary line
reports wall time, Mpx·steps/s and peak buffer MiB.

Weight containers: `export-weights` converts a model into an SGWT
container — checksummed, 64-byte-aligned raw tensor sections behind a
CRC-verified directory. `generate` and `serve` detect SGWT files by
magic, open them zero-copy via mmap (layers are read on first touch)
and fall back to buffered reads where mmap is unavailable. f16
containers (and --weights-precision f16) halve resident weight bytes;
int8 containers (and --weights-precision int8) quantize matrices with
per-row absmax scales for ~4x smaller residency, streamed through a
dequantizing GEMM (generation-only: training always runs f32); f32
containers generate bit-identically to the JSON model file.

Serving: `serve` runs a long-lived multi-city generation server over
HTTP/1.1. The models directory holds one `<city>.sgcm` context per city
plus shared `model.sgwt` / `model.json` weights (or per-city
`<city>.sgwt` / `<city>.json`; SGWT wins at each tier). GET /cities
reports each city's load state and resident weight bytes. POST
/generate with {\"city\", \"t_out\", \"seed\", \"gen_batch\", \"format\"}
streams SGBD band frames over chunked transfer-encoding (format
\"bands\", the default) or returns one SGTM body byte-identical to the
offline `generate` output (format \"sgtm\"). Requests beyond the
--budget-mib admission budget are shed with 503 + Retry-After; /metrics
exposes Prometheus counters; SIGTERM drains in-flight requests.

Observability: --trace writes a Chrome trace-event JSON (load it in
Perfetto or chrome://tracing) covering the span tree of the run; and
--metrics-snapshot writes a Prometheus text snapshot of all counters,
gauges and histograms. For train, spans are also aggregated per step
into train_log.jsonl and a metrics.prom is dropped in the run dir.
Instrumentation never changes numerics: outputs stay bit-identical.
";
