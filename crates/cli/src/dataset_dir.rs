//! Dataset directories: a manifest plus one SGTM/SGCM file pair per
//! city — the on-disk currency the CLI subcommands exchange.

use serde::{Deserialize, Serialize};
use spectragan_geo::io::{atomic_write, load_context, load_traffic, save_context, save_traffic};
use spectragan_geo::City;
use std::fs;
use std::path::Path;

/// One manifest entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestCity {
    /// Display name.
    pub name: String,
    /// Traffic file, relative to the manifest.
    pub traffic: String,
    /// Context file, relative to the manifest.
    pub context: String,
}

/// The dataset manifest (`manifest.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// Steps per hour of the traffic series.
    pub steps_per_hour: usize,
    /// The cities in the dataset.
    pub cities: Vec<ManifestCity>,
}

/// Writes `cities` into `dir` (created if needed): binary map files
/// plus `manifest.json`.
pub fn write_dataset(dir: &Path, cities: &[City], steps_per_hour: usize) -> Result<(), String> {
    fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let mut manifest = Manifest {
        steps_per_hour,
        cities: Vec::new(),
    };
    for city in cities {
        let stem = city.name.to_lowercase().replace(' ', "_");
        let traffic_file = format!("{stem}.sgtm");
        let context_file = format!("{stem}.sgcm");
        save_traffic(&city.traffic, dir.join(&traffic_file))
            .map_err(|e| format!("write {traffic_file}: {e}"))?;
        save_context(&city.context, dir.join(&context_file))
            .map_err(|e| format!("write {context_file}: {e}"))?;
        manifest.cities.push(ManifestCity {
            name: city.name.clone(),
            traffic: traffic_file,
            context: context_file,
        });
    }
    let json = serde_json::to_string_pretty(&manifest).expect("manifest serializes");
    atomic_write(dir.join("manifest.json"), json.as_bytes())
        .map_err(|e| format!("write manifest: {e}"))?;
    Ok(())
}

/// Loads every city of a dataset directory.
pub fn read_dataset(dir: &Path) -> Result<(Manifest, Vec<City>), String> {
    let manifest_path = dir.join("manifest.json");
    let json = fs::read_to_string(&manifest_path)
        .map_err(|e| format!("read {}: {e}", manifest_path.display()))?;
    let manifest: Manifest =
        serde_json::from_str(&json).map_err(|e| format!("malformed manifest: {e}"))?;
    let mut cities = Vec::with_capacity(manifest.cities.len());
    for entry in &manifest.cities {
        let traffic = load_traffic(dir.join(&entry.traffic))
            .map_err(|e| format!("{}: {e}", entry.traffic))?;
        let context = load_context(dir.join(&entry.context))
            .map_err(|e| format!("{}: {e}", entry.context))?;
        cities.push(City::new(entry.name.clone(), traffic, context));
    }
    Ok((manifest, cities))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};

    #[test]
    fn dataset_dir_roundtrip() {
        let ds = DatasetConfig {
            weeks: 1,
            steps_per_hour: 1,
            size_scale: 0.35,
        };
        let cities: Vec<City> = (0..2)
            .map(|i| {
                generate_city(
                    &CityConfig {
                        name: format!("CITY {i}"),
                        height: 33,
                        width: 33,
                        seed: i,
                    },
                    &ds,
                )
            })
            .collect();
        let dir = std::env::temp_dir().join("spectragan_cli_ds_test");
        let _ = fs::remove_dir_all(&dir);
        write_dataset(&dir, &cities, 1).unwrap();
        let (manifest, back) = read_dataset(&dir).unwrap();
        assert_eq!(manifest.steps_per_hour, 1);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "CITY 0");
        assert_eq!(back[0].traffic.data(), cities[0].traffic.data());
        assert_eq!(back[1].context.data(), cities[1].context.data());
    }

    #[test]
    fn missing_manifest_is_a_clean_error() {
        let dir = std::env::temp_dir().join("spectragan_cli_missing");
        let _ = fs::remove_dir_all(&dir);
        let err = read_dataset(&dir).unwrap_err();
        assert!(err.contains("manifest.json"), "{err}");
    }
}
