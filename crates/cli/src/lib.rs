//! Library surface of the `spectragan` CLI, exposed so the workflow
//! can be integration-tested without spawning processes.

pub mod args;
pub mod commands;
pub mod dataset_dir;
