//! `spectragan` — the command-line interface of the reproduction.
//!
//! End-to-end workflow:
//!
//! ```text
//! spectragan dataset  --out data/ --country 1
//! spectragan train    --data data/ --out model.json --holdout "CITY A" --steps 400
//! spectragan generate --model model.json --context data/city_a.sgcm --hours 504 --out synth.sgtm
//! spectragan evaluate --real data/city_a.sgtm --synth synth.sgtm
//! ```

use spectragan_cli::args::Args;
use spectragan_cli::commands;
use std::process::ExitCode;

fn main() -> ExitCode {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(tokens) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    if parsed.switch("help") || parsed.command.is_none() {
        print!("{}", commands::USAGE);
        return ExitCode::SUCCESS;
    }
    let result = match parsed.command.as_deref().expect("checked") {
        "dataset" => commands::cmd_dataset(&parsed),
        "train" => commands::cmd_train(&parsed),
        "generate" => commands::cmd_generate(&parsed),
        "export-weights" => commands::cmd_export_weights(&parsed),
        "evaluate" => commands::cmd_evaluate(&parsed),
        "serve" => commands::cmd_serve(&parsed),
        "info" => commands::cmd_info(&parsed),
        other => Err(format!(
            "unknown command \'{other}\'\n\n{}",
            commands::USAGE
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
