//! End-to-end sharded training through the CLI: `train --shards N`
//! must write a model file byte-identical to `--shards 1`, survive a
//! worker SIGKILL mid-run, honor the `SPECTRAGAN_SHARDS` environment
//! fallback, and record the topology in `train_log.jsonl`.
//!
//! This lives in its own integration-test binary (= its own process)
//! because the sharded path forks, and forking is only safe when no
//! unrelated test threads are running.

#![cfg(unix)]

use spectragan_cli::args::Args;
use spectragan_cli::commands::{cmd_dataset, cmd_train};
use spectragan_core::checkpoint;
use std::path::PathBuf;

fn run(cmd: fn(&Args) -> Result<(), String>, argv: &str) -> Result<(), String> {
    let args = Args::parse(argv.split_whitespace().map(String::from)).expect("parse");
    cmd(&args)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("spectragan_cli_sharded");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn sharded_training_is_byte_identical_and_records_topology() {
    let data = tmp("data");
    let single = tmp("single.json");
    let sharded = tmp("sharded.json");
    let run_single = tmp("run_single");
    let run_sharded = tmp("run_sharded");
    let _ = std::fs::remove_dir_all(&run_single);
    let _ = std::fs::remove_dir_all(&run_sharded);

    run(
        cmd_dataset,
        &format!(
            "dataset --out {} --country 2 --weeks 1 --scale 0.3",
            data.display()
        ),
    )
    .unwrap();

    // Sharded run picked up from the environment (no --shards flag),
    // with a worker SIGKILLed mid-run to exercise respawn end to end.
    std::env::set_var("SPECTRAGAN_SHARDS", "2");
    run(
        cmd_train,
        &format!(
            "train --data {} --out {} --steps 4 --run-dir {} --checkpoint-every 0 \
             --kill-worker-at-step 2 --quiet",
            data.display(),
            sharded.display(),
            run_sharded.display()
        ),
    )
    .unwrap();

    // Single-process reference; the explicit flag overrides the env.
    run(
        cmd_train,
        &format!(
            "train --data {} --out {} --steps 4 --run-dir {} --checkpoint-every 0 \
             --shards 1 --quiet",
            data.display(),
            single.display(),
            run_single.display()
        ),
    )
    .unwrap();
    std::env::remove_var("SPECTRAGAN_SHARDS");

    let a = std::fs::read(&single).unwrap();
    let b = std::fs::read(&sharded).unwrap();
    assert_eq!(
        a, b,
        "sharded model file differs from the single-process run"
    );

    // The log records the topology each step ran under.
    let log = checkpoint::read_log(&run_sharded).unwrap();
    assert!(!log.is_empty());
    assert!(log.iter().all(|r| r.shards == 2 && r.grad_accum == 1));
    let log = checkpoint::read_log(&run_single).unwrap();
    assert!(log.iter().all(|r| r.shards == 1));

    // And the checkpoints carry it too.
    let found = checkpoint::latest(&run_sharded).unwrap().unwrap();
    assert_eq!(found.checkpoint.shards, 2);
}
