//! End-to-end CLI workflow: dataset → train → generate → evaluate →
//! info, entirely through the command functions.

use spectragan_cli::args::Args;
use spectragan_cli::commands::{
    cmd_dataset, cmd_evaluate, cmd_export_weights, cmd_generate, cmd_info, cmd_train,
};
use std::path::PathBuf;

fn run(cmd: fn(&Args) -> Result<(), String>, argv: &str) -> Result<(), String> {
    let args = Args::parse(argv.split_whitespace().map(String::from)).expect("parse");
    cmd(&args)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("spectragan_cli_workflow");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn full_workflow_runs() {
    let data = tmp("data");
    let model = tmp("model.json");
    let synth = tmp("synth.sgtm");

    // Tiny dataset: 2 weeks, quarter-scale cities, country 2 (4 cities).
    run(
        cmd_dataset,
        &format!(
            "dataset --out {} --country 2 --weeks 2 --scale 0.35",
            data.display()
        ),
    )
    .unwrap();
    assert!(data.join("manifest.json").exists());
    assert!(data.join("city_1.sgtm").exists());

    // Train briefly, holding out CITY 1.
    run(
        cmd_train,
        &format!(
            "train --data {} --out {} --steps 3 --holdout CITY_1 --quiet",
            data.display(),
            model.display()
        ),
    )
    .unwrap_or_else(|e| {
        // Holdout name contains a space on disk; retry with the manifest name.
        assert!(e.contains("holdout"), "{e}");
    });
    run(
        cmd_train,
        &format!(
            "train --data {} --out {} --steps 3 --quiet",
            data.display(),
            model.display()
        ),
    )
    .unwrap();
    assert!(model.exists());

    // Generate 24 hours for CITY 1's context.
    run(
        cmd_generate,
        &format!(
            "generate --model {} --context {} --hours 24 --out {} --seed 3",
            model.display(),
            data.join("city_1.sgcm").display(),
            synth.display()
        ),
    )
    .unwrap();
    assert!(synth.exists());

    // Evaluate against the real file (truncates to the shorter series).
    run(
        cmd_evaluate,
        &format!(
            "evaluate --real {} --synth {}",
            data.join("city_1.sgtm").display(),
            synth.display()
        ),
    )
    .unwrap();

    // Info on all three artifact kinds.
    for f in [
        data.join("city_1.sgtm"),
        data.join("city_1.sgcm"),
        model.clone(),
    ] {
        run(cmd_info, &format!("info --file {}", f.display())).unwrap();
    }

    // Export to an SGWT container and generate from it: the traffic
    // bytes must match the JSON-model generation exactly.
    let sgwt = tmp("model.sgwt");
    let synth2 = tmp("synth_sgwt.sgtm");
    run(
        cmd_export_weights,
        &format!(
            "export-weights --model {} --out {}",
            model.display(),
            sgwt.display()
        ),
    )
    .unwrap();
    run(cmd_info, &format!("info --file {}", sgwt.display())).unwrap();
    run(
        cmd_generate,
        &format!(
            "generate --model {} --context {} --hours 24 --out {} --seed 3",
            sgwt.display(),
            data.join("city_1.sgcm").display(),
            synth2.display()
        ),
    )
    .unwrap();
    assert_eq!(
        std::fs::read(&synth).unwrap(),
        std::fs::read(&synth2).unwrap(),
        "SGWT generation bytes differ from JSON-model generation"
    );

    // f16 export + half-precision generation still runs end to end.
    let sgwt16 = tmp("model_f16.sgwt");
    let synth16 = tmp("synth_f16.sgtm");
    run(
        cmd_export_weights,
        &format!(
            "export-weights --model {} --out {} --precision f16",
            model.display(),
            sgwt16.display()
        ),
    )
    .unwrap();
    assert!(
        std::fs::metadata(&sgwt16).unwrap().len() < std::fs::metadata(&sgwt).unwrap().len(),
        "f16 container must be smaller than f32"
    );
    run(
        cmd_generate,
        &format!(
            "generate --model {} --context {} --hours 24 --out {} --seed 3",
            sgwt16.display(),
            data.join("city_1.sgcm").display(),
            synth16.display()
        ),
    )
    .unwrap();
    assert!(synth16.exists());
}

#[test]
fn interrupted_training_resumes_to_identical_weights() {
    let data = tmp("resume_data");
    let straight = tmp("straight.json");
    let resumed = tmp("resumed.json");
    let run_dir = tmp("resume_run");
    let _ = std::fs::remove_dir_all(&run_dir);

    run(
        cmd_dataset,
        &format!(
            "dataset --out {} --country 2 --weeks 1 --scale 0.3",
            data.display()
        ),
    )
    .unwrap();

    // Uninterrupted 6-step run.
    run(
        cmd_train,
        &format!(
            "train --data {} --out {} --steps 6 --quiet",
            data.display(),
            straight.display()
        ),
    )
    .unwrap();

    // 3 steps with checkpoints, then resume to 6 and compare bytes.
    run(
        cmd_train,
        &format!(
            "train --data {} --out {} --steps 3 --run-dir {} --checkpoint-every 2 --quiet",
            data.display(),
            resumed.display(),
            run_dir.display()
        ),
    )
    .unwrap();
    assert!(run_dir.join("train_log.jsonl").exists());
    run(
        cmd_train,
        &format!(
            "train --data {} --out {} --resume {} --steps 6 --quiet",
            data.display(),
            resumed.display(),
            run_dir.display()
        ),
    )
    .unwrap();

    let a = std::fs::read(&straight).unwrap();
    let b = std::fs::read(&resumed).unwrap();
    assert_eq!(a, b, "resumed model file differs from the straight run");
}

/// `--op-stats` adds a per-op instrumentation table to every step's
/// log record; without the flag the field stays null.
#[test]
fn op_stats_flag_populates_train_log() {
    let data = tmp("opstats_data");
    let model = tmp("opstats_model.json");
    let run_dir = tmp("opstats_run");
    let _ = std::fs::remove_dir_all(&run_dir);

    run(
        cmd_dataset,
        &format!(
            "dataset --out {} --country 2 --weeks 1 --scale 0.3",
            data.display()
        ),
    )
    .unwrap();
    run(
        cmd_train,
        &format!(
            "train --data {} --out {} --steps 2 --run-dir {} --op-stats --quiet",
            data.display(),
            model.display(),
            run_dir.display()
        ),
    )
    .unwrap();

    let log = std::fs::read_to_string(run_dir.join("train_log.jsonl")).unwrap();
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 2, "expected one record per step:\n{log}");
    for line in &lines {
        assert!(
            line.contains("\"op_stats\":["),
            "record lacks op_stats table: {line}"
        );
        // The fused linear kernel must show up with forward *and*
        // backward activity.
        assert!(line.contains("\"matmul_bias_act\""), "{line}");
        assert!(line.contains("\"bwd_calls\""), "{line}");
    }

    // Without the flag, the table is absent (null).
    let run_dir2 = tmp("opstats_off_run");
    let _ = std::fs::remove_dir_all(&run_dir2);
    run(
        cmd_train,
        &format!(
            "train --data {} --out {} --steps 1 --run-dir {} --quiet",
            data.display(),
            model.display(),
            run_dir2.display()
        ),
    )
    .unwrap();
    let log = std::fs::read_to_string(run_dir2.join("train_log.jsonl")).unwrap();
    assert!(
        log.contains("\"op_stats\":null"),
        "disabled run should serialize op_stats as null: {log}"
    );
}

/// `--trace` and `--metrics-snapshot` write their artifacts for both
/// train and generate, train drops metrics.prom in the run dir, and
/// the per-step log records carry span aggregates.
///
/// The obs toggle is process-global and other tests in this binary
/// train concurrently, so their spans may ride along in the trace —
/// assertions here are existence/shape only, not event counts.
#[test]
fn trace_and_metrics_snapshot_flags_write_artifacts() {
    let data = tmp("obs_data");
    let model = tmp("obs_model.json");
    let run_dir = tmp("obs_run");
    let trace = tmp("obs_trace.json");
    let prom = tmp("obs_metrics.prom");
    let synth = tmp("obs_synth.sgtm");
    let gen_trace = tmp("obs_gen_trace.json");
    let gen_prom = tmp("obs_gen_metrics.prom");
    let _ = std::fs::remove_dir_all(&run_dir);

    run(
        cmd_dataset,
        &format!(
            "dataset --out {} --country 2 --weeks 1 --scale 0.3",
            data.display()
        ),
    )
    .unwrap();
    run(
        cmd_train,
        &format!(
            "train --data {} --out {} --steps 2 --run-dir {} --trace {} --metrics-snapshot {} --quiet",
            data.display(),
            model.display(),
            run_dir.display(),
            trace.display(),
            prom.display()
        ),
    )
    .unwrap();

    let trace_text = std::fs::read_to_string(&trace).unwrap();
    let doc: serde::Value = serde_json::from_str(&trace_text).expect("trace must be valid JSON");
    assert!(
        matches!(doc.get("traceEvents"), Some(serde::Value::Arr(_))),
        "trace lacks a traceEvents array"
    );
    let prom_text = std::fs::read_to_string(&prom).unwrap();
    assert!(prom_text.contains("# TYPE "), "snapshot has no metrics");
    assert!(run_dir.join("metrics.prom").exists());
    let log = std::fs::read_to_string(run_dir.join("train_log.jsonl")).unwrap();
    assert!(
        log.lines().all(|l| l.contains("\"spans\":[")),
        "obs-on log records must embed span aggregates:\n{log}"
    );

    run(
        cmd_generate,
        &format!(
            "generate --model {} --context {} --hours 6 --out {} --trace {} --metrics-snapshot {}",
            model.display(),
            data.join("city_1.sgcm").display(),
            synth.display(),
            gen_trace.display(),
            gen_prom.display()
        ),
    )
    .unwrap();
    assert!(synth.exists());
    let gen_trace_text = std::fs::read_to_string(&gen_trace).unwrap();
    let doc: serde::Value =
        serde_json::from_str(&gen_trace_text).expect("generate trace must be valid JSON");
    assert!(matches!(doc.get("traceEvents"), Some(serde::Value::Arr(_))));
    assert!(std::fs::read_to_string(&gen_prom)
        .unwrap()
        .contains("# TYPE "));
}

#[test]
fn bad_inputs_give_clean_errors() {
    let err = run(cmd_train, "train --data /nonexistent --out /tmp/x.json").unwrap_err();
    assert!(err.contains("manifest"), "{err}");
    let err = run(
        cmd_generate,
        "generate --model /nonexistent --context /n --hours 1 --out /tmp/x",
    )
    .unwrap_err();
    assert!(err.contains("/nonexistent"), "{err}");
    let err = run(cmd_dataset, "dataset --out /tmp/sg_bad --granularity 45").unwrap_err();
    assert!(err.contains("granularity"), "{err}");
    let err = run(cmd_dataset, "dataset --out /tmp/sg_bad --country 9").unwrap_err();
    assert!(err.contains("country"), "{err}");
}
