//! Crash-safe training checkpoints and the run-directory layout.
//!
//! A **run directory** holds everything one training run persists:
//!
//! ```text
//! run_dir/
//!   ckpt_00000040.ckpt   checked container (SGCK magic + CRC-32) around
//!   ckpt_00000080.ckpt   a JSON snapshot of the full training state
//!   train_log.jsonl      one JSON record per completed step + guard events
//! ```
//!
//! A checkpoint serializes the *complete* mutable state of
//! [`SpectraGan::train_with`](crate::SpectraGan::train_with): model
//! weights, both Adam optimizers' moments and step counts, the loss
//! traces so far, and the step counter. Because the training loop
//! derives each step's RNG stream from `(seed, step, lane)` rather than
//! one long stream, no RNG state needs saving — the stream position is
//! a pure function of the step. The resume contract is **bit-identical
//! restarts**: train N steps uninterrupted, or train k < N steps, kill
//! the process, and resume — the final weights are byte-for-byte equal.
//!
//! Checkpoint files are written via [`spectragan_geo::io::atomic_write`]
//! (tmp + `rename`) inside a [`spectragan_geo::io::encode_checked`]
//! frame, so a crash mid-write leaves either nothing or a file whose
//! CRC rejects it — [`latest`] then transparently falls back to the
//! previous snapshot. The last two valid snapshots are retained; older
//! ones are pruned.

use crate::config::{SpectraGanConfig, TrainConfig};
use crate::error::CoreError;
use crate::train::TrainStats;
use serde::Serialize;
use spectragan_geo::io::{atomic_write, encode_checked, read_checked_frame};
use spectragan_nn::{AdamState, ParamStore};
use spectragan_obs as obs;
use spectragan_obs::SpanStat;
use spectragan_tensor::OpStatEntry;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Instant;

/// Cached metric handles for checkpoint persistence. Recording
/// self-gates on [`obs::enabled`].
struct CkptMetrics {
    /// Framed checkpoint bytes written.
    bytes: &'static obs::Counter,
    /// End-to-end latency of one checkpoint write (serialize, frame,
    /// atomic write; the fsync inside is also broken out separately
    /// as `spectragan_io_fsync_ns` by `geo::io`).
    write_ns: &'static obs::Histogram,
}

fn ckpt_metrics() -> &'static CkptMetrics {
    static M: OnceLock<CkptMetrics> = OnceLock::new();
    M.get_or_init(|| CkptMetrics {
        bytes: obs::counter("spectragan_checkpoint_bytes_total"),
        write_ns: obs::histogram("spectragan_checkpoint_write_ns"),
    })
}

/// Magic bytes of the checkpoint container.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"SGCK";

/// Format tag inside the JSON payload (bump on incompatible change).
pub const CHECKPOINT_FORMAT: &str = "spectragan-checkpoint-v1";

/// File name of the per-step training log inside a run directory.
pub const TRAIN_LOG: &str = "train_log.jsonl";

/// How many valid snapshots [`save`] retains (the newest, plus one
/// last-good fallback in case the newest is later damaged).
pub const RETAIN: usize = 2;

/// The full serialized training state at a step boundary.
#[derive(Clone, Serialize)]
pub struct Checkpoint {
    /// Format tag ([`CHECKPOINT_FORMAT`]).
    pub format: String,
    /// Completed training steps (resume starts at this step).
    pub step: usize,
    /// Model architecture configuration.
    pub config: SpectraGanConfig,
    /// Training-loop configuration of the original run.
    pub train: TrainConfig,
    /// All model weights (generator + discriminators).
    pub store: ParamStore,
    /// Generator optimizer moments.
    pub opt_g: AdamState,
    /// Discriminator optimizer moments.
    pub opt_d: AdamState,
    /// Loss traces up to `step`.
    pub stats: TrainStats,
    /// Shard topology of the run that wrote this snapshot. Recorded
    /// for observability only: sharding never changes the math, so a
    /// resume may use any shard count.
    pub shards: usize,
    /// Gradient-accumulation micro-rounds per step. Unlike `shards`
    /// this is part of the step arithmetic — the training loop rejects
    /// resuming under a different value.
    pub grad_accum: usize,
}

// Manual Deserialize: `shards` and `grad_accum` arrived with sharded
// training and default to 1 so every earlier snapshot still loads
// (those runs *were* single-shard, single-minibatch — exactly what the
// default says). The vendored serde derive has no per-field defaults.
impl serde::Deserialize for Checkpoint {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let req = |key: &str| -> Result<&serde::Value, serde::DeError> {
            v.get(key)
                .ok_or_else(|| serde::DeError::expected("a checkpoint object", v))
        };
        let count = |key: &str| -> Result<usize, serde::DeError> {
            match v.get(key) {
                Some(n) => usize::from_value(n),
                None => Ok(1),
            }
        };
        Ok(Checkpoint {
            format: String::from_value(req("format")?)?,
            step: usize::from_value(req("step")?)?,
            config: SpectraGanConfig::from_value(req("config")?)?,
            train: TrainConfig::from_value(req("train")?)?,
            store: ParamStore::from_value(req("store")?)?,
            opt_g: AdamState::from_value(req("opt_g")?)?,
            opt_d: AdamState::from_value(req("opt_d")?)?,
            stats: TrainStats::from_value(req("stats")?)?,
            shards: count("shards")?,
            grad_accum: count("grad_accum")?,
        })
    }
}

impl Checkpoint {
    /// Verifies that this checkpoint belongs to a run with the given
    /// model and training configuration (`steps` may differ so a
    /// resumed run can be extended or shortened).
    pub fn validate_against(
        &self,
        cfg: &SpectraGanConfig,
        tc: &TrainConfig,
    ) -> Result<(), CoreError> {
        if self.format != CHECKPOINT_FORMAT {
            return Err(CoreError::Checkpoint(format!(
                "unsupported checkpoint format '{}'",
                self.format
            )));
        }
        if self.config != *cfg {
            return Err(CoreError::Checkpoint(
                "checkpoint model configuration differs from the requested one".into(),
            ));
        }
        let same = self.train.batch_patches == tc.batch_patches
            && self.train.lr == tc.lr
            && self.train.seed == tc.seed;
        if !same {
            return Err(CoreError::Checkpoint(format!(
                "checkpoint training configuration (batch {}, lr {}, seed {}) differs from the \
                 requested one (batch {}, lr {}, seed {})",
                self.train.batch_patches,
                self.train.lr,
                self.train.seed,
                tc.batch_patches,
                tc.lr,
                tc.seed
            )));
        }
        Ok(())
    }
}

/// The file name of the snapshot at `step`.
pub fn checkpoint_file(step: usize) -> String {
    format!("ckpt_{step:08}.ckpt")
}

/// Writes `ckpt` into `run_dir` atomically and prunes snapshots beyond
/// the [`RETAIN`] newest. Returns the written path.
pub fn save(run_dir: &Path, ckpt: &Checkpoint) -> Result<PathBuf, CoreError> {
    let t0 = obs::enabled().then(Instant::now);
    fs::create_dir_all(run_dir).map_err(|e| CoreError::io(run_dir, e))?;
    let json = serde_json::to_string(ckpt)
        .map_err(|e| CoreError::Checkpoint(format!("serialize: {e}")))?;
    let framed = encode_checked(CHECKPOINT_MAGIC, json.as_bytes());
    let path = run_dir.join(checkpoint_file(ckpt.step));
    atomic_write(&path, &framed)
        .map_err(|e| CoreError::Checkpoint(format!("write {}: {e}", path.display())))?;
    if let Some(t0) = t0 {
        let m = ckpt_metrics();
        m.bytes.inc(framed.len() as u64);
        m.write_ns.record(t0.elapsed().as_nanos() as u64);
    }
    // Retention: drop everything but the RETAIN newest snapshots.
    let mut steps = list_steps(run_dir)?;
    steps.sort_unstable();
    while steps.len() > RETAIN {
        let victim = run_dir.join(checkpoint_file(steps.remove(0)));
        fs::remove_file(&victim).map_err(|e| CoreError::io(&victim, e))?;
    }
    Ok(path)
}

/// Allocation cap for one checkpoint payload. The length header of a
/// checked frame is read before its CRC can be validated, so a corrupt
/// or forged checkpoint claiming 2^60 bytes must fail typed instead of
/// driving an unbounded allocation. 4 GiB is far above any real
/// checkpoint (weights + both optimizers' moments as JSON).
pub const CHECKPOINT_MAX_BYTES: usize = 4 << 30;

/// Loads and validates one checkpoint file.
pub fn load(path: &Path) -> Result<Checkpoint, CoreError> {
    let mut f = fs::File::open(path).map_err(|e| CoreError::io(path, e))?;
    let payload = read_checked_frame(&mut f, CHECKPOINT_MAGIC, CHECKPOINT_MAX_BYTES)
        .map_err(|e| CoreError::Checkpoint(format!("{}: {e}", path.display())))?;
    // Trailing bytes after the frame mean the file is not a checkpoint
    // we wrote (atomic_write lands exactly one frame per file).
    let mut probe = [0u8; 1];
    if matches!(std::io::Read::read(&mut f, &mut probe), Ok(n) if n > 0) {
        return Err(CoreError::Checkpoint(format!(
            "{}: trailing bytes after checkpoint frame",
            path.display()
        )));
    }
    let json = std::str::from_utf8(&payload).map_err(|e| {
        CoreError::Checkpoint(format!("{}: non-UTF-8 payload: {e}", path.display()))
    })?;
    let ckpt: Checkpoint = serde_json::from_str(json)
        .map_err(|e| CoreError::Checkpoint(format!("{}: {e}", path.display())))?;
    if ckpt.format != CHECKPOINT_FORMAT {
        return Err(CoreError::Checkpoint(format!(
            "{}: unsupported checkpoint format '{}'",
            path.display(),
            ckpt.format
        )));
    }
    Ok(ckpt)
}

/// The newest *loadable* checkpoint of a run directory.
pub struct Latest {
    /// Path of the snapshot that loaded.
    pub path: PathBuf,
    /// The snapshot itself.
    pub checkpoint: Checkpoint,
    /// Newer snapshots that were skipped because they failed to load
    /// (torn writes, corruption), with the reason — callers should
    /// surface these.
    pub skipped: Vec<(PathBuf, String)>,
}

/// Finds the newest valid checkpoint in `run_dir`, falling back over
/// corrupt files to the previous snapshot. Returns `Ok(None)` for a
/// directory with no checkpoint files at all; corrupt-only directories
/// are an error naming every rejected file.
pub fn latest(run_dir: &Path) -> Result<Option<Latest>, CoreError> {
    let mut steps = list_steps(run_dir)?;
    if steps.is_empty() {
        return Ok(None);
    }
    steps.sort_unstable_by(|a, b| b.cmp(a));
    let mut skipped = Vec::new();
    for step in steps {
        let path = run_dir.join(checkpoint_file(step));
        match load(&path) {
            Ok(checkpoint) => {
                return Ok(Some(Latest {
                    path,
                    checkpoint,
                    skipped,
                }))
            }
            Err(e) => {
                // Fleet-visible signal: every corrupt snapshot we fall
                // past is counted, whichever caller (CLI resume, serve
                // registry) hit it.
                obs::counter("spectragan_checkpoint_fallbacks_total").inc(1);
                skipped.push((path, e.to_string()));
            }
        }
    }
    Err(CoreError::Checkpoint(format!(
        "no loadable checkpoint in {}: {}",
        run_dir.display(),
        skipped
            .iter()
            .map(|(p, e)| format!("{} ({e})", p.display()))
            .collect::<Vec<_>>()
            .join("; ")
    )))
}

/// Steps of all `ckpt_*.ckpt` files present in `run_dir` (valid or
/// not).
fn list_steps(run_dir: &Path) -> Result<Vec<usize>, CoreError> {
    let mut steps = Vec::new();
    let entries = match fs::read_dir(run_dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(steps),
        Err(e) => return Err(CoreError::io(run_dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| CoreError::io(run_dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(step) = name
            .strip_prefix("ckpt_")
            .and_then(|s| s.strip_suffix(".ckpt"))
            .and_then(|s| s.parse::<usize>().ok())
        {
            steps.push(step);
        }
    }
    Ok(steps)
}

// ---------------------------------------------------------------------
// Training log
// ---------------------------------------------------------------------

/// One line of `train_log.jsonl`: a completed step's losses and
/// gradient norms, or a divergence-guard event.
#[derive(Debug, Clone, Serialize)]
pub struct LogRecord {
    /// 0-based training step the record belongs to.
    pub step: usize,
    /// Discriminator loss (NaN serializes as `null`).
    pub d_loss: f32,
    /// Generator adversarial loss.
    pub g_adv: f32,
    /// Explicit L1 loss (0 for variants without one).
    pub l1: f32,
    /// Global gradient norm of the discriminator update (pre-clip).
    pub grad_norm_d: f32,
    /// Global gradient norm of the generator update (pre-clip).
    pub grad_norm_g: f32,
    /// Wall-clock milliseconds the step took (including retries so
    /// far).
    pub wall_ms: f64,
    /// Kernel backend the step ran under (`"scalar"` / `"simd"`);
    /// logs written before backends existed read back as `"scalar"`,
    /// which is what they ran.
    pub backend: String,
    /// Shard count the step ran under; pre-sharding logs read back
    /// as 1.
    pub shards: usize,
    /// Gradient-accumulation micro-rounds; pre-sharding logs read back
    /// as 1.
    pub grad_accum: usize,
    /// Divergence-guard annotation (`None` for a healthy step).
    pub event: Option<String>,
    /// Per-op instrumentation for this step (only with `--op-stats`;
    /// serializes as `null` when absent).
    pub op_stats: Option<Vec<OpStatEntry>>,
    /// Aggregated observability span tree for this step attempt (only
    /// when the obs layer is on; serializes as `null` when absent).
    pub spans: Option<Vec<SpanStat>>,
}

// Manual Deserialize: divergence events legitimately carry NaN/inf
// losses, which JSON renders as `null` — map those back to NaN instead
// of failing the whole record.
impl serde::Deserialize for LogRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let num = |key: &str| -> Result<f64, serde::DeError> {
            match v.get(key) {
                Some(serde::Value::Num(n)) => Ok(*n),
                Some(serde::Value::Null) | None => Ok(f64::NAN),
                Some(other) => Err(serde::DeError::expected("a number or null", other)),
            }
        };
        let step = match v.get("step") {
            Some(s) => usize::from_value(s)?,
            None => return Err(serde::DeError::expected("an object with 'step'", v)),
        };
        Ok(LogRecord {
            step,
            d_loss: num("d_loss")? as f32,
            g_adv: num("g_adv")? as f32,
            l1: num("l1")? as f32,
            grad_norm_d: num("grad_norm_d")? as f32,
            grad_norm_g: num("grad_norm_g")? as f32,
            wall_ms: num("wall_ms")?,
            backend: match v.get("backend") {
                Some(serde::Value::Str(s)) => s.clone(),
                _ => "scalar".to_string(),
            },
            shards: match v.get("shards") {
                Some(n) => usize::from_value(n)?,
                None => 1,
            },
            grad_accum: match v.get("grad_accum") {
                Some(n) => usize::from_value(n)?,
                None => 1,
            },
            event: match v.get("event") {
                Some(serde::Value::Str(s)) => Some(s.clone()),
                _ => None,
            },
            op_stats: match v.get("op_stats") {
                Some(arr @ serde::Value::Arr(_)) => Some(Vec::<OpStatEntry>::from_value(arr)?),
                _ => None,
            },
            spans: match v.get("spans") {
                Some(arr @ serde::Value::Arr(_)) => Some(Vec::<SpanStat>::from_value(arr)?),
                _ => None,
            },
        })
    }
}

/// Appends one record to the run's `train_log.jsonl`. Appends are not
/// atomic (the log is an observability artifact, not training state);
/// a torn final line is skipped by [`read_log`].
pub fn append_log(run_dir: &Path, record: &LogRecord) -> Result<(), CoreError> {
    fs::create_dir_all(run_dir).map_err(|e| CoreError::io(run_dir, e))?;
    let path = run_dir.join(TRAIN_LOG);
    let mut line =
        serde_json::to_string(record).map_err(|e| CoreError::Checkpoint(format!("log: {e}")))?;
    line.push('\n');
    use std::io::Write;
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| CoreError::io(&path, e))?;
    f.write_all(line.as_bytes())
        .map_err(|e| CoreError::io(&path, e))
}

/// Reads the run's training log, skipping torn or malformed lines.
pub fn read_log(run_dir: &Path) -> Result<Vec<LogRecord>, CoreError> {
    let path = run_dir.join(TRAIN_LOG);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(CoreError::io(&path, e)),
    };
    Ok(text
        .lines()
        .filter_map(|l| serde_json::from_str::<LogRecord>(l).ok())
        .collect())
}

/// Rewrites the log keeping only records with `step < keep_below`, so a
/// resumed run does not interleave stale post-checkpoint lines with its
/// own replay of the same steps. Atomic like every other persistent
/// write.
pub fn truncate_log(run_dir: &Path, keep_below: usize) -> Result<(), CoreError> {
    let records = read_log(run_dir)?;
    let mut out = String::new();
    for r in records.iter().filter(|r| r.step < keep_below) {
        out.push_str(
            &serde_json::to_string(r).map_err(|e| CoreError::Checkpoint(format!("log: {e}")))?,
        );
        out.push('\n');
    }
    let path = run_dir.join(TRAIN_LOG);
    if out.is_empty() && !path.exists() {
        return Ok(());
    }
    atomic_write(&path, out.as_bytes())
        .map_err(|e| CoreError::Checkpoint(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("spectragan_ckpt_unit")
            .join(format!("{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn demo_checkpoint(step: usize) -> Checkpoint {
        let mut store = ParamStore::new();
        store.register("w", spectragan_nn::Tensor::from_vec(vec![1.0, -0.5], [2]));
        Checkpoint {
            format: CHECKPOINT_FORMAT.into(),
            step,
            config: SpectraGanConfig::tiny(),
            train: TrainConfig::smoke(),
            store,
            opt_g: AdamState::default(),
            opt_d: AdamState::default(),
            stats: TrainStats::default(),
            shards: 1,
            grad_accum: 1,
        }
    }

    #[test]
    fn save_load_roundtrip_and_retention() {
        let dir = tmp_dir("roundtrip");
        for step in [2, 4, 6] {
            save(&dir, &demo_checkpoint(step)).unwrap();
        }
        // Only the RETAIN newest remain.
        assert!(!dir.join(checkpoint_file(2)).exists());
        assert!(dir.join(checkpoint_file(4)).exists());
        assert!(dir.join(checkpoint_file(6)).exists());
        let found = latest(&dir).unwrap().unwrap();
        assert_eq!(found.checkpoint.step, 6);
        assert!(found.skipped.is_empty());
        let (_, name, value) = found.checkpoint.store.iter().next().unwrap();
        assert_eq!(name, "w");
        assert_eq!(value.data(), &[1.0, -0.5]);
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = tmp_dir("fallback");
        save(&dir, &demo_checkpoint(2)).unwrap();
        save(&dir, &demo_checkpoint(4)).unwrap();
        // Torn write: truncate the newest snapshot.
        let newest = dir.join(checkpoint_file(4));
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let found = latest(&dir).unwrap().unwrap();
        assert_eq!(found.checkpoint.step, 2);
        assert_eq!(found.skipped.len(), 1);
        assert!(found.skipped[0].1.contains("length") || found.skipped[0].1.contains("checksum"));
    }

    /// A bit-flipped newest snapshot bumps the fleet fallback counter
    /// and the resumed state is bit-identical to the previous good
    /// snapshot — corruption costs a warning, never different weights.
    #[test]
    fn bit_flip_counts_fallback_and_resumes_bit_identically() {
        let dir = tmp_dir("bitflip");
        let good = demo_checkpoint(2);
        save(&dir, &good).unwrap();
        save(&dir, &demo_checkpoint(4)).unwrap();
        let newest = dir.join(checkpoint_file(4));
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();

        let was_enabled = obs::enabled();
        obs::set_enabled(true);
        let before = obs::counter("spectragan_checkpoint_fallbacks_total").get();
        let found = latest(&dir).unwrap().unwrap();
        let after = obs::counter("spectragan_checkpoint_fallbacks_total").get();
        obs::set_enabled(was_enabled);

        assert!(after > before, "fallback must increment the counter");
        assert_eq!(found.checkpoint.step, 2);
        assert_eq!(found.skipped.len(), 1);
        for ((_, name, got), (_, want_name, want)) in
            found.checkpoint.store.iter().zip(good.store.iter())
        {
            assert_eq!(name, want_name);
            assert_eq!(
                got.data(),
                want.data(),
                "resumed weights must be bit-identical"
            );
        }
    }

    #[test]
    fn all_corrupt_is_a_clear_error() {
        let dir = tmp_dir("allbad");
        save(&dir, &demo_checkpoint(2)).unwrap();
        let p = dir.join(checkpoint_file(2));
        let mut bytes = fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&p, &bytes).unwrap();
        let err = latest(&dir)
            .err()
            .expect("all-corrupt must fail")
            .to_string();
        assert!(err.contains("no loadable checkpoint"), "{err}");
        assert!(err.contains("ckpt_00000002.ckpt"), "{err}");
    }

    #[test]
    fn empty_and_missing_dirs_are_none() {
        let dir = tmp_dir("empty");
        assert!(latest(&dir).unwrap().is_none());
        fs::create_dir_all(&dir).unwrap();
        assert!(latest(&dir).unwrap().is_none());
    }

    #[test]
    fn validate_against_flags_mismatches() {
        let ck = demo_checkpoint(2);
        let cfg = SpectraGanConfig::tiny();
        let tc = TrainConfig::smoke();
        ck.validate_against(&cfg, &tc).unwrap();
        // More steps is fine (extension).
        let mut longer = tc;
        longer.steps += 100;
        ck.validate_against(&cfg, &longer).unwrap();
        let mut other_seed = tc;
        other_seed.seed += 1;
        assert!(ck.validate_against(&cfg, &other_seed).is_err());
        let other_cfg = SpectraGanConfig::default_hourly();
        assert!(ck.validate_against(&other_cfg, &tc).is_err());
    }

    #[test]
    fn log_roundtrip_with_nan_and_truncation() {
        let dir = tmp_dir("log");
        for step in 0..4 {
            append_log(
                &dir,
                &LogRecord {
                    step,
                    d_loss: if step == 2 { f32::NAN } else { 0.5 },
                    g_adv: 1.0,
                    l1: 0.1,
                    grad_norm_d: 2.0,
                    grad_norm_g: 3.0,
                    wall_ms: 1.5,
                    backend: "scalar".to_string(),
                    shards: 1,
                    grad_accum: 1,
                    event: if step == 2 {
                        Some("divergence: d_loss = NaN".into())
                    } else {
                        None
                    },
                    op_stats: None,
                    spans: if step == 1 {
                        Some(vec![SpanStat {
                            path: "train_step/forward".into(),
                            calls: 1,
                            nanos: 42,
                        }])
                    } else {
                        None
                    },
                },
            )
            .unwrap();
        }
        // Simulate a torn final line.
        use std::io::Write;
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(dir.join(TRAIN_LOG))
            .unwrap();
        f.write_all(b"{\"step\": 4, \"d_l").unwrap();
        drop(f);

        let log = read_log(&dir).unwrap();
        assert_eq!(log.len(), 4, "torn line skipped");
        let spans = log[1].spans.as_ref().expect("spans survive the roundtrip");
        assert_eq!(spans[0].path, "train_step/forward");
        assert_eq!((spans[0].calls, spans[0].nanos), (1, 42));
        assert!(log[0].spans.is_none());
        assert!(log[2].d_loss.is_nan());
        assert_eq!(log[2].event.as_deref(), Some("divergence: d_loss = NaN"));
        assert_eq!(log[3].step, 3);

        truncate_log(&dir, 2).unwrap();
        let log = read_log(&dir).unwrap();
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|r| r.step < 2));
    }

    /// Log lines written before the sharding release carry no
    /// `shards`/`grad_accum` keys; they must still deserialize, with
    /// both defaulting to 1.
    #[test]
    fn pre_sharding_log_lines_still_deserialize() {
        let old_line = r#"{"step":7,"d_loss":0.5,"g_adv":1.25,"l1":0.1,"grad_norm_d":2.0,
            "grad_norm_g":3.0,"wall_ms":1.5,"backend":"simd","event":null,
            "op_stats":null,"spans":null}"#;
        let r: LogRecord = serde_json::from_str(old_line).unwrap();
        assert_eq!(r.step, 7);
        assert_eq!(r.backend, "simd");
        assert_eq!((r.shards, r.grad_accum), (1, 1));
        // And a round-trip through the current writer preserves the
        // explicit values.
        let mut new = r.clone();
        new.shards = 4;
        new.grad_accum = 2;
        let back: LogRecord = serde_json::from_str(&serde_json::to_string(&new).unwrap()).unwrap();
        assert_eq!((back.shards, back.grad_accum), (4, 2));
    }

    /// Checkpoints from pre-sharding runs (no `shards`/`grad_accum` in
    /// the JSON) load with both fields defaulting to 1.
    #[test]
    fn pre_sharding_checkpoints_still_load() {
        let ck = demo_checkpoint(2);
        let mut v = serde_json::to_value(&ck);
        if let serde::Value::Obj(entries) = &mut v {
            entries.retain(|(k, _)| k != "shards" && k != "grad_accum");
        } else {
            panic!("checkpoint must serialize as an object");
        }
        let old = Checkpoint::from_value(&v).unwrap();
        assert_eq!((old.shards, old.grad_accum), (1, 1));
        assert_eq!(old.step, 2);
        // Explicit values survive a round-trip.
        let mut sharded = demo_checkpoint(4);
        sharded.shards = 4;
        sharded.grad_accum = 3;
        let rt = Checkpoint::from_value(&serde_json::to_value(&sharded)).unwrap();
        assert_eq!((rt.shards, rt.grad_accum), (4, 3));
    }
}
