//! Model and training configuration.

use serde::{Deserialize, Serialize};

/// Which SpectraGAN variant to build — the full model or one of the
/// ablations of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// The full model: spectrum generator + residual time generator.
    Full,
    /// Spec-only: no residual time-series generator.
    SpecOnly,
    /// Time-only: no spectrum generator (and no spectrum loss terms).
    TimeOnly,
    /// Time-only plus a context-driven per-pixel amplitude (scale and
    /// offset) head — the paper describes this as Time-only "with an
    /// extra minmax generator", i.e. DoppelGANger with a wider context
    /// and an explicit time-domain loss.
    TimeOnlyPlus,
    /// SpectraGAN−: the full model conditioned only on pixel-level
    /// context (context window = traffic window; Table 4).
    PixelContext,
}

impl Variant {
    /// Whether this variant has the spectrum path.
    pub fn has_spectrum(self) -> bool {
        !matches!(self, Variant::TimeOnly | Variant::TimeOnlyPlus)
    }

    /// Whether this variant has the residual time path.
    pub fn has_time(self) -> bool {
        !matches!(self, Variant::SpecOnly)
    }
}

/// Hyper-parameters of the SpectraGAN model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectraGanConfig {
    /// Number of context attributes `C` (27 in the paper).
    pub context_channels: usize,
    /// Traffic patch side `H_t = W_t`.
    pub patch_traffic: usize,
    /// Sliding-window stride at generation time (overlap = side −
    /// stride).
    pub patch_stride: usize,
    /// Training series length `T` (one week hourly = 168).
    pub train_len: usize,
    /// Noise dimension `Z`.
    pub noise_dim: usize,
    /// Encoder output channels `C_h`.
    pub encoder_channels: usize,
    /// Generator feature width (channels of the pre-head conv).
    pub gen_channels: usize,
    /// Hidden size of the residual LSTM `G^t`.
    pub lstm_hidden: usize,
    /// Hidden size of the discriminators.
    pub disc_hidden: usize,
    /// Weight `λ` of the explicit L1 loss (Eq. 1). The paper uses 0.5
    /// at GPU scale; the CPU-scale default here is 10 — with two orders
    /// of magnitude fewer optimizer steps, the explicit loss must carry
    /// more of the optimization for stable convergence (documented as a
    /// calibration in DESIGN.md/EXPERIMENTS.md).
    pub lambda: f32,
    /// Quantile `q` of the spectrum mask `M^q`; paper default 0.75.
    pub q: f64,
    /// Length of the random time window the discriminator `R^t` sees
    /// per step (0 = the full series). Windowing is the temporal
    /// analogue of a patch discriminator and cuts the dominant
    /// training cost ~3×; the generator still produces and matches the
    /// full series through the L1 term.
    pub disc_time_window: usize,
    /// Model variant.
    pub variant: Variant,
}

impl SpectraGanConfig {
    /// Paper-shaped defaults at CPU scale: 8-pixel patches with a
    /// 16-pixel context window, one training week at hourly resolution.
    pub fn default_hourly() -> Self {
        SpectraGanConfig {
            context_channels: 27,
            patch_traffic: 8,
            patch_stride: 4,
            train_len: 168,
            noise_dim: 4,
            encoder_channels: 12,
            gen_channels: 24,
            lstm_hidden: 16,
            disc_hidden: 16,
            lambda: 10.0,
            q: 0.75,
            disc_time_window: 48,
            variant: Variant::Full,
        }
    }

    /// Tiny configuration for unit tests: 4-pixel patches, 24-step
    /// series, narrow layers.
    pub fn tiny() -> Self {
        SpectraGanConfig {
            context_channels: 27,
            patch_traffic: 4,
            patch_stride: 2,
            train_len: 24,
            noise_dim: 2,
            encoder_channels: 6,
            gen_channels: 8,
            lstm_hidden: 6,
            disc_hidden: 6,
            lambda: 10.0,
            q: 0.75,
            disc_time_window: 0,
            variant: Variant::Full,
        }
    }

    /// Returns a copy with a different variant.
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Context window side: twice the traffic patch for the wide-context
    /// variants, equal to it for [`Variant::PixelContext`].
    pub fn patch_context(&self) -> usize {
        if self.variant == Variant::PixelContext {
            self.patch_traffic
        } else {
            2 * self.patch_traffic
        }
    }

    /// One-sided spectrum bins `F = T/2 + 1`.
    pub fn f_bins(&self) -> usize {
        self.train_len / 2 + 1
    }

    /// Pixels per patch.
    pub fn pixels_per_patch(&self) -> usize {
        self.patch_traffic * self.patch_traffic
    }
}

/// Training-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of generator/discriminator update steps.
    pub steps: usize,
    /// Patches per minibatch.
    pub batch_patches: usize,
    /// Adam learning rate (GAN-flavoured `β₁ = 0.5`).
    pub lr: f32,
    /// RNG seed for sampling and noise.
    pub seed: u64,
}

impl TrainConfig {
    /// Short training run, enough for the loss to move — used by tests.
    pub fn smoke() -> Self {
        TrainConfig {
            steps: 10,
            batch_patches: 2,
            lr: 2e-3,
            seed: 0,
        }
    }

    /// Evaluation-scale run used by the benchmark harness.
    pub fn eval() -> Self {
        TrainConfig {
            steps: 160,
            batch_patches: 4,
            lr: 2e-3,
            seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_capabilities() {
        assert!(Variant::Full.has_spectrum() && Variant::Full.has_time());
        assert!(Variant::SpecOnly.has_spectrum() && !Variant::SpecOnly.has_time());
        assert!(!Variant::TimeOnly.has_spectrum() && Variant::TimeOnly.has_time());
        assert!(!Variant::TimeOnlyPlus.has_spectrum());
        assert!(Variant::PixelContext.has_spectrum());
    }

    #[test]
    fn context_window_depends_on_variant() {
        let cfg = SpectraGanConfig::default_hourly();
        assert_eq!(cfg.patch_context(), 16);
        let narrow = cfg.with_variant(Variant::PixelContext);
        assert_eq!(narrow.patch_context(), 8);
    }

    #[test]
    fn derived_quantities() {
        let cfg = SpectraGanConfig::default_hourly();
        assert_eq!(cfg.f_bins(), 85);
        assert_eq!(cfg.pixels_per_patch(), 64);
        let tiny = SpectraGanConfig::tiny();
        assert_eq!(tiny.f_bins(), 13);
    }
}
