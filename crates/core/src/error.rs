//! The crate-wide error type.
//!
//! Everything fallible in `spectragan-core` — model-file parsing,
//! weight loading, training, checkpoint/resume — reports a [`CoreError`]
//! so callers (the CLI in particular) render one consistent family of
//! messages instead of a mix of `String`, `serde_json::Error` and
//! panics.

use std::fmt;
use std::path::PathBuf;

/// Errors from model construction, (de)serialization, training and
/// checkpointing.
#[derive(Debug)]
pub enum CoreError {
    /// No training patches could be extracted: the city list is empty
    /// or every grid is smaller than one patch.
    NoTrainingData(String),
    /// A training city's series is shorter than the configured training
    /// length.
    SeriesTooShort {
        /// City name.
        city: String,
        /// Steps the city actually has.
        have: usize,
        /// Steps the configuration requires.
        need: usize,
    },
    /// A generation request is malformed: zero-length output, zero
    /// batch size, or a context map that does not fit the model. These
    /// are caller errors (a serving front-end maps them to HTTP 4xx),
    /// never process-killing panics — the request path of a
    /// long-running server must survive arbitrary input.
    InvalidRequest(String),
    /// A model file or weights blob is malformed or does not match the
    /// architecture (format tag, parameter count, shapes, JSON syntax).
    Model(String),
    /// A checkpoint or run directory is unusable: missing, corrupt
    /// beyond recovery, or inconsistent with the requested
    /// configuration.
    Checkpoint(String),
    /// Training diverged (NaN/inf loss or gradient blowup) and every
    /// RNG re-roll at that step diverged too — the run cannot make
    /// progress. The last good checkpoint, if any, is still on disk.
    Diverged {
        /// The 0-based step that could not complete.
        step: usize,
        /// How many alternative RNG lanes were tried.
        retries: u32,
        /// Human-readable description of the last failure.
        reason: String,
    },
    /// Sharded training failed: a worker process could not be forked
    /// or respawned, the gradient wire protocol was violated, or a
    /// shard's replicated compute diverged bitwise from the
    /// coordinator's.
    Shard(String),
    /// Filesystem error, with the path for context.
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoTrainingData(why) => write!(f, "no training data: {why}"),
            CoreError::SeriesTooShort { city, have, need } => {
                write!(
                    f,
                    "city '{city}' has {have} steps, the configuration needs at least {need}"
                )
            }
            CoreError::InvalidRequest(why) => write!(f, "invalid generation request: {why}"),
            CoreError::Model(why) => write!(f, "model error: {why}"),
            CoreError::Checkpoint(why) => write!(f, "checkpoint error: {why}"),
            CoreError::Diverged {
                step,
                retries,
                reason,
            } => {
                write!(
                    f,
                    "training diverged at step {step} ({reason}); {retries} RNG re-rolls all \
                     diverged too"
                )
            }
            CoreError::Shard(why) => write!(f, "sharded training error: {why}"),
            CoreError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl CoreError {
    /// Wraps a filesystem error with its path.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        CoreError::Io {
            path: path.into(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        let e = CoreError::SeriesTooShort {
            city: "X".into(),
            have: 3,
            need: 24,
        };
        assert!(e.to_string().contains("'X'"));
        assert!(e.to_string().contains("24"));
        let e = CoreError::Diverged {
            step: 17,
            retries: 3,
            reason: "d_loss = NaN".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("step 17") && msg.contains("NaN"), "{msg}");
        let e = CoreError::Shard("shard 2: worker closed its report pipe".into());
        let msg = e.to_string();
        assert!(
            msg.contains("sharded training") && msg.contains("shard 2"),
            "{msg}"
        );
        let e = CoreError::io(
            "/tmp/x",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("/tmp/x"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
