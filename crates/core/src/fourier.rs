//! Bridges between the neural network (f32 tensors of stacked
//! real/imaginary spectrum rows) and the DSP crate (f64 complex).
//!
//! The spectrum generator emits, per pixel, `2F` values: `F` real parts
//! followed by `F` imaginary parts of the one-sided spectrum. Because
//! the inverse rFFT is linear, converting those rows to time series is
//! a single matmul with the constant basis built by [`irfft_basis`] —
//! which keeps the whole generator differentiable with no bespoke
//! autodiff op (§2.2.2 notes IFFT differentiability as the requirement).

use spectragan_dsp::{mask_quantile, rfft, Complex};
use spectragan_obs as obs;
use spectragan_tensor::Tensor;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Builds the constant inverse-rFFT basis `B ∈ R^{2F×T}` for the
/// crate's *normalized* spectrum convention: the network works with
/// `s = FFT(x)/T` (stacked `[Re_0..Re_{F−1}, Im_0..Im_{F−1}]`), which
/// keeps spectrum rows on the same O(1) scale as the traffic itself —
/// essential for well-conditioned training. Under that convention
/// `s · B` equals the inverse rFFT of the corresponding (unnormalized)
/// one-sided spectrum.
///
/// Rows for the DC (and, for even `T`, Nyquist) imaginary parts are
/// zero: those components are constrained to be real for a real signal,
/// so generator outputs there receive no gradient and have no effect.
pub fn irfft_basis(t: usize) -> Tensor {
    assert!(t >= 2, "basis needs at least 2 samples");
    let f = t / 2 + 1;
    let mut basis = Tensor::zeros([2 * f, t]);
    for k in 0..f {
        // Interior bins appear twice in the full spectrum (conjugate
        // pair); DC and even-T Nyquist appear once.
        let is_nyquist = t.is_multiple_of(2) && k == f - 1;
        let c = if k == 0 || is_nyquist { 1.0 } else { 2.0 };
        for n in 0..t {
            let ang = 2.0 * std::f64::consts::PI * (k * n) as f64 / t as f64;
            *basis.at_mut(&[k, n]) = (c * ang.cos()) as f32;
            if k != 0 && !is_nyquist {
                *basis.at_mut(&[f + k, n]) = (-c * ang.sin()) as f32;
            }
        }
    }
    basis
}

/// Converts one stacked re/im row (length `2F`) into a complex
/// one-sided spectrum.
pub fn row_to_complex(row: &[f32]) -> Vec<Complex> {
    assert_eq!(row.len() % 2, 0, "spectrum row length must be even");
    let f = row.len() / 2;
    (0..f)
        .map(|k| Complex::new(row[k] as f64, row[f + k] as f64))
        .collect()
}

/// Converts a complex one-sided spectrum into a stacked re/im row.
pub fn complex_to_row(spec: &[Complex]) -> Vec<f32> {
    let f = spec.len();
    let mut row = vec![0.0f32; 2 * f];
    for (k, z) in spec.iter().enumerate() {
        row[k] = z.re as f32;
        row[f + k] = z.im as f32;
    }
    row
}

/// Rearranges a `[T, H, W]` traffic patch into pixel-major series rows
/// `[H·W, T]`.
pub fn patch_to_rows(patch: &Tensor) -> Tensor {
    assert_eq!(patch.shape().ndim(), 3, "patch must be [T, H, W]");
    let (t, h, w) = (
        patch.shape().dim(0),
        patch.shape().dim(1),
        patch.shape().dim(2),
    );
    patch.permute(&[1, 2, 0]).reshape([h * w, t])
}

/// Inverse of [`patch_to_rows`].
pub fn rows_to_patch(rows: &Tensor, h: usize, w: usize) -> Tensor {
    assert_eq!(rows.shape().ndim(), 2, "rows must be [H·W, T]");
    assert_eq!(rows.shape().dim(0), h * w, "row count does not match H·W");
    let t = rows.shape().dim(1);
    rows.reshape([h, w, t]).permute(&[2, 0, 1])
}

/// Computes the masked-spectrum training target `M^q(FFT(x))/T` for
/// every pixel of a patch (normalized convention, see
/// [`irfft_basis`]): input `[T, H, W]`, output stacked re/im rows
/// `[H·W, 2F]` with sub-threshold bins zeroed (§2.2.3).
pub fn masked_spec_rows(patch: &Tensor, q: f64) -> Tensor {
    let rows = patch_to_rows(patch);
    let (n_px, t) = (rows.shape().dim(0), rows.shape().dim(1));
    let f = t / 2 + 1;
    let mut out = Tensor::zeros([n_px, 2 * f]);
    for px in 0..n_px {
        let series: Vec<f64> = rows.data()[px * t..(px + 1) * t]
            .iter()
            .map(|&v| v as f64)
            .collect();
        let spec = rfft(&series);
        let (masked, _) = mask_quantile(&spec, q);
        let scaled: Vec<Complex> = masked.iter().map(|z| z.scale(1.0 / t as f64)).collect();
        let row = complex_to_row(&scaled);
        out.data_mut()[px * 2 * f..(px + 1) * 2 * f].copy_from_slice(&row);
    }
    out
}

/// One cached expanded basis plus its LRU bookkeeping.
struct BasisEntry {
    basis: Arc<Tensor>,
    bytes: usize,
    /// Logical-clock timestamp of the last hit (larger = more recent).
    last_used: u64,
}

/// Cache of expanded inverse-rFFT bases keyed by `(t, k)`. Bases are
/// pure functions of their key, so generation reuses one copy across
/// every chunk of every city instead of rebuilding per batch. A
/// long-running server sees an unbounded stream of `(t, k)` keys, so
/// the cache is byte-bounded with least-recently-used eviction — and
/// bases are built *outside* the lock so one request's cold build
/// never stalls every other request's cache hit.
struct BasisCache {
    entries: HashMap<(usize, usize), BasisEntry>,
    clock: u64,
    bytes: usize,
    capacity: usize,
}
static EXPANDED_BASES: OnceLock<Mutex<BasisCache>> = OnceLock::new();

/// Default byte budget for the expanded-basis cache: generous for
/// offline runs (one city's worth of keys is a handful of bases) while
/// keeping a serving process's footprint bounded.
pub const DEFAULT_BASIS_CACHE_CAPACITY: usize = 64 << 20;

fn basis_cache() -> &'static Mutex<BasisCache> {
    EXPANDED_BASES.get_or_init(|| {
        Mutex::new(BasisCache {
            entries: HashMap::new(),
            clock: 0,
            bytes: 0,
            capacity: DEFAULT_BASIS_CACHE_CAPACITY,
        })
    })
}

/// Sets the expanded-basis cache's byte capacity and evicts down to it
/// immediately, returning the previous capacity. `usize::MAX`
/// effectively disables eviction.
pub fn set_basis_cache_capacity(capacity: usize) -> usize {
    let mut cache = basis_cache().lock().expect("basis cache poisoned");
    let old = cache.capacity;
    cache.capacity = capacity;
    evict_to_capacity(&mut cache, None);
    obs::gauge("spectragan_basis_cache_bytes").set(cache.bytes as f64);
    old
}

/// Bytes currently held by the expanded-basis cache.
pub fn basis_cache_bytes() -> usize {
    basis_cache().lock().expect("basis cache poisoned").bytes
}

/// Evicts least-recently-used entries until the cache fits its
/// capacity, never evicting `keep` (the entry the caller is about to
/// hand out — correctness needs it present for `Arc` sharing even if
/// it alone exceeds the budget).
fn evict_to_capacity(cache: &mut BasisCache, keep: Option<(usize, usize)>) {
    while cache.bytes > cache.capacity {
        let victim = cache
            .entries
            .iter()
            .filter(|(key, _)| Some(**key) != keep)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(key, _)| *key);
        match victim {
            Some(key) => {
                let e = cache.entries.remove(&key).expect("victim present");
                cache.bytes -= e.bytes;
                obs::counter("spectragan_basis_cache_evictions_total").inc(1);
            }
            None => break,
        }
    }
}

/// Builds the `k`-tiled basis (the expensive part, kept out of the
/// cache lock).
fn build_expanded_basis(t: usize, k: usize) -> Arc<Tensor> {
    let base = irfft_basis(t);
    if k == 1 {
        return Arc::new(base);
    }
    let two_f = base.shape().dim(0);
    let mut tiled = Tensor::zeros([two_f, k * t]);
    for r in 0..two_f {
        let src = &base.data()[r * t..(r + 1) * t];
        for rep in 0..k {
            let d0 = r * k * t + rep * t;
            tiled.data_mut()[d0..d0 + t].copy_from_slice(src);
        }
    }
    Arc::new(tiled)
}

/// The inverse-rFFT basis for `k`-expanded spectra of a length-`t`
/// signal: `B_k ∈ R^{2F×k·t}`, cached per `(t, k)`.
///
/// Expansion maps bin `i` of the length-`t` spectrum to bin `k·i` of
/// the length-`k·t` spectrum (scaled by `k`, which the normalized
/// convention absorbs), and the inverse transform of that comb is
/// exactly the `t`-periodic tiling of the original series. Moreover
/// bin `k·i` keeps bin `i`'s one-sided weight class — DC maps to DC,
/// the even-`t` Nyquist `t/2` maps to the Nyquist `k·t/2`, interior
/// bins stay interior — so the expanded basis is [`irfft_basis`]`(t)`
/// with every row tiled `k` times, no reweighting needed.
///
/// A miss builds the basis outside the cache lock, then re-locks and
/// double-checks: if a concurrent caller inserted the same key first,
/// its copy wins and every caller shares one `Arc`. The cache is
/// LRU-bounded by [`set_basis_cache_capacity`].
pub fn expanded_irfft_basis(t: usize, k: usize) -> Arc<Tensor> {
    assert!(k >= 1, "expansion factor must be at least 1");
    let key = (t, k);
    {
        let mut cache = basis_cache().lock().expect("basis cache poisoned");
        cache.clock += 1;
        let now = cache.clock;
        if let Some(entry) = cache.entries.get_mut(&key) {
            entry.last_used = now;
            obs::counter("spectragan_basis_cache_hits_total").inc(1);
            return Arc::clone(&entry.basis);
        }
    }
    // Miss: build without holding the lock, so concurrent hits (and
    // concurrent builds of *other* keys) proceed unblocked.
    let built = build_expanded_basis(t, k);
    let bytes = built.shape().numel() * std::mem::size_of::<f32>();
    let mut cache = basis_cache().lock().expect("basis cache poisoned");
    cache.clock += 1;
    let now = cache.clock;
    if let Some(entry) = cache.entries.get_mut(&key) {
        // A concurrent first-touch won the race; share its copy and
        // drop ours.
        entry.last_used = now;
        obs::counter("spectragan_basis_cache_hits_total").inc(1);
        return Arc::clone(&entry.basis);
    }
    obs::counter("spectragan_basis_cache_misses_total").inc(1);
    cache.entries.insert(
        key,
        BasisEntry {
            basis: Arc::clone(&built),
            bytes,
            last_used: now,
        },
    );
    cache.bytes += bytes;
    evict_to_capacity(&mut cache, Some(key));
    obs::gauge("spectragan_basis_cache_bytes").set(cache.bytes as f64);
    built
}

/// Expands *normalized* spectrum rows `[N, 2F]` of a length-`t` signal
/// by an integer factor `k` and inverse-transforms them, returning
/// time rows `[N, k·t]` (the §2.2.4 long-generation path).
///
/// One matmul against the cached [`expanded_irfft_basis`] — agreeing
/// with the per-pixel `expand_spectrum` + `irfft` DSP path to ≤1e-4
/// (they are the same linear map; only the float rounding differs).
pub fn expand_rows_to_series(rows: &Tensor, t: usize, k: usize) -> Tensor {
    let two_f = rows.shape().dim(1);
    assert_eq!(two_f, 2 * (t / 2 + 1), "row width does not match t");
    let basis = expanded_irfft_basis(t, k);
    rows.matmul(&basis)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series(t: usize) -> Vec<f64> {
        (0..t)
            .map(|n| {
                1.0 + (2.0 * std::f64::consts::PI * n as f64 / 24.0).sin()
                    + 0.2 * (2.0 * std::f64::consts::PI * n as f64 * 3.0 / t as f64).cos()
            })
            .collect()
    }

    #[test]
    fn basis_matmul_matches_dsp_irfft() {
        for t in [24usize, 25, 168] {
            let x = demo_series(t);
            let spec: Vec<Complex> = rfft(&x)
                .into_iter()
                .map(|z| z.scale(1.0 / t as f64))
                .collect();
            let row = complex_to_row(&spec);
            let basis = irfft_basis(t);
            let rows = Tensor::from_vec(row, [1, 2 * (t / 2 + 1)]);
            let back = rows.matmul(&basis);
            for (a, b) in back.data().iter().zip(&x) {
                assert!((*a as f64 - b).abs() < 1e-3, "t={t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn complex_row_roundtrip() {
        let spec = rfft(&demo_series(24));
        let row = complex_to_row(&spec);
        let back = row_to_complex(&row);
        for (a, b) in spec.iter().zip(&back) {
            assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6);
        }
    }

    #[test]
    fn patch_rows_roundtrip() {
        let patch = Tensor::from_vec((0..2 * 3 * 4).map(|i| i as f32).collect(), [2, 3, 4]);
        let rows = patch_to_rows(&patch);
        assert_eq!(rows.shape().dims(), &[12, 2]);
        // Pixel (0,1) series = values at [t,0,1].
        assert_eq!(rows.at(&[1, 0]), patch.at(&[0, 0, 1]));
        assert_eq!(rows.at(&[1, 1]), patch.at(&[1, 0, 1]));
        let back = rows_to_patch(&rows, 3, 4);
        assert_eq!(back, patch);
    }

    #[test]
    fn masked_rows_zero_most_bins() {
        let t = 48;
        let mut patch = Tensor::zeros([t, 2, 2]);
        for ti in 0..t {
            for px in 0..4 {
                patch.data_mut()[ti * 4 + px] = demo_series(t)[ti] as f32 * (px + 1) as f32;
            }
        }
        let rows = masked_spec_rows(&patch, 0.75);
        assert_eq!(rows.shape().dims(), &[4, 2 * 25]);
        for px in 0..4 {
            let row = &rows.data()[px * 50..(px + 1) * 50];
            let nonzero = row.iter().filter(|v| v.abs() > 1e-9).count();
            assert!(nonzero > 0 && nonzero < 30, "px {px}: {nonzero} nonzero");
        }
    }

    /// The cached tiled basis and the per-pixel DSP route
    /// (`expand_spectrum` + `irfft`) are the same linear map; pin them
    /// against each other to ≤1e-4 over odd/even lengths and several
    /// expansion factors.
    #[test]
    fn cached_basis_matches_dsp_expansion_path() {
        use spectragan_dsp::{expand_spectrum, irfft};
        for (t, k) in [(24usize, 1usize), (24, 2), (24, 7), (25, 3), (48, 4)] {
            let f = t / 2 + 1;
            // Three synthetic pixels with distinct spectra.
            let mut rows = Tensor::zeros([3, 2 * f]);
            for px in 0..3 {
                let series: Vec<f64> = (0..t)
                    .map(|n| {
                        (px + 1) as f64
                            + (2.0 * std::f64::consts::PI * n as f64 * (px + 1) as f64 / t as f64)
                                .sin()
                    })
                    .collect();
                let spec: Vec<Complex> = rfft(&series)
                    .into_iter()
                    .map(|z| z.scale(1.0 / t as f64))
                    .collect();
                rows.data_mut()[px * 2 * f..(px + 1) * 2 * f]
                    .copy_from_slice(&complex_to_row(&spec));
            }
            let fast = expand_rows_to_series(&rows, t, k);
            assert_eq!(fast.shape().dims(), &[3, k * t]);
            for px in 0..3 {
                let spec: Vec<Complex> = row_to_complex(&rows.data()[px * 2 * f..(px + 1) * 2 * f])
                    .into_iter()
                    .map(|z| z.scale(t as f64))
                    .collect();
                let slow = irfft(&expand_spectrum(&spec, t, k), k * t);
                for (j, &s) in slow.iter().enumerate() {
                    let g = fast.at(&[px, j]) as f64;
                    assert!(
                        (g - s).abs() <= 1e-4,
                        "t={t} k={k} px={px} j={j}: {g} vs {s}"
                    );
                }
            }
        }
    }

    /// Cache tests serialize on this lock: they manipulate the global
    /// capacity and assert on `Arc` identity, which eviction from a
    /// concurrently running cache test would break.
    static CACHE_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn cache_test_guard() -> std::sync::MutexGuard<'static, ()> {
        CACHE_TEST_LOCK
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    #[test]
    fn expanded_basis_is_cached_by_key() {
        let _g = cache_test_guard();
        let a = expanded_irfft_basis(24, 3);
        let b = expanded_irfft_basis(24, 3);
        assert!(Arc::ptr_eq(&a, &b), "same (t, k) must share one basis");
        assert_eq!(a.shape().dims(), &[2 * 13, 72]);
    }

    /// Many threads racing the first touch of one fresh key must all
    /// end up sharing a single cached basis (the double-checked insert:
    /// losers of the build race adopt the winner's copy).
    #[test]
    fn concurrent_first_touch_shares_one_basis() {
        let _g = cache_test_guard();
        // A key no other test uses, so this really is a first touch
        // (or at worst a re-insert after eviction — same code path).
        let (t, k) = (26usize, 5usize);
        let n = 8;
        let barrier = std::sync::Barrier::new(n);
        let bases: Vec<Arc<Tensor>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        expanded_irfft_basis(t, k)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for b in &bases[1..] {
            assert!(
                Arc::ptr_eq(&bases[0], b),
                "racing first-touchers must share one Arc"
            );
        }
        assert_eq!(bases[0].shape().dims(), &[2 * (t / 2 + 1), k * t]);
    }

    /// Under a small byte budget the cache evicts least-recently-used
    /// keys, keeps recently-touched ones, and its accounting tracks the
    /// bound.
    #[test]
    fn cache_evicts_lru_under_byte_pressure() {
        let _g = cache_test_guard();
        let one_basis = |t: usize, k: usize| 2 * (t / 2 + 1) * k * t * std::mem::size_of::<f32>();
        // Room for roughly two of the three bases below.
        let cap = one_basis(32, 2) + one_basis(32, 3) + one_basis(32, 4) / 2;
        let old = set_basis_cache_capacity(cap);
        let a = expanded_irfft_basis(32, 2);
        let b = expanded_irfft_basis(32, 3);
        // Touch `a` so `b` is the LRU entry when `c` overflows the cap.
        let a2 = expanded_irfft_basis(32, 2);
        assert!(Arc::ptr_eq(&a, &a2));
        let _c = expanded_irfft_basis(32, 4);
        assert!(basis_cache_bytes() <= cap, "cache must respect its cap");
        let b2 = expanded_irfft_basis(32, 3);
        assert!(
            !Arc::ptr_eq(&b, &b2),
            "LRU entry must have been evicted and rebuilt"
        );
        // An entry larger than the whole budget is still served (and
        // kept while being handed out).
        set_basis_cache_capacity(one_basis(32, 2) / 2);
        let big = expanded_irfft_basis(32, 2);
        assert_eq!(big.shape().dims(), &[2 * 17, 64]);
        set_basis_cache_capacity(old);
    }

    #[test]
    fn expanded_rows_repeat_the_signal() {
        let t = 24;
        let x = demo_series(t);
        let spec: Vec<Complex> = rfft(&x)
            .into_iter()
            .map(|z| z.scale(1.0 / t as f64))
            .collect();
        let row = complex_to_row(&spec);
        let rows = Tensor::from_vec(row, [1, 2 * 13]);
        let long = expand_rows_to_series(&rows, t, 3);
        assert_eq!(long.shape().dims(), &[1, 72]);
        for rep in 0..3 {
            for (i, &xv) in x.iter().enumerate().take(t) {
                assert!(
                    (long.at(&[0, rep * t + i]) as f64 - xv).abs() < 1e-3,
                    "rep {rep} i {i}"
                );
            }
        }
    }
}
