//! Full-city generation (§2.2.4): arbitrary spatial size via
//! overlapping patches with shared noise, sewn by per-pixel averaging
//! (Eq. 2); arbitrary duration via k-multiple spectral expansion plus a
//! longer residual-LSTM rollout.

use crate::error::CoreError;
use crate::train::SpectraGan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spectragan_geo::{ContextMap, GridSpec, PatchLayout, PatchSpec, TrafficBand, TrafficMap};
use spectragan_obs as obs;
use spectragan_tensor::{arena, Tensor};
use std::time::Instant;

/// How many patches to push through the generator at once.
const GEN_BATCH: usize = 16;

/// Resource report of one [`SpectraGan::generate_batched_report`]
/// run. The peak is measured with a per-run scoped
/// [`arena::PeakRegion`], so back-to-back generations in one process
/// report independent peaks instead of inheriting an earlier run's
/// high-water mark.
#[derive(Debug, Clone, Copy)]
pub struct GenReport {
    /// Wall-clock seconds the run took.
    pub wall_s: f64,
    /// Peak arena bytes allocated above the level at run start.
    pub peak_arena_bytes: u64,
}

/// A context map pre-processed for repeated generation: the
/// standardization pass (per-channel mean/variance) is done once and
/// shared across every request that targets the same city, instead of
/// being recomputed per call. A serving front-end caches one of these
/// per registered city.
///
/// Generation through a `PreparedContext` is bit-identical to passing
/// the raw [`ContextMap`]: both paths run the exact same
/// `standardized()` pass, this type just memoizes its result.
#[derive(Debug, Clone)]
pub struct PreparedContext {
    ctx_std: ContextMap,
}

impl PreparedContext {
    /// Standardizes `context` once for reuse across requests.
    pub fn new(context: &ContextMap) -> Self {
        PreparedContext {
            ctx_std: context.standardized(),
        }
    }

    /// Grid height in pixels.
    pub fn height(&self) -> usize {
        self.ctx_std.height()
    }

    /// Grid width in pixels.
    pub fn width(&self) -> usize {
        self.ctx_std.width()
    }

    /// Number of context attribute channels.
    pub fn channels(&self) -> usize {
        self.ctx_std.channels()
    }
}

impl SpectraGan {
    /// Generates `t_out` steps of synthetic traffic for a previously
    /// unseen region described by `context`.
    ///
    /// `seed` determines the noise vector; the *same* noise is shared
    /// across all patches of the city — §2.2.4 shows that per-patch
    /// noise plus Eq. 2 averaging would collapse to the expected
    /// traffic and oversmooth the maps.
    ///
    /// The output is clamped to non-negative values and generated at
    /// the training granularity; `t_out` beyond the training length is
    /// produced by expanding the spectrum by `k = ceil(t_out / T)` and
    /// rolling the residual LSTM for `k·T` steps, then truncating.
    pub fn generate(&self, context: &ContextMap, t_out: usize, seed: u64) -> TrafficMap {
        self.generate_opts(context, t_out, seed, true)
    }

    /// Like [`SpectraGan::generate`], but with the noise-sharing policy
    /// exposed: `shared_noise = false` draws a *fresh* noise vector per
    /// patch, the configuration §2.2.4 warns against (the Eq. 2
    /// averaging then acts as an expectation and oversmooths the maps).
    /// Kept public to power the noise ablation bench.
    pub fn generate_opts(
        &self,
        context: &ContextMap,
        t_out: usize,
        seed: u64,
        shared_noise: bool,
    ) -> TrafficMap {
        self.generate_batched(context, t_out, seed, shared_noise, GEN_BATCH)
    }

    /// The fully-parameterized generation entry point: `gen_batch`
    /// patches per generator chunk.
    ///
    /// Generation is **streaming and memory-bounded**: chunks of
    /// patches run in parallel on the [`spectragan_tensor::pool`] pool
    /// and are folded into a [`spectragan_geo::SewAccumulator`] in
    /// chunk-index order via
    /// [`par_fold_ordered`](spectragan_tensor::pool::par_fold_ordered),
    /// then dropped — at most `2 × threads` chunks of patch tensors
    /// exist at any moment, independent of city size and overlap.
    /// Chunk `i` always covers the same patches and folds at the same
    /// index, and fresh noise is derived from `(seed, global patch
    /// index)` rather than a shared sequential stream — so the output
    /// is bit-identical for a given seed at every thread count and
    /// batch size, and bit-identical to the batch sew it replaced.
    pub fn generate_batched(
        &self,
        context: &ContextMap,
        t_out: usize,
        seed: u64,
        shared_noise: bool,
        gen_batch: usize,
    ) -> TrafficMap {
        self.generate_batched_report(context, t_out, seed, shared_noise, gen_batch)
            .0
    }

    /// [`SpectraGan::generate_batched`] plus a [`GenReport`] with the
    /// run's wall time and per-run-scoped peak arena bytes. The
    /// traffic output is byte-identical to `generate_batched`'s.
    ///
    /// # Panics
    /// Panics on an invalid request (`t_out == 0`, `gen_batch == 0`,
    /// or a context that does not fit the model) — this is the
    /// offline-CLI entry point. Server request paths must use
    /// [`SpectraGan::try_generate_batched_report`], which returns
    /// [`CoreError::InvalidRequest`] instead.
    pub fn generate_batched_report(
        &self,
        context: &ContextMap,
        t_out: usize,
        seed: u64,
        shared_noise: bool,
        gen_batch: usize,
    ) -> (TrafficMap, GenReport) {
        match self.try_generate_batched_report(context, t_out, seed, shared_noise, gen_batch) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking form of [`SpectraGan::generate_batched_report`]:
    /// malformed requests come back as
    /// [`CoreError::InvalidRequest`] instead of killing the thread.
    /// For valid inputs the output is bit-identical to the panicking
    /// wrappers (they delegate here).
    pub fn try_generate_batched_report(
        &self,
        context: &ContextMap,
        t_out: usize,
        seed: u64,
        shared_noise: bool,
        gen_batch: usize,
    ) -> Result<(TrafficMap, GenReport), CoreError> {
        let prepared = PreparedContext::new(context);
        self.try_generate_prepared_report(&prepared, t_out, seed, shared_noise, gen_batch)
    }

    /// Like [`SpectraGan::try_generate_batched_report`] but over a
    /// [`PreparedContext`], so a server can standardize each city's
    /// context once and share it across requests. Bit-identical to the
    /// raw-context path.
    pub fn try_generate_prepared_report(
        &self,
        prepared: &PreparedContext,
        t_out: usize,
        seed: u64,
        shared_noise: bool,
        gen_batch: usize,
    ) -> Result<(TrafficMap, GenReport), CoreError> {
        let (map, report) =
            self.generate_inner(prepared, t_out, seed, shared_noise, gen_batch, true, None)?;
        Ok((map.expect("collect mode returns a map"), report))
    }

    /// Streaming generation: averaged city rows are handed to `sink`
    /// as [`TrafficBand`]s the moment no in-flight patch can touch
    /// them anymore — a serving front-end forwards each band as one
    /// chunk of a chunked HTTP response while later patches are still
    /// being generated. Concatenating the bands row-wise reproduces
    /// [`SpectraGan::generate_batched`]'s map bit-for-bit at any
    /// thread count.
    ///
    /// `sink` returns `false` to stop receiving bands (client gone);
    /// generation still runs to completion — the ordered fold cannot
    /// be abandoned mid-flight — but no further bands are built or
    /// delivered.
    pub fn try_generate_stream(
        &self,
        prepared: &PreparedContext,
        t_out: usize,
        seed: u64,
        shared_noise: bool,
        gen_batch: usize,
        sink: &mut dyn FnMut(TrafficBand) -> bool,
    ) -> Result<GenReport, CoreError> {
        let (_, report) = self.generate_inner(
            prepared,
            t_out,
            seed,
            shared_noise,
            gen_batch,
            false,
            Some(sink),
        )?;
        Ok(report)
    }

    /// Validates a generation request without running it, so a server
    /// can reject bad input with a typed 4xx *before* committing to a
    /// streamed response. Exactly the checks the generation entry
    /// points perform.
    pub fn validate_generate(
        &self,
        prepared: &PreparedContext,
        t_out: usize,
        gen_batch: usize,
    ) -> Result<(), CoreError> {
        let cfg = self.config();
        if t_out == 0 {
            return Err(CoreError::InvalidRequest(
                "cannot generate an empty series (t_out = 0)".into(),
            ));
        }
        if gen_batch == 0 {
            return Err(CoreError::InvalidRequest(
                "gen_batch must be positive".into(),
            ));
        }
        if prepared.channels() != cfg.context_channels {
            return Err(CoreError::InvalidRequest(format!(
                "context has {} channels, the model expects {}",
                prepared.channels(),
                cfg.context_channels
            )));
        }
        let side = cfg.patch_traffic;
        if prepared.height() < side || prepared.width() < side {
            return Err(CoreError::InvalidRequest(format!(
                "context grid {}×{} is smaller than one {side}-pixel patch",
                prepared.height(),
                prepared.width()
            )));
        }
        Ok(())
    }

    /// The generation core shared by every public entry point: chunks
    /// of patches run on the pool, fold into a sew accumulator in
    /// chunk order, and completed row bands are drained immediately —
    /// into the output map (`collect`), to the `stream` sink, or both.
    #[allow(clippy::too_many_arguments)]
    fn generate_inner(
        &self,
        prepared: &PreparedContext,
        t_out: usize,
        seed: u64,
        shared_noise: bool,
        gen_batch: usize,
        collect: bool,
        stream: Option<&mut dyn FnMut(TrafficBand) -> bool>,
    ) -> Result<(Option<TrafficMap>, GenReport), CoreError> {
        self.validate_generate(prepared, t_out, gen_batch)?;
        let start = Instant::now();
        let peak_region = arena::PeakRegion::begin();
        let sp_run = obs::span_cat("generate", "generate");
        // Instantaneous backend marker, mirroring train_step: dropped
        // immediately so it never parents the run's real spans.
        drop(obs::span_cat(
            spectragan_tensor::backend::kind().name(),
            "backend",
        ));
        let (cfg, store, gen) = self.parts();
        let k = t_out.div_ceil(cfg.train_len).max(1);
        let ctx_std = &prepared.ctx_std;
        let grid = GridSpec::new(ctx_std.height(), ctx_std.width());
        let layout = PatchLayout::new(
            grid,
            PatchSpec::new(cfg.patch_traffic, cfg.patch_context(), cfg.patch_stride),
        );

        // One noise vector for the whole city, spatially constant.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut z_vec = vec![0.0f32; cfg.noise_dim];
        for v in &mut z_vec {
            *v = gauss(&mut rng);
        }

        let positions = layout.positions();
        let px = cfg.pixels_per_patch();
        let side = cfg.patch_traffic;
        let n_chunks = positions.len().div_ceil(gen_batch);
        // Enough in-flight chunks to keep every worker busy while the
        // consumer folds, small enough to bound patch memory.
        let window = (spectragan_tensor::pool::threads() * 2).max(2);
        let mut acc = layout.sew_accumulator(t_out);
        let mut out_map = collect.then(|| TrafficMap::zeros(t_out, grid.height, grid.width));
        let mut stream = stream;
        let mut stream_live = true;
        // Drains every band whose rows are final, clamps it to
        // non-negative traffic, and routes it to the map and/or sink.
        let drain_bands = |acc: &mut spectragan_geo::SewAccumulator<'_>,
                           out_map: &mut Option<TrafficMap>,
                           stream: &mut Option<&mut dyn FnMut(TrafficBand) -> bool>,
                           stream_live: &mut bool| {
            while let Some(mut band) = acc.emit_band() {
                for v in &mut band.data {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                if let Some(map) = out_map.as_mut() {
                    band.write_into(map);
                }
                if *stream_live {
                    if let Some(sink) = stream.as_mut() {
                        *stream_live = sink(band);
                    }
                }
            }
        };
        spectragan_tensor::pool::par_fold_ordered(
            n_chunks,
            window,
            |ci| {
                let sp = obs::span_cat("patch_chunk", "generate");
                let chunk = &positions[ci * gen_batch..((ci + 1) * gen_batch).min(positions.len())];
                let p = chunk.len();
                // Stack context patches.
                let ctx_parts: Vec<Tensor> = chunk
                    .iter()
                    .map(|&pos| {
                        let t = layout.extract_context(ctx_std, pos);
                        let d = t.shape().dims().to_vec();
                        t.reshape([1, d[0], d[1], d[2]])
                    })
                    .collect();
                let refs: Vec<&Tensor> = ctx_parts.iter().collect();
                let ctx_batch = Tensor::concat(&refs, 0);
                // Broadcast the shared noise (or derive per-patch noise
                // from the global patch index when the ablation asks
                // for it).
                let mut z = Tensor::zeros([p, cfg.noise_dim, side, side]);
                for pi in 0..p {
                    let patch_noise: Vec<f32> = if shared_noise {
                        z_vec.clone()
                    } else {
                        let patch_index = (ci * gen_batch + pi) as u64;
                        let mut patch_rng =
                            StdRng::seed_from_u64(per_patch_seed(seed, patch_index));
                        (0..cfg.noise_dim).map(|_| gauss(&mut patch_rng)).collect()
                    };
                    for (d, &nv) in patch_noise.iter().enumerate() {
                        let base = (pi * cfg.noise_dim + d) * side * side;
                        for e in 0..side * side {
                            z.data_mut()[base + e] = nv;
                        }
                    }
                }
                let rows = gen.infer(store, &ctx_batch, &z, k);
                let t_gen = rows.shape().dim(1);
                assert!(
                    t_gen >= t_out,
                    "generator produced {t_gen} steps, fewer than the requested {t_out}"
                );
                let out = (0..p)
                    .map(|pi| {
                        let patch_rows = rows.narrow(0, pi * px, px).narrow(1, 0, t_out);
                        crate::fourier::rows_to_patch(&patch_rows, side, side)
                    })
                    .collect::<Vec<Tensor>>();
                drop(sp);
                out
            },
            |_, patches| {
                // Fold in chunk order and drop the chunk's tensors
                // right away (their buffers go back to the arena),
                // then hand out whatever rows just became final.
                let _sp = obs::span_cat("sew_fold", "generate");
                for patch in &patches {
                    acc.push(patch);
                }
                drop(patches);
                drain_bands(&mut acc, &mut out_map, &mut stream, &mut stream_live);
            },
        );
        let sp = obs::span_cat("sew_finish", "generate");
        drain_bands(&mut acc, &mut out_map, &mut stream, &mut stream_live);
        assert_eq!(
            acc.emitted_rows(),
            grid.height,
            "streamed bands must cover every row"
        );
        drop(sp);
        drop(sp_run);
        let peak_arena_bytes = peak_region.end();
        obs::gauge("spectragan_generate_peak_arena_bytes").set(peak_arena_bytes as f64);
        let report = GenReport {
            wall_s: start.elapsed().as_secs_f64(),
            peak_arena_bytes,
        };
        Ok((out_map, report))
    }
}

/// One standard-normal draw via Box–Muller (the same transform the
/// training path uses, kept here so generation does not depend on the
/// trainer's RNG plumbing).
fn gauss(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Mixes the generation seed with a patch index (SplitMix64 finalizer)
/// so every patch owns a decorrelated noise stream that does not depend
/// on batch size, iteration order or thread count.
fn per_patch_seed(seed: u64, patch_index: u64) -> u64 {
    let mut z = seed ^ patch_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SpectraGanConfig, TrainConfig};
    use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};

    fn tiny_city(seed: u64, scale: f64) -> spectragan_geo::City {
        let ds = DatasetConfig {
            weeks: 1,
            steps_per_hour: 1,
            size_scale: scale,
        };
        generate_city(
            &CityConfig {
                name: format!("G{seed}"),
                height: 33,
                width: 33,
                seed,
            },
            &ds,
        )
    }

    #[test]
    fn generates_requested_shape_and_nonnegative() {
        let model = SpectraGan::new(SpectraGanConfig::tiny(), 3);
        let city = tiny_city(1, 0.36);
        let out = model.generate(&city.context, 24, 7);
        assert_eq!(out.len_t(), 24);
        assert_eq!(out.height(), city.traffic.height());
        assert_eq!(out.width(), city.traffic.width());
        assert!(out.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn generates_longer_than_training_length() {
        let model = SpectraGan::new(SpectraGanConfig::tiny(), 3);
        let city = tiny_city(2, 0.36);
        // train_len = 24; ask for 3 weeks-equivalent (72 = 3×24).
        let out = model.generate(&city.context, 72, 7);
        assert_eq!(out.len_t(), 72);
        // Non-multiple lengths are truncated from the next multiple.
        let odd = model.generate(&city.context, 30, 7);
        assert_eq!(odd.len_t(), 30);
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let model = SpectraGan::new(SpectraGanConfig::tiny(), 4);
        let city = tiny_city(3, 0.36);
        let a = model.generate(&city.context, 24, 11);
        let b = model.generate(&city.context, 24, 11);
        assert_eq!(a.data(), b.data());
        let c = model.generate(&city.context, 24, 12);
        assert_ne!(a.data(), c.data(), "different seeds must differ");
    }

    /// Full-city generation — including a non-multiple `t_out`, which
    /// exercises the exact-`t_out` narrowing — is bit-identical at
    /// every worker count.
    #[test]
    fn generation_is_thread_count_invariant() {
        let model = SpectraGan::new(SpectraGanConfig::tiny(), 10);
        let city = tiny_city(6, 0.36);
        spectragan_tensor::pool::set_threads(Some(1));
        let reference = model.generate(&city.context, 30, 17);
        assert_eq!(reference.len_t(), 30);
        for t in [2, 3, 5, 8] {
            spectragan_tensor::pool::set_threads(Some(t));
            let got = model.generate(&city.context, 30, 17);
            assert_eq!(got.data(), reference.data(), "threads={t}");
        }
        spectragan_tensor::pool::set_threads(None);
    }

    #[test]
    fn fresh_noise_ablation_is_thread_and_seed_deterministic() {
        let model = SpectraGan::new(SpectraGanConfig::tiny(), 9);
        let city = tiny_city(5, 0.36);
        spectragan_tensor::pool::set_threads(Some(1));
        let serial = model.generate_opts(&city.context, 24, 21, false);
        spectragan_tensor::pool::set_threads(Some(4));
        let parallel = model.generate_opts(&city.context, 24, 21, false);
        spectragan_tensor::pool::set_threads(None);
        assert_eq!(
            serial.data(),
            parallel.data(),
            "fresh noise must not depend on threads"
        );
        let other = model.generate_opts(&city.context, 24, 22, false);
        assert_ne!(serial.data(), other.data(), "different seeds must differ");
    }

    #[test]
    fn handles_city_sizes_other_than_training() {
        // Train-free structural test: generate for two different grid
        // sizes with one model (the arbitrary-size requirement).
        let model = SpectraGan::new(SpectraGanConfig::tiny(), 5);
        for scale in [0.36, 0.55] {
            let city = tiny_city(4, scale);
            let out = model.generate(&city.context, 24, 1);
            assert_eq!(out.height(), city.traffic.height());
            assert_eq!(out.width(), city.traffic.width());
        }
    }

    /// End-to-end smoke: short training then generation produces maps
    /// whose spatial distribution correlates with the real city better
    /// than noise (weak but meaningful signal for a smoke test).
    #[test]
    fn trained_model_generates_plausible_spatial_pattern() {
        // Train on four cities (the leave-one-out protocol trains on
        // eight) so the context→traffic mapping generalizes rather than
        // memorizing one city's patch layouts — with a single small
        // city the GAN memorizes and test-city correlation collapses.
        let train_cities: Vec<_> = [10u64, 12, 13, 14]
            .iter()
            .map(|&s| tiny_city(s, 0.45))
            .collect();
        let test_city = tiny_city(11, 0.45);
        let mut model = SpectraGan::new(SpectraGanConfig::tiny(), 6);
        let tc = TrainConfig {
            steps: 120,
            batch_patches: 3,
            lr: 4e-3,
            seed: 0,
        };
        model.train(&train_cities, &tc).unwrap();
        let synth = model.generate(&test_city.context, 24, 3);
        let real_mean = test_city.traffic.mean_map();
        let synth_mean = synth.mean_map();
        let pcc = spectragan_metrics_free_pearson(&real_mean, &synth_mean);
        assert!(pcc > 0.2, "spatial correlation too weak: {pcc}");
    }

    /// Every malformed request comes back as a typed
    /// [`CoreError::InvalidRequest`] from the `try_` entry points —
    /// the server's request path must never hit a panic.
    #[test]
    fn invalid_requests_return_typed_errors() {
        let model = SpectraGan::new(SpectraGanConfig::tiny(), 3);
        let city = tiny_city(20, 0.36);
        let bad =
            |r: Result<(spectragan_geo::TrafficMap, GenReport), CoreError>, needle: &str| match r {
                Err(CoreError::InvalidRequest(why)) => {
                    assert!(why.contains(needle), "{why:?} should mention {needle:?}")
                }
                other => panic!("expected InvalidRequest, got {other:?}"),
            };
        bad(
            model.try_generate_batched_report(&city.context, 0, 7, true, 8),
            "t_out",
        );
        bad(
            model.try_generate_batched_report(&city.context, 24, 7, true, 0),
            "gen_batch",
        );
        // Wrong channel count.
        let skinny = spectragan_geo::ContextMap::zeros(2, 33, 33);
        bad(
            model.try_generate_batched_report(&skinny, 24, 7, true, 8),
            "channels",
        );
        // Grid smaller than one traffic patch.
        let cfg = model.config();
        let tiny_grid = spectragan_geo::ContextMap::zeros(cfg.context_channels, 1, 1);
        bad(
            model.try_generate_batched_report(&tiny_grid, 24, 7, true, 8),
            "patch",
        );
    }

    /// The legacy panicking wrapper still panics on bad input — it
    /// delegates to the typed path and re-raises.
    #[test]
    #[should_panic(expected = "cannot generate an empty series")]
    fn panicking_wrapper_still_panics_on_empty_series() {
        let model = SpectraGan::new(SpectraGanConfig::tiny(), 3);
        let city = tiny_city(21, 0.36);
        let _ = model.generate(&city.context, 0, 7);
    }

    /// The prepared-context path and the band-streaming path both
    /// reproduce the batch API's bytes exactly — the serve front-end
    /// relies on this for its byte-identity guarantee.
    #[test]
    fn prepared_and_streamed_paths_match_batch_bytes() {
        let model = SpectraGan::new(SpectraGanConfig::tiny(), 8);
        let city = tiny_city(22, 0.36);
        let (reference, _) = model.generate_batched_report(&city.context, 30, 13, true, 5);

        let prepared = PreparedContext::new(&city.context);
        let (via_prepared, _) = model
            .try_generate_prepared_report(&prepared, 30, 13, true, 5)
            .unwrap();
        assert_eq!(via_prepared.data(), reference.data());

        // Reassemble the stream into a map and compare bit-for-bit,
        // checking the bands tile the grid exactly once, in order.
        for threads in [1, 4] {
            spectragan_tensor::pool::set_threads(Some(threads));
            let mut assembled =
                spectragan_geo::TrafficMap::zeros(30, city.context.height(), city.context.width());
            let mut next_row = 0usize;
            model
                .try_generate_stream(&prepared, 30, 13, true, 5, &mut |band| {
                    assert_eq!(band.y0, next_row, "bands must arrive in row order");
                    assert!(band.rows > 0);
                    next_row += band.rows;
                    band.write_into(&mut assembled);
                    true
                })
                .unwrap();
            assert_eq!(next_row, city.context.height(), "threads={threads}");
            assert_eq!(assembled.data(), reference.data(), "threads={threads}");
        }
        spectragan_tensor::pool::set_threads(None);
    }

    /// A sink that gives up (client disconnect) stops deliveries but
    /// the run still completes and reports cleanly.
    #[test]
    fn stream_sink_can_stop_early_without_error() {
        let model = SpectraGan::new(SpectraGanConfig::tiny(), 8);
        let city = tiny_city(23, 0.36);
        let prepared = PreparedContext::new(&city.context);
        let mut delivered = 0usize;
        let report = model
            .try_generate_stream(&prepared, 24, 13, true, 5, &mut |_| {
                delivered += 1;
                false
            })
            .unwrap();
        assert_eq!(delivered, 1, "sink declined after the first band");
        assert!(report.wall_s >= 0.0);
    }

    /// Local Pearson helper to avoid a dev-dependency cycle with the
    /// metrics crate.
    fn spectragan_metrics_free_pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            cov += (x - ma) * (y - mb);
            va += (x - ma) * (x - ma);
            vb += (y - mb) * (y - mb);
        }
        if va <= 0.0 || vb <= 0.0 {
            return 0.0;
        }
        cov / (va.sqrt() * vb.sqrt())
    }
}
