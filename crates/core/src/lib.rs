//! SpectraGAN — the paper's primary contribution, reproduced.
//!
//! A conditional GAN that synthesizes city-scale spatiotemporal mobile
//! network traffic from public context maps (§2 of the paper). The
//! model is a conditional neural sampler with three generator parts and
//! two discriminators, all operating on fixed-size patches:
//!
//! * **Encoder** `E^G` — a CNN mapping the (wider) context window to a
//!   hidden representation `h` aligned with the traffic patch.
//! * **Spectrum generator** `G^s` — produces, per pixel, the one-sided
//!   frequency components of the traffic series, which a fixed
//!   (differentiable, linear) inverse-rFFT basis turns into the
//!   periodic part of the signal.
//! * **Time-series generator** `G^t` — a batched LSTM producing the
//!   non-periodic residual in the time domain.
//! * **Discriminators** `R^s` (an MLP on spectrum rows) and `R^t` (an
//!   LSTM on traffic series), both conditioned on a separately encoded
//!   context `E^R`.
//!
//! Training minimizes Eq. 1: the two adversarial (Jensen–Shannon) terms
//! plus `λ` times an L1 term against the real series and the
//! quantile-masked real spectrum `M^q` (λ = 0.5, q = 0.75 by default).
//!
//! Generation handles **arbitrary city sizes** by sliding overlapping
//! patches with shared noise and averaging per pixel (Eq. 2), and
//! **arbitrary durations** by the k-multiple spectral expansion of
//! §2.2.4 before the inverse FFT, with the LSTM simply run for more
//! steps.
//!
//! The ablation variants of §4.2 are first-class: [`Variant::SpecOnly`],
//! [`Variant::TimeOnly`], [`Variant::TimeOnlyPlus`] and
//! [`Variant::PixelContext`] (the paper's SpectraGAN−).
//!
//! Training is **crash-safe**: [`SpectraGan::train_with`] periodically
//! writes checksummed checkpoints (weights + optimizer moments + loss
//! traces) through atomic renames, and a killed run resumed from its
//! last checkpoint produces bit-identical final weights — see
//! [`checkpoint`] and the [`train`] module docs.

pub mod checkpoint;
pub mod config;
pub mod error;
pub mod fourier;
pub mod generate;
pub mod model;
pub mod shard;
pub mod train;
pub mod weights;

pub use checkpoint::{Checkpoint, LogRecord};
pub use config::{SpectraGanConfig, TrainConfig, Variant};
pub use error::CoreError;
pub use generate::{GenReport, PreparedContext};
pub use shard::{GradReducer, LocalReducer, Phase, StepGrads};
pub use train::{SpectraGan, TrainOptions, TrainStats};
pub use weights::{Precision, WeightStore};
