//! The SpectraGAN networks: generator (encoder `E^G`, spectrum
//! generator `G^s`, time-series generator `G^t`) and the adversarial
//! side (encoder `E^R`, spectrum discriminator `R^s`, time
//! discriminator `R^t`), per Fig. 3 of the paper.
//!
//! Internally, everything after the encoder works on *pixel rows*: a
//! batch of `P` patches of side `H_t` becomes `N_px = P·H_t²` rows, so
//! the spectrum head is a per-pixel linear map and the two LSTMs are
//! batched across pixels — the paper's "batched LSTM".

use crate::config::{SpectraGanConfig, Variant};
use crate::fourier::{expand_rows_to_series, irfft_basis};
use rand::Rng;
use spectragan_nn::layers::Activation;
use spectragan_nn::{Binding, Conv2d, Linear, Lstm, Mlp, ParamStore, Tensor, Var};

/// Output of one generator forward pass.
pub struct GenOut {
    /// Spectrum rows `[N_px, 2F]` (absent for the time-only variants).
    pub spec: Option<Var>,
    /// Generated traffic series rows `[N_px, T]` (the sum
    /// `x̃ = x̃^s + x̃^t` for the full model).
    pub series: Var,
}

/// The generator half of SpectraGAN.
pub struct Generator {
    cfg: SpectraGanConfig,
    enc1: Conv2d,
    enc2: Conv2d,
    spec_feat: Option<Conv2d>,
    spec_head: Option<Linear>,
    time_feat: Option<Conv2d>,
    time_lstm: Option<Lstm>,
    time_head: Option<Linear>,
    amp_head: Option<Linear>,
    /// Constant inverse-rFFT basis `[2F, T]`.
    basis: Tensor,
}

impl Generator {
    /// Registers all generator parameters in `store`.
    pub fn new(cfg: SpectraGanConfig, store: &mut ParamStore, rng: &mut impl Rng) -> Self {
        let (c, ch, cs) = (cfg.context_channels, cfg.encoder_channels, cfg.gen_channels);
        let enc1 = Conv2d::new(store, c, ch, 3, 1, rng);
        let enc2 = Conv2d::new(store, ch, ch, 3, 1, rng);
        let feat_in = ch + cfg.noise_dim;
        let (mut spec_feat, mut spec_head) = (None, None);
        if cfg.variant.has_spectrum() {
            spec_feat = Some(Conv2d::new(store, feat_in, cs, 3, 1, rng));
            // Small-gain head: start from a silent spectrum and let the
            // masked L1 raise the significant components.
            spec_head = Some(Linear::new_scaled(store, cs, 2 * cfg.f_bins(), 0.1, rng));
        }
        let (mut time_feat, mut time_lstm, mut time_head, mut amp_head) = (None, None, None, None);
        if cfg.variant.has_time() {
            time_feat = Some(Conv2d::new(store, feat_in, cs, 3, 1, rng));
            time_lstm = Some(Lstm::new(store, cs, cfg.lstm_hidden, rng));
            // Small-gain head: the residual must stay a *residual*
            // (Fig. 1f) rather than drown the spectral signal.
            time_head = Some(Linear::new_scaled(store, cfg.lstm_hidden, 1, 0.1, rng));
            if cfg.variant == Variant::TimeOnlyPlus {
                amp_head = Some(Linear::new(store, cs, 2, rng));
            }
        }
        Generator {
            cfg,
            enc1,
            enc2,
            spec_feat,
            spec_head,
            time_feat,
            time_lstm,
            time_head,
            amp_head,
            basis: irfft_basis(cfg.train_len),
        }
    }

    /// Encoder `E^G`: context window `[P, C, H_c, W_c]` → hidden
    /// `[P, C_h, H_t, W_t]`. The wide-context variants pool 2× between
    /// the convolutions; the pixel-context variant has nothing to pool.
    fn encode(&self, bind: &Binding<'_>, ctx: &Var) -> Var {
        let mut h = self.enc1.forward(bind, ctx).leaky_relu(0.2);
        if self.cfg.patch_context() > self.cfg.patch_traffic {
            h = h.avg_pool2();
        }
        self.enc2.forward(bind, &h).leaky_relu(0.2)
    }

    /// `[P, C, H_t, W_t]`-shaped feature map → pixel rows `[N_px, C]`.
    fn to_rows(feat: &Var) -> Var {
        let d = feat.shape();
        let (p, c, h, w) = (d.dim(0), d.dim(1), d.dim(2), d.dim(3));
        feat.permute(&[0, 2, 3, 1]).reshape([p * h * w, c])
    }

    /// Full differentiable forward pass at the training length.
    ///
    /// `ctx` is `[P, C, H_c, W_c]`; `z` is `[P, Z, H_t, W_t]` noise.
    pub fn forward(&self, bind: &Binding<'_>, ctx: &Var, z: &Var) -> GenOut {
        let h = self.encode(bind, ctx);
        let hz = Var::concat(&[h, z.clone()], 1);
        let t = self.cfg.train_len;

        let mut spec_rows = None;
        let mut series: Option<Var> = None;
        if let (Some(feat), Some(head)) = (&self.spec_feat, &self.spec_head) {
            let rows = Self::to_rows(&feat.forward(bind, &hz).leaky_relu(0.2));
            let spec = head.forward(bind, &rows);
            let xs = spec.matmul_const(&self.basis);
            spec_rows = Some(spec);
            series = Some(xs);
        }
        if let (Some(feat), Some(lstm), Some(head)) =
            (&self.time_feat, &self.time_lstm, &self.time_head)
        {
            let rows = Self::to_rows(&feat.forward(bind, &hz).leaky_relu(0.2));
            let n_px = rows.shape().dim(0);
            let xw = lstm.precompute_input(bind, &rows);
            let mut state = lstm.zero_state(bind, n_px);
            let mut outs = Vec::with_capacity(t);
            for _ in 0..t {
                state = lstm.step_projected(bind, &xw, &state);
                outs.push(head.forward(bind, &state.h));
            }
            let mut xt = Var::concat(&outs, 1);
            if let Some(amp) = &self.amp_head {
                let a = amp.forward(bind, &rows);
                let ones_row = Tensor::ones([1, t]);
                let scale = a.narrow(1, 0, 1).softplus().matmul_const(&ones_row);
                let offset = a.narrow(1, 1, 1).matmul_const(&ones_row);
                xt = xt.mul(&scale).add(&offset);
            }
            series = Some(match series {
                Some(s) => s.add(&xt),
                None => xt,
            });
        }
        GenOut {
            spec: spec_rows,
            series: series.expect("at least one generator path is active"),
        }
    }

    /// Tape-free generation of `k · train_len` steps for a batch of
    /// context patches: spectrum rows are k-expanded before the inverse
    /// FFT (§2.2.4), the residual LSTM simply runs longer. Returns
    /// series rows `[N_px, k·T]`.
    pub fn infer(&self, store: &ParamStore, ctx: &Tensor, z: &Tensor, k: usize) -> Tensor {
        let lrelu = |t: Tensor| t.map(|v| if v > 0.0 { v } else { 0.2 * v });
        let mut h = lrelu(self.enc1.forward_infer(store, ctx));
        if self.cfg.patch_context() > self.cfg.patch_traffic {
            h = h.avg_pool2();
        }
        let h = lrelu(self.enc2.forward_infer(store, &h));
        let hz = Tensor::concat(&[&h, z], 1);
        let t = self.cfg.train_len;
        let t_out = k * t;
        let to_rows = |feat: &Tensor| -> Tensor {
            let d = feat.shape().clone();
            feat.permute(&[0, 2, 3, 1])
                .reshape([d.dim(0) * d.dim(2) * d.dim(3), d.dim(1)])
        };

        let mut series: Option<Tensor> = None;
        if let (Some(feat), Some(head)) = (&self.spec_feat, &self.spec_head) {
            let rows = to_rows(&lrelu(feat.forward_infer(store, &hz)));
            let spec = head.forward_infer(store, &rows);
            // At k = 1 the cached expanded basis equals `self.basis`;
            // the shared cache keeps one copy per (t, k) across chunks.
            series = Some(expand_rows_to_series(&spec, t, k));
        }
        if let (Some(feat), Some(lstm), Some(head)) =
            (&self.time_feat, &self.time_lstm, &self.time_head)
        {
            let rows = to_rows(&lrelu(feat.forward_infer(store, &hz)));
            let n_px = rows.shape().dim(0);
            let xw = store.infer_matmul(&rows, lstm.wx_param());
            let (mut hh, mut cc) = lstm.zero_state_infer(n_px);
            // Roll out step-major: each step's head output is one
            // contiguous row, so the write is a single memcpy instead
            // of an n_px-way column scatter; transpose once at the end
            // (same values, so the result stays bit-equal). Per-step
            // buffers go back to the arena as they are replaced.
            let mut steps = Tensor::zeros([t_out, n_px]);
            for step in 0..t_out {
                let (h2, c2) = lstm.step_infer_projected(store, &xw, &hh, &cc);
                hh = h2;
                cc = c2;
                let out = head.forward_infer(store, &hh);
                steps.data_mut()[step * n_px..(step + 1) * n_px].copy_from_slice(out.data());
            }
            let mut xt = steps.transpose2();
            if let Some(amp) = &self.amp_head {
                let a = amp.forward_infer(store, &rows);
                for px in 0..n_px {
                    let scale = softplus32(a.data()[px * 2]);
                    let offset = a.data()[px * 2 + 1];
                    for v in &mut xt.data_mut()[px * t_out..(px + 1) * t_out] {
                        *v = *v * scale + offset;
                    }
                }
            }
            series = Some(match series {
                Some(s) => s.add(&xt),
                None => xt,
            });
        }
        series.expect("at least one generator path is active")
    }
}

fn softplus32(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// The adversarial half: conditional discriminators `R^s` and `R^t`
/// with their own context encoder `E^R`.
pub struct Discriminators {
    cfg: SpectraGanConfig,
    enc1: Conv2d,
    enc2: Conv2d,
    spec_mlp: Option<Mlp>,
    time_lstm: Lstm,
    time_head: Linear,
}

impl Discriminators {
    /// Registers all discriminator parameters in `store`.
    pub fn new(cfg: SpectraGanConfig, store: &mut ParamStore, rng: &mut impl Rng) -> Self {
        let (c, ch, hd) = (cfg.context_channels, cfg.encoder_channels, cfg.disc_hidden);
        let enc1 = Conv2d::new(store, c, ch, 3, 1, rng);
        let enc2 = Conv2d::new(store, ch, ch, 3, 1, rng);
        let spec_mlp = cfg.variant.has_spectrum().then(|| {
            Mlp::new(
                store,
                &[2 * cfg.f_bins() + ch, 2 * hd, 1],
                Activation::LeakyRelu,
                Activation::Identity,
                rng,
            )
        });
        let time_lstm = Lstm::new(store, 1 + ch, hd, rng);
        let time_head = Linear::new(store, hd, 1, rng);
        Discriminators {
            cfg,
            enc1,
            enc2,
            spec_mlp,
            time_lstm,
            time_head,
        }
    }

    /// Encoder `E^R` → pixel rows `[N_px, C_h]` of context features.
    pub fn encode_rows(&self, bind: &Binding<'_>, ctx: &Var) -> Var {
        let mut h = self.enc1.forward(bind, ctx).leaky_relu(0.2);
        if self.cfg.patch_context() > self.cfg.patch_traffic {
            h = h.avg_pool2();
        }
        let h = self.enc2.forward(bind, &h).leaky_relu(0.2);
        Generator::to_rows(&h)
    }

    /// `R^s`: logits `[N_px, 1]` for spectrum rows under their context.
    pub fn spec_logits(&self, bind: &Binding<'_>, spec_rows: &Var, ctx_rows: &Var) -> Var {
        let mlp = self
            .spec_mlp
            .as_ref()
            .expect("spectrum discriminator absent for this variant");
        let joint = Var::concat(&[spec_rows.clone(), ctx_rows.clone()], 1);
        mlp.forward(bind, &joint)
    }

    /// `R^t`: logits `[N_px, 1]` for traffic series rows `[N_px, T]`
    /// under their context, via an LSTM over time.
    pub fn time_logits(&self, bind: &Binding<'_>, series_rows: &Var, ctx_rows: &Var) -> Var {
        let t = series_rows.shape().dim(1);
        let n_px = series_rows.shape().dim(0);
        let mut state = self.time_lstm.zero_state(bind, n_px);
        for step in 0..t {
            let x_t = series_rows.narrow(1, step, 1);
            let inp = Var::concat(&[x_t, ctx_rows.clone()], 1);
            state = self.time_lstm.step(bind, &inp, &state);
        }
        self.time_head.forward(bind, &state.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spectragan_tensor::Tape;

    fn setup(variant: Variant) -> (SpectraGanConfig, ParamStore, Generator, Discriminators) {
        let cfg = SpectraGanConfig::tiny().with_variant(variant);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let gen = Generator::new(cfg, &mut store, &mut rng);
        let disc = Discriminators::new(cfg, &mut store, &mut rng);
        (cfg, store, gen, disc)
    }

    fn demo_inputs(cfg: &SpectraGanConfig, p: usize) -> (Tensor, Tensor) {
        let mut rng = StdRng::seed_from_u64(1);
        let ctx = Tensor::randn(
            [
                p,
                cfg.context_channels,
                cfg.patch_context(),
                cfg.patch_context(),
            ],
            &mut rng,
        );
        let z = Tensor::randn(
            [p, cfg.noise_dim, cfg.patch_traffic, cfg.patch_traffic],
            &mut rng,
        );
        (ctx, z)
    }

    #[test]
    fn forward_shapes_full_variant() {
        let (cfg, store, gen, disc) = setup(Variant::Full);
        let (ctx, z) = demo_inputs(&cfg, 2);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let out = gen.forward(&bind, &tape.leaf(ctx.clone()), &tape.leaf(z));
        let n_px = 2 * cfg.pixels_per_patch();
        assert_eq!(out.series.shape().dims(), &[n_px, cfg.train_len]);
        assert_eq!(
            out.spec.as_ref().unwrap().shape().dims(),
            &[n_px, 2 * cfg.f_bins()]
        );
        let ctx_rows = disc.encode_rows(&bind, &tape.leaf(ctx));
        assert_eq!(ctx_rows.shape().dims(), &[n_px, cfg.encoder_channels]);
        let sl = disc.spec_logits(&bind, out.spec.as_ref().unwrap(), &ctx_rows);
        assert_eq!(sl.shape().dims(), &[n_px, 1]);
        let tl = disc.time_logits(&bind, &out.series, &ctx_rows);
        assert_eq!(tl.shape().dims(), &[n_px, 1]);
    }

    #[test]
    fn variant_paths_exist_or_not() {
        for (variant, has_spec) in [
            (Variant::SpecOnly, true),
            (Variant::TimeOnly, false),
            (Variant::TimeOnlyPlus, false),
        ] {
            let (cfg, store, gen, _) = setup(variant);
            let (ctx, z) = demo_inputs(&cfg, 1);
            let tape = Tape::new();
            let bind = Binding::new(&tape, &store);
            let out = gen.forward(&bind, &tape.leaf(ctx), &tape.leaf(z));
            assert_eq!(out.spec.is_some(), has_spec, "{variant:?}");
            assert_eq!(
                out.series.shape().dims(),
                &[cfg.pixels_per_patch(), cfg.train_len]
            );
        }
    }

    #[test]
    fn pixel_context_variant_uses_narrow_window() {
        let (cfg, store, gen, _) = setup(Variant::PixelContext);
        assert_eq!(cfg.patch_context(), cfg.patch_traffic);
        let (ctx, z) = demo_inputs(&cfg, 1);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let out = gen.forward(&bind, &tape.leaf(ctx), &tape.leaf(z));
        assert_eq!(
            out.series.shape().dims(),
            &[cfg.pixels_per_patch(), cfg.train_len]
        );
    }

    #[test]
    fn infer_matches_forward_at_k1() {
        // The tape-free inference path must agree with the training
        // forward pass for every variant (they are separate code paths
        // over the same weights).
        for variant in [
            Variant::Full,
            Variant::SpecOnly,
            Variant::TimeOnly,
            Variant::TimeOnlyPlus,
            Variant::PixelContext,
        ] {
            let (cfg, store, gen, _) = setup(variant);
            let (ctx, z) = demo_inputs(&cfg, 2);
            let tape = Tape::new();
            let bind = Binding::new(&tape, &store);
            let out = gen.forward(&bind, &tape.leaf(ctx.clone()), &tape.leaf(z.clone()));
            let inferred = gen.infer(&store, &ctx, &z, 1);
            assert_eq!(inferred.shape().dims(), out.series.shape().dims());
            for (a, b) in inferred.data().iter().zip(out.series.value().data()) {
                assert!((a - b).abs() < 2e-3, "{variant:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn infer_k2_doubles_duration_and_repeats_spectrum_part() {
        let (cfg, store, gen, _) = setup(Variant::SpecOnly);
        let (ctx, z) = demo_inputs(&cfg, 1);
        let short = gen.infer(&store, &ctx, &z, 1);
        let long = gen.infer(&store, &ctx, &z, 2);
        assert_eq!(long.shape().dim(1), 2 * cfg.train_len);
        // Spec-only output is exactly periodic after expansion.
        let t = cfg.train_len;
        for px in 0..cfg.pixels_per_patch() {
            for i in 0..t {
                let a = long.at(&[px, i]);
                let b = long.at(&[px, t + i]);
                assert!((a - b).abs() < 1e-3, "px {px} i {i}: {a} vs {b}");
                assert!((a - short.at(&[px, i])).abs() < 2e-3);
            }
        }
    }

    #[test]
    fn noise_changes_output() {
        let (cfg, store, gen, _) = setup(Variant::Full);
        let (ctx, z1) = demo_inputs(&cfg, 1);
        let mut rng = StdRng::seed_from_u64(99);
        let z2 = Tensor::randn(
            [1, cfg.noise_dim, cfg.patch_traffic, cfg.patch_traffic],
            &mut rng,
        );
        let a = gen.infer(&store, &ctx, &z1, 1);
        let b = gen.infer(&store, &ctx, &z2, 1);
        let diff: f32 = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1e-3, "noise had no effect");
    }
}
