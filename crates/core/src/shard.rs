//! The gradient-reduction seam of sharded deterministic training.
//!
//! [`SpectraGan::train_with`](crate::SpectraGan::train_with) no longer
//! runs one monolithic step. Each step attempt is three explicit
//! phases, driven through the [`GradReducer`] trait:
//!
//! 1. **Compute** — forward/backward (with gradient-accumulation
//!    micro-rounds) producing a [`StepGrads`]: losses, norms and the
//!    per-parameter gradient list in ascending parameter-index order.
//! 2. **Reduce** — the reducer folds every shard's contribution into
//!    one agreed [`StepGrads`], in fixed shard order.
//! 3. **Apply** — the optimizer consumes the reduced list (see
//!    `Adam::apply_updates`), bit-identically to the historical fused
//!    step.
//!
//! Two reducers implement the seam:
//!
//! * [`LocalReducer`] — one shard, in process. Byte-for-byte today's
//!   behavior; the golden fixtures pin it.
//! * [`MultiprocessReducer`] — `fork(2)`ed worker processes connected
//!   by pipes speaking length-prefixed CRC-framed gradient messages
//!   (the `SGGF` flavour of the `SGCK` checked container, see
//!   [`spectragan_geo::io::write_checked_frame`]).
//!
//! # Why replicated compute + ownership assembly
//!
//! The obvious data-parallel split — shard the minibatch, fold partial
//! gradient sums — **cannot** meet this repo's bit-equality contract:
//! the scalar kernels accumulate gradients in one flat running sum per
//! weight element across the whole batch, so `sum(chunk A) + sum(chunk
//! B)` reassociates floating-point additions and differs from the
//! sequential sum in the last bits. (The same argument is why
//! `--grad-accum K` is *not* bit-equal to a `K×` larger batch; see
//! DESIGN.md.) What CAN be exact is what `par_fold_ordered` already
//! proves for threads: identical work, deterministically scheduled,
//! reduced in a fixed order that never reassociates a float.
//!
//! So the multiprocess reducer lifts exactly that contract to
//! processes. Every shard computes the **full** step — bit-identical
//! everywhere because compute is a pure function of `(weights, seed,
//! step, lane)` — and each shard *owns* a contiguous range of
//! parameter indices ([`owned_range`]). Reduction assembles the step's
//! gradient from the owners' wire bytes in fixed shard order: pure
//! selection, zero float reassociation, hence bit-equal to
//! single-process training at any shard count, by construction. The
//! coordinator additionally verifies that every owned slice and every
//! reported loss matches its own replica bitwise — a live cross-shard
//! determinism check on every single step. The seam (compute →
//! ordered reduce → apply) is precisely what a future
//! tolerance-contracted minibatch split would plug into.
//!
//! # Worker lifecycle and crash recovery
//!
//! Workers are forked lazily on the first compute call — *after* the
//! coordinator's own local compute, so every lazily-initialized global
//! (kernel backend, pool metrics, obs registries) is warm before the
//! fork and the child never re-runs process setup. A child inherits
//! the full training state (samples, weights, optimizer moments) and
//! enters [`worker_loop`], replicating every compute and apply the
//! coordinator orders; determinism keeps its replica in lockstep
//! without any weight traffic.
//!
//! If a worker dies (EOF/EPIPE on its pipes — e.g. SIGKILL), the
//! coordinator reaps it, bumps `spectragan_shard_respawns_total`, and
//! forks a replacement from its own in-memory state, which is exactly
//! the pre-apply state every surviving shard holds; the replacement
//! recomputes the current `(step, lane)` and the run continues
//! byte-identically. If the *coordinator* dies, workers see EOF on
//! their command pipes and exit — resume then goes through the
//! ordinary checkpoint path, which restores any shard topology
//! bit-identically because shards never change the math.

use crate::error::CoreError;
use spectragan_geo::io::{read_checked_frame, write_checked_frame, IoError, GRAD_FRAME_MAGIC};
use spectragan_nn::Tensor;
use spectragan_obs as obs;
use std::ops::Range;
use std::sync::OnceLock;
use std::time::Instant;

/// How many worker respawns one training run tolerates before giving
/// up with a typed error — repeated deaths mean something is killing
/// workers faster than recovery helps.
const RESPAWN_BUDGET: u32 = 8;

fn respawns_counter() -> &'static obs::Counter {
    static C: OnceLock<&'static obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("spectragan_shard_respawns_total"))
}

fn skew_histogram() -> &'static obs::Histogram {
    static H: OnceLock<&'static obs::Histogram> = OnceLock::new();
    H.get_or_init(|| obs::histogram("spectragan_shard_skew_ns"))
}

/// Per-shard span names (spans need `'static` names; shards beyond the
/// table share the last slot).
const SHARD_SPAN_NAMES: [&str; 8] = [
    "shard0", "shard1", "shard2", "shard3", "shard4", "shard5", "shard6", "shard7+",
];

fn shard_span_name(shard: u32) -> &'static str {
    SHARD_SPAN_NAMES[(shard as usize).min(SHARD_SPAN_NAMES.len() - 1)]
}

/// One step attempt's gradients and health numbers — the value that
/// crosses the compute → reduce → apply seam.
///
/// Update lists hold `(parameter index, gradient)` in **ascending
/// parameter-index order** (the order `Binding::bound` yields), which
/// fixes the float-summation order of the gradient norms and of the
/// optimizer's global-norm clip — the whole step is reproducible from
/// this value alone.
#[derive(Debug, Clone)]
pub struct StepGrads {
    /// Discriminator loss.
    pub d_loss: f32,
    /// Generator adversarial loss.
    pub g_adv: f32,
    /// Explicit L1 loss (0 for variants without one).
    pub l1: f32,
    /// Global L2 norm of the discriminator update (pre-clip).
    pub grad_norm_d: f32,
    /// Global L2 norm of the generator update (pre-clip).
    pub grad_norm_g: f32,
    /// Discriminator parameter gradients, ascending parameter index.
    pub d_updates: Vec<(u32, Tensor)>,
    /// Generator parameter gradients, ascending parameter index.
    pub g_updates: Vec<(u32, Tensor)>,
}

/// What a reducer asks the training loop to do on the local replica.
pub enum Phase<'a> {
    /// Run forward/backward (all gradient-accumulation micro-rounds)
    /// for this step attempt and return its [`StepGrads`].
    Compute {
        /// 0-based training step.
        step: u64,
        /// Divergence-guard retry lane.
        lane: u32,
    },
    /// Feed the reduced gradients through the optimizers.
    Apply {
        /// The agreed step gradients.
        grads: &'a StepGrads,
    },
}

/// The training loop's callback into the model: `Compute` returns
/// `Some(grads)`, `Apply` returns `None`.
pub type Driver<'d> = &'d mut dyn FnMut(Phase<'_>) -> Option<StepGrads>;

/// The reduction seam: how one step attempt's gradients are computed
/// across shards and agreed on before the optimizer runs.
pub trait GradReducer {
    /// Number of shards participating (1 = single process).
    fn shards(&self) -> usize;

    /// Phase 1+2: run the compute phase on every shard and reduce the
    /// results in fixed shard order into one agreed [`StepGrads`].
    fn compute(&mut self, step: u64, lane: u32, driver: Driver<'_>)
        -> Result<StepGrads, CoreError>;

    /// Phase 3: apply the reduced gradients on every shard.
    fn apply(
        &mut self,
        step: u64,
        lane: u32,
        grads: &StepGrads,
        driver: Driver<'_>,
    ) -> Result<(), CoreError>;
}

/// Single-shard reducer: phases run in process, back to back —
/// byte-for-byte the pre-seam training loop (pinned by the golden
/// fixtures).
pub struct LocalReducer;

impl GradReducer for LocalReducer {
    fn shards(&self) -> usize {
        1
    }

    fn compute(
        &mut self,
        step: u64,
        lane: u32,
        driver: Driver<'_>,
    ) -> Result<StepGrads, CoreError> {
        Ok(driver(Phase::Compute { step, lane }).expect("compute phase returns gradients"))
    }

    fn apply(
        &mut self,
        _step: u64,
        _lane: u32,
        grads: &StepGrads,
        driver: Driver<'_>,
    ) -> Result<(), CoreError> {
        driver(Phase::Apply { grads });
        Ok(())
    }
}

/// The contiguous parameter-index range shard `shard` of `shards` owns
/// on the wire, out of `params` total parameters. Ranges partition
/// `0..params` exactly: every index has one owner, shard order is
/// index order.
pub fn owned_range(shard: usize, shards: usize, params: usize) -> Range<usize> {
    assert!(shard < shards, "shard {shard} out of {shards}");
    (shard * params / shards)..((shard + 1) * params / shards)
}

// ---------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------
//
// Every message is one checked frame (`SGGF` magic, version, length,
// CRC-32 — see geo::io) whose payload starts with a tag byte. All
// integers and floats are little-endian.

const CMD_COMPUTE: u8 = 1;
const CMD_APPLY: u8 = 2;
const CMD_SHUTDOWN: u8 = 3;
const REPLY_REPORT: u8 = 1;
const REPLY_ACK: u8 = 2;

/// Allocation cap for command frames read off the pipe. Commands are a
/// fixed 13 bytes; anything claiming more is a corrupt or forged
/// header, not a bigger command.
const CMD_FRAME_MAX: usize = 64;

/// Allocation cap for report/ack frames. A report carries at most one
/// gradient per owned parameter, so it is bounded by the model size;
/// 1 GiB is far above any real model here while still making a forged
/// 2^60-byte length header a typed error instead of an OOM.
const REPORT_FRAME_MAX: usize = 1 << 30;

/// Coordinator → worker orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    /// Compute gradients for `(step, lane)` and send a report.
    Compute { step: u64, lane: u32 },
    /// Apply the locally cached gradients of `(step, lane)`, then ack.
    Apply { step: u64, lane: u32 },
    /// Exit cleanly.
    Shutdown,
}

fn encode_command(cmd: Command) -> Vec<u8> {
    let mut b = Vec::with_capacity(13);
    let (tag, step, lane) = match cmd {
        Command::Compute { step, lane } => (CMD_COMPUTE, step, lane),
        Command::Apply { step, lane } => (CMD_APPLY, step, lane),
        Command::Shutdown => (CMD_SHUTDOWN, 0, 0),
    };
    b.push(tag);
    b.extend_from_slice(&step.to_le_bytes());
    b.extend_from_slice(&lane.to_le_bytes());
    b
}

fn decode_command(payload: &[u8]) -> Result<Command, CoreError> {
    if payload.len() != 13 {
        return Err(CoreError::Shard(format!(
            "command frame has {} bytes, expected 13",
            payload.len()
        )));
    }
    let step = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
    let lane = u32::from_le_bytes(payload[9..13].try_into().expect("4 bytes"));
    match payload[0] {
        CMD_COMPUTE => Ok(Command::Compute { step, lane }),
        CMD_APPLY => Ok(Command::Apply { step, lane }),
        CMD_SHUTDOWN => Ok(Command::Shutdown),
        tag => Err(CoreError::Shard(format!("unknown command tag {tag}"))),
    }
}

/// A worker's decoded compute report: scalars plus the gradient bytes
/// of its owned parameter range.
#[derive(Debug, Clone, PartialEq)]
struct Report {
    shard: u32,
    step: u64,
    lane: u32,
    /// `[d_loss, g_adv, l1, grad_norm_d, grad_norm_g]`.
    scalars: [f32; 5],
    /// Owned discriminator entries: `(param index, gradient values)`.
    d_owned: Vec<(u32, Vec<f32>)>,
    /// Owned generator entries.
    g_owned: Vec<(u32, Vec<f32>)>,
}

fn encode_section(b: &mut Vec<u8>, updates: &[(u32, Tensor)], owned: &Range<usize>) {
    let picked: Vec<&(u32, Tensor)> = updates
        .iter()
        .filter(|(p, _)| owned.contains(&(*p as usize)))
        .collect();
    b.extend_from_slice(&(picked.len() as u32).to_le_bytes());
    for (p, t) in picked {
        b.extend_from_slice(&p.to_le_bytes());
        b.extend_from_slice(&(t.numel() as u64).to_le_bytes());
        for &v in t.data() {
            b.extend_from_slice(&v.to_le_bytes());
        }
    }
}

fn encode_report(
    shard: u32,
    step: u64,
    lane: u32,
    grads: &StepGrads,
    owned: &Range<usize>,
) -> Vec<u8> {
    let mut b = vec![REPLY_REPORT];
    b.extend_from_slice(&step.to_le_bytes());
    b.extend_from_slice(&lane.to_le_bytes());
    b.extend_from_slice(&shard.to_le_bytes());
    for v in [
        grads.d_loss,
        grads.g_adv,
        grads.l1,
        grads.grad_norm_d,
        grads.grad_norm_g,
    ] {
        b.extend_from_slice(&v.to_le_bytes());
    }
    encode_section(&mut b, &grads.d_updates, owned);
    encode_section(&mut b, &grads.g_updates, owned);
    b
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        if self.pos + n > self.bytes.len() {
            return Err(CoreError::Shard(format!(
                "report frame truncated at byte {} (need {n} more of {})",
                self.pos,
                self.bytes.len()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f32(&mut self) -> Result<f32, CoreError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
}

fn decode_section(c: &mut Cursor<'_>) -> Result<Vec<(u32, Vec<f32>)>, CoreError> {
    let count = c.u32()? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let param = c.u32()?;
        let numel = c.u64()? as usize;
        let raw = c.take(numel * 4)?;
        let values = raw
            .chunks_exact(4)
            .map(|ch| f32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]))
            .collect();
        out.push((param, values));
    }
    Ok(out)
}

fn decode_report(payload: &[u8]) -> Result<Report, CoreError> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let tag = c.take(1)?[0];
    if tag != REPLY_REPORT {
        return Err(CoreError::Shard(format!(
            "expected a report frame, got reply tag {tag}"
        )));
    }
    let step = c.u64()?;
    let lane = c.u32()?;
    let shard = c.u32()?;
    let mut scalars = [0.0f32; 5];
    for s in &mut scalars {
        *s = c.f32()?;
    }
    let d_owned = decode_section(&mut c)?;
    let g_owned = decode_section(&mut c)?;
    if c.pos != payload.len() {
        return Err(CoreError::Shard(format!(
            "report frame has {} trailing bytes",
            payload.len() - c.pos
        )));
    }
    Ok(Report {
        shard,
        step,
        lane,
        scalars,
        d_owned,
        g_owned,
    })
}

fn encode_ack(shard: u32, step: u64, lane: u32) -> Vec<u8> {
    let mut b = vec![REPLY_ACK];
    b.extend_from_slice(&step.to_le_bytes());
    b.extend_from_slice(&lane.to_le_bytes());
    b.extend_from_slice(&shard.to_le_bytes());
    b
}

fn decode_ack(payload: &[u8]) -> Result<(u32, u64, u32), CoreError> {
    if payload.len() != 17 || payload[0] != REPLY_ACK {
        return Err(CoreError::Shard(format!(
            "malformed ack frame ({} bytes, tag {})",
            payload.len(),
            payload.first().copied().unwrap_or(0)
        )));
    }
    let step = u64::from_le_bytes(payload[1..9].try_into().expect("8"));
    let lane = u32::from_le_bytes(payload[9..13].try_into().expect("4"));
    let shard = u32::from_le_bytes(payload[13..17].try_into().expect("4"));
    Ok((shard, step, lane))
}

/// Bitwise agreement check + splice: verifies the worker's report
/// matches the coordinator's replica on scalars and on every owned
/// gradient, then installs the wire bytes into `local` (pure
/// selection — the verified bytes are what downstream phases consume).
fn verify_and_splice(
    local: &mut StepGrads,
    report: &Report,
    owned: &Range<usize>,
) -> Result<(), CoreError> {
    let shard = report.shard;
    let local_scalars = [
        local.d_loss,
        local.g_adv,
        local.l1,
        local.grad_norm_d,
        local.grad_norm_g,
    ];
    for (i, (mine, theirs)) in local_scalars.iter().zip(&report.scalars).enumerate() {
        if mine.to_bits() != theirs.to_bits() {
            return Err(CoreError::Shard(format!(
                "shard {shard} disagrees on scalar {i}: coordinator {mine} vs worker {theirs} \
                 (replicated compute must be bit-identical)"
            )));
        }
    }
    for (updates, received, what) in [
        (&mut local.d_updates, &report.d_owned, "discriminator"),
        (&mut local.g_updates, &report.g_owned, "generator"),
    ] {
        let mut mine = updates
            .iter_mut()
            .filter(|(p, _)| owned.contains(&(*p as usize)));
        let mut n = 0usize;
        for (param, values) in received {
            let Some((mp, mt)) = mine.next() else {
                return Err(CoreError::Shard(format!(
                    "shard {shard} sent more {what} entries than it owns"
                )));
            };
            if *mp != *param || mt.numel() != values.len() {
                return Err(CoreError::Shard(format!(
                    "shard {shard} {what} entry mismatch: param {param} ({} values) vs local \
                     param {mp} ({} values)",
                    values.len(),
                    mt.numel()
                )));
            }
            for (j, (a, b)) in mt.data().iter().zip(values.iter()).enumerate() {
                if a.to_bits() != b.to_bits() {
                    return Err(CoreError::Shard(format!(
                        "shard {shard} disagrees on {what} param {param}[{j}]: coordinator {a} \
                         vs worker {b} (replicated compute must be bit-identical)"
                    )));
                }
            }
            mt.data_mut().copy_from_slice(values);
            n += 1;
        }
        let missing = mine.count();
        if missing > 0 {
            return Err(CoreError::Shard(format!(
                "shard {shard} sent {n} {what} entries but owns {} more",
                missing
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Multiprocess reducer (unix only: fork + pipes)
// ---------------------------------------------------------------------

#[cfg(unix)]
pub use multiprocess::MultiprocessReducer;

#[cfg(unix)]
mod multiprocess {
    use super::*;
    use std::io;

    const SIGKILL: i32 = 9;

    extern "C" {
        fn fork() -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
        fn waitpid(pid: i32, status: *mut i32, options: i32) -> i32;
        fn kill(pid: i32, sig: i32) -> i32;
        fn _exit(status: i32) -> !;
    }

    /// An owned pipe end. `Read`/`Write` go through the raw syscalls so
    /// the checked-frame helpers of `geo::io` work unchanged over
    /// pipes; `Drop` closes.
    struct Fd(i32);

    impl Drop for Fd {
        fn drop(&mut self) {
            unsafe {
                close(self.0);
            }
        }
    }

    impl io::Read for Fd {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = unsafe { read(self.0, buf.as_mut_ptr(), buf.len()) };
            if n < 0 {
                // EINTR surfaces as Interrupted; read_exact retries it.
                Err(io::Error::last_os_error())
            } else {
                Ok(n as usize)
            }
        }
    }

    impl io::Write for Fd {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = unsafe { write(self.0, buf.as_ptr(), buf.len()) };
            if n < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(n as usize)
            }
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// Creates one pipe, returning `(read end, write end)`.
    fn make_pipe() -> Result<(Fd, Fd), CoreError> {
        let mut fds = [0i32; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(CoreError::Shard(format!(
                "pipe(2) failed: {}",
                io::Error::last_os_error()
            )));
        }
        Ok((Fd(fds[0]), Fd(fds[1])))
    }

    /// Coordinator-side handle of one live worker process.
    struct Worker {
        shard: u32,
        pid: i32,
        /// Command pipe, coordinator writes.
        cmd_w: Fd,
        /// Report pipe, coordinator reads.
        rep_r: Fd,
        /// Whether the last send to this worker failed (the worker is
        /// presumed dead and will be respawned at the next read).
        send_failed: bool,
    }

    impl Worker {
        fn send(&mut self, cmd: Command) {
            if write_checked_frame(&mut self.cmd_w, GRAD_FRAME_MAGIC, &encode_command(cmd)).is_err()
            {
                // EPIPE: the worker died. Recovery happens when the
                // reply is read (a respawn re-issues the command).
                self.send_failed = true;
            }
        }

        fn recv(&mut self) -> Result<Vec<u8>, CoreError> {
            if self.send_failed {
                return Err(CoreError::Shard(format!(
                    "shard {}: command pipe broken",
                    self.shard
                )));
            }
            read_checked_frame(&mut self.rep_r, GRAD_FRAME_MAGIC, REPORT_FRAME_MAX).map_err(|e| {
                match e {
                    IoError::Fs(e) if e.kind() == io::ErrorKind::UnexpectedEof => CoreError::Shard(
                        format!("shard {}: worker closed its report pipe", self.shard),
                    ),
                    other => CoreError::Shard(format!("shard {}: {other}", self.shard)),
                }
            })
        }
    }

    /// The fork/pipe reducer. See the module docs for the protocol and
    /// recovery semantics.
    pub struct MultiprocessReducer {
        shards: usize,
        /// Total parameter count (fixes the ownership partition).
        params: usize,
        workers: Vec<Worker>,
        spawned: bool,
        respawns_left: u32,
        /// Crash injection: SIGKILL the first worker right after this
        /// step's compute commands go out (once).
        kill_at_step: Option<u64>,
        kill_done: bool,
    }

    impl MultiprocessReducer {
        /// A reducer for `shards` total shards (the coordinator plus
        /// `shards - 1` forked workers) over `params` parameters.
        pub fn new(
            shards: usize,
            params: usize,
            kill_at_step: Option<u64>,
        ) -> Result<Self, CoreError> {
            if shards == 0 {
                return Err(CoreError::Shard("shard count must be at least 1".into()));
            }
            if params > u32::MAX as usize {
                return Err(CoreError::Shard(format!(
                    "{params} parameters exceed the u32 wire index space"
                )));
            }
            // Touch the metric statics now, on the coordinator, so the
            // children inherit them fully initialized.
            respawns_counter();
            skew_histogram();
            Ok(MultiprocessReducer {
                shards,
                params,
                workers: Vec::new(),
                spawned: false,
                respawns_left: RESPAWN_BUDGET,
                kill_at_step,
                kill_done: false,
            })
        }

        /// Total worker respawns performed so far.
        pub fn respawns(&self) -> u32 {
            RESPAWN_BUDGET - self.respawns_left
        }

        /// Forks the worker for `shard`. In the parent, returns its
        /// handle. In the child, enters [`worker_loop`] and **never
        /// returns** — the child replicates training commands until
        /// shutdown or coordinator death, then `_exit`s without
        /// running any coordinator code (or any destructors).
        fn spawn_worker(&self, shard: u32, driver: Driver<'_>) -> Result<Worker, CoreError> {
            let (cmd_r, cmd_w) = make_pipe()?;
            let (rep_r, rep_w) = make_pipe()?;
            let pid = unsafe { fork() };
            if pid < 0 {
                return Err(CoreError::Shard(format!(
                    "fork(2) failed: {}",
                    io::Error::last_os_error()
                )));
            }
            if pid == 0 {
                // Child. Close the parent-side ends of our own pipes
                // and every fd belonging to other live workers — a
                // stray inherited write end would mask that worker's
                // death from the coordinator's EOF detection.
                drop(cmd_w);
                drop(rep_r);
                for w in &self.workers {
                    unsafe {
                        close(w.cmd_w.0);
                        close(w.rep_r.0);
                    }
                }
                let owned = owned_range(shard as usize, self.shards, self.params);
                // A panic in the replicated compute must not unwind
                // into the coordinator's call frames inside a child
                // process; die with a distinct status instead.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    worker_loop(shard, cmd_r, rep_w, owned, driver)
                }));
                unsafe { _exit(3) }
            }
            Ok(Worker {
                shard,
                pid,
                cmd_w,
                rep_r,
                send_failed: false,
            })
        }

        /// Reaps `worker`'s process and forks a replacement from the
        /// coordinator's current (pre-apply) state, within budget.
        fn respawn(&mut self, idx: usize, driver: Driver<'_>) -> Result<(), CoreError> {
            let dead = &self.workers[idx];
            let shard = dead.shard;
            // Make sure it is actually gone before reaping, then reap
            // so no zombie accumulates.
            unsafe {
                kill(dead.pid, SIGKILL);
                waitpid(dead.pid, std::ptr::null_mut(), 0);
            }
            if self.respawns_left == 0 {
                return Err(CoreError::Shard(format!(
                    "shard {shard}: worker died and the respawn budget ({RESPAWN_BUDGET}) is \
                     exhausted"
                )));
            }
            self.respawns_left -= 1;
            respawns_counter().inc(1);
            // Drop the dead handle first so the replacement does not
            // inherit its half-closed pipes.
            self.workers[idx] = Worker {
                shard,
                pid: -1,
                cmd_w: Fd(-1),
                rep_r: Fd(-1),
                send_failed: true,
            };
            let fresh = self.spawn_worker(shard, driver)?;
            self.workers[idx] = fresh;
            Ok(())
        }

        /// Reads shard `idx`'s compute report for `(step, lane)`,
        /// verifying it against (and splicing it into) `local`.
        /// Respawns the worker and re-issues the compute command on
        /// any pipe failure.
        fn collect_report(
            &mut self,
            idx: usize,
            step: u64,
            lane: u32,
            local: &mut StepGrads,
            driver: Driver<'_>,
        ) -> Result<(), CoreError> {
            loop {
                let shard = self.workers[idx].shard;
                let sp = obs::span_cat(shard_span_name(shard), "shard");
                let outcome = self.workers[idx].recv().and_then(|payload| {
                    let report = decode_report(&payload)?;
                    if report.step != step || report.lane != lane || report.shard != shard {
                        return Err(CoreError::Shard(format!(
                            "shard {shard} answered for step {}/lane {}/shard {}, expected \
                             {step}/{lane}/{shard}",
                            report.step, report.lane, report.shard
                        )));
                    }
                    let owned = owned_range(shard as usize, self.shards, self.params);
                    verify_and_splice(local, &report, &owned)
                });
                drop(sp);
                match outcome {
                    Ok(()) => return Ok(()),
                    Err(CoreError::Shard(why)) if why.contains("pipe") || why.contains("frame") => {
                        // Transport-level death: respawn and retry the
                        // same (step, lane) on the fresh replica.
                        self.respawn(idx, driver)?;
                        self.workers[idx].send(Command::Compute { step, lane });
                    }
                    Err(other) => return Err(other),
                }
            }
        }
    }

    impl GradReducer for MultiprocessReducer {
        fn shards(&self) -> usize {
            self.shards
        }

        fn compute(
            &mut self,
            step: u64,
            lane: u32,
            driver: Driver<'_>,
        ) -> Result<StepGrads, CoreError> {
            // Coordinator-local compute first: it warms every lazily
            // initialized global before any fork, and its result is
            // the reference the workers are verified against.
            let mut local =
                driver(Phase::Compute { step, lane }).expect("compute phase returns gradients");
            if !self.spawned {
                for shard in 1..self.shards as u32 {
                    let w = self.spawn_worker(shard, driver)?;
                    self.workers.push(w);
                }
                self.spawned = true;
            }
            for w in &mut self.workers {
                w.send(Command::Compute { step, lane });
            }
            if self.kill_at_step == Some(step) && !self.kill_done {
                if let Some(w) = self.workers.first() {
                    // Crash injection: SIGKILL mid-step, after the
                    // compute command went out.
                    unsafe {
                        kill(w.pid, SIGKILL);
                    }
                }
                self.kill_done = true;
            }
            let t0 = Instant::now();
            let mut first_arrival: Option<std::time::Duration> = None;
            let mut last_arrival = std::time::Duration::ZERO;
            for idx in 0..self.workers.len() {
                self.collect_report(idx, step, lane, &mut local, driver)?;
                let at = t0.elapsed();
                first_arrival.get_or_insert(at);
                last_arrival = at;
            }
            if obs::enabled() {
                if let Some(first) = first_arrival {
                    skew_histogram().record((last_arrival - first).as_nanos() as u64);
                }
            }
            Ok(local)
        }

        fn apply(
            &mut self,
            step: u64,
            lane: u32,
            grads: &StepGrads,
            driver: Driver<'_>,
        ) -> Result<(), CoreError> {
            for w in &mut self.workers {
                w.send(Command::Apply { step, lane });
            }
            for idx in 0..self.workers.len() {
                loop {
                    let shard = self.workers[idx].shard;
                    let acked = self.workers[idx].recv().and_then(|payload| {
                        let (s, got_step, got_lane) = decode_ack(&payload)?;
                        if s != shard || got_step != step || got_lane != lane {
                            return Err(CoreError::Shard(format!(
                                "shard {shard} acked step {got_step}/lane {got_lane}/shard {s}, \
                                 expected {step}/{lane}/{shard}"
                            )));
                        }
                        Ok(())
                    });
                    match acked {
                        Ok(()) => break,
                        Err(CoreError::Shard(why))
                            if why.contains("pipe") || why.contains("frame") =>
                        {
                            // The worker died between compute and
                            // apply. The coordinator has not applied
                            // yet, so a replacement forked from its
                            // state recomputes this (step, lane)
                            // bit-identically, verifies against the
                            // agreed grads, and then applies.
                            self.respawn(idx, driver)?;
                            self.workers[idx].send(Command::Compute { step, lane });
                            let mut check = grads.clone();
                            self.collect_report(idx, step, lane, &mut check, driver)?;
                            self.workers[idx].send(Command::Apply { step, lane });
                        }
                        Err(other) => return Err(other),
                    }
                }
            }
            // Local apply last, so any respawn above still forks the
            // pre-apply state every shard agrees on.
            driver(Phase::Apply { grads });
            Ok(())
        }
    }

    impl Drop for MultiprocessReducer {
        fn drop(&mut self) {
            for w in &mut self.workers {
                if w.pid <= 0 {
                    continue;
                }
                w.send(Command::Shutdown);
            }
            for w in &self.workers {
                if w.pid <= 0 {
                    continue;
                }
                // Workers exit on Shutdown — or on command-pipe EOF
                // once the handles drop — so this reap terminates.
                unsafe {
                    waitpid(w.pid, std::ptr::null_mut(), 0);
                }
            }
        }
    }

    /// The worker side of the protocol: replicate every ordered phase
    /// on this process's inherited training state. Never returns; any
    /// transport error (coordinator death included) is a clean
    /// `_exit`.
    fn worker_loop(
        shard: u32,
        mut cmd_r: Fd,
        mut rep_w: Fd,
        owned: Range<usize>,
        driver: Driver<'_>,
    ) -> ! {
        let mut cached: Option<(u64, u32, StepGrads)> = None;
        loop {
            let Ok(payload) = read_checked_frame(&mut cmd_r, GRAD_FRAME_MAGIC, CMD_FRAME_MAX)
            else {
                // Coordinator gone (EOF) or stream corrupt: exit.
                unsafe { _exit(0) }
            };
            let Ok(cmd) = decode_command(&payload) else {
                unsafe { _exit(2) }
            };
            match cmd {
                Command::Compute { step, lane } => {
                    let grads = driver(Phase::Compute { step, lane })
                        .expect("compute phase returns gradients");
                    let frame = encode_report(shard, step, lane, &grads, &owned);
                    if write_checked_frame(&mut rep_w, GRAD_FRAME_MAGIC, &frame).is_err() {
                        unsafe { _exit(0) }
                    }
                    cached = Some((step, lane, grads));
                }
                Command::Apply { step, lane } => {
                    let Some((s, l, grads)) = &cached else {
                        unsafe { _exit(2) }
                    };
                    if *s != step || *l != lane {
                        unsafe { _exit(2) }
                    }
                    driver(Phase::Apply { grads });
                    if write_checked_frame(
                        &mut rep_w,
                        GRAD_FRAME_MAGIC,
                        &encode_ack(shard, step, lane),
                    )
                    .is_err()
                    {
                        unsafe { _exit(0) }
                    }
                }
                Command::Shutdown => unsafe { _exit(0) },
            }
            // Nobody exports a worker's spans; drop them so an
            // obs-enabled run doesn't grow child memory without bound.
            drop(obs::drain_events());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(vals: &[f32]) -> Tensor {
        Tensor::from_vec(vals.to_vec(), [vals.len()])
    }

    fn demo_grads() -> StepGrads {
        StepGrads {
            d_loss: 1.25,
            g_adv: -0.5,
            l1: 0.125,
            grad_norm_d: 2.0,
            grad_norm_g: 3.0,
            d_updates: vec![(4, tensor(&[0.5, -1.5])), (5, tensor(&[2.0]))],
            g_updates: vec![(0, tensor(&[-0.25])), (2, tensor(&[1.0, 2.0, 3.0]))],
        }
    }

    #[test]
    fn owned_ranges_partition_the_index_space() {
        for params in [0usize, 1, 5, 7, 64] {
            for shards in [1usize, 2, 3, 4, 7] {
                let mut covered = Vec::new();
                let mut prev_end = 0;
                for s in 0..shards {
                    let r = owned_range(s, shards, params);
                    assert_eq!(r.start, prev_end, "ranges must be contiguous");
                    prev_end = r.end;
                    covered.extend(r);
                }
                assert_eq!(
                    covered,
                    (0..params).collect::<Vec<_>>(),
                    "params={params} shards={shards}"
                );
            }
        }
    }

    #[test]
    fn command_codec_roundtrips() {
        for cmd in [
            Command::Compute { step: 7, lane: 2 },
            Command::Apply {
                step: u64::MAX,
                lane: 0,
            },
            Command::Shutdown,
        ] {
            assert_eq!(decode_command(&encode_command(cmd)).unwrap(), cmd);
        }
        assert!(decode_command(&[9, 0, 0]).is_err());
        assert!(decode_command(&[77; 13]).is_err());
    }

    #[test]
    fn report_codec_roundtrips_owned_slice() {
        let grads = demo_grads();
        // Shard owning params 2..5 sends d param 4 and g param 2 only.
        let payload = encode_report(1, 42, 3, &grads, &(2..5));
        let report = decode_report(&payload).unwrap();
        assert_eq!((report.shard, report.step, report.lane), (1, 42, 3));
        assert_eq!(report.scalars, [1.25, -0.5, 0.125, 2.0, 3.0]);
        assert_eq!(report.d_owned, vec![(4, vec![0.5, -1.5])]);
        assert_eq!(report.g_owned, vec![(2, vec![1.0, 2.0, 3.0])]);
        // Full ownership carries everything.
        let full = decode_report(&encode_report(0, 1, 0, &grads, &(0..6))).unwrap();
        assert_eq!(full.d_owned.len(), 2);
        assert_eq!(full.g_owned.len(), 2);
        // Truncation is a typed error, not a panic.
        assert!(decode_report(&payload[..payload.len() - 3]).is_err());
        assert!(decode_report(&[REPLY_ACK]).is_err());
    }

    #[test]
    fn ack_codec_roundtrips() {
        let (shard, step, lane) = decode_ack(&encode_ack(3, 99, 1)).unwrap();
        assert_eq!((shard, step, lane), (3, 99, 1));
        assert!(decode_ack(&[REPLY_REPORT; 17]).is_err());
        assert!(decode_ack(&[REPLY_ACK; 5]).is_err());
    }

    #[test]
    fn verify_and_splice_accepts_agreement_and_rejects_divergence() {
        let grads = demo_grads();
        let owned = 2..5;
        let report = decode_report(&encode_report(1, 0, 0, &grads, &owned)).unwrap();
        let mut local = demo_grads();
        verify_and_splice(&mut local, &report, &owned).unwrap();
        assert_eq!(local.d_updates[0].1.data(), &[0.5, -1.5]);

        // One flipped gradient bit is caught.
        let mut bad = report.clone();
        bad.d_owned[0].1[1] = -1.5000001;
        let mut local = demo_grads();
        let err = verify_and_splice(&mut local, &bad, &owned).unwrap_err();
        assert!(err.to_string().contains("disagrees"), "{err}");

        // A diverging loss is caught.
        let mut bad = report.clone();
        bad.scalars[0] = f32::NAN;
        let mut local = demo_grads();
        assert!(verify_and_splice(&mut local, &bad, &owned).is_err());

        // Missing owned entries are caught.
        let mut bad = report;
        bad.d_owned.clear();
        let mut local = demo_grads();
        let err = verify_and_splice(&mut local, &bad, &owned).unwrap_err();
        assert!(err.to_string().contains("owns"), "{err}");
    }

    #[test]
    fn local_reducer_drives_both_phases() {
        let mut seen = Vec::new();
        let mut driver = |phase: Phase<'_>| -> Option<StepGrads> {
            match phase {
                Phase::Compute { step, lane } => {
                    seen.push(format!("compute {step}/{lane}"));
                    Some(demo_grads())
                }
                Phase::Apply { grads } => {
                    seen.push(format!("apply {}", grads.d_loss));
                    None
                }
            }
        };
        let mut r = LocalReducer;
        assert_eq!(r.shards(), 1);
        let grads = r.compute(5, 1, &mut driver).unwrap();
        r.apply(5, 1, &grads, &mut driver).unwrap();
        assert_eq!(seen, vec!["compute 5/1", "apply 1.25"]);
    }
}
