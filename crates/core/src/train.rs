//! Adversarial training (§2.2.3, Eq. 1).
//!
//! Each step alternates a discriminator update and a generator update
//! on one minibatch of patches sampled from the training cities:
//!
//! * **D loss** — `BCE(R^t(x, c), 1) + BCE(R^t(x̃⊥, c), 0)` plus the
//!   spectrum terms for variants that have `G^s`, where `x̃⊥` is the
//!   generator output *detached* from the tape (re-inserted as a leaf)
//!   so discriminator gradients never reach the generator.
//! * **G loss** — `BCE(R^t(x̃, c), 1) [+ BCE(R^s(ỹ^s, c), 1)] + λ·L1`,
//!   with the L1 term against the real series and the quantile-masked
//!   real spectrum (exactly which L1 terms apply depends on the
//!   variant; Time-only is adversarial-only, matching §4.2).
//!
//! Both sides are updated with GAN-flavoured Adam (`β₁ = 0.5`).
//!
//! # Crash safety and determinism
//!
//! Each step's RNG stream is derived from `(seed, step, lane)` with a
//! SplitMix64-style mixer — there is no long-lived RNG whose position
//! would have to be serialized. Together with the checkpointed weights,
//! optimizer moments and loss traces (see [`crate::checkpoint`]), this
//! gives the **bit-identical restart contract**: a run killed at any
//! step and resumed from its last checkpoint produces exactly the same
//! final weights as an uninterrupted run, at any thread count.
//!
//! The *lane* is the divergence guard's retry index: when a step's loss
//! goes NaN/inf or a gradient norm blows up, the update is **not**
//! applied (the step-start state — the last good state — is untouched),
//! the event is logged, and the step re-runs with the next RNG lane,
//! i.e. a different minibatch and noise draw. A step whose every lane
//! diverges aborts the run with [`CoreError::Diverged`], leaving the
//! last good checkpoint on disk.

use crate::checkpoint::{self, Checkpoint, LogRecord};
use crate::config::{SpectraGanConfig, TrainConfig, Variant};
use crate::error::CoreError;
use crate::fourier::{masked_spec_rows, patch_to_rows};
use crate::model::{Discriminators, Generator};
use crate::shard::{GradReducer, LocalReducer, Phase, StepGrads};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spectragan_geo::io::atomic_write;
use spectragan_geo::{City, PatchLayout, PatchSpec};
use spectragan_nn::{collect_updates, Adam, Binding, ParamId, ParamStore, Tape, Tensor};
use spectragan_obs as obs;
use spectragan_tensor::stats;
use std::path::Path;
use std::rc::Rc;
use std::sync::OnceLock;
use std::time::Instant;

fn guard_retries_counter() -> &'static obs::Counter {
    static C: OnceLock<&'static obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("spectragan_train_guard_retries_total"))
}

/// One training sample: a context window with its traffic patch in both
/// representations.
struct Sample {
    /// Context window `[C, H_c, W_c]` (standardized).
    ctx: Tensor,
    /// Real traffic series rows `[px, T]`.
    series: Tensor,
    /// Masked real spectrum rows `[px, 2F]` (empty tensor when the
    /// variant has no spectrum path).
    spec: Tensor,
}

/// Loss traces recorded during training (serialized into checkpoints
/// so a resumed run returns the full history).
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct TrainStats {
    /// Discriminator loss per step.
    pub d_loss: Vec<f32>,
    /// Generator adversarial loss per step.
    pub g_adv: Vec<f32>,
    /// Explicit L1 loss per step (0 for variants without one).
    pub l1: Vec<f32>,
}

/// Options for [`SpectraGan::train_with`]: checkpointing, resume and
/// the divergence guard. [`TrainOptions::default`] trains exactly like
/// the plain [`SpectraGan::train`] — no run directory, guard enabled at
/// a generous threshold.
pub struct TrainOptions<'a> {
    /// Run directory for checkpoints and `train_log.jsonl`; `None`
    /// disables all persistence.
    pub run_dir: Option<&'a Path>,
    /// Write a checkpoint every this many completed steps (0 = only
    /// the final checkpoint, when `run_dir` is set).
    pub checkpoint_every: usize,
    /// Resume from this checkpoint: weights, optimizer moments, stats
    /// and the step counter are restored before the loop starts.
    pub resume_from: Option<&'a Checkpoint>,
    /// Divergence threshold on each update's global gradient norm
    /// (pre-clip). Non-finite losses or norms always trigger the guard;
    /// set to `f32::INFINITY` to guard on non-finiteness only.
    pub guard_grad_norm: f32,
    /// How many alternative RNG lanes to try when a step diverges
    /// before giving up with [`CoreError::Diverged`].
    pub guard_max_retries: u32,
    /// Crash injection for end-to-end kill tests: abort the process
    /// (as an OOM-kill would) immediately after this many steps
    /// complete — after the step's checkpoint, if one is due.
    pub abort_at_step: Option<usize>,
    /// Enable per-op instrumentation: each step's log record carries a
    /// table of per-op-kind call counts, wall time and buffer-pool
    /// traffic. Off by default — disabled instrumentation costs one
    /// relaxed atomic load per op.
    pub op_stats: bool,
    /// Enable the unified observability layer for this run without
    /// writing extra files: every log record carries the step's
    /// aggregated span tree, and `metrics.prom` is written to the run
    /// directory at the end. Implied by `trace`/`metrics_snapshot`.
    pub obs: bool,
    /// Write a Chrome trace-event JSON file of the whole run here
    /// (loadable in `chrome://tracing` / Perfetto). Implies `obs`.
    pub trace: Option<&'a Path>,
    /// Write a Prometheus-style text snapshot of all metrics here when
    /// the run finishes. Implies `obs`.
    pub metrics_snapshot: Option<&'a Path>,
    /// Number of training shards. 1 (the default) runs everything in
    /// process; N > 1 forks N − 1 worker processes that replicate the
    /// computation, each owning a slice of the reduced gradient — see
    /// [`crate::shard`]. Any shard count produces **bit-identical**
    /// weights.
    pub shards: usize,
    /// Gradient-accumulation micro-rounds per step: gradients of
    /// `grad_accum` independent minibatches (RNG lanes derived from the
    /// step) are averaged before one optimizer update. 1 (the default)
    /// is the historical single-minibatch step, bit-for-bit.
    pub grad_accum: usize,
    /// Crash injection for worker-robustness tests: SIGKILL one worker
    /// process right after this step's compute phase starts. Requires
    /// `shards > 1` (or [`TrainOptions::force_multiprocess`]).
    pub kill_worker_at_step: Option<usize>,
    /// Test hook: route reduction through the multiprocess reducer even
    /// at `shards == 1`, so equivalence tests cover the process seam at
    /// every shard count.
    pub force_multiprocess: bool,
}

impl Default for TrainOptions<'_> {
    fn default() -> Self {
        TrainOptions {
            run_dir: None,
            checkpoint_every: 0,
            resume_from: None,
            guard_grad_norm: 1e4,
            guard_max_retries: 3,
            abort_at_step: None,
            op_stats: false,
            obs: false,
            trace: None,
            metrics_snapshot: None,
            shards: 1,
            grad_accum: 1,
            kill_worker_at_step: None,
            force_multiprocess: false,
        }
    }
}

impl TrainOptions<'_> {
    /// Whether the unified observability layer should be on for this
    /// run.
    fn obs_on(&self) -> bool {
        self.obs || self.trace.is_some() || self.metrics_snapshot.is_some()
    }
}

/// Turns op instrumentation off again when training exits (including
/// early error returns).
struct StatsGuard(bool);

impl Drop for StatsGuard {
    fn drop(&mut self) {
        if self.0 {
            stats::set_enabled(false);
        }
    }
}

/// Derives the RNG seed of one training step's `lane`-th attempt from
/// the run seed (SplitMix64 finalizer, the same construction
/// generation uses for per-patch noise). Making the stream a pure
/// function of `(seed, step, lane)` is what lets checkpoints omit RNG
/// state entirely.
fn step_seed(seed: u64, step: u64, lane: u64) -> u64 {
    let mut z =
        seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ lane.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Global L2 norm of a collected update list (pre-clip). Updates are in
/// ascending parameter-index order, so the summation order — and hence
/// the exact float result — matches the historical in-tape norm.
fn norm_of(updates: &[(u32, Tensor)]) -> f32 {
    updates
        .iter()
        .flat_map(|(_, g)| g.data().iter())
        .map(|&v| v * v)
        .sum::<f32>()
        .sqrt()
}

/// A trainable SpectraGAN instance: parameters plus both network
/// halves.
pub struct SpectraGan {
    cfg: SpectraGanConfig,
    store: ParamStore,
    gen: Generator,
    disc: Discriminators,
    /// Parameters with index < this belong to the generator.
    gen_param_end: usize,
}

impl SpectraGan {
    /// Builds a model with freshly initialized weights.
    pub fn new(cfg: SpectraGanConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let gen = Generator::new(cfg, &mut store, &mut rng);
        let gen_param_end = store.len();
        let disc = Discriminators::new(cfg, &mut store, &mut rng);
        SpectraGan {
            cfg,
            store,
            gen,
            disc,
            gen_param_end,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &SpectraGanConfig {
        &self.cfg
    }

    /// The parameter store (e.g. for inspecting weight counts).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Read access for the generation pipeline.
    pub(crate) fn parts(&self) -> (&SpectraGanConfig, &ParamStore, &Generator) {
        (&self.cfg, &self.store, &self.gen)
    }

    /// Mutable store access for the weight-container loader, which
    /// swaps dense parameters for mapped or half-precision storage.
    pub(crate) fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Serializes all weights to JSON.
    pub fn weights_json(&self) -> String {
        self.store.to_json()
    }

    /// Serializes the *whole model* — configuration and weights — into
    /// a single JSON document (the `.spectragan.json` model-file format
    /// used by the CLI).
    pub fn to_model_json(&self) -> String {
        #[derive(serde::Serialize)]
        struct ModelFile<'a> {
            format: &'static str,
            config: &'a SpectraGanConfig,
            store: &'a ParamStore,
        }
        serde_json::to_string(&ModelFile {
            format: "spectragan-model-v1",
            config: &self.cfg,
            store: &self.store,
        })
        .expect("model serialization cannot fail")
    }

    /// Reconstructs a model from [`SpectraGan::to_model_json`] output.
    pub fn from_model_json(json: &str) -> Result<Self, CoreError> {
        #[derive(serde::Deserialize)]
        struct ModelFile {
            format: String,
            config: SpectraGanConfig,
            store: ParamStore,
        }
        let file: ModelFile = serde_json::from_str(json)
            .map_err(|e| CoreError::Model(format!("malformed model file: {e}")))?;
        if file.format != "spectragan-model-v1" {
            return Err(CoreError::Model(format!(
                "unsupported model format '{}'",
                file.format
            )));
        }
        let mut model = SpectraGan::new(file.config, 0);
        model.load_store(&file.store)?;
        Ok(model)
    }

    /// Rebuilds a model from a training [`Checkpoint`]: architecture
    /// from its config, weights from its store. Optimizer state stays
    /// in the checkpoint for [`SpectraGan::train_with`] to restore.
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Result<Self, CoreError> {
        let mut model = SpectraGan::new(ckpt.config, 0);
        model.load_store(&ckpt.store)?;
        Ok(model)
    }

    /// Loads weights saved by [`SpectraGan::weights_json`] into this
    /// (architecturally identical) model.
    pub fn load_weights_json(&mut self, json: &str) -> Result<(), CoreError> {
        let other = ParamStore::from_json(json)
            .map_err(|e| CoreError::Model(format!("malformed weights: {e}")))?;
        self.load_store(&other)
    }

    /// Copies `other`'s values into this model's store after validating
    /// parameter count and every shape, so malformed files surface as
    /// [`CoreError::Model`] rather than a panic.
    fn load_store(&mut self, other: &ParamStore) -> Result<(), CoreError> {
        if self.store.len() != other.len() {
            return Err(CoreError::Model(format!(
                "weight count mismatch: file has {}, architecture needs {}",
                other.len(),
                self.store.len()
            )));
        }
        for ((_, name, mine), (_, _, theirs)) in self.store.iter().zip(other.iter()) {
            if mine.shape() != theirs.shape() {
                return Err(CoreError::Model(format!(
                    "shape mismatch for parameter '{name}': file has {:?}, architecture needs \
                     {:?}",
                    theirs.shape().dims(),
                    mine.shape().dims()
                )));
            }
        }
        self.store.copy_values_from(other);
        Ok(())
    }

    /// Extracts training samples from the cities: every training patch
    /// of every city, with its series rows and masked-spectrum target.
    /// Fails with a typed error when the city list is empty, a series
    /// is too short, or no grid yields a single patch.
    fn prepare(&self, cities: &[City]) -> Result<Vec<Sample>, CoreError> {
        let cfg = &self.cfg;
        if cities.is_empty() {
            return Err(CoreError::NoTrainingData("the city list is empty".into()));
        }
        let spec_needed = cfg.variant.has_spectrum();
        let mut samples = Vec::new();
        for city in cities {
            if city.traffic.len_t() < cfg.train_len {
                return Err(CoreError::SeriesTooShort {
                    city: city.name.clone(),
                    have: city.traffic.len_t(),
                    need: cfg.train_len,
                });
            }
            let ctx = city.context.standardized();
            let layout = PatchLayout::new(
                city.grid(),
                PatchSpec::new(cfg.patch_traffic, cfg.patch_context(), cfg.patch_traffic),
            );
            for &pos in layout.positions() {
                let ctx_patch = layout.extract_context(&ctx, pos);
                let traffic = layout.extract_traffic(&city.traffic, pos, 0, cfg.train_len);
                let series = patch_to_rows(&traffic);
                let spec = if spec_needed {
                    masked_spec_rows(&traffic, cfg.q)
                } else {
                    Tensor::zeros([0])
                };
                samples.push(Sample {
                    ctx: ctx_patch,
                    series,
                    spec,
                });
            }
        }
        if samples.is_empty() {
            return Err(CoreError::NoTrainingData(format!(
                "no training patches extracted from {} cities (grids smaller than the {}-pixel \
                 context window?)",
                cities.len(),
                cfg.patch_context()
            )));
        }
        Ok(samples)
    }

    /// Stacks per-sample tensors along a new leading batch axis.
    fn stack(parts: &[&Tensor]) -> Tensor {
        let mut dims = vec![1usize];
        dims.extend_from_slice(parts[0].shape().dims());
        let reshaped: Vec<Tensor> = parts.iter().map(|p| p.reshape(dims.clone())).collect();
        let refs: Vec<&Tensor> = reshaped.iter().collect();
        Tensor::concat(&refs, 0)
    }

    /// Runs adversarial training on the given cities (no persistence;
    /// see [`SpectraGan::train_with`] for checkpoint/resume).
    pub fn train(&mut self, cities: &[City], tc: &TrainConfig) -> Result<TrainStats, CoreError> {
        self.train_with(cities, tc, &TrainOptions::default())
    }

    /// Builds the serializable snapshot of the training state after
    /// `step` completed steps.
    #[allow(clippy::too_many_arguments)]
    fn snapshot(
        &self,
        step: usize,
        tc: &TrainConfig,
        opt_g: &Adam,
        opt_d: &Adam,
        stats: &TrainStats,
        opts: &TrainOptions<'_>,
    ) -> Checkpoint {
        Checkpoint {
            format: checkpoint::CHECKPOINT_FORMAT.to_string(),
            step,
            config: self.cfg,
            train: *tc,
            store: self.store.clone(),
            opt_g: opt_g.export_state(),
            opt_d: opt_d.export_state(),
            stats: stats.clone(),
            shards: opts.shards,
            grad_accum: opts.grad_accum,
        }
    }

    /// Runs adversarial training with checkpointing, resume and the
    /// divergence guard (see the module docs for the restart contract).
    pub fn train_with(
        &mut self,
        cities: &[City],
        tc: &TrainConfig,
        opts: &TrainOptions<'_>,
    ) -> Result<TrainStats, CoreError> {
        if opts.shards == 0 {
            return Err(CoreError::Shard("shard count must be at least 1".into()));
        }
        if opts.grad_accum == 0 {
            return Err(CoreError::Shard(
                "gradient accumulation must run at least 1 micro-round".into(),
            ));
        }
        let samples = self.prepare(cities)?;
        let mut opt_g = Adam::gan(tc.lr).with_clip_norm(5.0);
        let mut opt_d = Adam::gan(tc.lr).with_clip_norm(5.0);
        let mut stats = TrainStats::default();
        let mut start_step = 0usize;
        if let Some(ck) = opts.resume_from {
            ck.validate_against(&self.cfg, tc)?;
            // Shard topology may change across a resume — sharding
            // never changes the math — but the accumulation factor is
            // part of the step's arithmetic and must match.
            if ck.grad_accum != opts.grad_accum {
                return Err(CoreError::Checkpoint(format!(
                    "checkpoint was trained with grad_accum {}, this run asks for {}",
                    ck.grad_accum, opts.grad_accum
                )));
            }
            self.load_store(&ck.store)?;
            opt_g.import_state(&ck.opt_g);
            opt_d.import_state(&ck.opt_d);
            stats = ck.stats.clone();
            start_step = ck.step.min(tc.steps);
            if let Some(dir) = opts.run_dir {
                // Drop stale post-checkpoint log lines so the resumed
                // replay of those steps is not recorded twice.
                checkpoint::truncate_log(dir, start_step)?;
            }
        }
        let cfg = self.cfg;
        let _stats_guard = StatsGuard(opts.op_stats);
        if opts.op_stats {
            stats::set_enabled(true);
            stats::take_table(); // drop counters from before this run
        }
        let obs_on = opts.obs_on();
        let _obs_guard = obs::ObsGuard::new(obs_on);
        // Chrome-trace export needs the raw events of the whole run;
        // span stats per step only need that step's batch.
        let mut trace_events: Vec<obs::SpanEvent> = Vec::new();
        // One tape for the whole run: resetting between steps keeps the
        // node arena's capacity and returns every activation buffer to
        // the pool, so steady-state steps are allocation-free.
        let tape = Tape::new();
        // The reduction seam (compute → ordered reduce → apply). Worker
        // processes are forked lazily inside the first compute call, so
        // they inherit a fully warmed coordinator: samples prepared,
        // kernel backend and pool initialized, one local compute done.
        #[cfg(unix)]
        let mut reducer: Box<dyn GradReducer> = if opts.shards > 1 || opts.force_multiprocess {
            Box::new(crate::shard::MultiprocessReducer::new(
                opts.shards,
                self.store.len(),
                opts.kill_worker_at_step.map(|s| s as u64),
            )?)
        } else {
            Box::new(LocalReducer)
        };
        #[cfg(not(unix))]
        let mut reducer: Box<dyn GradReducer> = {
            if opts.shards > 1 || opts.force_multiprocess {
                return Err(CoreError::Shard(
                    "multiprocess sharding needs a unix host (fork + pipes)".into(),
                ));
            }
            Box::new(LocalReducer)
        };

        for step in start_step..tc.steps {
            let step_start = Instant::now();
            let mut applied: Option<LogRecord> = None;
            let mut last_reason = String::new();
            for lane in 0..=opts.guard_max_retries {
                let sp_step = obs::span_cat("train_step", "train");
                let mut driver = |phase: Phase<'_>| -> Option<StepGrads> {
                    match phase {
                        Phase::Compute { step, lane } => Some(self.compute_grads(
                            &tape,
                            &samples,
                            tc,
                            step,
                            lane,
                            opts.grad_accum,
                            cfg,
                        )),
                        Phase::Apply { grads } => {
                            self.apply_grads(grads, &mut opt_g, &mut opt_d);
                            None
                        }
                    }
                };
                let grads = reducer.compute(step as u64, lane, &mut driver)?;
                let reason = health_reason(
                    grads.d_loss,
                    grads.g_adv,
                    grads.l1,
                    grads.grad_norm_d,
                    grads.grad_norm_g,
                    opts.guard_grad_norm,
                );
                if reason.is_none() {
                    // The update is healthy on every (bit-identical)
                    // shard: apply it everywhere.
                    reducer.apply(step as u64, lane, &grads, &mut driver)?;
                }
                drop(sp_step);
                let outcome = StepOutcome {
                    d_loss: grads.d_loss,
                    g_adv: grads.g_adv,
                    l1: grads.l1,
                    grad_norm_d: grads.grad_norm_d,
                    grad_norm_g: grads.grad_norm_g,
                    reason,
                };
                let wall_ms = step_start.elapsed().as_secs_f64() * 1e3;
                let op_stats = opts.op_stats.then(stats::take_table);
                let spans = obs_on.then(|| {
                    let events = obs::drain_events();
                    let aggregated = obs::aggregate_spans(&events);
                    if opts.trace.is_some() {
                        trace_events.extend(events);
                    }
                    aggregated
                });
                match &outcome.reason {
                    Some(reason) => {
                        // The update was NOT applied: weights and
                        // optimizer moments are still the last good
                        // state. Log the event and re-roll the lane.
                        guard_retries_counter().inc(1);
                        if let Some(dir) = opts.run_dir {
                            checkpoint::append_log(
                                dir,
                                &outcome.record(
                                    step,
                                    wall_ms,
                                    Some(reason.clone()),
                                    op_stats,
                                    spans,
                                    opts,
                                ),
                            )?;
                        }
                        last_reason = reason.clone();
                    }
                    None => {
                        applied = Some(outcome.record(step, wall_ms, None, op_stats, spans, opts));
                        break;
                    }
                }
            }
            let Some(record) = applied else {
                return Err(CoreError::Diverged {
                    step,
                    retries: opts.guard_max_retries,
                    reason: last_reason,
                });
            };
            stats.d_loss.push(record.d_loss);
            stats.g_adv.push(record.g_adv);
            stats.l1.push(record.l1);
            if let Some(dir) = opts.run_dir {
                checkpoint::append_log(dir, &record)?;
            }

            // ---- Persistence ------------------------------------------
            let completed = step + 1;
            if let Some(dir) = opts.run_dir {
                let due = opts.checkpoint_every > 0 && completed % opts.checkpoint_every == 0;
                if due || completed == tc.steps {
                    let sp = obs::span_cat("checkpoint", "train");
                    checkpoint::save(
                        dir,
                        &self.snapshot(completed, tc, &opt_g, &opt_d, &stats, opts),
                    )?;
                    drop(sp);
                }
            }
            if opts.abort_at_step == Some(completed) {
                // Crash injection for kill/resume end-to-end tests: die
                // the way an OOM-kill would, with no unwinding.
                eprintln!("aborting at step {completed} (crash injection)");
                std::process::abort();
            }
        }

        // ---- Observability exports -----------------------------------
        if obs_on {
            // Pick up spans recorded after the last per-step drain
            // (the final checkpoint span).
            let tail = obs::drain_events();
            if let Some(path) = opts.trace {
                trace_events.extend(tail);
                let json = obs::chrome_trace(&trace_events);
                atomic_write(path, json.as_bytes())
                    .map_err(|e| CoreError::Checkpoint(format!("{}: {e}", path.display())))?;
            }
            let prom = obs::prometheus_snapshot();
            if let Some(path) = opts.metrics_snapshot {
                atomic_write(path, prom.as_bytes())
                    .map_err(|e| CoreError::Checkpoint(format!("{}: {e}", path.display())))?;
            }
            if let Some(dir) = opts.run_dir {
                let path = dir.join("metrics.prom");
                atomic_write(&path, prom.as_bytes())
                    .map_err(|e| CoreError::Checkpoint(format!("{}: {e}", path.display())))?;
            }
        }
        Ok(stats)
    }

    /// Phase 1 (compute): runs all `grad_accum` forward/backward
    /// micro-rounds of one step attempt and folds them into one
    /// [`StepGrads`] — averaged losses, averaged gradients in ascending
    /// parameter-index order, and the post-fold gradient norms.
    ///
    /// Micro-round `r` draws its minibatch from RNG lane
    /// `lane + (r << 32)`: round 0 is bit-for-bit the historical
    /// single-minibatch step, and the guard's retry lanes (low 32 bits)
    /// can never collide with accumulation rounds.
    #[allow(clippy::too_many_arguments)]
    fn compute_grads(
        &self,
        tape: &Rc<Tape>,
        samples: &[Sample],
        tc: &TrainConfig,
        step: u64,
        lane: u32,
        grad_accum: usize,
        cfg: SpectraGanConfig,
    ) -> StepGrads {
        let mut acc: Option<StepGrads> = None;
        for round in 0..grad_accum {
            let round_lane = lane as u64 + ((round as u64) << 32);
            let fresh = self.forward_backward(tape, samples, tc, step, round_lane, cfg);
            match &mut acc {
                // Round 0's tensors are kept untouched: with
                // `grad_accum == 1` no accumulation arithmetic runs at
                // all (even `+ 0.0` could flip a -0.0 bit).
                None => acc = Some(fresh),
                Some(a) => {
                    a.d_loss += fresh.d_loss;
                    a.g_adv += fresh.g_adv;
                    a.l1 += fresh.l1;
                    for ((_, at), (_, ft)) in a.d_updates.iter_mut().zip(&fresh.d_updates) {
                        at.axpy(1.0, ft);
                    }
                    for ((_, at), (_, ft)) in a.g_updates.iter_mut().zip(&fresh.g_updates) {
                        at.axpy(1.0, ft);
                    }
                }
            }
        }
        let mut acc = acc.expect("grad_accum >= 1");
        if grad_accum > 1 {
            let s = 1.0 / grad_accum as f32;
            acc.d_loss *= s;
            acc.g_adv *= s;
            acc.l1 *= s;
            for (_, t) in acc.d_updates.iter_mut().chain(acc.g_updates.iter_mut()) {
                *t = t.scale(s);
            }
        }
        // The norms are a property of the folded update the optimizer
        // will see, so they are computed after accumulation.
        acc.grad_norm_d = norm_of(&acc.d_updates);
        acc.grad_norm_g = norm_of(&acc.g_updates);
        acc
    }

    /// Phase 3 (apply): feeds the reduced gradients through both
    /// optimizers, discriminator first — the historical update order.
    fn apply_grads(&mut self, grads: &StepGrads, opt_g: &mut Adam, opt_d: &mut Adam) {
        let sp = obs::span_cat("optimizer", "train");
        let ids: Vec<ParamId> = self.store.iter().map(|(id, _, _)| id).collect();
        let to_param_updates = |list: &[(u32, Tensor)]| -> Vec<(ParamId, Tensor)> {
            list.iter()
                .map(|(p, t)| (ids[*p as usize], t.clone()))
                .collect()
        };
        opt_d.apply_updates(&mut self.store, to_param_updates(&grads.d_updates));
        opt_g.apply_updates(&mut self.store, to_param_updates(&grads.g_updates));
        drop(sp);
    }

    /// One forward/backward micro-round: minibatch assembly, losses and
    /// gradients. Touches no optimizer state — that is the apply
    /// phase's job, after reduction.
    fn forward_backward(
        &self,
        tape: &Rc<Tape>,
        samples: &[Sample],
        tc: &TrainConfig,
        step: u64,
        round_lane: u64,
        cfg: SpectraGanConfig,
    ) -> StepGrads {
        // Drop the previous round's graph; buffers go back to the
        // pool and the node arena keeps its capacity. (The collected
        // gradient tensors returned below are deep copies and survive
        // this reset on the next round.)
        tape.reset_keep_capacity();
        // Instantaneous marker span naming the kernel backend this step
        // runs under, so exported traces are attributable to scalar vs.
        // simd. Dropped immediately: it must not become the parent of
        // the step's real spans.
        drop(obs::span_cat(
            spectragan_tensor::backend::kind().name(),
            "backend",
        ));
        let mut rng = StdRng::seed_from_u64(step_seed(tc.seed, step, round_lane));
        // ---- Minibatch assembly -----------------------------------
        let sp = obs::span_cat("minibatch", "train");
        let batch: Vec<&Sample> = (0..tc.batch_patches)
            .map(|_| &samples[rng.gen_range(0..samples.len())])
            .collect();
        let ctx_batch = Self::stack(&batch.iter().map(|s| &s.ctx).collect::<Vec<_>>());
        let series_real = {
            let refs: Vec<&Tensor> = batch.iter().map(|s| &s.series).collect();
            Tensor::concat(&refs, 0)
        };
        let spec_real = if cfg.variant.has_spectrum() {
            let refs: Vec<&Tensor> = batch.iter().map(|s| &s.spec).collect();
            Some(Tensor::concat(&refs, 0))
        } else {
            None
        };
        // Per-patch noise vector, broadcast spatially.
        let mut z = Tensor::zeros([
            tc.batch_patches,
            cfg.noise_dim,
            cfg.patch_traffic,
            cfg.patch_traffic,
        ]);
        for p in 0..tc.batch_patches {
            for d in 0..cfg.noise_dim {
                let v: f32 = {
                    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                    let u2: f32 = rng.gen_range(0.0..1.0);
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
                };
                let hw = cfg.patch_traffic * cfg.patch_traffic;
                let base = (p * cfg.noise_dim + d) * hw;
                for e in 0..hw {
                    z.data_mut()[base + e] = v;
                }
            }
        }
        drop(sp);
        // ---- Forward ------------------------------------------------
        let sp = obs::span_cat("forward", "train");
        let bind = Binding::new(tape, &self.store);
        let ctx_var = tape.leaf(ctx_batch.clone());
        let z_var = tape.leaf(z);
        let out = self.gen.forward(&bind, &ctx_var, &z_var);
        let ctx_rows = self.disc.encode_rows(&bind, &ctx_var);
        let real_series_var = tape.leaf(series_real.clone());

        // The time discriminator judges a random window of the
        // series (temporal patch discriminator; cfg.disc_time_window
        // = 0 disables windowing). Real and fake views share the
        // window so the critic compares like with like.
        let t_full = cfg.train_len;
        let win = if cfg.disc_time_window == 0 {
            t_full
        } else {
            cfg.disc_time_window.min(t_full)
        };
        let w0 = if win < t_full {
            rng.gen_range(0..=t_full - win)
        } else {
            0
        };

        // ---- Discriminator loss (detached fakes) -------------------
        let fake_series_det = tape.leaf(out.series.value().as_ref().clone());
        let real_win = real_series_var.narrow(1, w0, win);
        let mut d_loss = self
            .disc
            .time_logits(&bind, &real_win, &ctx_rows)
            .bce_with_logits(1.0)
            .add(
                &self
                    .disc
                    .time_logits(&bind, &fake_series_det.narrow(1, w0, win), &ctx_rows)
                    .bce_with_logits(0.0),
            );
        if let (Some(spec_fake), Some(spec_real)) = (&out.spec, &spec_real) {
            let real_spec_var = tape.leaf(spec_real.clone());
            let fake_spec_det = tape.leaf(spec_fake.value().as_ref().clone());
            d_loss = d_loss
                .add(
                    &self
                        .disc
                        .spec_logits(&bind, &real_spec_var, &ctx_rows)
                        .bce_with_logits(1.0),
                )
                .add(
                    &self
                        .disc
                        .spec_logits(&bind, &fake_spec_det, &ctx_rows)
                        .bce_with_logits(0.0),
                );
        }

        // ---- Generator loss ----------------------------------------
        let mut g_adv = self
            .disc
            .time_logits(&bind, &out.series.narrow(1, w0, win), &ctx_rows)
            .bce_with_logits(1.0);
        if let Some(spec_fake) = &out.spec {
            g_adv = g_adv.add(
                &self
                    .disc
                    .spec_logits(&bind, spec_fake, &ctx_rows)
                    .bce_with_logits(1.0),
            );
        }
        let l1 = match cfg.variant {
            Variant::TimeOnly => None,
            Variant::TimeOnlyPlus => Some(out.series.l1_to(&series_real)),
            _ => {
                let time_l1 = out.series.l1_to(&series_real);
                match (&out.spec, &spec_real) {
                    (Some(sf), Some(sr)) => Some(time_l1.add(&sf.l1_to(sr))),
                    _ => Some(time_l1),
                }
            }
        };
        let g_loss = match &l1 {
            Some(l) => g_adv.add(&l.scale(cfg.lambda)),
            None => g_adv.clone(),
        };

        let dv = d_loss.value().item();
        let gv = g_adv.value().item();
        let l1v = l1.as_ref().map(|l| l.value().item()).unwrap_or(0.0);
        drop(sp);

        // ---- Gradients ----------------------------------------------
        let sp = obs::span_cat("backward", "train");
        let grads_d = tape.backward(&d_loss);
        let grads_g = tape.backward(&g_loss);
        drop(sp);
        let bound = bind.bound();
        let boundary = self.gen_param_end;
        let (g_bound, d_bound): (Vec<_>, Vec<_>) =
            bound.into_iter().partition(|(id, _)| id.index() < boundary);
        let wire = |list: Vec<(ParamId, Tensor)>| -> Vec<(u32, Tensor)> {
            list.into_iter()
                .map(|(id, t)| (id.index() as u32, t))
                .collect()
        };
        StepGrads {
            d_loss: dv,
            g_adv: gv,
            l1: l1v,
            // Filled in by `compute_grads` after accumulation folds.
            grad_norm_d: 0.0,
            grad_norm_g: 0.0,
            d_updates: wire(collect_updates(&d_bound, &grads_d)),
            g_updates: wire(collect_updates(&g_bound, &grads_g)),
        }
    }
}

/// Losses and gradient norms of one step attempt. `reason` is `Some`
/// when the divergence guard tripped (the update was not applied).
struct StepOutcome {
    d_loss: f32,
    g_adv: f32,
    l1: f32,
    grad_norm_d: f32,
    grad_norm_g: f32,
    reason: Option<String>,
}

impl StepOutcome {
    fn record(
        &self,
        step: usize,
        wall_ms: f64,
        event: Option<String>,
        op_stats: Option<Vec<spectragan_tensor::OpStatEntry>>,
        spans: Option<Vec<obs::SpanStat>>,
        opts: &TrainOptions<'_>,
    ) -> LogRecord {
        LogRecord {
            step,
            d_loss: self.d_loss,
            g_adv: self.g_adv,
            l1: self.l1,
            grad_norm_d: self.grad_norm_d,
            grad_norm_g: self.grad_norm_g,
            wall_ms,
            backend: spectragan_tensor::backend::kind().name().to_string(),
            shards: opts.shards,
            grad_accum: opts.grad_accum,
            event,
            op_stats,
            spans,
        }
    }
}

/// The divergence-guard health check: `Some(reason)` when any loss is
/// non-finite or a global gradient norm is non-finite or above `guard`.
fn health_reason(d: f32, g: f32, l1: f32, gnd: f32, gng: f32, guard: f32) -> Option<String> {
    if !d.is_finite() {
        return Some(format!("d_loss = {d}"));
    }
    if !g.is_finite() {
        return Some(format!("g_adv = {g}"));
    }
    if !l1.is_finite() {
        return Some(format!("l1 = {l1}"));
    }
    if !gnd.is_finite() || gnd > guard {
        return Some(format!("discriminator grad norm {gnd} (guard {guard})"));
    }
    if !gng.is_finite() || gng > guard {
        return Some(format!("generator grad norm {gng} (guard {guard})"));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};

    fn tiny_city(seed: u64) -> City {
        let ds = DatasetConfig {
            weeks: 1,
            steps_per_hour: 1,
            size_scale: 0.36,
        };
        generate_city(
            &CityConfig {
                name: format!("T{seed}"),
                height: 33,
                width: 33,
                seed,
            },
            &ds,
        )
    }

    fn tiny_cfg() -> SpectraGanConfig {
        // train_len 24 with 1 week of hourly data available.
        SpectraGanConfig::tiny()
    }

    #[test]
    fn training_runs_and_reduces_l1() {
        let city = tiny_city(5);
        let mut model = SpectraGan::new(tiny_cfg(), 0);
        let tc = TrainConfig {
            steps: 30,
            batch_patches: 2,
            lr: 3e-3,
            seed: 1,
        };
        let stats = model.train(&[city], &tc).unwrap();
        assert_eq!(stats.d_loss.len(), 30);
        let head: f32 = stats.l1[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = stats.l1[25..].iter().sum::<f32>() / 5.0;
        assert!(tail < head, "L1 did not decrease: head {head} tail {tail}");
        assert!(stats.d_loss.iter().all(|v| v.is_finite()));
        assert!(stats.g_adv.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn all_variants_train_one_step() {
        let city = tiny_city(6);
        for variant in [
            Variant::Full,
            Variant::SpecOnly,
            Variant::TimeOnly,
            Variant::TimeOnlyPlus,
            Variant::PixelContext,
        ] {
            let mut model = SpectraGan::new(tiny_cfg().with_variant(variant), 0);
            let tc = TrainConfig {
                steps: 2,
                batch_patches: 1,
                lr: 1e-3,
                seed: 2,
            };
            let stats = model.train(std::slice::from_ref(&city), &tc).unwrap();
            assert_eq!(stats.d_loss.len(), 2, "{variant:?}");
            assert!(stats.d_loss[0].is_finite(), "{variant:?}");
        }
    }

    #[test]
    fn model_file_roundtrip() {
        let a = SpectraGan::new(tiny_cfg(), 8);
        let json = a.to_model_json();
        let b = SpectraGan::from_model_json(&json).unwrap();
        let city = tiny_city(8);
        assert_eq!(
            a.generate(&city.context, 24, 1).data(),
            b.generate(&city.context, 24, 1).data()
        );
        assert!(SpectraGan::from_model_json("{}").is_err());
        assert!(SpectraGan::from_model_json("not json").is_err());
    }

    #[test]
    fn weights_roundtrip_through_json() {
        let mut a = SpectraGan::new(tiny_cfg(), 1);
        let mut b = SpectraGan::new(tiny_cfg(), 2);
        let json = a.weights_json();
        b.load_weights_json(&json).unwrap();
        // After loading, generation from identical inputs matches.
        let city = tiny_city(7);
        let ga = a.generate(&city.context, 24, 9);
        let gb = b.generate(&city.context, 24, 9);
        assert_eq!(ga.data(), gb.data());
        // Re-loading into a model trained differently also matches.
        let tc = TrainConfig {
            steps: 1,
            batch_patches: 1,
            lr: 1e-3,
            seed: 3,
        };
        a.train(std::slice::from_ref(&city), &tc).unwrap();
        a.load_weights_json(&json).unwrap();
        let ga2 = a.generate(&city.context, 24, 9);
        assert_eq!(ga2.data(), gb.data());
    }
}
