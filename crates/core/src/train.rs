//! Adversarial training (§2.2.3, Eq. 1).
//!
//! Each step alternates a discriminator update and a generator update
//! on one minibatch of patches sampled from the training cities:
//!
//! * **D loss** — `BCE(R^t(x, c), 1) + BCE(R^t(x̃⊥, c), 0)` plus the
//!   spectrum terms for variants that have `G^s`, where `x̃⊥` is the
//!   generator output *detached* from the tape (re-inserted as a leaf)
//!   so discriminator gradients never reach the generator.
//! * **G loss** — `BCE(R^t(x̃, c), 1) [+ BCE(R^s(ỹ^s, c), 1)] + λ·L1`,
//!   with the L1 term against the real series and the quantile-masked
//!   real spectrum (exactly which L1 terms apply depends on the
//!   variant; Time-only is adversarial-only, matching §4.2).
//!
//! Both sides are updated with GAN-flavoured Adam (`β₁ = 0.5`).

use crate::config::{SpectraGanConfig, TrainConfig, Variant};
use crate::fourier::{masked_spec_rows, patch_to_rows};
use crate::model::{Discriminators, Generator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spectragan_geo::{City, PatchLayout, PatchSpec};
use spectragan_nn::{Adam, Binding, ParamStore, Tape, Tensor};

/// One training sample: a context window with its traffic patch in both
/// representations.
struct Sample {
    /// Context window `[C, H_c, W_c]` (standardized).
    ctx: Tensor,
    /// Real traffic series rows `[px, T]`.
    series: Tensor,
    /// Masked real spectrum rows `[px, 2F]` (empty tensor when the
    /// variant has no spectrum path).
    spec: Tensor,
}

/// Loss traces recorded during training.
#[derive(Debug, Clone, Default)]
pub struct TrainStats {
    /// Discriminator loss per step.
    pub d_loss: Vec<f32>,
    /// Generator adversarial loss per step.
    pub g_adv: Vec<f32>,
    /// Explicit L1 loss per step (0 for variants without one).
    pub l1: Vec<f32>,
}

/// A trainable SpectraGAN instance: parameters plus both network
/// halves.
pub struct SpectraGan {
    cfg: SpectraGanConfig,
    store: ParamStore,
    gen: Generator,
    disc: Discriminators,
    /// Parameters with index < this belong to the generator.
    gen_param_end: usize,
}

impl SpectraGan {
    /// Builds a model with freshly initialized weights.
    pub fn new(cfg: SpectraGanConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let gen = Generator::new(cfg, &mut store, &mut rng);
        let gen_param_end = store.len();
        let disc = Discriminators::new(cfg, &mut store, &mut rng);
        SpectraGan {
            cfg,
            store,
            gen,
            disc,
            gen_param_end,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &SpectraGanConfig {
        &self.cfg
    }

    /// The parameter store (e.g. for inspecting weight counts).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Read access for the generation pipeline.
    pub(crate) fn parts(&self) -> (&SpectraGanConfig, &ParamStore, &Generator) {
        (&self.cfg, &self.store, &self.gen)
    }

    /// Serializes all weights to JSON.
    pub fn weights_json(&self) -> String {
        self.store.to_json()
    }

    /// Serializes the *whole model* — configuration and weights — into
    /// a single JSON document (the `.spectragan.json` model-file format
    /// used by the CLI).
    pub fn to_model_json(&self) -> String {
        #[derive(serde::Serialize)]
        struct ModelFile<'a> {
            format: &'static str,
            config: &'a SpectraGanConfig,
            store: &'a ParamStore,
        }
        serde_json::to_string(&ModelFile {
            format: "spectragan-model-v1",
            config: &self.cfg,
            store: &self.store,
        })
        .expect("model serialization cannot fail")
    }

    /// Reconstructs a model from [`SpectraGan::to_model_json`] output.
    pub fn from_model_json(json: &str) -> Result<Self, String> {
        #[derive(serde::Deserialize)]
        struct ModelFile {
            format: String,
            config: SpectraGanConfig,
            store: ParamStore,
        }
        let file: ModelFile =
            serde_json::from_str(json).map_err(|e| format!("malformed model file: {e}"))?;
        if file.format != "spectragan-model-v1" {
            return Err(format!("unsupported model format '{}'", file.format));
        }
        let mut model = SpectraGan::new(file.config, 0);
        if model.store.len() != file.store.len() {
            return Err(format!(
                "weight count mismatch: file has {}, architecture needs {}",
                file.store.len(),
                model.store.len()
            ));
        }
        model.store.copy_values_from(&file.store);
        Ok(model)
    }

    /// Loads weights saved by [`SpectraGan::weights_json`] into this
    /// (architecturally identical) model.
    pub fn load_weights_json(&mut self, json: &str) -> Result<(), serde_json::Error> {
        let other = ParamStore::from_json(json)?;
        self.store.copy_values_from(&other);
        Ok(())
    }

    /// Extracts training samples from the cities: every training patch
    /// of every city, with its series rows and masked-spectrum target.
    fn prepare(&self, cities: &[City]) -> Vec<Sample> {
        let cfg = &self.cfg;
        let spec_needed = cfg.variant.has_spectrum();
        let mut samples = Vec::new();
        for city in cities {
            assert!(
                city.traffic.len_t() >= cfg.train_len,
                "{} has {} steps, need at least {}",
                city.name,
                city.traffic.len_t(),
                cfg.train_len
            );
            let ctx = city.context.standardized();
            let layout = PatchLayout::new(
                city.grid(),
                PatchSpec::new(cfg.patch_traffic, cfg.patch_context(), cfg.patch_traffic),
            );
            for &pos in layout.positions() {
                let ctx_patch = layout.extract_context(&ctx, pos);
                let traffic = layout.extract_traffic(&city.traffic, pos, 0, cfg.train_len);
                let series = patch_to_rows(&traffic);
                let spec = if spec_needed {
                    masked_spec_rows(&traffic, cfg.q)
                } else {
                    Tensor::zeros([0])
                };
                samples.push(Sample {
                    ctx: ctx_patch,
                    series,
                    spec,
                });
            }
        }
        assert!(!samples.is_empty(), "no training patches extracted");
        samples
    }

    /// Stacks per-sample tensors along a new leading batch axis.
    fn stack(parts: &[&Tensor]) -> Tensor {
        let mut dims = vec![1usize];
        dims.extend_from_slice(parts[0].shape().dims());
        let reshaped: Vec<Tensor> = parts.iter().map(|p| p.reshape(dims.clone())).collect();
        let refs: Vec<&Tensor> = reshaped.iter().collect();
        Tensor::concat(&refs, 0)
    }

    /// Runs adversarial training on the given cities.
    pub fn train(&mut self, cities: &[City], tc: &TrainConfig) -> TrainStats {
        let samples = self.prepare(cities);
        let mut rng = StdRng::seed_from_u64(tc.seed);
        let mut opt_g = Adam::gan(tc.lr).with_clip_norm(5.0);
        let mut opt_d = Adam::gan(tc.lr).with_clip_norm(5.0);
        let mut stats = TrainStats::default();
        let cfg = self.cfg;
        let px = cfg.pixels_per_patch();

        for _step in 0..tc.steps {
            // ---- Minibatch assembly -----------------------------------
            let batch: Vec<&Sample> = (0..tc.batch_patches)
                .map(|_| &samples[rng.gen_range(0..samples.len())])
                .collect();
            let ctx_batch = Self::stack(&batch.iter().map(|s| &s.ctx).collect::<Vec<_>>());
            let series_real = {
                let refs: Vec<&Tensor> = batch.iter().map(|s| &s.series).collect();
                Tensor::concat(&refs, 0)
            };
            let spec_real = if cfg.variant.has_spectrum() {
                let refs: Vec<&Tensor> = batch.iter().map(|s| &s.spec).collect();
                Some(Tensor::concat(&refs, 0))
            } else {
                None
            };
            // Per-patch noise vector, broadcast spatially.
            let mut z = Tensor::zeros([
                tc.batch_patches,
                cfg.noise_dim,
                cfg.patch_traffic,
                cfg.patch_traffic,
            ]);
            for p in 0..tc.batch_patches {
                for d in 0..cfg.noise_dim {
                    let v: f32 = {
                        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                        let u2: f32 = rng.gen_range(0.0..1.0);
                        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
                    };
                    let hw = cfg.patch_traffic * cfg.patch_traffic;
                    let base = (p * cfg.noise_dim + d) * hw;
                    for e in 0..hw {
                        z.data_mut()[base + e] = v;
                    }
                }
            }
            let _ = px;

            // ---- Forward ------------------------------------------------
            let tape = Tape::new();
            let bind = Binding::new(&tape, &self.store);
            let ctx_var = tape.leaf(ctx_batch.clone());
            let z_var = tape.leaf(z);
            let out = self.gen.forward(&bind, &ctx_var, &z_var);
            let ctx_rows = self.disc.encode_rows(&bind, &ctx_var);
            let real_series_var = tape.leaf(series_real.clone());

            // The time discriminator judges a random window of the
            // series (temporal patch discriminator; cfg.disc_time_window
            // = 0 disables windowing). Real and fake views share the
            // window so the critic compares like with like.
            let t_full = cfg.train_len;
            let win = if cfg.disc_time_window == 0 {
                t_full
            } else {
                cfg.disc_time_window.min(t_full)
            };
            let w0 = if win < t_full {
                rng.gen_range(0..=t_full - win)
            } else {
                0
            };

            // ---- Discriminator loss (detached fakes) -------------------
            let fake_series_det = tape.leaf(out.series.value().as_ref().clone());
            let real_win = real_series_var.narrow(1, w0, win);
            let mut d_loss = self
                .disc
                .time_logits(&bind, &real_win, &ctx_rows)
                .bce_with_logits(1.0)
                .add(
                    &self
                        .disc
                        .time_logits(&bind, &fake_series_det.narrow(1, w0, win), &ctx_rows)
                        .bce_with_logits(0.0),
                );
            if let (Some(spec_fake), Some(spec_real)) = (&out.spec, &spec_real) {
                let real_spec_var = tape.leaf(spec_real.clone());
                let fake_spec_det = tape.leaf(spec_fake.value().as_ref().clone());
                d_loss = d_loss
                    .add(
                        &self
                            .disc
                            .spec_logits(&bind, &real_spec_var, &ctx_rows)
                            .bce_with_logits(1.0),
                    )
                    .add(
                        &self
                            .disc
                            .spec_logits(&bind, &fake_spec_det, &ctx_rows)
                            .bce_with_logits(0.0),
                    );
            }

            // ---- Generator loss ----------------------------------------
            let mut g_adv = self
                .disc
                .time_logits(&bind, &out.series.narrow(1, w0, win), &ctx_rows)
                .bce_with_logits(1.0);
            if let Some(spec_fake) = &out.spec {
                g_adv = g_adv.add(
                    &self
                        .disc
                        .spec_logits(&bind, spec_fake, &ctx_rows)
                        .bce_with_logits(1.0),
                );
            }
            let l1 = match cfg.variant {
                Variant::TimeOnly => None,
                Variant::TimeOnlyPlus => Some(out.series.l1_to(&series_real)),
                _ => {
                    let time_l1 = out.series.l1_to(&series_real);
                    match (&out.spec, &spec_real) {
                        (Some(sf), Some(sr)) => Some(time_l1.add(&sf.l1_to(sr))),
                        _ => Some(time_l1),
                    }
                }
            };
            let g_loss = match &l1 {
                Some(l) => g_adv.add(&l.scale(cfg.lambda)),
                None => g_adv.clone(),
            };

            stats.d_loss.push(d_loss.value().item());
            stats.g_adv.push(g_adv.value().item());
            stats
                .l1
                .push(l1.as_ref().map(|l| l.value().item()).unwrap_or(0.0));

            // ---- Updates ------------------------------------------------
            let grads_d = tape.backward(&d_loss);
            let grads_g = tape.backward(&g_loss);
            let bound = bind.bound();
            let boundary = self.gen_param_end;
            let (g_bound, d_bound): (Vec<_>, Vec<_>) =
                bound.into_iter().partition(|(id, _)| id.index() < boundary);
            opt_d.step(&mut self.store, &d_bound, &grads_d);
            opt_g.step(&mut self.store, &g_bound, &grads_g);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};

    fn tiny_city(seed: u64) -> City {
        let ds = DatasetConfig {
            weeks: 1,
            steps_per_hour: 1,
            size_scale: 0.36,
        };
        generate_city(
            &CityConfig {
                name: format!("T{seed}"),
                height: 33,
                width: 33,
                seed,
            },
            &ds,
        )
    }

    fn tiny_cfg() -> SpectraGanConfig {
        // train_len 24 with 1 week of hourly data available.
        SpectraGanConfig::tiny()
    }

    #[test]
    fn training_runs_and_reduces_l1() {
        let city = tiny_city(5);
        let mut model = SpectraGan::new(tiny_cfg(), 0);
        let tc = TrainConfig {
            steps: 30,
            batch_patches: 2,
            lr: 3e-3,
            seed: 1,
        };
        let stats = model.train(&[city], &tc);
        assert_eq!(stats.d_loss.len(), 30);
        let head: f32 = stats.l1[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = stats.l1[25..].iter().sum::<f32>() / 5.0;
        assert!(tail < head, "L1 did not decrease: head {head} tail {tail}");
        assert!(stats.d_loss.iter().all(|v| v.is_finite()));
        assert!(stats.g_adv.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn all_variants_train_one_step() {
        let city = tiny_city(6);
        for variant in [
            Variant::Full,
            Variant::SpecOnly,
            Variant::TimeOnly,
            Variant::TimeOnlyPlus,
            Variant::PixelContext,
        ] {
            let mut model = SpectraGan::new(tiny_cfg().with_variant(variant), 0);
            let tc = TrainConfig {
                steps: 2,
                batch_patches: 1,
                lr: 1e-3,
                seed: 2,
            };
            let stats = model.train(std::slice::from_ref(&city), &tc);
            assert_eq!(stats.d_loss.len(), 2, "{variant:?}");
            assert!(stats.d_loss[0].is_finite(), "{variant:?}");
        }
    }

    #[test]
    fn model_file_roundtrip() {
        let a = SpectraGan::new(tiny_cfg(), 8);
        let json = a.to_model_json();
        let b = SpectraGan::from_model_json(&json).unwrap();
        let city = tiny_city(8);
        assert_eq!(
            a.generate(&city.context, 24, 1).data(),
            b.generate(&city.context, 24, 1).data()
        );
        assert!(SpectraGan::from_model_json("{}").is_err());
        assert!(SpectraGan::from_model_json("not json").is_err());
    }

    #[test]
    fn weights_roundtrip_through_json() {
        let mut a = SpectraGan::new(tiny_cfg(), 1);
        let mut b = SpectraGan::new(tiny_cfg(), 2);
        let json = a.weights_json();
        b.load_weights_json(&json).unwrap();
        // After loading, generation from identical inputs matches.
        let city = tiny_city(7);
        let ga = a.generate(&city.context, 24, 9);
        let gb = b.generate(&city.context, 24, 9);
        assert_eq!(ga.data(), gb.data());
        // Re-loading into a model trained differently also matches.
        let tc = TrainConfig {
            steps: 1,
            batch_patches: 1,
            lr: 1e-3,
            seed: 3,
        };
        a.train(std::slice::from_ref(&city), &tc);
        a.load_weights_json(&json).unwrap();
        let ga2 = a.generate(&city.context, 24, 9);
        assert_eq!(ga2.data(), gb.data());
    }
}
