//! `SGWT` — the zero-copy, checksummed, memory-mappable weight
//! container.
//!
//! The JSON model file ([`SpectraGan::to_model_json`]) is the training
//! and interchange format: human-readable, but every load parses and
//! heap-allocates the full weight set. A serving fleet wants the
//! opposite trade — open in microseconds, share pages between
//! processes, and keep only the touched layers resident. `SGWT` is
//! that format:
//!
//! ```text
//! offset  0  magic  "SGWT"                      (4 bytes)
//! offset  4  format version, u16 LE             (2 bytes)
//! offset  6  directory length, u64 LE           (8 bytes)
//! offset 14  directory CRC-32 (IEEE), u32 LE    (4 bytes)
//! offset 18  directory                          (≤ 16 MiB)
//!            zero padding to a 64-byte boundary
//!            layer sections, each 64-byte aligned, raw LE f32/f16
//! ```
//!
//! The directory is, in order: `u32` config-JSON length + the config
//! JSON (`{"format":"spectragan-weights-v1","config":{…}}`), `u32`
//! layer count, then per layer `u32` name length + UTF-8 name, `u8`
//! dtype (0 = f32, 1 = f16, 2 = int8), `u8` ndim, `ndim × u32` dims,
//! `u64` absolute section offset, `u64` section byte count, `u32`
//! section CRC-32. All integers little-endian.
//!
//! **Version 2** (written only by int8 exports; version-1 files are
//! unchanged byte-for-byte and still load) appends to every layer
//! entry a `u32` dequantization-scale count followed by that many f32
//! LE scales. Int8 sections carry one scale per quantization row
//! (the leading dimension for `ndim ≥ 2`, one for the whole tensor
//! otherwise — see `spectragan_tensor::q8::scale_rows`); f32/f16
//! sections carry zero. The scales live in the CRC-protected
//! directory, and the parser additionally requires every scale to be
//! finite and positive, so a corrupt scale is a typed load error —
//! never a weight that silently dequantizes to NaN.
//!
//! Trust model mirrors the rest of `geo::io`: the directory length is
//! capped *before* allocation ([`DIRECTORY_MAX_BYTES`]) and its CRC is
//! verified eagerly at [`WeightStore::open`], so a forged header
//! cannot make the loader allocate or parse garbage. Section CRCs are
//! verified lazily on first touch — mapping a 100-layer container and
//! generating with 10 layers reads 10 sections from disk — with
//! [`WeightStore::validate_all`] available for front-ends that want
//! every checksum verified up front as a typed error instead of a
//! first-touch panic.
//!
//! On unix the container is `mmap(2)`-ed (`PROT_READ`, `MAP_PRIVATE`)
//! so layer views are zero-copy pointers into the page cache;
//! elsewhere (or if the syscall fails) it falls back to one buffered
//! read. f32 sections become [`LazySource`]s (materialized on first
//! touch, bit-identical to the JSON path), f16 sections become
//! [`F16Slice`]s that the backends widen per call (halving resident
//! weight bytes), and int8 sections become [`Q8Slice`]s that the
//! dequantizing GEMM streams at 1 byte per element (~4× smaller
//! resident) — each at a spectrally-gated fidelity cost.

use crate::config::SpectraGanConfig;
use crate::error::CoreError;
use crate::train::SpectraGan;
use spectragan_geo::io::{atomic_write, crc32, extend_f32_le, f32s_from_le};
use spectragan_nn::{F16Slice, LazySource, Q8Buf, Q8Slice};
use spectragan_tensor::f16::narrow_slice_le;
use spectragan_tensor::{q8, Shape, Tensor};
use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// Magic bytes identifying a weight container.
pub const WEIGHT_MAGIC: &[u8; 4] = b"SGWT";

/// Container format version for f32/f16 payloads. Files written
/// before int8 existed are version 1 and keep loading unchanged;
/// f32/f16 exports still write version 1 so their output stays
/// byte-identical across the int8 change.
pub const WEIGHT_VERSION: u16 = 1;

/// Container format version carrying per-entry dequantization scales
/// (written only by int8 exports).
pub const WEIGHT_VERSION_Q8: u16 = 2;

/// Every section starts on this alignment, so mapped f32 views sit on
/// cache-line (and any future SIMD-load) boundaries.
pub const SECTION_ALIGN: usize = 64;

/// Hard cap on the directory, enforced before the length field is
/// trusted with an allocation. Directories are a few KiB in practice;
/// 16 MiB is beyond any real model while still refusing a forged
/// multi-exabyte length outright.
pub const DIRECTORY_MAX_BYTES: usize = 16 << 20;

/// Format tag inside the embedded config JSON.
const WEIGHTS_FORMAT: &str = "spectragan-weights-v1";

/// magic + version + directory length + directory CRC.
pub const WEIGHT_HEADER: usize = 18;

/// Per-layer dtype tags in the directory. Public because external
/// tooling (and the corruption test suites) walk the documented layout.
pub const DTYPE_F32: u8 = 0;
/// IEEE 754 binary16 section, widened at load.
pub const DTYPE_F16: u8 = 1;
/// Symmetric int8 section; its directory entry carries one
/// dequantization scale per quantization row (v2 containers only).
pub const DTYPE_I8: u8 = 2;

/// Storage precision of the tensor sections in a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// 4 bytes per element; loads are bit-identical to the JSON path.
    F32,
    /// 2 bytes per element (IEEE binary16, round-to-nearest-even);
    /// inference-only, halves resident weight bytes.
    F16,
    /// 1 byte per element (symmetric absmax int8, per-row scales) for
    /// matrices and conv kernels; vector parameters (biases) stay f32,
    /// which costs a negligible fraction of the bytes and none of the
    /// quantization error. Inference-only, ~4× smaller resident weight
    /// bytes.
    Int8,
}

impl Precision {
    /// Parses a CLI-style name (`"f32"` / `"f16"` / `"int8"`).
    pub fn parse(s: &str) -> Result<Precision, CoreError> {
        match s {
            "f32" => Ok(Precision::F32),
            "f16" => Ok(Precision::F16),
            "int8" => Ok(Precision::Int8),
            other => Err(CoreError::Model(format!(
                "unknown weights precision '{other}' (expected 'f32', 'f16' or 'int8')"
            ))),
        }
    }

    /// The CLI-style name.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::Int8 => "int8",
        }
    }
}

fn dtype_size(dtype: u8) -> usize {
    match dtype {
        DTYPE_F32 => 4,
        DTYPE_F16 => 2,
        DTYPE_I8 => 1,
        _ => unreachable!("dtype validated at parse"),
    }
}

fn align_up(x: usize) -> usize {
    (x + SECTION_ALIGN - 1) & !(SECTION_ALIGN - 1)
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Serializes a model into the `SGWT` container format.
pub fn encode_weights(model: &SpectraGan, precision: Precision) -> Vec<u8> {
    #[derive(serde::Serialize)]
    struct Header<'a> {
        format: &'static str,
        config: &'a SpectraGanConfig,
    }
    let config_json = serde_json::to_string(&Header {
        format: WEIGHTS_FORMAT,
        config: model.config(),
    })
    .expect("config serialization cannot fail");

    // Layer payloads first: names, shapes, dtype, raw section bytes
    // and (int8 only) dequantization scales. Int8 quantizes matrices
    // and conv kernels per leading-dimension row; rank-0/1 parameters
    // (biases) stay f32 sections inside the same container — they are
    // a negligible fraction of the bytes and quantizing them buys
    // nothing.
    struct Payload {
        name: String,
        dims: Vec<usize>,
        dtype: u8,
        bytes: Vec<u8>,
        scales: Vec<f32>,
    }
    let layers: Vec<Payload> = model
        .store()
        .iter()
        .map(|(_, name, t)| {
            let (dtype, bytes, scales) = match precision {
                Precision::F32 => {
                    let mut b = Vec::with_capacity(4 * t.numel());
                    extend_f32_le(&mut b, t.data());
                    (DTYPE_F32, b, Vec::new())
                }
                Precision::F16 => (DTYPE_F16, narrow_slice_le(t.data()), Vec::new()),
                Precision::Int8 if t.shape().ndim() >= 2 => {
                    let q = q8::quantize_tensor(t.data(), t.shape());
                    (DTYPE_I8, q.data, q.scales)
                }
                Precision::Int8 => {
                    let mut b = Vec::with_capacity(4 * t.numel());
                    extend_f32_le(&mut b, t.data());
                    (DTYPE_F32, b, Vec::new())
                }
            };
            Payload {
                name: name.to_string(),
                dims: t.shape().dims().to_vec(),
                dtype,
                bytes,
                scales,
            }
        })
        .collect();
    let version = match precision {
        Precision::Int8 => WEIGHT_VERSION_Q8,
        _ => WEIGHT_VERSION,
    };

    // The directory's size is fixed by names, ranks and scale counts
    // alone, so the section offsets it records can be computed before
    // it is built.
    let dir_len = 4
        + config_json.len()
        + 4
        + layers
            .iter()
            .map(|l| {
                let scale_field = if version >= WEIGHT_VERSION_Q8 {
                    4 + 4 * l.scales.len()
                } else {
                    0
                };
                4 + l.name.len() + 1 + 1 + 4 * l.dims.len() + 8 + 8 + 4 + scale_field
            })
            .sum::<usize>();
    let mut offset = align_up(WEIGHT_HEADER + dir_len);
    let mut offsets = Vec::with_capacity(layers.len());
    for l in &layers {
        offsets.push(offset);
        offset = align_up(offset + l.bytes.len());
    }

    let mut dir = Vec::with_capacity(dir_len);
    dir.extend_from_slice(&(config_json.len() as u32).to_le_bytes());
    dir.extend_from_slice(config_json.as_bytes());
    dir.extend_from_slice(&(layers.len() as u32).to_le_bytes());
    for (l, &sec_off) in layers.iter().zip(&offsets) {
        dir.extend_from_slice(&(l.name.len() as u32).to_le_bytes());
        dir.extend_from_slice(l.name.as_bytes());
        dir.push(l.dtype);
        dir.push(l.dims.len() as u8);
        for &d in &l.dims {
            dir.extend_from_slice(&(u32::try_from(d).expect("dim fits u32")).to_le_bytes());
        }
        dir.extend_from_slice(&(sec_off as u64).to_le_bytes());
        dir.extend_from_slice(&(l.bytes.len() as u64).to_le_bytes());
        dir.extend_from_slice(&crc32(&l.bytes).to_le_bytes());
        if version >= WEIGHT_VERSION_Q8 {
            dir.extend_from_slice(&(l.scales.len() as u32).to_le_bytes());
            extend_f32_le(&mut dir, &l.scales);
        }
    }
    debug_assert_eq!(dir.len(), dir_len);

    let total = offsets
        .last()
        .zip(layers.last())
        .map_or(align_up(WEIGHT_HEADER + dir_len), |(&o, l)| {
            o + l.bytes.len()
        });
    let mut buf = vec![0u8; total];
    buf[..4].copy_from_slice(WEIGHT_MAGIC);
    buf[4..6].copy_from_slice(&version.to_le_bytes());
    buf[6..14].copy_from_slice(&(dir_len as u64).to_le_bytes());
    buf[14..18].copy_from_slice(&crc32(&dir).to_le_bytes());
    buf[18..18 + dir_len].copy_from_slice(&dir);
    for (l, &sec_off) in layers.iter().zip(&offsets) {
        buf[sec_off..sec_off + l.bytes.len()].copy_from_slice(&l.bytes);
    }
    buf
}

/// Encodes and atomically writes a model container to `path`.
pub fn save_weights(
    model: &SpectraGan,
    path: impl AsRef<Path>,
    precision: Precision,
) -> Result<(), CoreError> {
    let path = path.as_ref();
    atomic_write(path, &encode_weights(model, precision))
        .map_err(|e| CoreError::Model(format!("writing weight container {path:?}: {e}")))
}

// ---------------------------------------------------------------------
// Backing storage: mmap with a buffered-read fallback
// ---------------------------------------------------------------------

#[cfg(unix)]
mod mapping {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    /// A read-only private file mapping. Pages fault in on first
    /// touch and stay shared with the page cache.
    pub struct Mapping {
        ptr: *mut u8,
        len: usize,
    }

    // The mapping is immutable for its whole lifetime, so shared
    // references from any thread are fine.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps the whole file read-only; `None` if the kernel
        /// declines (callers fall back to a buffered read).
        pub fn map(file: &File, len: usize) -> Option<Mapping> {
            if len == 0 {
                return None;
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                None
            } else {
                Some(Mapping { ptr, len })
            }
        }

        pub fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// Where the container bytes live.
enum Backing {
    /// Zero-copy view of the file (unix).
    #[cfg(unix)]
    Mapped(mapping::Mapping),
    /// Whole file read into memory (fallback).
    Heap(Vec<u8>),
}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Backing::Mapped(m) => m.bytes(),
            Backing::Heap(v) => v,
        }
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked cursor over untrusted directory bytes.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CoreError> {
        if self.b.len() - self.pos < n {
            return Err(CoreError::Model(format!(
                "weight directory truncated reading {what}"
            )));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, CoreError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, CoreError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CoreError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
}

/// One layer's directory entry, validated against the file bounds.
struct LayerEntry {
    name: String,
    dtype: u8,
    shape: Shape,
    offset: usize,
    nbytes: usize,
    crc: u32,
    /// Dequantization scales (int8 entries only; empty otherwise).
    /// Validated at parse: count matches the shape's quantization
    /// rows, every value finite and positive.
    scales: Vec<f32>,
}

/// An opened `SGWT` container: parsed directory over mapped (or
/// buffered) bytes. Layer sections are untouched until a model built
/// from the store first uses them.
pub struct WeightStore {
    backing: Arc<Backing>,
    config: SpectraGanConfig,
    layers: Vec<LayerEntry>,
    mapped: bool,
}

impl std::fmt::Debug for WeightStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WeightStore")
            .field("layers", &self.layers.len())
            .field("section_bytes", &self.section_bytes())
            .field("mapped", &self.mapped)
            .finish_non_exhaustive()
    }
}

impl WeightStore {
    /// Opens and structurally validates a container: magic, version,
    /// capped directory length, directory CRC, and every entry's
    /// bounds, alignment, dims/size consistency and config format tag.
    /// Section payload CRCs are *not* read here — see
    /// [`WeightStore::validate_all`].
    pub fn open(path: impl AsRef<Path>) -> Result<WeightStore, CoreError> {
        let path = path.as_ref();
        let mut file = File::open(path).map_err(|e| CoreError::io(path, e))?;
        let mut header = [0u8; WEIGHT_HEADER];
        file.read_exact(&mut header)
            .map_err(|e| CoreError::io(path, e))?;
        if &header[..4] != WEIGHT_MAGIC {
            return Err(CoreError::Model(format!(
                "{path:?} is not an SGWT weight container (bad magic)"
            )));
        }
        let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
        if version != WEIGHT_VERSION && version != WEIGHT_VERSION_Q8 {
            return Err(CoreError::Model(format!(
                "unsupported weight container version {version} (expected {WEIGHT_VERSION} \
                 or {WEIGHT_VERSION_Q8})"
            )));
        }
        let dir_len64 = u64::from_le_bytes(header[6..14].try_into().unwrap());
        if dir_len64 > DIRECTORY_MAX_BYTES as u64 {
            return Err(CoreError::Model(format!(
                "weight directory length header claims {dir_len64} bytes, above the \
                 {DIRECTORY_MAX_BYTES}-byte cap (forged or corrupt container)"
            )));
        }
        let dir_len = dir_len64 as usize;
        let dir_crc = u32::from_le_bytes(header[14..18].try_into().unwrap());

        let file_len = file.metadata().map_err(|e| CoreError::io(path, e))?.len();
        if file_len > usize::MAX as u64 {
            return Err(CoreError::Model(format!(
                "weight container {path:?} does not fit in the address space"
            )));
        }
        let file_len = file_len as usize;
        if file_len < WEIGHT_HEADER + dir_len {
            return Err(CoreError::Model(format!(
                "weight container truncated: directory claims {dir_len} bytes but only \
                 {} remain after the header",
                file_len.saturating_sub(WEIGHT_HEADER)
            )));
        }

        #[cfg(unix)]
        let (backing, mapped) = match mapping::Mapping::map(&file, file_len) {
            Some(m) => (Backing::Mapped(m), true),
            None => (Backing::Heap(read_all(&mut file, path, file_len)?), false),
        };
        #[cfg(not(unix))]
        let (backing, mapped) = (Backing::Heap(read_all(&mut file, path, file_len)?), false);

        let bytes = backing.bytes();
        let dir = &bytes[WEIGHT_HEADER..WEIGHT_HEADER + dir_len];
        let got = crc32(dir);
        if got != dir_crc {
            return Err(CoreError::Model(format!(
                "weight directory failed its CRC ({got:#010x} != {dir_crc:#010x}); the \
                 container is corrupt"
            )));
        }

        let (config, layers) = parse_directory(dir, file_len, version)?;
        Ok(WeightStore {
            backing: Arc::new(backing),
            config,
            layers,
            mapped,
        })
    }

    /// The model configuration embedded in the container.
    pub fn config(&self) -> &SpectraGanConfig {
        &self.config
    }

    /// Whether the container is memory-mapped (vs. read into a heap
    /// buffer).
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    /// Number of layers in the directory.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Sum of all section payload bytes (the on-disk weight footprint,
    /// excluding header, directory and padding).
    pub fn section_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.nbytes).sum()
    }

    /// The storage precision: [`Precision::Int8`] if any section is
    /// int8 (int8 containers mix in f32 bias sections), else
    /// [`Precision::F16`] if any section is f16, else
    /// [`Precision::F32`].
    pub fn precision(&self) -> Precision {
        if self.layers.iter().any(|l| l.dtype == DTYPE_I8) {
            Precision::Int8
        } else if self.layers.iter().any(|l| l.dtype == DTYPE_F16) {
            Precision::F16
        } else {
            Precision::F32
        }
    }

    /// Verifies every section's CRC now, returning a typed error
    /// instead of leaving mismatches to panic on first touch. Serving
    /// front-ends call this at registration so a corrupt container is
    /// rejected at load time, never on a request.
    pub fn validate_all(&self) -> Result<(), CoreError> {
        let bytes = self.backing.bytes();
        for l in &self.layers {
            let got = crc32(&bytes[l.offset..l.offset + l.nbytes]);
            if got != l.crc {
                return Err(CoreError::Model(format!(
                    "weight section '{}' failed its CRC ({got:#010x} != {:#010x}); the \
                     container is corrupt",
                    l.name, l.crc
                )));
            }
        }
        Ok(())
    }

    /// Builds a model over this container: architecture from the
    /// embedded config, every parameter backed by its section — f32
    /// sections lazily materialized on first touch, f16 sections
    /// widened per use. Validates layer count, names and shapes
    /// against the freshly built architecture.
    pub fn load_model(&self) -> Result<SpectraGan, CoreError> {
        let mut model = SpectraGan::new(self.config, 0);
        if model.store().len() != self.layers.len() {
            return Err(CoreError::Model(format!(
                "weight container has {} layers, architecture needs {}",
                self.layers.len(),
                model.store().len()
            )));
        }
        let expected: Vec<(spectragan_nn::ParamId, String, Shape)> = model
            .store()
            .iter()
            .map(|(id, name, t)| (id, name.to_string(), t.shape().clone()))
            .collect();
        for ((id, name, shape), entry) in expected.iter().zip(&self.layers) {
            if *name != entry.name {
                return Err(CoreError::Model(format!(
                    "layer name mismatch: container has '{}', architecture needs '{name}'",
                    entry.name
                )));
            }
            if *shape != entry.shape {
                return Err(CoreError::Model(format!(
                    "shape mismatch for layer '{name}': container has {:?}, architecture \
                     needs {:?}",
                    entry.shape.dims(),
                    shape.dims()
                )));
            }
            let sec = Section {
                backing: Arc::clone(&self.backing),
                offset: entry.offset,
                len: entry.nbytes,
                crc: entry.crc,
                name: entry.name.clone(),
                checked: OnceLock::new(),
            };
            match entry.dtype {
                DTYPE_F32 => model.store_mut().demote_to_lazy(
                    *id,
                    Arc::new(F32Section {
                        sec,
                        shape: shape.clone(),
                    }),
                ),
                DTYPE_I8 => model.store_mut().demote_to_int8(
                    *id,
                    Arc::new(Q8Section {
                        sec,
                        scales: entry.scales.clone(),
                    }),
                ),
                _ => model
                    .store_mut()
                    .demote_to_half(*id, Arc::new(F16Section(sec))),
            }
        }
        Ok(model)
    }
}

fn read_all(file: &mut File, path: &Path, file_len: usize) -> Result<Vec<u8>, CoreError> {
    use std::io::Seek;
    file.rewind().map_err(|e| CoreError::io(path, e))?;
    // file_len came from fstat after a capped-header check, so this
    // allocation is bounded by the real file size, not a forged field.
    let mut buf = Vec::with_capacity(file_len);
    file.read_to_end(&mut buf)
        .map_err(|e| CoreError::io(path, e))?;
    if buf.len() != file_len {
        return Err(CoreError::Model(format!(
            "weight container {path:?} changed size while loading"
        )));
    }
    Ok(buf)
}

fn parse_directory(
    dir: &[u8],
    file_len: usize,
    version: u16,
) -> Result<(SpectraGanConfig, Vec<LayerEntry>), CoreError> {
    #[derive(serde::Deserialize)]
    struct Header {
        format: String,
        config: SpectraGanConfig,
    }

    let mut cur = Cur { b: dir, pos: 0 };
    let config_len = cur.u32("config length")? as usize;
    let config_bytes = cur.take(config_len, "config JSON")?;
    let config_str = std::str::from_utf8(config_bytes)
        .map_err(|_| CoreError::Model("weight container config is not UTF-8".into()))?;
    let header: Header = serde_json::from_str(config_str)
        .map_err(|e| CoreError::Model(format!("malformed weight container config: {e}")))?;
    if header.format != WEIGHTS_FORMAT {
        return Err(CoreError::Model(format!(
            "unsupported weight container format '{}'",
            header.format
        )));
    }

    let count = cur.u32("layer count")? as usize;
    let mut layers = Vec::new();
    for i in 0..count {
        let name_len = cur.u32("layer name length")? as usize;
        let name_bytes = cur.take(name_len, "layer name")?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| CoreError::Model(format!("layer {i} name is not UTF-8")))?
            .to_string();
        let dtype = cur.u8("dtype")?;
        let dtype_ok = match dtype {
            DTYPE_F32 | DTYPE_F16 => true,
            // Int8 sections need scales, which only version ≥ 2
            // entries carry.
            DTYPE_I8 => version >= WEIGHT_VERSION_Q8,
            _ => false,
        };
        if !dtype_ok {
            return Err(CoreError::Model(format!(
                "layer '{name}' has unknown dtype {dtype} for container version {version}"
            )));
        }
        let ndim = cur.u8("ndim")? as usize;
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(cur.u32("dim")? as usize);
        }
        let numel = dims
            .iter()
            .try_fold(1usize, |p, &d| p.checked_mul(d))
            .ok_or_else(|| CoreError::Model(format!("layer '{name}' dims overflow: {dims:?}")))?;
        let offset64 = cur.u64("section offset")?;
        let nbytes64 = cur.u64("section length")?;
        let crc = cur.u32("section CRC")?;
        let expected = numel
            .checked_mul(dtype_size(dtype))
            .ok_or_else(|| CoreError::Model(format!("layer '{name}' byte count overflows")))?;
        if nbytes64 != expected as u64 {
            return Err(CoreError::Model(format!(
                "layer '{name}' section length {nbytes64} does not match shape {dims:?} \
                 ({expected} bytes expected)"
            )));
        }
        if offset64 % SECTION_ALIGN as u64 != 0 {
            return Err(CoreError::Model(format!(
                "layer '{name}' section offset {offset64} is not {SECTION_ALIGN}-byte aligned"
            )));
        }
        let end = offset64
            .checked_add(nbytes64)
            .ok_or_else(|| CoreError::Model(format!("layer '{name}' section range overflows")))?;
        if end > file_len as u64 {
            return Err(CoreError::Model(format!(
                "layer '{name}' section [{offset64}, {end}) runs past the {file_len}-byte \
                 container"
            )));
        }
        let shape = Shape(dims);
        let mut scales = Vec::new();
        if version >= WEIGHT_VERSION_Q8 {
            let count = cur.u32("scale count")? as usize;
            // The expected count is fixed by dtype and shape, so a
            // forged count is rejected before any allocation sized by
            // it.
            let expected_scales = if dtype == DTYPE_I8 {
                q8::scale_rows(&shape)
            } else {
                0
            };
            if count != expected_scales {
                return Err(CoreError::Model(format!(
                    "layer '{name}' carries {count} dequantization scales, shape {:?} \
                     needs {expected_scales}",
                    shape.dims()
                )));
            }
            let scale_bytes = cur.take(4 * count, "dequantization scales")?;
            scales = f32s_from_le(scale_bytes);
            if let Some(bad) = scales.iter().find(|s| !s.is_finite() || **s <= 0.0) {
                return Err(CoreError::Model(format!(
                    "layer '{name}' has a non-finite or non-positive dequantization scale \
                     ({bad}); the container is corrupt"
                )));
            }
        }
        layers.push(LayerEntry {
            name,
            dtype,
            shape,
            offset: offset64 as usize,
            nbytes: nbytes64 as usize,
            crc,
            scales,
        });
    }
    if cur.pos != dir.len() {
        return Err(CoreError::Model(format!(
            "weight directory has {} trailing bytes",
            dir.len() - cur.pos
        )));
    }
    Ok((header.config, layers))
}

// ---------------------------------------------------------------------
// Section handles: what the ParamStore slots hold
// ---------------------------------------------------------------------

/// A view of one layer's raw bytes inside the shared backing. The
/// section CRC is verified once, on first access; a mismatch panics
/// (callers wanting typed errors run [`WeightStore::validate_all`]
/// before first touch).
struct Section {
    backing: Arc<Backing>,
    offset: usize,
    len: usize,
    crc: u32,
    name: String,
    checked: OnceLock<()>,
}

impl Section {
    fn bytes(&self) -> &[u8] {
        self.checked.get_or_init(|| {
            let b = &self.backing.bytes()[self.offset..self.offset + self.len];
            let got = crc32(b);
            assert_eq!(
                got, self.crc,
                "weight section '{}' failed its CRC on first touch; the container is corrupt",
                self.name
            );
        });
        &self.backing.bytes()[self.offset..self.offset + self.len]
    }
}

/// f16 section: the store widens it per use; resident cost stays at
/// the mapped 2 bytes/element.
struct F16Section(Section);

impl F16Slice for F16Section {
    fn bytes(&self) -> &[u8] {
        self.0.bytes()
    }

    fn byte_len(&self) -> usize {
        self.0.len
    }
}

/// f32 section: materialized into a dense tensor on first touch.
struct F32Section {
    sec: Section,
    shape: Shape,
}

impl LazySource for F32Section {
    fn load(&self) -> Tensor {
        Tensor::from_vec(f32s_from_le(self.sec.bytes()), self.shape.clone())
    }
}

/// int8 section: the mapped quantized payload stays resident at 1
/// byte per element; the scales (parsed out of the CRC-protected
/// directory) ride alongside. The store dequantizes per use, or
/// streams the section through the dequantizing GEMM without ever
/// widening it whole.
struct Q8Section {
    sec: Section,
    scales: Vec<f32>,
}

impl Q8Slice for Q8Section {
    fn bytes(&self) -> &[u8] {
        self.sec.bytes()
    }

    fn scales(&self) -> &[f32] {
        &self.scales
    }

    fn byte_len(&self) -> usize {
        self.sec.len
    }
}

// ---------------------------------------------------------------------
// Model-level helpers
// ---------------------------------------------------------------------

/// Narrows every parameter of an in-memory model to f16 storage
/// (round-to-nearest-even), regardless of how the model was loaded.
/// Inference-only from then on: training accessors panic.
pub fn narrow_to_f16(model: &mut SpectraGan) {
    let ids: Vec<_> = model.store().ids().collect();
    for id in ids {
        let bytes = narrow_slice_le(model.store().weight(id).data());
        model.store_mut().demote_to_half(id, Arc::new(bytes));
    }
}

/// Quantizes every matrix/kernel parameter (`ndim ≥ 2`) of an
/// in-memory model to symmetric-int8 storage, the same policy as an
/// int8 container export (vector parameters stay f32). Inference-only
/// from then on: training accessors panic on the quantized slots.
/// Produces bit-identical generation to loading an int8 container
/// exported from the same model.
pub fn narrow_to_int8(model: &mut SpectraGan) {
    let ids: Vec<_> = model.store().ids().collect();
    for id in ids {
        if model.store().shape(id).ndim() < 2 {
            continue;
        }
        let q = {
            let w = model.store().weight(id);
            q8::quantize_tensor(w.data(), w.shape())
        };
        model.store_mut().demote_to_int8(
            id,
            Arc::new(Q8Buf {
                data: q.data,
                scales: q.scales,
            }),
        );
    }
}

/// Loads a model file of either format, sniffed by magic: `SGWT`
/// containers open via [`WeightStore`], anything else parses as the
/// JSON model format.
pub fn load_model_auto(path: impl AsRef<Path>) -> Result<SpectraGan, CoreError> {
    let path = path.as_ref();
    if is_weight_container(path)? {
        WeightStore::open(path)?.load_model()
    } else {
        let json = std::fs::read_to_string(path).map_err(|e| CoreError::io(path, e))?;
        SpectraGan::from_model_json(&json)
    }
}

/// Whether the file at `path` starts with the `SGWT` magic.
pub fn is_weight_container(path: impl AsRef<Path>) -> Result<bool, CoreError> {
    let path = path.as_ref();
    let mut file = File::open(path).map_err(|e| CoreError::io(path, e))?;
    let mut magic = [0u8; 4];
    match file.read_exact(&mut magic) {
        Ok(()) => Ok(&magic == WEIGHT_MAGIC),
        // Shorter than 4 bytes cannot be a container (nor valid JSON,
        // but let the JSON parser produce that error).
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(CoreError::io(path, e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn tiny_config() -> SpectraGanConfig {
        SpectraGanConfig::tiny()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("spectragan-weights-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn f32_roundtrip_is_bit_identical() {
        let model = SpectraGan::new(tiny_config(), 7);
        let path = tmp("roundtrip.sgwt");
        save_weights(&model, &path, Precision::F32).unwrap();

        let store = WeightStore::open(&path).unwrap();
        store.validate_all().unwrap();
        assert_eq!(store.precision(), Precision::F32);
        let loaded = store.load_model().unwrap();

        assert_eq!(model.store().len(), loaded.store().len());
        for ((_, name, a), (_, _, b)) in model.store().iter().zip(loaded.store().iter()) {
            assert_eq!(a.shape(), b.shape(), "shape of '{name}'");
            for (x, y) in a.data().iter().zip(b.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "bits of '{name}'");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn f16_halves_resident_weight_bytes() {
        let model = SpectraGan::new(tiny_config(), 7);
        let f32_resident = model.store().resident_weight_bytes();

        let path = tmp("half.sgwt");
        save_weights(&model, &path, Precision::F16).unwrap();
        let store = WeightStore::open(&path).unwrap();
        assert_eq!(store.precision(), Precision::F16);
        let loaded = store.load_model().unwrap();
        assert!(loaded.store().has_half_storage());
        assert_eq!(loaded.store().resident_weight_bytes() * 2, f32_resident);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sections_are_lazy_until_first_touch() {
        let model = SpectraGan::new(tiny_config(), 7);
        let path = tmp("lazy.sgwt");
        save_weights(&model, &path, Precision::F32).unwrap();
        let loaded = WeightStore::open(&path).unwrap().load_model().unwrap();
        // Nothing materialized yet.
        assert_eq!(loaded.store().resident_weight_bytes(), 0);
        // Touch one parameter: only it becomes resident.
        let first = loaded.store().ids().next().unwrap();
        let t = loaded.store().get(first);
        assert_eq!(loaded.store().resident_weight_bytes(), 4 * t.numel());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn forged_directory_length_is_rejected_before_allocation() {
        let model = SpectraGan::new(tiny_config(), 7);
        let mut bytes = encode_weights(&model, Precision::F32);
        bytes[6..14].copy_from_slice(&(1u64 << 60).to_le_bytes());
        let path = tmp("forged.sgwt");
        std::fs::write(&path, &bytes).unwrap();
        let err = WeightStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("cap"), "unexpected error: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_directory_and_sections_are_typed_errors() {
        let model = SpectraGan::new(tiny_config(), 7);
        let clean = encode_weights(&model, Precision::F32);

        // Flip a directory byte: caught at open by the directory CRC.
        let mut bad_dir = clean.clone();
        bad_dir[WEIGHT_HEADER + 2] ^= 0x40;
        let path = tmp("baddir.sgwt");
        std::fs::write(&path, &bad_dir).unwrap();
        assert!(WeightStore::open(&path)
            .unwrap_err()
            .to_string()
            .contains("CRC"));

        // Flip the last payload byte: open succeeds (lazy sections),
        // validate_all reports the layer by name.
        let mut bad_sec = clean.clone();
        let last = bad_sec.len() - 1;
        bad_sec[last] ^= 0x01;
        std::fs::write(&path, &bad_sec).unwrap();
        let store = WeightStore::open(&path).unwrap();
        assert!(store
            .validate_all()
            .unwrap_err()
            .to_string()
            .contains("failed its CRC"));

        // Truncation behind the directory is caught structurally.
        let truncated = &clean[..clean.len() - 8];
        std::fs::write(&path, truncated).unwrap();
        assert!(WeightStore::open(&path)
            .unwrap_err()
            .to_string()
            .contains("runs past"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_and_auto_detection() {
        let model = SpectraGan::new(tiny_config(), 7);
        let path = tmp("auto.json");
        std::fs::write(&path, model.to_model_json()).unwrap();
        assert!(!is_weight_container(&path).unwrap());
        let loaded = load_model_auto(&path).unwrap();
        assert_eq!(loaded.store().len(), model.store().len());

        let sgwt = tmp("auto.sgwt");
        save_weights(&model, &sgwt, Precision::F32).unwrap();
        assert!(is_weight_container(&sgwt).unwrap());
        assert!(load_model_auto(&sgwt).is_ok());
        assert!(WeightStore::open(&path)
            .unwrap_err()
            .to_string()
            .contains("magic"));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sgwt).ok();
    }

    #[test]
    fn int8_roundtrip_shrinks_resident_bytes_at_least_3_5x() {
        // The paper-scale config, not `tiny()`: the reduction floor is
        // a statement about real models, where matrices dominate and
        // the f32 biases kept inside int8 containers are noise. The
        // deliberately narrow tiny config sits just below 3.5x.
        let model = SpectraGan::new(SpectraGanConfig::default_hourly(), 7);
        let f32_resident = model.store().resident_weight_bytes();

        let path = tmp("int8.sgwt");
        save_weights(&model, &path, Precision::Int8).unwrap();
        let store = WeightStore::open(&path).unwrap();
        store.validate_all().unwrap();
        assert_eq!(store.precision(), Precision::Int8);
        let loaded = store.load_model().unwrap();
        assert!(loaded.store().has_int8_storage());
        // Touch everything so lazy f32 bias sections are counted too.
        for id in loaded.store().ids().collect::<Vec<_>>() {
            let w = loaded.store().weight(id);
            assert!(w.data().iter().all(|v| v.is_finite()));
        }
        let resident = loaded.store().resident_weight_bytes();
        let reduction = f32_resident as f64 / resident as f64;
        assert!(
            reduction >= 3.5,
            "int8 resident reduction {reduction:.2}x below gate (f32 {f32_resident}, \
             int8 {resident})"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn container_versions_are_1_for_float_and_2_for_int8() {
        let model = SpectraGan::new(tiny_config(), 7);
        for (precision, version) in [
            (Precision::F32, WEIGHT_VERSION),
            (Precision::F16, WEIGHT_VERSION),
            (Precision::Int8, WEIGHT_VERSION_Q8),
        ] {
            let bytes = encode_weights(&model, precision);
            let got = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
            assert_eq!(got, version, "{} container version", precision.name());
        }
    }

    /// Walks an int8 container's directory and returns the absolute
    /// offsets of the first DTYPE_I8 entry's scale-count field and of
    /// its first scale.
    fn first_int8_scale_offsets(bytes: &[u8]) -> (usize, usize) {
        let dir_len = u64::from_le_bytes(bytes[6..14].try_into().unwrap()) as usize;
        let d = &bytes[WEIGHT_HEADER..WEIGHT_HEADER + dir_len];
        let rd = |p: usize| u32::from_le_bytes(d[p..p + 4].try_into().unwrap()) as usize;
        let mut pos = 0usize;
        pos += 4 + rd(pos); // config
        let n_layers = rd(pos);
        pos += 4;
        for _ in 0..n_layers {
            pos += 4 + rd(pos); // name
            let dtype = d[pos];
            let ndim = d[pos + 1] as usize;
            pos += 2 + 4 * ndim + 8 + 8 + 4;
            let count = rd(pos);
            if dtype == DTYPE_I8 && count > 0 {
                return (WEIGHT_HEADER + pos, WEIGHT_HEADER + pos + 4);
            }
            pos += 4 + 4 * count;
        }
        panic!("int8 container has no scaled entry");
    }

    fn reseal_directory(bytes: &mut [u8]) {
        let dir_len = u64::from_le_bytes(bytes[6..14].try_into().unwrap()) as usize;
        let crc = crc32(&bytes[WEIGHT_HEADER..WEIGHT_HEADER + dir_len]);
        bytes[14..18].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn non_finite_scale_is_a_typed_load_error() {
        let model = SpectraGan::new(tiny_config(), 7);
        let clean = encode_weights(&model, Precision::Int8);
        let (_, scale_at) = first_int8_scale_offsets(&clean);
        let path = tmp("nanscale.sgwt");

        for bad in [f32::NAN, f32::NEG_INFINITY, 0.0, -1.0] {
            let mut forged = clean.clone();
            forged[scale_at..scale_at + 4].copy_from_slice(&bad.to_le_bytes());
            reseal_directory(&mut forged);
            std::fs::write(&path, &forged).unwrap();
            let err = WeightStore::open(&path).unwrap_err();
            assert!(
                err.to_string().contains("non-finite or non-positive"),
                "scale {bad}: unexpected error: {err}"
            );
        }

        // Without resealing, the blind flip is already caught by the
        // directory CRC.
        let mut flipped = clean.clone();
        flipped[scale_at] ^= 0x80;
        std::fs::write(&path, &flipped).unwrap();
        assert!(WeightStore::open(&path)
            .unwrap_err()
            .to_string()
            .contains("CRC"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn int8_container_truncation_is_always_a_typed_error() {
        let model = SpectraGan::new(tiny_config(), 7);
        let clean = encode_weights(&model, Precision::Int8);
        let path = tmp("trunc-int8.sgwt");
        // Every prefix through the header and directory (where the
        // scale fields live), then sampled prefixes through the
        // sections — all must fail typed, never panic.
        let dir_len = u64::from_le_bytes(clean[6..14].try_into().unwrap()) as usize;
        let dense_end = (WEIGHT_HEADER + dir_len).min(clean.len());
        let cuts = (0..dense_end).chain((dense_end..clean.len()).step_by(97));
        for cut in cuts {
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(
                WeightStore::open(&path).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
        std::fs::write(&path, &clean).unwrap();
        WeightStore::open(&path).unwrap().validate_all().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn forged_scale_count_is_rejected_before_allocation() {
        let model = SpectraGan::new(tiny_config(), 7);
        let mut forged = encode_weights(&model, Precision::Int8);
        let (count_at, _) = first_int8_scale_offsets(&forged);
        forged[count_at..count_at + 4].copy_from_slice(&(1u32 << 30).to_le_bytes());
        reseal_directory(&mut forged);
        let path = tmp("scalecount.sgwt");
        std::fs::write(&path, &forged).unwrap();
        let err = WeightStore::open(&path).unwrap_err();
        assert!(
            err.to_string().contains("dequantization scales"),
            "unexpected error: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn narrow_in_memory_matches_container_int8() {
        let mut a = SpectraGan::new(tiny_config(), 7);
        let path = tmp("narrow-int8.sgwt");
        save_weights(&a, &path, Precision::Int8).unwrap();
        let b = WeightStore::open(&path).unwrap().load_model().unwrap();
        narrow_to_int8(&mut a);
        assert!(a.store().has_int8_storage());
        for id in a.store().ids().collect::<Vec<_>>() {
            let wa = a.store().weight(id);
            let wb = b.store().weight(id);
            for (x, y) in wa.data().iter().zip(wb.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn narrow_in_memory_matches_container_f16() {
        let mut a = SpectraGan::new(tiny_config(), 7);
        let path = tmp("narrow.sgwt");
        save_weights(&a, &path, Precision::F16).unwrap();
        let b = WeightStore::open(&path).unwrap().load_model().unwrap();
        narrow_to_f16(&mut a);
        for id in a.store().ids().collect::<Vec<_>>() {
            let wa = a.store().weight(id);
            let wb = b.store().weight(id);
            for (x, y) in wa.data().iter().zip(wb.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
