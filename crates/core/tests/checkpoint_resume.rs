//! The crash-safe training contract, end to end at the library level:
//!
//! * **Bit-identical restarts** — training N steps uninterrupted and
//!   training k < N steps, "dying", and resuming from the run directory
//!   produce byte-for-byte identical weights, for every kill point and
//!   across thread counts (the per-step `(seed, step, lane)` RNG plus
//!   the deterministic pool make this exact, not approximate).
//! * **Corruption fallback** — a damaged newest snapshot is skipped
//!   with a reason and the previous one resumes, still bit-identically.
//! * **Divergence guard** — NaN weights or a tiny gradient-norm budget
//!   trip the guard, log events, and fail with a typed error after the
//!   RNG re-rolls are exhausted; healthy runs log zero events.

use spectragan_core::{
    checkpoint, CoreError, SpectraGan, SpectraGanConfig, TrainConfig, TrainOptions,
};
use spectragan_geo::City;
use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};
use spectragan_tensor::pool;
use std::path::PathBuf;

/// `pool::set_threads` is process-global; serialize tests that sweep it.
static POOL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

const STEPS: usize = 6;

fn tiny_city(seed: u64) -> City {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.36,
    };
    generate_city(
        &CityConfig {
            name: format!("CK{seed}"),
            height: 17,
            width: 17,
            seed,
        },
        &ds,
    )
}

fn tc() -> TrainConfig {
    TrainConfig {
        steps: STEPS,
        batch_patches: 2,
        lr: 3e-3,
        seed: 11,
    }
}

fn weight_bits(model: &SpectraGan) -> Vec<u32> {
    model
        .store()
        .iter()
        .flat_map(|(_, _, t)| t.data().iter().map(|v| v.to_bits()))
        .collect()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("spectragan_ckpt_resume")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Trains `steps` steps into `run_dir` (checkpoint every 2), starting
/// fresh, and returns nothing — the state lives in the directory.
fn run_until(cities: &[City], run_dir: &std::path::Path, steps: usize) {
    let mut model = SpectraGan::new(SpectraGanConfig::tiny(), 0);
    let mut t = tc();
    t.steps = steps;
    model
        .train_with(
            cities,
            &t,
            &TrainOptions {
                run_dir: Some(run_dir),
                checkpoint_every: 2,
                ..TrainOptions::default()
            },
        )
        .unwrap();
}

/// Resumes from `run_dir`'s newest checkpoint and trains to [`STEPS`];
/// returns the final weight bits.
fn resume_to_end(cities: &[City], run_dir: &std::path::Path) -> Vec<u32> {
    let found = checkpoint::latest(run_dir).unwrap().expect("a checkpoint");
    let mut model = SpectraGan::from_checkpoint(&found.checkpoint).unwrap();
    model
        .train_with(
            cities,
            &tc(),
            &TrainOptions {
                run_dir: Some(run_dir),
                checkpoint_every: 2,
                resume_from: Some(&found.checkpoint),
                ..TrainOptions::default()
            },
        )
        .unwrap();
    weight_bits(&model)
}

#[test]
fn resume_is_bit_identical_for_every_kill_point_and_thread_count() {
    let cities = [tiny_city(3)];
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    pool::set_threads(Some(1));
    let mut reference = SpectraGan::new(SpectraGanConfig::tiny(), 0);
    let ref_stats = reference.train_with(&cities, &tc(), &TrainOptions::default());
    let reference = weight_bits(&reference);
    assert_eq!(ref_stats.unwrap().d_loss.len(), STEPS);

    // Kill after k steps (k = 1 lands before the first periodic
    // checkpoint would be due; odd k resumes from an earlier snapshot).
    for k in [1, 2, 3, 5] {
        for threads in [1, 4] {
            pool::set_threads(Some(threads));
            let dir = tmp_dir(&format!("kill{k}_t{threads}"));
            run_until(&cities, &dir, k);
            let resumed = resume_to_end(&cities, &dir);
            pool::set_threads(None);
            assert_eq!(
                resumed, reference,
                "resume after k={k} at {threads} threads is not bit-identical"
            );
        }
    }
}

#[test]
fn corrupt_newest_snapshot_falls_back_and_stays_bit_identical() {
    let cities = [tiny_city(3)];
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pool::set_threads(Some(1));

    let mut reference = SpectraGan::new(SpectraGanConfig::tiny(), 0);
    reference
        .train_with(&cities, &tc(), &TrainOptions::default())
        .unwrap();
    let reference = weight_bits(&reference);

    // 5 steps with checkpoint_every = 2 leaves snapshots {4, 5}
    // (RETAIN = 2). Damage the newest; resume must use step 4.
    let dir = tmp_dir("corrupt");
    run_until(&cities, &dir, 5);
    let newest = dir.join(checkpoint::checkpoint_file(5));
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&newest, &bytes).unwrap();

    let found = checkpoint::latest(&dir).unwrap().unwrap();
    assert_eq!(
        found.checkpoint.step, 4,
        "must fall back past the corrupt file"
    );
    assert_eq!(found.skipped.len(), 1);
    assert!(found.skipped[0].0.ends_with("ckpt_00000005.ckpt"));

    let resumed = resume_to_end(&cities, &dir);
    pool::set_threads(None);
    assert_eq!(resumed, reference, "fallback resume is not bit-identical");
}

#[test]
fn nan_weights_trip_the_divergence_guard() {
    let cities = [tiny_city(3)];
    let dir = tmp_dir("nan");
    run_until(&cities, &dir, 2);

    let mut found = checkpoint::latest(&dir).unwrap().unwrap();
    let poison_id = found.checkpoint.store.iter().next().unwrap().0;
    found.checkpoint.store.get_mut(poison_id).data_mut()[0] = f32::NAN;

    let mut model = SpectraGan::from_checkpoint(&found.checkpoint).unwrap();
    let err = model
        .train_with(
            &cities,
            &tc(),
            &TrainOptions {
                resume_from: Some(&found.checkpoint),
                ..TrainOptions::default()
            },
        )
        .expect_err("NaN weights must diverge");
    match err {
        CoreError::Diverged { step, retries, .. } => {
            assert_eq!(step, 2, "diverges at the first resumed step");
            assert_eq!(retries, TrainOptions::default().guard_max_retries);
        }
        other => panic!("expected Diverged, got: {other}"),
    }
}

#[test]
fn tiny_gradient_budget_diverges_and_logs_events() {
    let cities = [tiny_city(3)];
    let dir = tmp_dir("guard");
    let mut model = SpectraGan::new(SpectraGanConfig::tiny(), 0);
    let opts = TrainOptions {
        run_dir: Some(&dir),
        guard_grad_norm: 1e-12,
        guard_max_retries: 2,
        ..TrainOptions::default()
    };
    let err = model.train_with(&cities, &tc(), &opts).unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::Diverged {
                step: 0,
                retries: 2,
                ..
            }
        ),
        "{err}"
    );

    // One log line per attempted lane, each carrying the guard reason.
    let log = checkpoint::read_log(&dir).unwrap();
    assert_eq!(log.len(), 3, "one event per lane");
    assert!(log.iter().all(|r| r.step == 0));
    assert!(log
        .iter()
        .all(|r| r.event.as_deref().unwrap_or("").contains("grad norm")));
}

#[test]
fn healthy_run_logs_every_step_without_events() {
    let cities = [tiny_city(3)];
    let dir = tmp_dir("healthy");
    run_until(&cities, &dir, 3);
    let log = checkpoint::read_log(&dir).unwrap();
    assert_eq!(log.len(), 3);
    assert!(log.iter().all(|r| r.event.is_none()));
    assert_eq!(
        log.iter().map(|r| r.step).collect::<Vec<_>>(),
        vec![0, 1, 2]
    );
    assert!(log.iter().all(|r| r.d_loss.is_finite() && r.wall_ms >= 0.0));
    // Resuming truncates the log past the resume point and replays —
    // no duplicate step records afterwards.
    resume_to_end(&cities, &dir);
    let log = checkpoint::read_log(&dir).unwrap();
    assert_eq!(log.iter().filter(|r| r.step == 2).count(), 1);
    assert_eq!(log.len(), STEPS);
}

#[test]
fn bad_training_inputs_are_typed_errors() {
    let mut model = SpectraGan::new(SpectraGanConfig::tiny(), 0);
    let err = model.train(&[], &tc()).expect_err("empty cities");
    assert!(matches!(err, CoreError::NoTrainingData(_)), "{err}");

    let mut short = tiny_city(3);
    short.traffic = short.traffic.slice_time(0, 5);
    let err = model
        .train(std::slice::from_ref(&short), &tc())
        .expect_err("short series");
    match err {
        CoreError::SeriesTooShort { have, need, .. } => {
            assert_eq!(have, 5);
            assert_eq!(need, 24);
        }
        other => panic!("expected SeriesTooShort, got: {other}"),
    }
}

#[test]
fn resume_rejects_mismatched_configuration() {
    let cities = [tiny_city(3)];
    let dir = tmp_dir("mismatch");
    run_until(&cities, &dir, 2);
    let found = checkpoint::latest(&dir).unwrap().unwrap();
    let mut model = SpectraGan::from_checkpoint(&found.checkpoint).unwrap();
    let mut other_seed = tc();
    other_seed.seed += 1;
    let err = model
        .train_with(
            &cities,
            &other_seed,
            &TrainOptions {
                resume_from: Some(&found.checkpoint),
                ..TrainOptions::default()
            },
        )
        .expect_err("seed mismatch must be rejected");
    assert!(matches!(err, CoreError::Checkpoint(_)), "{err}");
}
