//! Golden bit-equality suite for the autodiff engine.
//!
//! The fixture under `tests/fixtures/` holds the exact weight bits of a
//! short training run recorded with the pre-refactor (boxed-closure)
//! tape, at 1 and at 4 pool threads. The typed-op engine must reproduce
//! those bits exactly — not approximately — because the checkpoint and
//! resume contracts from PR 1/2 are defined in terms of byte equality.
//!
//! Re-record (only when the *intended* numerics change, never to paper
//! over a regression) with:
//!
//! ```text
//! GOLDEN_RECORD=1 cargo test -p spectragan-core --test golden_bits
//! ```

use spectragan_core::{SpectraGan, SpectraGanConfig, TrainConfig};
use spectragan_geo::City;
use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};
use spectragan_tensor::{pool, set_backend, BackendKind};

/// `pool::set_threads` is process-global; serialize the two sweeps.
static POOL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

const STEPS: usize = 5;

fn fixture_path(threads: usize) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("golden_pr3_t{threads}.bits"))
}

fn tiny_city(seed: u64) -> City {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.36,
    };
    generate_city(
        &CityConfig {
            name: format!("G{seed}"),
            height: 17,
            width: 17,
            seed,
        },
        &ds,
    )
}

/// Trains the tiny model for [`STEPS`] steps and returns every weight
/// as its raw bit pattern, in deterministic store order.
fn trained_bits() -> Vec<u32> {
    let cities = [tiny_city(3), tiny_city(8)];
    let mut model = SpectraGan::new(SpectraGanConfig::tiny(), 0);
    let tc = TrainConfig {
        steps: STEPS,
        batch_patches: 2,
        lr: 3e-3,
        seed: 17,
    };
    model.train(&cities, &tc).expect("training failed");
    model
        .store()
        .iter()
        .flat_map(|(_, _, t)| t.data().iter().map(|v| v.to_bits()))
        .collect()
}

fn bits_to_text(bits: &[u32]) -> String {
    let mut s = String::with_capacity(bits.len() * 9);
    for b in bits {
        s.push_str(&format!("{b:08x}\n"));
    }
    s
}

fn text_to_bits(text: &str) -> Vec<u32> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| u32::from_str_radix(l.trim(), 16).expect("bad fixture line"))
        .collect()
}

fn check_or_record(threads: usize) {
    // The fixtures were recorded against the reference kernels; pin the
    // Scalar backend explicitly so this byte-equality contract holds
    // even when the suite runs under `SPECTRAGAN_BACKEND=simd`.
    set_backend(Some(BackendKind::Scalar));
    pool::set_threads(Some(threads));
    let bits = trained_bits();
    pool::set_threads(None);
    set_backend(None);
    let path = fixture_path(threads);
    if std::env::var("GOLDEN_RECORD").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, bits_to_text(&bits)).unwrap();
        eprintln!("recorded {} ({} weights)", path.display(), bits.len());
        return;
    }
    let fixture =
        text_to_bits(&std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing fixture {} ({e}); see module docs", path.display())
        }));
    assert_eq!(
        fixture.len(),
        bits.len(),
        "weight count changed vs fixture at {threads} threads"
    );
    let diverged: Vec<usize> = (0..bits.len()).filter(|&i| bits[i] != fixture[i]).collect();
    assert!(
        diverged.is_empty(),
        "{} of {} weights diverge from the pre-refactor engine at {threads} threads \
         (first at index {}: {:08x} vs {:08x})",
        diverged.len(),
        bits.len(),
        diverged[0],
        bits[diverged[0]],
        fixture[diverged[0]],
    );
}

#[test]
fn golden_bits_one_thread() {
    let _g = POOL_LOCK.lock().unwrap();
    check_or_record(1);
}

#[test]
fn golden_bits_four_threads() {
    let _g = POOL_LOCK.lock().unwrap();
    check_or_record(4);
}
