//! The observability layer's zero-interference contract, end to end:
//! turning spans/metrics/trace export on must not change a single bit
//! of training weights or generated traffic, at any thread count —
//! instrumentation reads the computation, never participates in it.
//!
//! Obs state and `pool::set_threads` are process-global, so every test
//! here holds `LOCK` (other integration-test binaries are separate
//! processes and cannot interfere).

use spectragan_core::{checkpoint, SpectraGan, SpectraGanConfig, TrainConfig, TrainOptions};
use spectragan_geo::City;
use spectragan_obs as obs;
use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};
use spectragan_tensor::pool;
use std::path::PathBuf;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn tiny_city(seed: u64) -> City {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.36,
    };
    generate_city(
        &CityConfig {
            name: format!("OBS{seed}"),
            height: 17,
            width: 17,
            seed,
        },
        &ds,
    )
}

fn tc() -> TrainConfig {
    TrainConfig {
        steps: 4,
        batch_patches: 2,
        lr: 3e-3,
        seed: 11,
    }
}

fn weight_bits(model: &SpectraGan) -> Vec<u32> {
    model
        .store()
        .iter()
        .flat_map(|(_, _, t)| t.data().iter().map(|v| v.to_bits()))
        .collect()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("spectragan_obs_determinism")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Training with the full export pipeline on (spans → train_log.jsonl,
/// trace file, metrics.prom) yields weights byte-identical to an
/// uninstrumented run, at 1 and 4 threads — and the exports themselves
/// are complete and well-formed.
#[test]
fn train_weights_are_bit_identical_with_obs_on() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cities = [tiny_city(3)];

    for threads in [1usize, 4] {
        pool::set_threads(Some(threads));

        let mut reference = SpectraGan::new(SpectraGanConfig::tiny(), 0);
        reference
            .train_with(&cities, &tc(), &TrainOptions::default())
            .unwrap();
        let reference = weight_bits(&reference);

        let dir = tmp_dir(&format!("train_t{threads}"));
        let trace_path = dir.join("trace.json");
        let prom_path = dir.join("snapshot.prom");
        let mut instrumented = SpectraGan::new(SpectraGanConfig::tiny(), 0);
        instrumented
            .train_with(
                &cities,
                &tc(),
                &TrainOptions {
                    run_dir: Some(&dir),
                    checkpoint_every: 2,
                    trace: Some(trace_path.as_path()),
                    metrics_snapshot: Some(prom_path.as_path()),
                    ..TrainOptions::default()
                },
            )
            .unwrap();
        pool::set_threads(None);
        assert_eq!(
            weight_bits(&instrumented),
            reference,
            "obs-on training diverged from obs-off at {threads} threads"
        );
        assert!(
            !obs::enabled(),
            "ObsGuard must restore the disabled state after training"
        );

        // Trace file parses and holds the step span tree.
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let doc: serde::Value = serde_json::from_str(&trace).expect("trace must parse");
        let events = match doc.get("traceEvents") {
            Some(serde::Value::Arr(items)) => items,
            other => panic!("traceEvents missing: {other:?}"),
        };
        assert!(!events.is_empty(), "trace carries no events");
        for name in ["train_step", "forward", "backward", "optimizer"] {
            assert!(
                events
                    .iter()
                    .any(|e| e.get("name") == Some(&serde::Value::Str(name.into()))),
                "trace is missing {name} spans"
            );
        }

        // Both Prometheus snapshots exist; the run-dir copy is the
        // same content as the --metrics-snapshot copy.
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        let run_dir_prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert_eq!(prom, run_dir_prom);
        assert!(prom.contains("spectragan_optim_steps_total"));

        // Every per-step log record carries its aggregated span tree.
        let log = checkpoint::read_log(&dir).unwrap();
        assert_eq!(log.len(), tc().steps);
        for r in &log {
            let spans = r.spans.as_ref().expect("obs-on records must have spans");
            assert!(
                spans.iter().any(|s| s.path == "train_step/forward"),
                "step {} spans lack train_step/forward: {spans:?}",
                r.step
            );
            assert!(spans.iter().all(|s| s.calls > 0));
        }
    }
}

/// An uninstrumented run writes log records without span data — the
/// field stays absent rather than empty, so the log schema is
/// backward-compatible.
#[test]
fn obs_off_log_records_have_no_spans() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cities = [tiny_city(3)];
    let dir = tmp_dir("plain");
    pool::set_threads(Some(1));
    let mut model = SpectraGan::new(SpectraGanConfig::tiny(), 0);
    model
        .train_with(
            &cities,
            &tc(),
            &TrainOptions {
                run_dir: Some(&dir),
                ..TrainOptions::default()
            },
        )
        .unwrap();
    pool::set_threads(None);
    let log = checkpoint::read_log(&dir).unwrap();
    assert_eq!(log.len(), tc().steps);
    assert!(log.iter().all(|r| r.spans.is_none()));
    assert!(
        !dir.join("metrics.prom").exists(),
        "obs-off runs must not write metrics.prom"
    );
}

/// Generation under a live [`obs::ObsGuard`] emits a full span tree
/// yet produces traffic byte-identical to the unobserved run, at 1
/// and 4 threads.
#[test]
fn generation_is_bit_identical_with_obs_on() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let model = SpectraGan::new(SpectraGanConfig::tiny(), 2);
    let c = tiny_city(5);

    for threads in [1usize, 4] {
        pool::set_threads(Some(threads));
        let reference = model.generate(&c.context, 30, 9);

        let guard = obs::ObsGuard::new(true);
        obs::drain_events();
        let observed = model.generate(&c.context, 30, 9);
        let events = obs::drain_events();
        drop(guard);
        pool::set_threads(None);

        assert_eq!(
            observed.data(),
            reference.data(),
            "obs-on generation diverged at {threads} threads"
        );
        for name in ["generate", "patch_chunk", "sew_fold", "sew_finish"] {
            assert!(
                events.iter().any(|e| e.name == name),
                "generation span tree lacks {name} at {threads} threads"
            );
        }
        // Chunk spans land on worker threads yet all arrive: one per
        // patch chunk, linked under the run root.
        let root = events.iter().find(|e| e.name == "generate").unwrap();
        assert!(events
            .iter()
            .filter(|e| e.name == "patch_chunk")
            .all(|e| e.parent == root.id || e.parent == 0));
    }
}
