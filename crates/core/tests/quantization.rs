//! Property tests for the symmetric absmax int8 quantizer — the gate
//! the whole int8 weight path hangs off. Four contracts:
//!
//! 1. round-trip error is ≤ `scale/2` per element (up to a float ulp);
//! 2. each row's absmax element quantizes to ±127 exactly;
//! 3. all-zero rows get scale `1.0`, never `0/0 = NaN`, and round-trip
//!    to exact zeros;
//! 4. quantize→dequantize is deterministic across thread counts and
//!    backends — bit-identical payloads, scales and widened floats.

use proptest::prelude::*;
use spectragan_tensor::backend::scalar::ScalarBackend;
use spectragan_tensor::backend::simd::SimdBackend;
use spectragan_tensor::backend::Backend;
use spectragan_tensor::{pool, q8, set_backend, BackendKind, Shape};

/// `set_backend`/`set_threads` are process-global; serialize the tests
/// that flip them.
static GLOBAL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Uniform draws in (-10, 10) made weight-like: exact zeros and tiny
/// and large magnitudes mixed in deterministically.
fn weight_vals(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, len..len + 1)
}

fn mix_magnitudes(data: &mut [f32]) {
    for (i, v) in data.iter_mut().enumerate() {
        match i % 7 {
            0 => *v = 0.0,
            1 => *v *= 1e-4,
            2 => *v *= 1e5,
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-trip error bound: `|v − q·s| ≤ s/2` elementwise (clamping
    /// never bites because `s = absmax/127` covers the row's range).
    #[test]
    fn roundtrip_error_is_at_most_half_a_scale(
        rows in 1usize..6,
        row_len in 1usize..40,
        data in weight_vals(200),
    ) {
        let mut data = data;
        mix_magnitudes(&mut data);
        let row_len = row_len.min(200 / rows);
        let data = &data[..rows * row_len];
        let q = q8::quantize_rows(data, rows);
        let mut back = vec![0f32; data.len()];
        q8::dequantize_rows(&q, &mut back);
        for (i, (&v, &d)) in data.iter().zip(&back).enumerate() {
            let s = q.scales[i / row_len];
            prop_assert!(
                (v - d).abs() <= 0.5 * s * (1.0 + 1e-5),
                "element {i}: {v} -> {d}, scale {s}"
            );
        }
    }

    /// The row's largest-magnitude element maps to ±127 exactly, and no
    /// quantized value escapes [-127, 127] (−128 is never produced).
    #[test]
    fn absmax_maps_to_plus_minus_127(data in weight_vals(64)) {
        let mut data = data;
        mix_magnitudes(&mut data);
        prop_assume!(data.iter().any(|v| *v != 0.0));
        let q = q8::quantize_rows(&data, 1);
        let (imax, &vmax) = data
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.abs().total_cmp(&b.abs()))
            .unwrap();
        let qmax = q.data[imax] as i8;
        prop_assert_eq!(qmax.abs(), 127, "absmax {} quantized to {}", vmax, qmax);
        prop_assert_eq!(qmax.signum() as f32, vmax.signum());
        prop_assert!(q.data.iter().all(|&b| (b as i8) >= -127));
    }

    /// All-zero rows take scale 1.0 (not NaN) and dequantize to exact
    /// zeros, independently of what the other rows hold.
    #[test]
    fn zero_rows_never_produce_nan(data in weight_vals(30), zero_row in 0usize..3) {
        let mut data = data;
        mix_magnitudes(&mut data);
        data[zero_row * 10..(zero_row + 1) * 10].fill(0.0);
        let q = q8::quantize_rows(&data, 3);
        prop_assert_eq!(q.scales[zero_row], 1.0);
        prop_assert!(q.scales.iter().all(|s| s.is_finite() && *s > 0.0));
        let mut back = vec![f32::NAN; 30];
        q8::dequantize_rows(&q, &mut back);
        prop_assert!(back[zero_row * 10..(zero_row + 1) * 10].iter().all(|v| *v == 0.0));
        prop_assert!(back.iter().all(|v| v.is_finite()));
    }

    /// Quantization itself is a pure function (no backend, no threads),
    /// and every widening path — the q8 reference, the scalar backend
    /// and the simd backend — agrees bit-for-bit at any thread count.
    #[test]
    fn quantize_dequantize_is_deterministic_across_threads_and_backends(
        rows in 1usize..5,
        data in weight_vals(60),
    ) {
        let _g = lock();
        let mut data = data;
        mix_magnitudes(&mut data);
        let data = &data[..60 / rows * rows];
        let baseline = q8::quantize_rows(data, rows);
        let mut reference = vec![0f32; data.len()];
        q8::dequantize_rows(&baseline, &mut reference);
        let ref_bits: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();

        for threads in [1usize, 2, 7] {
            pool::set_threads(Some(threads));
            for kind in [BackendKind::Scalar, BackendKind::Simd] {
                set_backend(Some(kind));
                let q = q8::quantize_rows(data, rows);
                prop_assert_eq!(&q, &baseline, "quantize under {:?} @ {}", kind, threads);
                let mut wide = vec![0f32; data.len()];
                match kind {
                    BackendKind::Scalar => {
                        ScalarBackend.widen_i8_scaled(&q.data, &q.scales, &mut wide)
                    }
                    BackendKind::Simd => {
                        SimdBackend.widen_i8_scaled(&q.data, &q.scales, &mut wide)
                    }
                }
                let bits: Vec<u32> = wide.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(&bits, &ref_bits, "widen under {:?} @ {}", kind, threads);
            }
        }
        set_backend(None);
        pool::set_threads(None);
    }
}

/// The canonical scale granularity: one scale per leading-dim row for
/// matrices and conv kernels, one per tensor for vectors and scalars.
#[test]
fn tensor_granularity_matches_scale_rows() {
    for dims in [vec![6, 4], vec![3, 2, 2, 2], vec![24], vec![]] {
        let shape = Shape(dims.clone());
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|i| i as f32 - 3.0).collect();
        let q = q8::quantize_tensor(&data, &shape);
        assert_eq!(
            q.scales.len(),
            q8::scale_rows(&shape),
            "scale count for shape {dims:?}"
        );
        assert_eq!(q.data.len(), n);
    }
}
