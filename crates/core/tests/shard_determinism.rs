//! The sharded-training equivalence contract, end to end:
//!
//! * `--shards N` (forked worker processes, gradient frames over
//!   pipes) produces **bit-identical** final weights to `--shards 1`
//!   (all in process) — at any shard count, any thread count, under
//!   either kernel backend, and even against the pre-refactor golden
//!   fixture.
//! * Gradient accumulation folds deterministically: `K` micro-rounds
//!   give the same bits at any shard/thread count, and `K = 1` is the
//!   historical step exactly.
//! * A worker SIGKILLed mid-step is respawned from the coordinator's
//!   pre-apply state and the run still converges to the same bits,
//!   while `spectragan_shard_respawns_total` records the death.
//!
//! Forking in a test binary is only safe when nothing else runs
//! threads that might hold global locks at fork time, so every test
//! here holds `LOCK` (other integration-test binaries are separate
//! processes and cannot interfere).

#![cfg(unix)]

use spectragan_core::{
    checkpoint, SpectraGan, SpectraGanConfig, TrainConfig, TrainOptions, TrainStats,
};
use spectragan_geo::City;
use spectragan_obs as obs;
use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};
use spectragan_tensor::{pool, set_backend, BackendKind};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

const STEPS: usize = 5;

fn tiny_city(seed: u64) -> City {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.36,
    };
    generate_city(
        &CityConfig {
            name: format!("G{seed}"),
            height: 17,
            width: 17,
            seed,
        },
        &ds,
    )
}

fn tc() -> TrainConfig {
    TrainConfig {
        steps: STEPS,
        batch_patches: 2,
        lr: 3e-3,
        seed: 17,
    }
}

fn weight_bits(model: &SpectraGan) -> Vec<u32> {
    model
        .store()
        .iter()
        .flat_map(|(_, _, t)| t.data().iter().map(|v| v.to_bits()))
        .collect()
}

/// Trains the tiny model at `threads` pool threads with the given
/// option tweaks and returns `(weight bits, loss traces)`.
fn run(threads: usize, tweak: impl FnOnce(&mut TrainOptions)) -> (Vec<u32>, TrainStats) {
    pool::set_threads(Some(threads));
    let cities = [tiny_city(3), tiny_city(8)];
    let mut model = SpectraGan::new(SpectraGanConfig::tiny(), 0);
    let mut opts = TrainOptions::default();
    tweak(&mut opts);
    let stats = model.train_with(&cities, &tc(), &opts).expect("training");
    pool::set_threads(None);
    (weight_bits(&model), stats)
}

fn assert_same_bits(a: &[u32], b: &[u32], what: &str) {
    assert_eq!(a.len(), b.len(), "weight count differs: {what}");
    let diverged: Vec<usize> = (0..a.len()).filter(|&i| a[i] != b[i]).collect();
    assert!(
        diverged.is_empty(),
        "{} of {} weights diverge ({what}); first at index {}: {:08x} vs {:08x}",
        diverged.len(),
        a.len(),
        diverged[0],
        a[diverged[0]],
        b[diverged[0]],
    );
}

/// The tentpole property: the multiprocess reducer is bit-equal to the
/// in-process path at shards ∈ {1, 2, 4} × threads ∈ {1, 4}. Shards=1
/// goes through the full fork/pipe/frame machinery via the
/// `force_multiprocess` hook, so the seam itself — not just the N>1
/// topology — is covered.
#[test]
fn multiprocess_matches_local_bitwise_at_every_shard_and_thread_count() {
    let _g = LOCK.lock().unwrap();
    for threads in [1usize, 4] {
        let (local, local_stats) = run(threads, |_| {});
        for shards in [1usize, 2, 4] {
            let (sharded, sharded_stats) = run(threads, |o| {
                o.shards = shards;
                o.force_multiprocess = true;
            });
            assert_same_bits(
                &local,
                &sharded,
                &format!("shards={shards} threads={threads}"),
            );
            assert_eq!(
                local_stats.d_loss, sharded_stats.d_loss,
                "loss traces must match bitwise (shards={shards} threads={threads})"
            );
        }
    }
}

/// Sharded training under the SIMD backend is bit-equal to that
/// backend's own single-process run (the two backends legitimately
/// differ from each other; the shard seam must not add any difference).
#[test]
fn multiprocess_matches_local_under_simd_backend() {
    let _g = LOCK.lock().unwrap();
    set_backend(Some(BackendKind::Simd));
    let (local, _) = run(1, |_| {});
    let (sharded, _) = run(1, |o| o.shards = 2);
    set_backend(None);
    assert_same_bits(&local, &sharded, "simd shards=2");
}

/// A sharded scalar run reproduces the **pre-refactor** golden fixture:
/// lifting reduction out of process changed no arithmetic at all.
#[test]
fn sharded_run_matches_pre_refactor_golden_fixture() {
    let _g = LOCK.lock().unwrap();
    set_backend(Some(BackendKind::Scalar));
    let (sharded, _) = run(1, |o| o.shards = 2);
    set_backend(None);
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_pr3_t1.bits");
    let fixture: Vec<u32> = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e})", path.display()))
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| u32::from_str_radix(l.trim(), 16).expect("bad fixture line"))
        .collect();
    assert_same_bits(&fixture, &sharded, "golden fixture vs shards=2");
}

/// Gradient accumulation: deterministic, shard- and thread-invariant,
/// and a real change to the arithmetic (K=2 is not K=1).
#[test]
fn grad_accum_is_deterministic_and_shard_invariant() {
    let _g = LOCK.lock().unwrap();
    let (k2_t1, _) = run(1, |o| o.grad_accum = 2);
    let (k2_t4, _) = run(4, |o| o.grad_accum = 2);
    assert_same_bits(&k2_t1, &k2_t4, "grad_accum=2 threads 1 vs 4");
    let (k2_sharded, _) = run(1, |o| {
        o.grad_accum = 2;
        o.shards = 2;
    });
    assert_same_bits(&k2_t1, &k2_sharded, "grad_accum=2 local vs shards=2");
    let (k1, _) = run(1, |_| {});
    assert_ne!(
        k2_t1, k1,
        "grad_accum=2 must actually change the update (different minibatch average)"
    );
}

/// Resume across shard counts: a checkpoint written by a sharded run
/// continues bit-identically in a single-process run (and vice versa),
/// because sharding never changes the math.
#[test]
fn resume_across_shard_counts_is_bit_identical() {
    let _g = LOCK.lock().unwrap();
    let dir = std::env::temp_dir()
        .join("spectragan_shard_resume")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&dir);
    let (uninterrupted, _) = run(1, |_| {});

    // Phase 1: train the first 3 steps sharded, checkpointing.
    pool::set_threads(Some(1));
    let cities = [tiny_city(3), tiny_city(8)];
    let mut model = SpectraGan::new(SpectraGanConfig::tiny(), 0);
    let mut tc3 = tc();
    tc3.steps = 3;
    let opts = TrainOptions {
        run_dir: Some(&dir),
        checkpoint_every: 3,
        shards: 2,
        ..TrainOptions::default()
    };
    model.train_with(&cities, &tc3, &opts).expect("phase 1");
    let found = checkpoint::latest(&dir).expect("latest").expect("some");
    assert_eq!(found.checkpoint.step, 3);
    assert_eq!(found.checkpoint.shards, 2, "topology recorded");

    // Phase 2: resume single-process to the full step count.
    let mut resumed = SpectraGan::from_checkpoint(&found.checkpoint).expect("rebuild");
    let opts = TrainOptions {
        resume_from: Some(&found.checkpoint),
        ..TrainOptions::default()
    };
    resumed.train_with(&cities, &tc(), &opts).expect("phase 2");
    pool::set_threads(None);
    assert_same_bits(
        &uninterrupted,
        &weight_bits(&resumed),
        "sharded-then-resumed vs uninterrupted",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming under a different accumulation factor is refused — K is
/// part of the step arithmetic, unlike the shard count.
#[test]
fn resume_with_different_grad_accum_is_refused() {
    let _g = LOCK.lock().unwrap();
    let dir = std::env::temp_dir()
        .join("spectragan_shard_accum_refuse")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&dir);
    pool::set_threads(Some(1));
    let cities = [tiny_city(3)];
    let mut model = SpectraGan::new(SpectraGanConfig::tiny(), 0);
    let mut tc2 = tc();
    tc2.steps = 2;
    let opts = TrainOptions {
        run_dir: Some(&dir),
        grad_accum: 2,
        ..TrainOptions::default()
    };
    model.train_with(&cities, &tc2, &opts).expect("train");
    let found = checkpoint::latest(&dir).expect("latest").expect("some");
    assert_eq!(found.checkpoint.grad_accum, 2);
    let mut resumed = SpectraGan::from_checkpoint(&found.checkpoint).expect("rebuild");
    let opts = TrainOptions {
        resume_from: Some(&found.checkpoint),
        grad_accum: 1,
        ..TrainOptions::default()
    };
    let err = resumed
        .train_with(&cities, &tc(), &opts)
        .expect_err("must refuse");
    assert!(err.to_string().contains("grad_accum"), "{err}");
    pool::set_threads(None);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Worker-death robustness (the crash-recovery contract): SIGKILL a
/// shard worker mid-step; the coordinator respawns it from its
/// pre-apply state, the step retries cleanly, the final weights are
/// byte-equal to an undisturbed run, and the respawn is visible in
/// `spectragan_shard_respawns_total`.
#[test]
fn killed_worker_respawns_to_identical_weights() {
    let _g = LOCK.lock().unwrap();
    let (local, _) = run(1, |_| {});
    let before = obs::counter("spectragan_shard_respawns_total").get();
    let (survived, _) = run(1, |o| {
        o.shards = 2;
        o.kill_worker_at_step = Some(2);
        o.obs = true; // metrics record only while the obs layer is on
    });
    let after = obs::counter("spectragan_shard_respawns_total").get();
    assert_same_bits(&local, &survived, "after mid-step worker SIGKILL");
    assert!(
        after > before,
        "respawn counter must increment ({before} -> {after})"
    );
}
