//! Acceptance tests for streaming bounded-memory city generation.
//!
//! Two contracts: (1) the streamed chunk→fold pipeline is bit-identical
//! to the serial path at every thread count and batch size, including
//! non-multiple `t_out`; (2) peak patch memory is O(in-flight window) —
//! a large city stays under a bound the old all-patches path provably
//! exceeds.
//!
//! The memory assertion reads process-global arena counters, so the
//! tests in this binary are serialized with a mutex (other integration
//! test files run as separate processes and cannot interfere).

use spectragan_core::{SpectraGan, SpectraGanConfig, Variant};
use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};
use spectragan_tensor::pool;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn city(side: usize, seed: u64) -> spectragan_geo::City {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        // Unit scale so `side` is the real extent.
        size_scale: 1.0,
    };
    generate_city(
        &CityConfig {
            name: format!("S{side}"),
            height: side,
            width: side,
            seed,
        },
        &ds,
    )
}

/// Streamed generation is bit-identical across thread counts {1,2,4,8}
/// and gen-batch sizes, at a `t_out` that is a multiple of neither the
/// training length nor the batch size.
#[test]
fn streaming_is_bit_identical_across_threads_and_batches() {
    let _g = LOCK.lock().unwrap();
    let model = SpectraGan::new(SpectraGanConfig::tiny(), 2);
    let c = city(24, 5);
    pool::set_threads(Some(1));
    let reference = model.generate(&c.context, 30, 9);
    assert_eq!(reference.len_t(), 30);
    for threads in [2usize, 4, 8] {
        pool::set_threads(Some(threads));
        let got = model.generate(&c.context, 30, 9);
        assert_eq!(got.data(), reference.data(), "threads={threads}");
    }
    pool::set_threads(Some(4));
    for gen_batch in [1usize, 5, 16, 64] {
        let got = model.generate_batched(&c.context, 30, 9, true, gen_batch);
        assert_eq!(got.data(), reference.data(), "gen_batch={gen_batch}");
    }
    pool::set_threads(None);
}

/// Large-city smoke (128×128, t_out = 336): peak arena bytes during
/// generation stay under a fixed bound that the old materialize-all-
/// patches path provably exceeds — its patch tensors alone held
/// `positions × t_out × pixels × 4` bytes before `sew` even ran.
#[test]
fn large_city_peak_memory_is_window_bounded() {
    let _g = LOCK.lock().unwrap();
    // SpecOnly skips the per-step LSTM rollout so the smoke stays fast
    // in debug builds; the memory shape (patch chunks + running sums)
    // is the same one the full variant streams through.
    let cfg = SpectraGanConfig::tiny().with_variant(Variant::SpecOnly);
    let model = SpectraGan::new(cfg, 3);
    let c = city(128, 7);
    let t_out = 336usize;

    let positions = {
        let per_axis = (128 - cfg.patch_traffic) / cfg.patch_stride + 1;
        per_axis * per_axis
    };
    let old_floor_bytes = positions * t_out * cfg.pixels_per_patch() * 4;
    let bound_bytes: usize = 48 << 20;
    assert!(
        old_floor_bytes > bound_bytes,
        "bound {bound_bytes} B must sit below the all-patches floor {old_floor_bytes} B \
         for this test to mean anything"
    );

    pool::set_threads(Some(4));
    let (map, report) = model.generate_batched_report(&c.context, t_out, 11, true, 16);
    let peak = report.peak_arena_bytes as usize;
    assert_eq!((map.len_t(), map.height(), map.width()), (t_out, 128, 128));
    assert!(
        peak < bound_bytes,
        "peak arena {peak} B exceeds the streaming bound {bound_bytes} B \
         (old path floor: {old_floor_bytes} B)"
    );

    // And the streamed large-city output is still thread-invariant.
    pool::set_threads(Some(1));
    let serial = model.generate(&c.context, t_out, 11);
    pool::set_threads(None);
    assert_eq!(
        serial.data(),
        map.data(),
        "large-city output depends on threads"
    );
}

/// Regression (peak-report pollution): the peak-buffer figure is scoped
/// to each run. A small generation right after a much larger one must
/// report its own small peak — before [`GenReport`] scoped the
/// measurement, the second in-process report inherited the first run's
/// process-global high-water mark.
#[test]
fn back_to_back_generation_peaks_are_independent() {
    let _g = LOCK.lock().unwrap();
    let cfg = SpectraGanConfig::tiny().with_variant(Variant::SpecOnly);
    let model = SpectraGan::new(cfg, 3);
    let c = city(48, 7);

    // Peak memory is O(window × gen_batch × t_out) by design (city size
    // cancels out), so a heavy first run followed by a light one is the
    // discriminating pair: a leaked mark would make the light run
    // report the heavy run's peak.
    pool::set_threads(Some(2));
    let (_, heavy) = model.generate_batched_report(&c.context, 336, 11, true, 64);
    let (_, light) = model.generate_batched_report(&c.context, 24, 11, true, 1);
    pool::set_threads(None);

    assert!(heavy.peak_arena_bytes > 0, "heavy run saw no arena traffic");
    assert!(light.peak_arena_bytes > 0, "light run saw no arena traffic");
    assert!(
        light.peak_arena_bytes < heavy.peak_arena_bytes / 2,
        "light-run peak {} B is not well under the heavy-run peak {} B — \
         the report is leaking the previous run's high-water mark",
        light.peak_arena_bytes,
        heavy.peak_arena_bytes
    );
    assert!(heavy.wall_s > 0.0 && light.wall_s > 0.0);
}
