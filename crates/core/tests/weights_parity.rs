//! End-to-end parity gates for the `SGWT` weight container — the
//! precision × backend matrix that gates every storage dtype:
//!
//! * **f32 containers are invisible.** Generation from a model loaded
//!   out of an f32 `SGWT` container is bit-identical to generation
//!   from the same model loaded out of the JSON model file — the
//!   container is a storage change, never a numerics change. Checked
//!   per backend, for both the offline map and the streamed bands a
//!   server forwards as SGBD chunks.
//! * **f16 and int8 containers are spectrally faithful.** Reduced
//!   precision may perturb individual values, but the
//!   *distributional* quality the paper measures (marginal EMD/TV,
//!   autocorrelation) must stay within a small ε of the f32 output on
//!   the same context and seed — again per backend, and the streamed
//!   bands must be bit-identical to the offline map so the served
//!   bytes inherit the same gate.

use spectragan_core::weights::{self, Precision, WeightStore};
use spectragan_core::{PreparedContext, SpectraGan, SpectraGanConfig};
use spectragan_geo::TrafficMap;
use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};
use spectragan_tensor::{set_backend, BackendKind};

/// `set_backend` is process-global; serialize the tests in this binary
/// (other integration test files run as separate processes).
static BACKEND_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_city(seed: u64) -> spectragan_geo::City {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.36,
    };
    generate_city(
        &CityConfig {
            name: format!("W{seed}"),
            height: 33,
            width: 33,
            seed,
        },
        &ds,
    )
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("spectragan-weights-parity");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

/// Spectral-ε gate thresholds for one storage precision.
struct Gates {
    emd: f64,
    tv: f64,
    ac: f64,
    /// Mean absolute pointwise error as a fraction of mean traffic.
    mean_rel: f64,
}

/// f16 barely moves the output; the gates are tight.
const F16_GATES: Gates = Gates {
    emd: 5e-2,
    tv: 1e-1,
    ac: 5e-2,
    mean_rel: 1e-2,
};

/// int8 carries ~2^7 levels per row instead of ~2^11 mantissa bits, so
/// its distributional drift is allowed to be larger; measured values on
/// the tiny model sit well under half of these.
const INT8_GATES: Gates = Gates {
    emd: 1e-1,
    tv: 2e-1,
    ac: 1e-1,
    mean_rel: 5e-2,
};

fn assert_spectral(reference: &TrafficMap, got: &TrafficMap, g: &Gates, what: &str) {
    let emd = spectragan_metrics::m_emd(reference, got);
    let tv = spectragan_metrics::m_tv(reference, got);
    let ac = spectragan_metrics::ac_l1(reference, got, 12);
    eprintln!("{what}: m_EMD {emd:.2e}  m_TV {tv:.2e}  AC-L1 {ac:.2e}");
    assert!(emd < g.emd, "{what}: m_EMD {emd} above the parity gate");
    assert!(tv < g.tv, "{what}: m_TV {tv} above the parity gate");
    assert!(ac < g.ac, "{what}: AC-L1 {ac} above the parity gate");

    let mean_ref: f64 =
        reference.data().iter().map(|&v| v as f64).sum::<f64>() / reference.data().len() as f64;
    let mean_err: f64 = reference
        .data()
        .iter()
        .zip(got.data())
        .map(|(&a, &b)| (a as f64 - b as f64).abs())
        .sum::<f64>()
        / reference.data().len() as f64;
    assert!(
        mean_err <= g.mean_rel * mean_ref.max(1e-6),
        "{what}: mean abs error {mean_err} vs mean traffic {mean_ref}"
    );
}

/// Generates via the band-streaming path (the bytes a server chunks
/// into SGBD frames) and reassembles the bands into a map.
fn generate_streamed(model: &SpectraGan, city: &spectragan_geo::City, t: usize) -> TrafficMap {
    let prepared = PreparedContext::new(&city.context);
    let mut assembled = TrafficMap::zeros(t, city.context.height(), city.context.width());
    let mut next_row = 0usize;
    model
        .try_generate_stream(&prepared, t, 7, true, 16, &mut |band| {
            assert_eq!(band.y0, next_row, "bands must arrive in row order");
            next_row += band.rows;
            band.write_into(&mut assembled);
            true
        })
        .unwrap();
    assert_eq!(next_row, city.context.height(), "bands must tile the city");
    assembled
}

fn bits(m: &TrafficMap) -> Vec<u32> {
    m.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn sgwt_f32_generation_is_bit_identical_to_json_path() {
    let _g = lock();
    let model = SpectraGan::new(SpectraGanConfig::tiny(), 11);
    let city = tiny_city(5);

    let json_path = tmp("parity.json");
    std::fs::write(&json_path, model.to_model_json()).unwrap();
    let sgwt_path = tmp("parity.sgwt");
    weights::save_weights(&model, &sgwt_path, Precision::F32).unwrap();

    let from_json = weights::load_model_auto(&json_path).unwrap();
    let from_sgwt = weights::load_model_auto(&sgwt_path).unwrap();

    for kind in [BackendKind::Scalar, BackendKind::Simd] {
        set_backend(Some(kind));
        let a = from_json.generate(&city.context, 24, 7);
        let b = from_sgwt.generate(&city.context, 24, 7);
        assert_eq!(a.len_t(), b.len_t());
        assert_eq!(
            bits(&a),
            bits(&b),
            "{kind:?}: f32 container changed generation"
        );
        // The streamed (served) bytes are the same bytes.
        let streamed = generate_streamed(&from_sgwt, &city, 24);
        assert_eq!(
            bits(&a),
            bits(&streamed),
            "{kind:?}: f32 streamed bands diverged"
        );
    }
    set_backend(None);

    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&sgwt_path).ok();
}

/// The reduced-precision matrix: {f16, int8} × {Scalar, Simd}, each
/// checked offline *and* through the band-streaming path.
#[test]
fn reduced_precision_generation_stays_within_spectral_epsilon() {
    let _g = lock();
    let model = SpectraGan::new(SpectraGanConfig::tiny(), 11);
    let city = tiny_city(5);

    for kind in [BackendKind::Scalar, BackendKind::Simd] {
        set_backend(Some(kind));
        let reference = model.generate(&city.context, 48, 7);

        for (precision, gates) in [(Precision::F16, &F16_GATES), (Precision::Int8, &INT8_GATES)] {
            let what = format!("{}/{kind:?}", precision.name());
            let path = tmp(&format!("epsilon-{}.sgwt", precision.name()));
            weights::save_weights(&model, &path, precision).unwrap();
            let store = WeightStore::open(&path).unwrap();
            store.validate_all().unwrap();
            assert_eq!(store.precision(), precision);
            let loaded = store.load_model().unwrap();
            match precision {
                Precision::F16 => assert!(loaded.store().has_half_storage()),
                Precision::Int8 => assert!(loaded.store().has_int8_storage()),
                Precision::F32 => unreachable!(),
            }

            // Offline generation against the f32 reference.
            let offline = loaded.generate(&city.context, 48, 7);
            assert_spectral(&reference, &offline, gates, &what);

            // Served bytes: the streamed bands must be bit-identical
            // to the offline map, so they inherit the gate above.
            let streamed = generate_streamed(&loaded, &city, 48);
            assert_eq!(
                bits(&offline),
                bits(&streamed),
                "{what}: streamed bands diverged from offline generation"
            );

            std::fs::remove_file(&path).ok();
        }
    }
    set_backend(None);
}
