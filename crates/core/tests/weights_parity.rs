//! End-to-end parity gates for the `SGWT` weight container.
//!
//! Two contracts, both load-bearing for serving:
//!
//! * **f32 containers are invisible.** Generation from a model loaded
//!   out of an f32 `SGWT` container is bit-identical to generation
//!   from the same model loaded out of the JSON model file — the
//!   container is a storage change, never a numerics change.
//! * **f16 containers are spectrally faithful.** Half-precision
//!   weights may perturb individual values, but the *distributional*
//!   quality the paper measures (marginal EMD/TV, autocorrelation)
//!   must stay within a small ε of the f32 output on the same
//!   context and seed.

use spectragan_core::weights::{self, Precision, WeightStore};
use spectragan_core::{SpectraGan, SpectraGanConfig};
use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};

fn tiny_city(seed: u64) -> spectragan_geo::City {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.36,
    };
    generate_city(
        &CityConfig {
            name: format!("W{seed}"),
            height: 33,
            width: 33,
            seed,
        },
        &ds,
    )
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("spectragan-weights-parity");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

#[test]
fn sgwt_f32_generation_is_bit_identical_to_json_path() {
    let model = SpectraGan::new(SpectraGanConfig::tiny(), 11);
    let city = tiny_city(5);

    let json_path = tmp("parity.json");
    std::fs::write(&json_path, model.to_model_json()).unwrap();
    let sgwt_path = tmp("parity.sgwt");
    weights::save_weights(&model, &sgwt_path, Precision::F32).unwrap();

    let from_json = weights::load_model_auto(&json_path).unwrap();
    let from_sgwt = weights::load_model_auto(&sgwt_path).unwrap();

    let a = from_json.generate(&city.context, 24, 7);
    let b = from_sgwt.generate(&city.context, 24, 7);
    assert_eq!(a.len_t(), b.len_t());
    for (x, y) in a.data().iter().zip(b.data()) {
        assert_eq!(x.to_bits(), y.to_bits(), "f32 container changed generation");
    }

    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&sgwt_path).ok();
}

#[test]
fn sgwt_f16_generation_stays_within_spectral_epsilon() {
    let model = SpectraGan::new(SpectraGanConfig::tiny(), 11);
    let city = tiny_city(5);
    let reference = model.generate(&city.context, 48, 7);

    let path = tmp("epsilon.sgwt");
    weights::save_weights(&model, &path, Precision::F16).unwrap();
    let store = WeightStore::open(&path).unwrap();
    store.validate_all().unwrap();
    assert_eq!(store.precision(), Precision::F16);
    let half = store.load_model().unwrap();
    assert!(half.store().has_half_storage());
    let narrowed = half.generate(&city.context, 48, 7);

    // Distributional ε gate: the spectral/marginal metrics the paper
    // evaluates with must barely move under weight narrowing.
    let emd = spectragan_metrics::m_emd(&reference, &narrowed);
    let tv = spectragan_metrics::m_tv(&reference, &narrowed);
    let ac = spectragan_metrics::ac_l1(&reference, &narrowed, 12);
    assert!(emd < 5e-2, "m_EMD {emd} above the f16 parity gate");
    assert!(tv < 1e-1, "m_TV {tv} above the f16 parity gate");
    assert!(ac < 5e-2, "AC-L1 {ac} above the f16 parity gate");

    // And pointwise the traffic should track closely in aggregate.
    let mean_ref: f64 =
        reference.data().iter().map(|&v| v as f64).sum::<f64>() / reference.data().len() as f64;
    let mean_err: f64 = reference
        .data()
        .iter()
        .zip(narrowed.data())
        .map(|(&a, &b)| (a as f64 - b as f64).abs())
        .sum::<f64>()
        / reference.data().len() as f64;
    assert!(
        mean_err <= 1e-2 * mean_ref.max(1e-6),
        "mean abs error {mean_err} vs mean traffic {mean_ref}"
    );

    std::fs::remove_file(&path).ok();
}
