//! Autocorrelation of time series, used by the AC-L1 fidelity metric
//! (§3.2): the L1 distance between per-pixel autocorrelation functions
//! of real and synthetic traffic.

/// Sample autocorrelation of `x` at lags `0..max_lag` (inclusive of 0,
/// exclusive of `max_lag`), normalized so that lag 0 equals 1.
///
/// Uses the standard biased estimator
/// `r[h] = Σ_t (x[t] − x̄)(x[t+h] − x̄) / Σ_t (x[t] − x̄)²`.
/// A constant (zero-variance) series returns `r[0] = 1` and zeros
/// elsewhere, which keeps the AC-L1 metric finite on dead pixels.
pub fn autocorrelation(x: &[f64], max_lag: usize) -> Vec<f64> {
    let n = x.len();
    let lags = max_lag.min(n);
    if lags == 0 {
        return Vec::new();
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    let var: f64 = x.iter().map(|v| (v - mean).powi(2)).sum();
    let mut out = Vec::with_capacity(lags);
    if var <= f64::EPSILON {
        out.push(1.0);
        out.resize(lags, 0.0);
        return out;
    }
    for h in 0..lags {
        let mut acc = 0.0;
        for t in 0..n - h {
            acc += (x[t] - mean) * (x[t + h] - mean);
        }
        out.push(acc / var);
    }
    out
}

/// Normalized cross-correlation of two equal-length series at lags
/// `-max_lag..=max_lag`: entry `max_lag + h` is the correlation of
/// `a[t]` with `b[t + h]`. Used to quantify traffic *flows* — a peak at
/// a nonzero lag means one location leads the other (Fig. 2's moving
/// peak in correlation form). Constant series yield zeros.
pub fn cross_correlation(a: &[f64], b: &[f64], max_lag: usize) -> Vec<f64> {
    assert_eq!(
        a.len(),
        b.len(),
        "cross-correlation inputs differ in length"
    );
    let n = a.len();
    let lags = max_lag.min(n.saturating_sub(1));
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let va: f64 = a.iter().map(|v| (v - ma) * (v - ma)).sum();
    let vb: f64 = b.iter().map(|v| (v - mb) * (v - mb)).sum();
    let denom = (va * vb).sqrt();
    let mut out = Vec::with_capacity(2 * lags + 1);
    for h in -(lags as isize)..=(lags as isize) {
        if denom <= f64::EPSILON {
            out.push(0.0);
            continue;
        }
        let mut acc = 0.0;
        for (t, &av) in a.iter().enumerate() {
            let u = t as isize + h;
            if u >= 0 && (u as usize) < n {
                acc += (av - ma) * (b[u as usize] - mb);
            }
        }
        out.push(acc / denom);
    }
    out
}

/// The lag (in samples) at which `b` best follows `a` — the argmax of
/// [`cross_correlation`] shifted to be relative to zero. Positive means
/// `b` lags behind `a`.
pub fn lead_lag(a: &[f64], b: &[f64], max_lag: usize) -> isize {
    let xc = cross_correlation(a, b, max_lag);
    let lags = (xc.len() - 1) / 2;
    let (mut best, mut best_v) = (0usize, f64::MIN);
    for (i, &v) in xc.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best as isize - lags as isize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_correlation_detects_a_shift() {
        let n = 200;
        let a: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin())
            .collect();
        // b follows a by 3 samples: b[t] = a[t − 3] ⇒ a leads b.
        let b: Vec<f64> = (0..n)
            .map(|t| {
                let t = t as f64 - 3.0;
                (2.0 * std::f64::consts::PI * t / 24.0).sin()
            })
            .collect();
        assert_eq!(lead_lag(&a, &b, 8), 3);
        assert_eq!(lead_lag(&b, &a, 8), -3);
        assert_eq!(lead_lag(&a, &a, 8), 0);
    }

    #[test]
    fn cross_correlation_of_constants_is_zero() {
        let a = vec![1.0; 50];
        let b = vec![2.0; 50];
        assert!(cross_correlation(&a, &b, 5).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cross_correlation_is_bounded() {
        let a: Vec<f64> = (0..100).map(|t| ((t * 13 % 29) as f64).sin()).collect();
        let b: Vec<f64> = (0..100).map(|t| ((t * 7 % 31) as f64).cos()).collect();
        for v in cross_correlation(&a, &b, 20) {
            assert!(v.abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn lag_zero_is_one() {
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let r = autocorrelation(&x, 10);
        assert!((r[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_signal_peaks_at_its_period() {
        let x: Vec<f64> = (0..240)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin())
            .collect();
        let r = autocorrelation(&x, 30);
        // Near-perfect correlation one period later, strong anticorrelation
        // at half a period.
        assert!(r[24] > 0.8, "r[24] = {}", r[24]);
        assert!(r[12] < -0.8, "r[12] = {}", r[12]);
    }

    #[test]
    fn constant_series_is_finite() {
        let x = vec![5.0; 50];
        let r = autocorrelation(&x, 10);
        assert_eq!(r[0], 1.0);
        assert!(r[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn white_noise_decorrelates() {
        // Deterministic pseudo-noise from a 64-bit LCG.
        let mut state = 0x853c49e6748fea9bu64;
        let x: Vec<f64> = (0..2000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let r = autocorrelation(&x, 5);
        for &v in &r[1..] {
            assert!(v.abs() < 0.1, "noise autocorrelation too high: {v}");
        }
    }

    #[test]
    fn max_lag_is_clamped_to_length() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(autocorrelation(&x, 10).len(), 3);
        assert!(autocorrelation(&[], 4).is_empty());
    }
}
