//! Minimal complex arithmetic.
//!
//! Only what the FFT machinery needs; deliberately not a general-purpose
//! complex library. All values are `f64` — the DSP side of the workspace
//! runs in double precision, with conversion to `f32` only at the neural
//! network boundary.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number `re + i·im` in double precision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates `r·e^{iθ}` from polar coordinates.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// The unit phasor `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert_eq!(-z, Complex::new(-3.0, 4.0));
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        // (1 + 2i)(3 + 4i) = 3 + 4i + 6i + 8i² = -5 + 10i
        let p = Complex::new(1.0, 2.0) * Complex::new(3.0, 4.0);
        assert!(close(p.re, -5.0) && close(p.im, 10.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(0.7, -1.3);
        let b = Complex::new(-2.5, 0.4);
        let q = (a * b) / b;
        assert!(close(q.re, a.re) && close(q.im, a.im));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!(close(z.abs(), 2.0));
        assert!(close(z.arg(), std::f64::consts::FRAC_PI_3));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert!(close(z.abs(), 5.0));
        assert!(close(z.norm_sqr(), 25.0));
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        let zz = z * z.conj();
        assert!(close(zz.re, 25.0) && close(zz.im, 0.0));
    }

    #[test]
    fn cis_is_unit_phasor() {
        let z = Complex::cis(1.234);
        assert!(close(z.abs(), 1.0));
        assert!(close(z.arg(), 1.234));
    }
}
