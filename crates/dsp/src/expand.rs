//! k-multiple frequency expansion (§2.2.4, Fig. 4, Appendix C).
//!
//! SpectraGAN's spectrum generator emits a fixed number of one-sided
//! bins `F = T/2 + 1` for the training duration `T`. To generate a
//! longer series `T' = k·T`, the spectrum is expanded to
//! `F' = T'/2 + 1 = k·(F − 1) + 1` bins: bin `i` of the original moves
//! to bin `k·i` of the expanded vector (same physical frequency
//! `i/T = k·i/(k·T)`) and is scaled by `k` so that the total signal
//! energy is multiplied by `k` — exactly what repeating the signal `k`
//! times requires (Appendix C, claims 1–3).

use crate::complex::Complex;

/// Expands a one-sided spectrum of a length-`t` signal by an integer
/// factor `k ≥ 1`, returning the spectrum of a length-`k·t` signal whose
/// IFFT approximates `k` repetitions of the original signal.
///
/// # Panics
/// Panics if `k == 0` or `spec.len() != t/2 + 1`.
pub fn expand_spectrum(spec: &[Complex], t: usize, k: usize) -> Vec<Complex> {
    assert!(k >= 1, "expansion factor must be at least 1");
    assert_eq!(
        spec.len(),
        t / 2 + 1,
        "spectrum length {} does not match signal length {t}",
        spec.len()
    );
    if k == 1 {
        return spec.to_vec();
    }
    let f_out = (k * t) / 2 + 1;
    let mut out = vec![Complex::ZERO; f_out];
    for (i, &z) in spec.iter().enumerate() {
        out[i * k] = z.scale(k as f64);
    }
    out
}

/// Fractional-length spectral expansion — the generalization the paper
/// leaves as future work (§2.2.4: "such a procedure can be more
/// involved if F′ is not a multiple of F as it would require careful
/// smoothing to avoid potential aliasing with total energy
/// preservation").
///
/// Each source bin `k` (physical frequency `k/t_in`) is mapped to its
/// fractional position `k·t_out/t_in` in the target spectrum and split
/// linearly between the two neighbouring bins, scaled by `t_out/t_in`
/// so the time-domain amplitude is preserved. For integer ratios this
/// reduces exactly to [`expand_spectrum`]; for non-integer ratios the
/// linear split is the "careful smoothing" — adjacent-bin leakage
/// instead of aliasing.
///
/// Bins carry **conjugate-symmetry weights**: DC and an even-length
/// Nyquist bin appear once in the full spectrum, interior bins twice.
/// A naive split ignores this, so whenever a weight-1 bin's mass lands
/// on weight-2 bins (or vice versa — e.g. compressing an even-`t_in`
/// spectrum so its Nyquist mass lands on interior bins, where `irfft`'s
/// symmetry reconstruction counts it twice) the reconstructed tone's
/// amplitude is doubled or halved. Each share is therefore scaled by
/// `w_in(k)/w_out(j)`. The top boundary folds back instead of dropping:
/// if `lo + 1` exceeds the last output bin, the `frac` share joins the
/// `lo` share rather than silently losing that energy.
///
/// # Panics
/// Panics if `spec.len() != t_in/2 + 1` or either length is < 2.
pub fn expand_spectrum_fractional(spec: &[Complex], t_in: usize, t_out: usize) -> Vec<Complex> {
    assert!(t_in >= 2 && t_out >= 2, "lengths must be at least 2");
    assert_eq!(
        spec.len(),
        t_in / 2 + 1,
        "spectrum length {} does not match signal length {t_in}",
        spec.len()
    );
    if t_out.is_multiple_of(t_in) {
        return expand_spectrum(spec, t_in, t_out / t_in);
    }
    let f_out = t_out / 2 + 1;
    let ratio = t_out as f64 / t_in as f64;
    let mut out = vec![Complex::ZERO; f_out];
    for (k, &z) in spec.iter().enumerate() {
        // `pos ≤ t_out/2`, so `lo` is always a valid output bin; only
        // the `lo + 1` neighbour can fall off the end.
        let pos = k as f64 * ratio;
        let lo = pos.floor() as usize;
        let frac = pos - lo as f64;
        let scaled = z.scale(ratio * one_sided_weight(k, t_in));
        let lo_c = lo.min(f_out - 1);
        let hi_c = (lo + 1).min(f_out - 1);
        if hi_c == lo_c {
            out[lo_c] += scaled.scale(1.0 / one_sided_weight(lo_c, t_out));
        } else {
            out[lo_c] += scaled.scale((1.0 - frac) / one_sided_weight(lo_c, t_out));
            out[hi_c] += scaled.scale(frac / one_sided_weight(hi_c, t_out));
        }
    }
    // A real signal's DC must stay real; linear splitting preserves
    // this by construction (bin 0 maps to position 0 exactly).
    out
}

/// How many times bin `idx` of a length-`n` signal's one-sided spectrum
/// appears in the full spectrum: once for DC and the even-`n` Nyquist,
/// twice (conjugate pair) for interior bins.
fn one_sided_weight(idx: usize, n: usize) -> f64 {
    if idx == 0 || (n.is_multiple_of(2) && idx == n / 2) {
        1.0
    } else {
        2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rfft::{irfft, rfft};
    use crate::spectrum::one_sided_energy;

    fn weekly(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let t = t as f64;
                1.0 + (2.0 * std::f64::consts::PI * t / 24.0).sin()
                    + 0.3 * (2.0 * std::f64::consts::PI * t / 168.0).cos()
            })
            .collect()
    }

    #[test]
    fn output_length_matches_appendix_c_claim_1() {
        let t = 168;
        let spec = rfft(&weekly(t));
        for k in 1..=4 {
            let out = expand_spectrum(&spec, t, k);
            assert_eq!(out.len(), (k * t) / 2 + 1);
        }
    }

    #[test]
    fn total_energy_scales_by_k_claim_2() {
        let t = 168;
        let x = weekly(t);
        let spec = rfft(&x);
        let e1 = one_sided_energy(&spec, t);
        for k in [2usize, 3] {
            let out = expand_spectrum(&spec, t, k);
            let ek = one_sided_energy(&out, k * t);
            // |k·f|² = k²·|f|², and Parseval divides by k·t instead of t,
            // so time-domain energy is k× — in spectral terms this is
            // e_k = k²·e_1.
            assert!(
                (ek - (k * k) as f64 * e1).abs() < 1e-6 * ek,
                "k={k}: {ek} vs {}",
                (k * k) as f64 * e1
            );
        }
    }

    #[test]
    fn ifft_of_expansion_repeats_the_signal_claim_3() {
        let t = 168;
        let x = weekly(t);
        let spec = rfft(&x);
        for k in [2usize, 3] {
            let long = irfft(&expand_spectrum(&spec, t, k), k * t);
            for rep in 0..k {
                for i in 0..t {
                    let a = x[i];
                    let b = long[rep * t + i];
                    assert!((a - b).abs() < 1e-8, "k={k} rep={rep} i={i}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn k_equal_one_is_identity() {
        let t = 24;
        let spec = rfft(&weekly(t));
        assert_eq!(expand_spectrum(&spec, t, 1), spec);
    }

    #[test]
    #[should_panic(expected = "does not match signal length")]
    fn rejects_wrong_spectrum_length() {
        let spec = vec![Complex::ZERO; 10];
        let _ = expand_spectrum(&spec, 168, 2);
    }

    #[test]
    fn fractional_reduces_to_integer_path() {
        let t = 24;
        let spec = rfft(&weekly(t));
        let a = expand_spectrum(&spec, t, 3);
        let b = expand_spectrum_fractional(&spec, t, 3 * t);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }

    #[test]
    fn fractional_output_length_and_dc() {
        let t = 168;
        let x = weekly(t);
        let spec = rfft(&x);
        let t_out = 250; // not a multiple of 168
        let out = expand_spectrum_fractional(&spec, t, t_out);
        assert_eq!(out.len(), t_out / 2 + 1);
        // DC amplitude in the time domain is preserved: DC_out/t_out
        // equals DC_in/t_in.
        assert!(
            (out[0].re / t_out as f64 - spec[0].re / t as f64).abs() < 1e-9,
            "mean level changed"
        );
        assert!(out[0].im.abs() < 1e-12);
    }

    /// `Σ_j w(j)·|spec[j]|` — the total one-sided tone amplitude scale;
    /// for a single tone this is `n ×` its time-domain amplitude.
    fn weighted_amplitude(spec: &[Complex], n: usize) -> f64 {
        spec.iter()
            .enumerate()
            .map(|(j, z)| one_sided_weight(j, n) * z.abs())
            .sum()
    }

    /// Regression: odd `t_in`, near-Nyquist interior bin, compressing
    /// boundary fold. For `t_in = 25`, bin 12 at `t_out = 13` lands at
    /// position 6.24 with `lo = f_out − 1`, so the old code dropped the
    /// 24 % `frac` share (0.76× amplitude). The fold-back keeps it.
    #[test]
    fn fractional_boundary_fold_keeps_the_frac_share() {
        let (t_in, t_out, bin) = (25usize, 13usize, 12usize);
        let mut spec = vec![Complex::ZERO; t_in / 2 + 1];
        spec[bin] = Complex::new(3.0, -1.5);
        let out = expand_spectrum_fractional(&spec, t_in, t_out);
        let want = (t_out as f64 / t_in as f64) * weighted_amplitude(&spec, t_in);
        let got = weighted_amplitude(&out, t_out);
        assert!(
            (got - want).abs() < 1e-12 * want,
            "amplitude not preserved: {got} vs {want}"
        );
    }

    /// Regression: an interior (weight-2) bin sharing onto DC
    /// (weight 1) under compression. The old unweighted split halved
    /// the DC share's reconstructed amplitude.
    #[test]
    fn fractional_interior_share_onto_dc_is_reweighted() {
        let (t_in, t_out, bin) = (48usize, 26usize, 1usize);
        let mut spec = vec![Complex::ZERO; t_in / 2 + 1];
        spec[bin] = Complex::new(2.0, 0.5);
        let out = expand_spectrum_fractional(&spec, t_in, t_out);
        let want = (t_out as f64 / t_in as f64) * weighted_amplitude(&spec, t_in);
        let got = weighted_amplitude(&out, t_out);
        assert!(
            (got - want).abs() < 1e-12 * want,
            "amplitude not preserved: {got} vs {want}"
        );
    }

    /// Regression: an interior (weight-2) bin sharing onto the output
    /// Nyquist (weight 1). `t_in = 25`, bin 12 at `t_out = 26` lands at
    /// 12.48, splitting between interior bin 12 and the Nyquist 13;
    /// the old code under-counted the Nyquist share by 2×.
    #[test]
    fn fractional_interior_share_onto_nyquist_is_reweighted() {
        let (t_in, t_out, bin) = (25usize, 26usize, 12usize);
        let mut spec = vec![Complex::ZERO; t_in / 2 + 1];
        spec[bin] = Complex::new(-1.0, 2.0);
        let out = expand_spectrum_fractional(&spec, t_in, t_out);
        let want = (t_out as f64 / t_in as f64) * weighted_amplitude(&spec, t_in);
        let got = weighted_amplitude(&out, t_out);
        assert!(
            (got - want).abs() < 1e-12 * want,
            "amplitude not preserved: {got} vs {want}"
        );
    }

    #[test]
    fn fractional_expansion_preserves_dominant_periodicity() {
        // A daily tone expanded from 1 week to ~1.5 weeks must still be
        // (approximately) a daily tone: its strongest non-DC bin should
        // sit at frequency ≈ 1/24 per sample.
        let t = 168;
        let x: Vec<f64> = (0..t)
            .map(|n| 1.0 + (2.0 * std::f64::consts::PI * n as f64 / 24.0).sin())
            .collect();
        let spec = rfft(&x);
        let t_out = 250;
        let out = expand_spectrum_fractional(&spec, t, t_out);
        let series = irfft(&out, t_out);
        let new_spec = rfft(&series);
        let (mut best, mut best_v) = (0usize, f64::MIN);
        for (k, z) in new_spec.iter().enumerate().skip(1) {
            if z.abs() > best_v {
                best_v = z.abs();
                best = k;
            }
        }
        let freq = best as f64 / t_out as f64;
        assert!(
            (freq - 1.0 / 24.0).abs() < 0.01,
            "dominant frequency drifted: {freq}"
        );
        // And the series remains non-degenerate (oscillates).
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let var = series.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / series.len() as f64;
        assert!(var > 0.1, "expansion flattened the signal: var {var}");
    }
}
