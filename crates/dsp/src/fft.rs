//! Discrete Fourier transforms for arbitrary lengths.
//!
//! Two algorithms, both from scratch:
//!
//! * iterative radix-2 Cooley–Tukey for power-of-two lengths, and
//! * Bluestein's chirp-z transform for everything else (it re-expresses
//!   a length-`N` DFT as a circular convolution of length `≥ 2N − 1`,
//!   which is then done with the radix-2 path).
//!
//! Traffic time series in the paper are *not* powers of two (one week of
//! hourly data is `T = 168`), so the Bluestein path is exercised by every
//! experiment, not just edge cases.
//!
//! Conventions: `fft` computes `X[k] = Σ_n x[n]·e^{-2πikn/N}` with no
//! normalization; `ifft` applies the `1/N` factor, so `ifft(fft(x)) = x`.

use crate::complex::Complex;

/// Computes the forward DFT of `x` (any length, including 0 and 1).
///
/// Unnormalized: `X[k] = Σ_n x[n]·e^{-2πikn/N}`.
pub fn fft(x: &[Complex]) -> Vec<Complex> {
    let mut buf = x.to_vec();
    fft_in_place(&mut buf, false);
    buf
}

/// Computes the inverse DFT of `x`, including the `1/N` normalization,
/// so that `ifft(fft(x)) == x` up to floating-point error.
pub fn ifft(x: &[Complex]) -> Vec<Complex> {
    let mut buf = x.to_vec();
    fft_in_place(&mut buf, true);
    buf
}

/// Transforms `buf` in place; `inverse` selects direction (the inverse
/// direction includes the `1/N` normalization).
pub fn fft_in_place(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        radix2_in_place(buf, inverse);
        if inverse {
            let scale = 1.0 / n as f64;
            for z in buf.iter_mut() {
                *z = z.scale(scale);
            }
        }
    } else {
        let out = bluestein(buf, inverse);
        buf.copy_from_slice(&out);
    }
}

/// Iterative radix-2 Cooley–Tukey, unnormalized in both directions.
fn radix2_in_place(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }

    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in buf.chunks_exact_mut(len) {
            let mut w = Complex::ONE;
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *a;
                let v = *b * w;
                *a = u + v;
                *b = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Bluestein's algorithm: DFT of arbitrary length `n` via a circular
/// convolution of power-of-two length `m ≥ 2n − 1`.
fn bluestein(x: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = x.len();
    let sign = if inverse { 1.0 } else { -1.0 };

    // Chirp c[k] = e^{sign·iπk²/n}. Compute k² mod 2n to keep the phase
    // argument small and precise for large k.
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            let k2 = (k as u64 * k as u64) % (2 * n as u64);
            Complex::cis(sign * std::f64::consts::PI * k2 as f64 / n as f64)
        })
        .collect();

    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::ZERO; m];
    let mut b = vec![Complex::ZERO; m];

    for k in 0..n {
        a[k] = x[k] * chirp[k];
        b[k] = chirp[k].conj();
    }
    // b must be symmetric for circular convolution: b[m-k] = b[k].
    for k in 1..n {
        b[m - k] = chirp[k].conj();
    }

    radix2_in_place(&mut a, false);
    radix2_in_place(&mut b, false);
    for (ai, bi) in a.iter_mut().zip(b.iter()) {
        *ai *= *bi;
    }
    radix2_in_place(&mut a, true);
    let inv_m = 1.0 / m as f64;

    let norm = if inverse { 1.0 / n as f64 } else { 1.0 };
    (0..n)
        .map(|k| (a[k].scale(inv_m) * chirp[k]).scale(norm))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(N²) DFT used as the test oracle.
    fn dft_naive(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (i, &xi) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64;
                    acc += xi * Complex::cis(ang);
                }
                acc
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < tol, "bin {i}: {x:?} vs {y:?} (tol {tol})");
        }
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 * 0.3 - 1.0, (i as f64).sin()))
            .collect()
    }

    #[test]
    fn empty_and_singleton_are_identity() {
        assert!(fft(&[]).is_empty());
        let one = [Complex::new(2.5, -1.0)];
        assert_eq!(fft(&one), one.to_vec());
        assert_eq!(ifft(&one), one.to_vec());
    }

    #[test]
    fn matches_naive_dft_power_of_two() {
        for n in [2usize, 4, 8, 16, 64, 256] {
            let x = ramp(n);
            assert_close(&fft(&x), &dft_naive(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn matches_naive_dft_arbitrary_lengths() {
        // 168 = one week of hourly samples, the length every SpectraGAN
        // experiment uses; the others stress Bluestein with primes.
        for n in [3usize, 5, 7, 12, 24, 97, 168, 336] {
            let x = ramp(n);
            assert_close(&fft(&x), &dft_naive(&x), 1e-7 * n as f64);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        for n in [1usize, 2, 7, 24, 168, 256, 501] {
            let x = ramp(n);
            assert_close(&ifft(&fft(&x)), &x, 1e-9 * (n.max(4)) as f64);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 24];
        x[0] = Complex::ONE;
        for bin in fft(&x) {
            assert!((bin - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_single_bin() {
        let n = 48;
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * (k0 * t) as f64 / n as f64))
            .collect();
        let spec = fft(&x);
        for (k, bin) in spec.iter().enumerate() {
            if k == k0 {
                assert!((bin.re - n as f64).abs() < 1e-8);
                assert!(bin.im.abs() < 1e-8);
            } else {
                assert!(bin.abs() < 1e-8, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        for n in [30usize, 64, 168] {
            let x = ramp(n);
            let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
            let freq_energy: f64 = fft(&x).iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
            assert!((time_energy - freq_energy).abs() < 1e-7 * time_energy.max(1.0));
        }
    }

    #[test]
    fn linearity() {
        let n = 21;
        let x = ramp(n);
        let y: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).cos(), 0.2))
            .collect();
        let sum: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        let fx = fft(&x);
        let fy = fft(&y);
        let fsum = fft(&sum);
        let expect: Vec<Complex> = fx.iter().zip(&fy).map(|(a, b)| *a + *b).collect();
        assert_close(&fsum, &expect, 1e-9);
    }
}
