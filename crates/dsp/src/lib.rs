//! Signal-processing substrate for the SpectraGAN reproduction.
//!
//! The paper's defining idea is to generate mobile-traffic *spectra* and
//! convert them to time series via the inverse Fourier transform. This
//! crate provides everything spectral that the rest of the workspace
//! relies on, implemented from scratch:
//!
//! * [`Complex`] — minimal complex arithmetic on `f64`.
//! * [`fft`] / [`ifft`] — discrete Fourier transforms for *any* length
//!   (iterative radix-2 Cooley–Tukey for powers of two, Bluestein's
//!   chirp-z algorithm otherwise).
//! * [`rfft`] / [`irfft`] — the real-input transforms used on traffic
//!   time series (`N` reals ↔ `N/2 + 1` complex bins).
//! * [`spectrum`] — magnitude spectra, the paper's quantile mask
//!   `M^q` (§2.2.3), and reconstruction from the significant components
//!   (Fig. 1e).
//! * [`expand`] — the k-multiple frequency expansion used to generate
//!   time series longer than the training window (§2.2.4, Fig. 4,
//!   Appendix C).
//! * [`autocorr`] — autocorrelation used by the AC-L1 fidelity metric.

pub mod autocorr;
pub mod complex;
pub mod expand;
pub mod fft;
pub mod rfft;
pub mod spectrum;
pub mod stft;
pub mod window;

pub use autocorr::{autocorrelation, cross_correlation, lead_lag};
pub use complex::Complex;
pub use expand::{expand_spectrum, expand_spectrum_fractional};
pub use fft::{fft, ifft};
pub use rfft::{irfft, rfft};
pub use spectrum::{magnitude, mask_quantile, reconstruct_top_k, top_k_indices};
pub use stft::{periodogram, power_concentration, spectral_entropy, stft, Spectrogram};
pub use window::Window;
