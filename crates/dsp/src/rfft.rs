//! Real-input FFT and its inverse.
//!
//! Mobile-traffic time series are real signals; the paper works with the
//! one-sided spectrum of `F = T/2 + 1` bins (§2.2.4 writes
//! `F' = T'/2 + 1`). `rfft` maps `N` real samples to `N/2 + 1` complex
//! bins; `irfft` reverses it given the intended output length (needed to
//! disambiguate even/odd `N`).

use crate::complex::Complex;
use crate::fft::{fft, ifft};

/// Number of one-sided spectrum bins for a real signal of length `n`.
#[inline]
pub fn rfft_len(n: usize) -> usize {
    n / 2 + 1
}

/// Forward real FFT: `n` real samples → `n/2 + 1` complex bins.
///
/// Bin 0 is DC; for even `n` the last bin is the Nyquist component.
/// Unnormalized (matches [`crate::fft::fft`]).
pub fn rfft(x: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = x.iter().map(|&v| Complex::real(v)).collect();
    let full = fft(&buf);
    full[..rfft_len(x.len())].to_vec()
}

/// Inverse real FFT: one-sided spectrum → real signal of length `n`.
///
/// `spec.len()` must equal `n/2 + 1`. Reconstructs the conjugate-
/// symmetric full spectrum, applies the inverse DFT and discards the
/// (numerically negligible) imaginary parts.
///
/// # Panics
/// Panics if `spec.len() != n/2 + 1` or `n == 0`.
pub fn irfft(spec: &[Complex], n: usize) -> Vec<f64> {
    assert!(n > 0, "irfft output length must be positive");
    assert_eq!(
        spec.len(),
        rfft_len(n),
        "one-sided spectrum length {} does not match output length {} (want {})",
        spec.len(),
        n,
        rfft_len(n)
    );
    let mut full = vec![Complex::ZERO; n];
    full[..spec.len()].copy_from_slice(spec);
    // Conjugate symmetry: X[n-k] = conj(X[k]) for k = 1..ceil(n/2).
    for k in 1..n - spec.len() + 1 {
        let src = spec[k];
        full[n - k] = src.conj();
    }
    ifft(&full).into_iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let t = t as f64;
                1.5 + (2.0 * std::f64::consts::PI * t / 24.0).sin()
                    + 0.3 * (2.0 * std::f64::consts::PI * t / 7.0).cos()
                    + 0.05 * (t * 0.91).sin()
            })
            .collect()
    }

    #[test]
    fn bin_count_is_half_plus_one() {
        assert_eq!(rfft_len(168), 85);
        assert_eq!(rfft_len(24), 13);
        assert_eq!(rfft_len(7), 4);
        assert_eq!(rfft(&signal(168)).len(), 85);
    }

    #[test]
    fn roundtrip_even_length() {
        let x = signal(168);
        let back = irfft(&rfft(&x), 168);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn roundtrip_odd_length() {
        let x = signal(167);
        let back = irfft(&rfft(&x), 167);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn dc_bin_is_sum() {
        let x = signal(100);
        let spec = rfft(&x);
        let sum: f64 = x.iter().sum();
        assert!((spec[0].re - sum).abs() < 1e-8);
        assert!(spec[0].im.abs() < 1e-10);
    }

    #[test]
    fn constant_signal_is_pure_dc() {
        let x = vec![3.0; 50];
        let spec = rfft(&x);
        assert!((spec[0].re - 150.0).abs() < 1e-9);
        for bin in &spec[1..] {
            assert!(bin.abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "does not match output length")]
    fn irfft_rejects_mismatched_length() {
        let spec = vec![Complex::ZERO; 10];
        let _ = irfft(&spec, 168);
    }
}
