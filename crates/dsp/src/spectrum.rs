//! Spectrum utilities: magnitudes, the paper's quantile mask `M^q`, and
//! reconstruction from the significant frequency components.
//!
//! §2.2.3 defines the masked spectrum target used by the L1 loss:
//! `y^q = m ⊙ FFT(x)` with `m = 1(|FFT(x)| > y_q)`, where `y_q` is the
//! `q`-quantile of the magnitude spectrum. Fig. 1e shows that keeping a
//! handful of significant components already reconstructs the traffic
//! well; [`reconstruct_top_k`] reproduces that figure.

use crate::complex::Complex;
use crate::rfft::{irfft, rfft};

/// Magnitudes `|X[k]|` of a complex spectrum.
pub fn magnitude(spec: &[Complex]) -> Vec<f64> {
    spec.iter().map(|z| z.abs()).collect()
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a slice, by sorting a copy.
///
/// Uses the nearest-rank definition; an empty input returns 0.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let idx = ((q.clamp(0.0, 1.0)) * (v.len() - 1) as f64).round() as usize;
    v[idx]
}

/// Applies the paper's mask `M^q`: zeroes every bin whose magnitude is
/// not strictly above the `q`-quantile of the magnitude spectrum.
///
/// Returns the masked spectrum together with the boolean mask.
pub fn mask_quantile(spec: &[Complex], q: f64) -> (Vec<Complex>, Vec<bool>) {
    let mags = magnitude(spec);
    let thr = quantile(&mags, q);
    let mask: Vec<bool> = mags.iter().map(|&m| m > thr).collect();
    let masked = spec
        .iter()
        .zip(&mask)
        .map(|(&z, &keep)| if keep { z } else { Complex::ZERO })
        .collect();
    (masked, mask)
}

/// Indices of the `k` largest-magnitude bins, sorted by descending
/// magnitude. `k` is clamped to the spectrum length.
pub fn top_k_indices(spec: &[Complex], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..spec.len()).collect();
    idx.sort_by(|&a, &b| {
        spec[b]
            .abs()
            .partial_cmp(&spec[a].abs())
            .expect("NaN magnitude")
    });
    idx.truncate(k.min(spec.len()));
    idx
}

/// Reconstructs a real signal of length `n` from only the `k` most
/// significant one-sided spectrum components of `x` (all other bins
/// zeroed). Reproduces the paper's Fig. 1e experiment.
///
/// The DC bin counts toward `k` if it is among the largest components
/// (for traffic it always is, so `k = 5` means DC plus the four dominant
/// periodicities).
pub fn reconstruct_top_k(x: &[f64], k: usize) -> Vec<f64> {
    let spec = rfft(x);
    let keep = top_k_indices(&spec, k);
    let mut masked = vec![Complex::ZERO; spec.len()];
    for i in keep {
        masked[i] = spec[i];
    }
    irfft(&masked, x.len())
}

/// Total spectral energy `Σ|X[k]|²` of a one-sided spectrum, counting
/// interior bins twice (they represent conjugate pairs in the full
/// spectrum). `n` is the underlying signal length.
pub fn one_sided_energy(spec: &[Complex], n: usize) -> f64 {
    let mut e = 0.0;
    for (k, z) in spec.iter().enumerate() {
        let double = k != 0 && !(n.is_multiple_of(2) && k == spec.len() - 1);
        e += z.norm_sqr() * if double { 2.0 } else { 1.0 };
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weekly_traffic(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let t = t as f64;
                let daily = (2.0 * std::f64::consts::PI * t / 24.0 - 1.0).sin();
                let weekly = 0.4 * (2.0 * std::f64::consts::PI * t / 168.0).cos();
                let noise = 0.02 * ((t * 7.13).sin() + (t * 3.71).cos());
                2.0 + daily + weekly + noise
            })
            .collect()
    }

    #[test]
    fn quantile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn mask_keeps_only_above_threshold() {
        let x = weekly_traffic(168);
        let spec = rfft(&x);
        let (masked, mask) = mask_quantile(&spec, 0.75);
        let kept = mask.iter().filter(|&&b| b).count();
        // q = 0.75 keeps roughly a quarter of the bins.
        assert!(kept > 0 && kept <= spec.len() / 2 + 2);
        for (m, keep) in masked.iter().zip(&mask) {
            if !keep {
                assert_eq!(*m, Complex::ZERO);
            }
        }
    }

    #[test]
    fn top_k_finds_dominant_bins() {
        let x = weekly_traffic(168);
        let spec = rfft(&x);
        let top = top_k_indices(&spec, 3);
        // DC (bin 0), daily (bin 7 of 168h = 168/24), weekly (bin 1).
        assert!(top.contains(&0));
        assert!(top.contains(&7));
        assert!(top.contains(&1));
    }

    #[test]
    fn top_k_reconstruction_captures_most_energy() {
        let x = weekly_traffic(168);
        let rec = reconstruct_top_k(&x, 5);
        let err: f64 = x.iter().zip(&rec).map(|(a, b)| (a - b).powi(2)).sum();
        let energy: f64 = x.iter().map(|v| v * v).sum();
        // Fig. 1e: 5 significant components ≈ the full signal.
        assert!(err / energy < 0.01, "relative error {}", err / energy);
    }

    #[test]
    fn reconstruction_with_all_bins_is_exact() {
        let x = weekly_traffic(96);
        let rec = reconstruct_top_k(&x, rfft(&x).len());
        for (a, b) in x.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn one_sided_energy_matches_parseval() {
        for n in [24usize, 49, 168] {
            let x = weekly_traffic(n);
            let spec = rfft(&x);
            let time_energy: f64 = x.iter().map(|v| v * v).sum();
            let freq_energy = one_sided_energy(&spec, n) / n as f64;
            assert!(
                (time_energy - freq_energy).abs() < 1e-6 * time_energy,
                "n={n}: {time_energy} vs {freq_energy}"
            );
        }
    }
}
