//! Short-time Fourier transform and derived spectral statistics.
//!
//! The paper's analysis views each pixel's whole series through one
//! FFT (Fig. 1d); a spectrogram view adds *when* each periodicity is
//! active — useful for inspecting generated data (e.g. verifying the
//! residual generator does not inject spurious periodicities midway
//! through a long generated sequence).

use crate::rfft::{rfft, rfft_len};
use crate::window::Window;

/// A magnitude spectrogram: `frames × bins`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    bins: usize,
    /// Frame hop in samples.
    pub hop: usize,
    /// Window length in samples.
    pub window_len: usize,
    data: Vec<f64>,
}

impl Spectrogram {
    /// Number of time frames.
    pub fn num_frames(&self) -> usize {
        self.data.len().checked_div(self.bins).unwrap_or(0)
    }

    /// Number of frequency bins per frame.
    pub fn num_bins(&self) -> usize {
        self.bins
    }

    /// Magnitude at `(frame, bin)`.
    pub fn at(&self, frame: usize, bin: usize) -> f64 {
        assert!(bin < self.bins, "bin out of range");
        self.data[frame * self.bins + bin]
    }

    /// One frame's magnitudes.
    pub fn frame(&self, frame: usize) -> &[f64] {
        &self.data[frame * self.bins..(frame + 1) * self.bins]
    }
}

/// Computes the magnitude STFT of `x` with the given window, window
/// length and hop. Frames that would run past the end are dropped
/// (no padding).
///
/// # Panics
/// Panics if `window_len == 0` or `hop == 0`.
pub fn stft(x: &[f64], window: Window, window_len: usize, hop: usize) -> Spectrogram {
    assert!(window_len > 0 && hop > 0, "bad STFT geometry");
    let coeffs = window.coefficients(window_len);
    let bins = rfft_len(window_len);
    let mut data = Vec::new();
    let mut start = 0;
    while start + window_len <= x.len() {
        let windowed: Vec<f64> = x[start..start + window_len]
            .iter()
            .zip(&coeffs)
            .map(|(v, c)| v * c)
            .collect();
        let spec = rfft(&windowed);
        data.extend(spec.iter().map(|z| z.abs()));
        start += hop;
    }
    Spectrogram {
        bins,
        hop,
        window_len,
        data,
    }
}

/// Periodogram (power spectral density estimate) of `x`:
/// `|X[k]|² / N`, one-sided.
pub fn periodogram(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    rfft(x).iter().map(|z| z.norm_sqr() / n as f64).collect()
}

/// Normalized spectral entropy of a one-sided power spectrum,
/// excluding DC: 0 for a pure tone, 1 for white noise. Returns 0 for
/// degenerate inputs.
pub fn spectral_entropy(power: &[f64]) -> f64 {
    if power.len() <= 2 {
        return 0.0;
    }
    let body = &power[1..];
    let total: f64 = body.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &p in body {
        if p > 0.0 {
            let q = p / total;
            h -= q * q.ln();
        }
    }
    h / (body.len() as f64).ln()
}

/// Fraction of (non-DC) spectral power concentrated in the `k`
/// strongest bins — the quantitative form of the paper's "few
/// significant components" observation.
pub fn power_concentration(power: &[f64], k: usize) -> f64 {
    if power.len() <= 1 {
        return 0.0;
    }
    let mut body: Vec<f64> = power[1..].to_vec();
    let total: f64 = body.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    body.sort_by(|a, b| b.partial_cmp(a).expect("finite power"));
    body.iter().take(k).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, period: f64) -> Vec<f64> {
        (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / period).sin())
            .collect()
    }

    #[test]
    fn stft_shapes() {
        let x = tone(200, 24.0);
        let sg = stft(&x, Window::Hann, 48, 24);
        assert_eq!(sg.num_bins(), 25);
        // Frames: starts 0, 24, …, 152 → 7 frames.
        assert_eq!(sg.num_frames(), 7);
        assert_eq!(sg.frame(0).len(), 25);
    }

    #[test]
    fn stft_localizes_a_tone() {
        // 48-sample window, 24-sample period → energy in bin 2.
        let x = tone(192, 24.0);
        let sg = stft(&x, Window::Hann, 48, 48);
        for f in 0..sg.num_frames() {
            let frame = sg.frame(f);
            let max_bin = (0..frame.len())
                .max_by(|&a, &b| frame[a].partial_cmp(&frame[b]).unwrap())
                .unwrap();
            assert_eq!(max_bin, 2, "frame {f}");
        }
    }

    #[test]
    fn stft_detects_a_frequency_change() {
        // First half daily period 24, second half period 12.
        let mut x = tone(240, 24.0);
        x.extend(tone(240, 12.0));
        let sg = stft(&x, Window::Hann, 48, 48);
        let first = sg.frame(0);
        let last = sg.frame(sg.num_frames() - 1);
        let argmax = |f: &[f64]| {
            (0..f.len())
                .max_by(|&a, &b| f[a].partial_cmp(&f[b]).unwrap())
                .unwrap()
        };
        assert_eq!(argmax(first), 2);
        assert_eq!(argmax(last), 4);
    }

    #[test]
    fn entropy_separates_tone_from_noise() {
        let tone_p = periodogram(&tone(256, 16.0));
        // LCG noise.
        let mut state = 12345u64;
        let noise: Vec<f64> = (0..256)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let noise_p = periodogram(&noise);
        let ht = spectral_entropy(&tone_p);
        let hn = spectral_entropy(&noise_p);
        assert!(ht < 0.3, "tone entropy {ht}");
        assert!(hn > 0.8, "noise entropy {hn}");
    }

    #[test]
    fn concentration_of_a_tone_is_total() {
        let p = periodogram(&tone(256, 16.0));
        assert!(power_concentration(&p, 1) > 0.99);
        assert_eq!(power_concentration(&[], 3), 0.0);
    }

    #[test]
    fn periodogram_parseval() {
        let x = tone(100, 10.0);
        let te: f64 = x.iter().map(|v| v * v).sum();
        let p = periodogram(&x);
        // One-sided: interior bins count twice.
        let mut fe = p[0];
        for (k, &v) in p.iter().enumerate().skip(1) {
            let double = !(x.len().is_multiple_of(2) && k == p.len() - 1);
            fe += v * if double { 2.0 } else { 1.0 };
        }
        assert!((te - fe).abs() < 1e-6 * te.max(1.0));
    }
}
