//! Window functions for short-time spectral analysis.

/// Supported analysis windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// No tapering (all ones).
    Rectangular,
    /// Hann window `0.5 − 0.5·cos(2πn/(N−1))`.
    Hann,
    /// Hamming window `0.54 − 0.46·cos(2πn/(N−1))`.
    Hamming,
}

impl Window {
    /// Materializes the window coefficients for length `n`.
    ///
    /// # Panics
    /// Panics for `n == 0`.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        assert!(n > 0, "window length must be positive");
        if n == 1 {
            return vec![1.0];
        }
        (0..n)
            .map(|i| {
                let phase = 2.0 * std::f64::consts::PI * i as f64 / (n - 1) as f64;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hann => 0.5 - 0.5 * phase.cos(),
                    Window::Hamming => 0.54 - 0.46 * phase.cos(),
                }
            })
            .collect()
    }

    /// The coherent gain (mean coefficient) — what a windowed constant
    /// signal's DC bin is scaled by.
    pub fn coherent_gain(self, n: usize) -> f64 {
        let c = self.coefficients(n);
        c.iter().sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(16)
            .iter()
            .all(|&v| v == 1.0));
        assert_eq!(Window::Rectangular.coherent_gain(16), 1.0);
    }

    #[test]
    fn hann_is_zero_at_edges_and_one_in_middle() {
        let w = Window::Hann.coefficients(65);
        assert!(w[0].abs() < 1e-12);
        assert!(w[64].abs() < 1e-12);
        assert!((w[32] - 1.0).abs() < 1e-12);
        // Symmetric.
        for i in 0..32 {
            assert!((w[i] - w[64 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn hamming_never_reaches_zero() {
        let w = Window::Hamming.coefficients(33);
        assert!(w.iter().all(|&v| v > 0.05));
        assert!((w[0] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn gains_are_ordered() {
        // Rectangular passes most energy, Hann least of these three.
        let n = 64;
        let r = Window::Rectangular.coherent_gain(n);
        let hm = Window::Hamming.coherent_gain(n);
        let hn = Window::Hann.coherent_gain(n);
        assert!(r > hm && hm > hn);
    }

    #[test]
    fn length_one_is_identity() {
        assert_eq!(Window::Hann.coefficients(1), vec![1.0]);
    }
}
