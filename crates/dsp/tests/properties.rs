//! Property-based tests for the DSP substrate.

use proptest::prelude::*;
use spectragan_dsp::{
    autocorrelation, expand_spectrum, expand_spectrum_fractional, fft, ifft, irfft, magnitude,
    mask_quantile, rfft, Complex,
};

fn arb_signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 2..max_len)
}

proptest! {
    /// ifft(fft(x)) == x for any complex signal of any length.
    #[test]
    fn fft_roundtrip(re in arb_signal(300), seed in 0u64..1000) {
        let x: Vec<Complex> = re
            .iter()
            .enumerate()
            .map(|(i, &r)| Complex::new(r, ((i as u64 + seed) % 17) as f64 - 8.0))
            .collect();
        let back = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    /// Parseval: time energy equals spectral energy / N.
    #[test]
    fn fft_parseval(re in arb_signal(300)) {
        let x: Vec<Complex> = re.iter().map(|&r| Complex::real(r)).collect();
        let n = x.len() as f64;
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 = fft(&x).iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
        prop_assert!((te - fe).abs() < 1e-6 * te.max(1.0));
    }

    /// irfft(rfft(x)) == x for any real signal.
    #[test]
    fn rfft_roundtrip(x in arb_signal(300)) {
        let back = irfft(&rfft(&x), x.len());
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    /// The one-sided spectrum of a real signal has a real DC bin.
    #[test]
    fn rfft_dc_is_real(x in arb_signal(200)) {
        let spec = rfft(&x);
        prop_assert!(spec[0].im.abs() < 1e-9);
        prop_assert!((spec[0].re - x.iter().sum::<f64>()).abs() < 1e-6 * (1.0 + x.iter().sum::<f64>().abs()));
    }

    /// Masking only ever zeroes bins, never alters surviving ones, and
    /// keeps at least the strongest bin for q < 1.
    #[test]
    fn mask_is_a_projection(x in arb_signal(200), q in 0.0f64..0.99) {
        let spec = rfft(&x);
        let (masked, mask) = mask_quantile(&spec, q);
        let mags = magnitude(&spec);
        let max_mag = mags.iter().cloned().fold(0.0, f64::max);
        for ((m, orig), keep) in masked.iter().zip(&spec).zip(&mask) {
            if *keep {
                prop_assert_eq!(*m, *orig);
            } else {
                prop_assert_eq!(*m, Complex::ZERO);
            }
        }
        // The largest bin survives whenever the quantile threshold is
        // strictly below it (the paper's mask uses a strict comparison,
        // so a threshold equal to the max kills every bin).
        let thr = spectragan_dsp::spectrum::quantile(&mags, q);
        if max_mag > 0.0 && thr < max_mag {
            let strongest = mags.iter().position(|&v| v == max_mag).unwrap();
            prop_assert!(mask[strongest]);
        }
    }

    /// k-expansion: output length and k-periodicity of the IFFT hold
    /// for any spectrum, not just spectra of real signals.
    #[test]
    fn expansion_periodicity(x in arb_signal(120), k in 1usize..4) {
        // Make the length even to keep Nyquist handling simple.
        let mut x = x;
        if x.len() % 2 == 1 { x.pop(); }
        prop_assume!(x.len() >= 2);
        let t = x.len();
        let spec = rfft(&x);
        let out = expand_spectrum(&spec, t, k);
        prop_assert_eq!(out.len(), (k * t) / 2 + 1);
        let long = irfft(&out, k * t);
        for rep in 1..k {
            for i in 0..t {
                prop_assert!((long[rep * t + i] - long[i]).abs() < 1e-6 * (1.0 + long[i].abs()));
            }
        }
    }

    /// Autocorrelation is bounded by 1 in magnitude (Cauchy–Schwarz)
    /// at lag 0 and normalized to exactly 1 there.
    #[test]
    fn autocorrelation_bounds(x in arb_signal(200), lags in 1usize..50) {
        let r = autocorrelation(&x, lags);
        prop_assert!((r[0] - 1.0).abs() < 1e-9);
        for &v in &r {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v));
        }
    }

    /// Fractional expansion preserves every single tone's weighted
    /// amplitude exactly — `Σ_j w_out(j)·|out[j]| = ratio·w_in(k)·|z|`,
    /// the conjugate-symmetry-corrected conservation law — for any
    /// non-integer ratio, odd and even lengths, expansion and
    /// compression, including bins folding at the output Nyquist.
    #[test]
    fn fractional_single_tone_weighted_amplitude_is_conserved(
        t_in in 4usize..64,
        t_out in 4usize..200,
        bin_sel in 0u32..1000,
        re in -50.0f64..50.0,
        im in -50.0f64..50.0,
    ) {
        prop_assume!(!t_out.is_multiple_of(t_in));
        let f_in = t_in / 2 + 1;
        let bin = bin_sel as usize % f_in;
        // DC (and even-length Nyquist) of a real signal is real.
        let real_only = bin == 0 || (t_in.is_multiple_of(2) && bin == t_in / 2);
        let z = Complex::new(re, if real_only { 0.0 } else { im });
        prop_assume!(z.abs() > 1e-9);
        let mut spec = vec![Complex::ZERO; f_in];
        spec[bin] = z;
        let out = expand_spectrum_fractional(&spec, t_in, t_out);
        let w = |j: usize, n: usize| -> f64 {
            if j == 0 || (n.is_multiple_of(2) && j == n / 2) { 1.0 } else { 2.0 }
        };
        let got: f64 = out
            .iter()
            .enumerate()
            .map(|(j, v)| w(j, t_out) * v.abs())
            .sum();
        let want = t_out as f64 / t_in as f64 * w(bin, t_in) * z.abs();
        prop_assert!(
            (got - want).abs() < 1e-9 * want,
            "t_in={} t_out={} bin={}: {} vs {}", t_in, t_out, bin, got, want
        );
    }

    /// For ratios ≥ 2 no two source bins share an output bin, so total
    /// spectral energy is bounded by the per-tone split factor
    /// `(1−f)² + f² ∈ [0.5, 1]` of the integer-path scaling `ratio²`.
    #[test]
    fn fractional_expansion_energy_within_split_bounds(
        x in arb_signal(60),
        stretch in 1usize..40,
    ) {
        let t_in = x.len();
        let t_out = 2 * t_in + stretch.min(t_in - 1);
        prop_assume!(!t_out.is_multiple_of(t_in));
        let spec = rfft(&x);
        let e_in = spectragan_dsp::spectrum::one_sided_energy(&spec, t_in);
        prop_assume!(e_in > 1e-9);
        let out = expand_spectrum_fractional(&spec, t_in, t_out);
        prop_assert_eq!(out.len(), t_out / 2 + 1);
        let e_out = spectragan_dsp::spectrum::one_sided_energy(&out, t_out);
        let ratio = t_out as f64 / t_in as f64;
        let scale = ratio * ratio * e_in;
        prop_assert!(
            e_out >= 0.45 * scale && e_out <= 1.05 * scale,
            "t_in={} t_out={}: e_out {} outside [{}, {}]",
            t_in, t_out, e_out, 0.45 * scale, 1.05 * scale
        );
    }
}
