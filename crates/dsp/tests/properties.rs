//! Property-based tests for the DSP substrate.

use proptest::prelude::*;
use spectragan_dsp::{
    autocorrelation, expand_spectrum, fft, ifft, irfft, magnitude, mask_quantile, rfft, Complex,
};

fn arb_signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 2..max_len)
}

proptest! {
    /// ifft(fft(x)) == x for any complex signal of any length.
    #[test]
    fn fft_roundtrip(re in arb_signal(300), seed in 0u64..1000) {
        let x: Vec<Complex> = re
            .iter()
            .enumerate()
            .map(|(i, &r)| Complex::new(r, ((i as u64 + seed) % 17) as f64 - 8.0))
            .collect();
        let back = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    /// Parseval: time energy equals spectral energy / N.
    #[test]
    fn fft_parseval(re in arb_signal(300)) {
        let x: Vec<Complex> = re.iter().map(|&r| Complex::real(r)).collect();
        let n = x.len() as f64;
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 = fft(&x).iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
        prop_assert!((te - fe).abs() < 1e-6 * te.max(1.0));
    }

    /// irfft(rfft(x)) == x for any real signal.
    #[test]
    fn rfft_roundtrip(x in arb_signal(300)) {
        let back = irfft(&rfft(&x), x.len());
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    /// The one-sided spectrum of a real signal has a real DC bin.
    #[test]
    fn rfft_dc_is_real(x in arb_signal(200)) {
        let spec = rfft(&x);
        prop_assert!(spec[0].im.abs() < 1e-9);
        prop_assert!((spec[0].re - x.iter().sum::<f64>()).abs() < 1e-6 * (1.0 + x.iter().sum::<f64>().abs()));
    }

    /// Masking only ever zeroes bins, never alters surviving ones, and
    /// keeps at least the strongest bin for q < 1.
    #[test]
    fn mask_is_a_projection(x in arb_signal(200), q in 0.0f64..0.99) {
        let spec = rfft(&x);
        let (masked, mask) = mask_quantile(&spec, q);
        let mags = magnitude(&spec);
        let max_mag = mags.iter().cloned().fold(0.0, f64::max);
        for ((m, orig), keep) in masked.iter().zip(&spec).zip(&mask) {
            if *keep {
                prop_assert_eq!(*m, *orig);
            } else {
                prop_assert_eq!(*m, Complex::ZERO);
            }
        }
        // The largest bin survives whenever the quantile threshold is
        // strictly below it (the paper's mask uses a strict comparison,
        // so a threshold equal to the max kills every bin).
        let thr = spectragan_dsp::spectrum::quantile(&mags, q);
        if max_mag > 0.0 && thr < max_mag {
            let strongest = mags.iter().position(|&v| v == max_mag).unwrap();
            prop_assert!(mask[strongest]);
        }
    }

    /// k-expansion: output length and k-periodicity of the IFFT hold
    /// for any spectrum, not just spectra of real signals.
    #[test]
    fn expansion_periodicity(x in arb_signal(120), k in 1usize..4) {
        // Make the length even to keep Nyquist handling simple.
        let mut x = x;
        if x.len() % 2 == 1 { x.pop(); }
        prop_assume!(x.len() >= 2);
        let t = x.len();
        let spec = rfft(&x);
        let out = expand_spectrum(&spec, t, k);
        prop_assert_eq!(out.len(), (k * t) / 2 + 1);
        let long = irfft(&out, k * t);
        for rep in 1..k {
            for i in 0..t {
                prop_assert!((long[rep * t + i] - long[i]).abs() < 1e-6 * (1.0 + long[i].abs()));
            }
        }
    }

    /// Autocorrelation is bounded by 1 in magnitude (Cauchy–Schwarz)
    /// at lag 0 and normalized to exactly 1 there.
    #[test]
    fn autocorrelation_bounds(x in arb_signal(200), lags in 1usize..50) {
        let r = autocorrelation(&x, lags);
        prop_assert!((r[0] - 1.0).abs() < 1e-9);
        for &v in &r {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v));
        }
    }
}
