//! Static context maps: the public attributes generation is
//! conditioned on.
//!
//! The paper uses 27 attributes (Table 1): population census, 12 land
//! uses from the Copernicus Urban Atlas and 14 PoI categories from
//! OpenStreetMap, all rasterized onto the traffic grid. The attribute
//! list here mirrors Table 1 exactly, including the measured mean
//! Pearson correlation of each attribute with traffic, which the
//! synthetic-data generator uses as ground truth and the Table 1
//! harness reproduces.

use crate::grid::GridSpec;
use serde::{Deserialize, Serialize};

/// The 27 context attributes of Table 1, as `(name, mean PCC)` — the
/// per-city PCC of each attribute against time-averaged traffic.
pub const ATTRIBUTES: [(&str, f64); 27] = [
    ("Census", 0.597),
    ("Continuous Urban", 0.533),
    ("High Dense Urban", 0.106),
    ("Medium Dense Urban", -0.025),
    ("Low Dense Urban", -0.037),
    ("Very-Low Dense Urban", -0.033),
    ("Isolated Structures", -0.060),
    ("Green Urban", 0.099),
    ("Industrial/Commercial", 0.129),
    ("Air/Sea Ports", 0.004),
    ("Leisure Facilities", 0.029),
    ("Barren Lands", -0.281),
    ("Sea", -0.192),
    ("Tourism", 0.396),
    ("Cafe", 0.480),
    ("Parking", 0.187),
    ("Restaurant", 0.509),
    ("Post/Police", 0.188),
    ("Traffic Signals", 0.370),
    ("Office", 0.389),
    ("Public Transport", 0.315),
    ("Shop", 0.506),
    ("Secondary Roads", 0.193),
    ("Primary Roads", 0.164),
    ("Motorways", 0.030),
    ("Railway Stations", 0.141),
    ("Tram Stops", 0.236),
];

/// Number of context attributes (`C` in the paper's notation).
pub const NUM_ATTRIBUTES: usize = ATTRIBUTES.len();

/// Index of the census attribute (used by Fig. 1b and the population
/// use case's discussion).
pub const CENSUS: usize = 0;

/// A static context tensor `c ∈ R^{C×H×W}`: `c` attribute planes over
/// an `H×W` grid, channel-major, each plane row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextMap {
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl ContextMap {
    /// Creates a map from a flat `c·h·w` buffer (channel-major).
    ///
    /// # Panics
    /// Panics if the buffer length does not match.
    pub fn from_vec(data: Vec<f32>, c: usize, h: usize, w: usize) -> Self {
        assert_eq!(data.len(), c * h * w, "context buffer length mismatch");
        ContextMap { c, h, w, data }
    }

    /// All-zero context.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        ContextMap {
            c,
            h,
            w,
            data: vec![0.0; c * h * w],
        }
    }

    /// Number of attribute channels.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// The grid this map lives on.
    pub fn grid(&self) -> GridSpec {
        GridSpec::new(self.h, self.w)
    }

    /// Flat read-only buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Value of attribute `c` at pixel `(y, x)`.
    #[inline]
    pub fn at(&self, c: usize, y: usize, x: usize) -> f32 {
        debug_assert!(c < self.c && y < self.h && x < self.w);
        self.data[(c * self.h + y) * self.w + x]
    }

    /// Mutable value of attribute `c` at pixel `(y, x)`.
    #[inline]
    pub fn at_mut(&mut self, c: usize, y: usize, x: usize) -> &mut f32 {
        debug_assert!(c < self.c && y < self.h && x < self.w);
        &mut self.data[(c * self.h + y) * self.w + x]
    }

    /// One attribute plane as a slice of `h·w` values.
    pub fn channel(&self, c: usize) -> &[f32] {
        assert!(c < self.c, "channel {c} out of {}", self.c);
        &self.data[c * self.h * self.w..(c + 1) * self.h * self.w]
    }

    /// Standardizes each channel to zero mean / unit variance across
    /// the city (constant channels become all-zero). Neural models
    /// condition on the standardized context.
    pub fn standardized(&self) -> ContextMap {
        let hw = self.h * self.w;
        let mut out = self.clone();
        for c in 0..self.c {
            let plane = &mut out.data[c * hw..(c + 1) * hw];
            let mean = plane.iter().sum::<f32>() / hw as f32;
            let var = plane.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / hw as f32;
            let std = var.sqrt();
            if std > 1e-8 {
                for v in plane.iter_mut() {
                    *v = (*v - mean) / std;
                }
            } else {
                plane.fill(0.0);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_table_is_consistent() {
        assert_eq!(NUM_ATTRIBUTES, 27);
        assert_eq!(ATTRIBUTES[CENSUS].0, "Census");
        // The strongest single attribute in Table 1 is census at 0.597;
        // none should exceed it.
        for (name, pcc) in ATTRIBUTES {
            assert!(pcc.abs() <= 0.597, "{name} PCC {pcc} exceeds census");
        }
    }

    #[test]
    fn indexing_is_channel_major() {
        let mut m = ContextMap::zeros(2, 2, 2);
        *m.at_mut(1, 0, 1) = 9.0;
        assert_eq!(m.channel(1), &[0.0, 9.0, 0.0, 0.0]);
        assert_eq!(m.at(1, 0, 1), 9.0);
        assert_eq!(m.at(0, 0, 1), 0.0);
    }

    #[test]
    fn standardized_channels_have_zero_mean_unit_var() {
        let data = vec![
            1.0, 2.0, 3.0, 4.0, /* ch 1: constant */ 5.0, 5.0, 5.0, 5.0,
        ];
        let m = ContextMap::from_vec(data, 2, 2, 2);
        let s = m.standardized();
        let ch0 = s.channel(0);
        let mean: f32 = ch0.iter().sum::<f32>() / 4.0;
        let var: f32 = ch0.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-5);
        assert!(s.channel(1).iter().all(|&v| v == 0.0));
    }
}
