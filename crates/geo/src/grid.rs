//! Regular grid tessellation of a city's surface.
//!
//! The datasets tessellate space into 250 m × 250 m pixels (§3.1); a
//! [`GridSpec`] is just the `H×W` extent plus indexing and adjacency
//! helpers (4-adjacency is what the vRAN use case's RU graph needs).

use serde::{Deserialize, Serialize};

/// Dimensions of a regular spatial grid, `height` rows × `width` cols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Number of rows (pixels along the north–south axis).
    pub height: usize,
    /// Number of columns (pixels along the east–west axis).
    pub width: usize,
}

impl GridSpec {
    /// Creates a grid of the given extent.
    pub fn new(height: usize, width: usize) -> Self {
        GridSpec { height, width }
    }

    /// Total number of pixels.
    pub fn num_pixels(&self) -> usize {
        self.height * self.width
    }

    /// Flat row-major index of pixel `(y, x)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn index(&self, y: usize, x: usize) -> usize {
        assert!(
            y < self.height && x < self.width,
            "pixel ({y},{x}) outside {self:?}"
        );
        y * self.width + x
    }

    /// Inverse of [`GridSpec::index`].
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        assert!(idx < self.num_pixels(), "index {idx} outside {self:?}");
        (idx / self.width, idx % self.width)
    }

    /// Iterates all pixel coordinates row-major.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.height).flat_map(move |y| (0..self.width).map(move |x| (y, x)))
    }

    /// The 4-adjacent neighbours of `(y, x)` that are inside the grid.
    pub fn neighbors4(&self, y: usize, x: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(4);
        if y > 0 {
            out.push((y - 1, x));
        }
        if y + 1 < self.height {
            out.push((y + 1, x));
        }
        if x > 0 {
            out.push((y, x - 1));
        }
        if x + 1 < self.width {
            out.push((y, x + 1));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let g = GridSpec::new(3, 5);
        for (y, x) in g.iter() {
            assert_eq!(g.coords(g.index(y, x)), (y, x));
        }
        assert_eq!(g.num_pixels(), 15);
    }

    #[test]
    fn iter_is_row_major_and_complete() {
        let g = GridSpec::new(2, 2);
        let all: Vec<_> = g.iter().collect();
        assert_eq!(all, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn corner_has_two_neighbors_interior_has_four() {
        let g = GridSpec::new(3, 3);
        assert_eq!(g.neighbors4(0, 0).len(), 2);
        assert_eq!(g.neighbors4(1, 1).len(), 4);
        assert_eq!(g.neighbors4(0, 1).len(), 3);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn index_is_bounds_checked() {
        GridSpec::new(2, 2).index(2, 0);
    }
}
