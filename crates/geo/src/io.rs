//! On-disk formats for traffic and context maps.
//!
//! Two formats:
//!
//! * **SGTM binary** — a compact little-endian container for sharing
//!   generated datasets (the paper's stated goal is publishing a
//!   reference ensemble of synthetic maps; a few hundred MB of f32s
//!   should not travel as JSON). Layout: magic `SGTM`/`SGCM`, a u16
//!   version, the dimensions as u32s, then the raw f32 payload.
//! * **CSV** — long-format text (`t,y,x,value` / `c,y,x,value`) for
//!   plotting and spreadsheet work.
//!
//! All readers validate magic, version and payload length and return
//! [`IoError`] rather than panicking: files cross trust boundaries.

use crate::context::ContextMap;
use crate::traffic::TrafficMap;
use std::fmt;
use std::fs;
use std::path::Path;

/// Current container version.
pub const FORMAT_VERSION: u16 = 1;

const TRAFFIC_MAGIC: &[u8; 4] = b"SGTM";
const CONTEXT_MAGIC: &[u8; 4] = b"SGCM";

/// Errors for map (de)serialization.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Fs(std::io::Error),
    /// Wrong magic bytes (not a map file, or the wrong kind of map).
    BadMagic,
    /// Unsupported container version.
    BadVersion(u16),
    /// Payload shorter or longer than the header promises.
    BadLength { expected: usize, actual: usize },
    /// Dimension header would overflow.
    BadDims,
    /// Malformed CSV line.
    BadCsv(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Fs(e) => write!(f, "filesystem error: {e}"),
            IoError::BadMagic => write!(f, "not a SpectraGAN map file (bad magic)"),
            IoError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            IoError::BadLength { expected, actual } => {
                write!(
                    f,
                    "payload length {actual} does not match header ({expected})"
                )
            }
            IoError::BadDims => write!(f, "dimension header overflows"),
            IoError::BadCsv(line) => write!(f, "malformed CSV line: {line}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Fs(e)
    }
}

/// Encodes a traffic map into the SGTM container.
pub fn encode_traffic(map: &TrafficMap) -> Vec<u8> {
    encode_map(
        TRAFFIC_MAGIC,
        [map.len_t(), map.height(), map.width()],
        map.data(),
    )
}

/// Shared encoder: magic, version, three u32 dims, f32 payload — all
/// little-endian.
fn encode_map(magic: &[u8; 4], dims: [usize; 3], data: &[f32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(18 + 4 * data.len());
    buf.extend_from_slice(magic);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    for d in dims {
        buf.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &v in data {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

/// Reads the little-endian f32 payload that follows a validated header.
fn decode_payload(bytes: &[u8], expected: usize) -> Result<Vec<f32>, IoError> {
    if bytes.len() != 4 * expected {
        return Err(IoError::BadLength {
            expected: 4 * expected,
            actual: bytes.len(),
        });
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Decodes a traffic map from the SGTM container.
pub fn decode_traffic(mut bytes: &[u8]) -> Result<TrafficMap, IoError> {
    let (t, h, w) = decode_header(&mut bytes, TRAFFIC_MAGIC)?;
    let expected = t
        .checked_mul(h)
        .and_then(|v| v.checked_mul(w))
        .ok_or(IoError::BadDims)?;
    let data = decode_payload(bytes, expected)?;
    Ok(TrafficMap::from_vec(data, t, h, w))
}

/// Encodes a context map into the SGCM container.
pub fn encode_context(map: &ContextMap) -> Vec<u8> {
    encode_map(
        CONTEXT_MAGIC,
        [map.channels(), map.height(), map.width()],
        map.data(),
    )
}

/// Decodes a context map from the SGCM container.
pub fn decode_context(mut bytes: &[u8]) -> Result<ContextMap, IoError> {
    let (c, h, w) = decode_header(&mut bytes, CONTEXT_MAGIC)?;
    let expected = c
        .checked_mul(h)
        .and_then(|v| v.checked_mul(w))
        .ok_or(IoError::BadDims)?;
    let data = decode_payload(bytes, expected)?;
    Ok(ContextMap::from_vec(data, c, h, w))
}

fn decode_header(bytes: &mut &[u8], magic: &[u8; 4]) -> Result<(usize, usize, usize), IoError> {
    if bytes.len() < 18 {
        return Err(IoError::BadMagic);
    }
    if &bytes[..4] != magic {
        return Err(IoError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(IoError::BadVersion(version));
    }
    let dim = |i: usize| {
        u32::from_le_bytes([
            bytes[6 + 4 * i],
            bytes[7 + 4 * i],
            bytes[8 + 4 * i],
            bytes[9 + 4 * i],
        ]) as usize
    };
    let (a, b, c) = (dim(0), dim(1), dim(2));
    *bytes = &bytes[18..];
    Ok((a, b, c))
}

/// Writes a traffic map to `path` in the SGTM container.
pub fn save_traffic(map: &TrafficMap, path: impl AsRef<Path>) -> Result<(), IoError> {
    fs::write(path, encode_traffic(map)).map_err(IoError::from)
}

/// Reads a traffic map from a SGTM file.
pub fn load_traffic(path: impl AsRef<Path>) -> Result<TrafficMap, IoError> {
    decode_traffic(&fs::read(path)?)
}

/// Writes a context map to `path` in the SGCM container.
pub fn save_context(map: &ContextMap, path: impl AsRef<Path>) -> Result<(), IoError> {
    fs::write(path, encode_context(map)).map_err(IoError::from)
}

/// Reads a context map from a SGCM file.
pub fn load_context(path: impl AsRef<Path>) -> Result<ContextMap, IoError> {
    decode_context(&fs::read(path)?)
}

/// Renders a traffic map as long-format CSV (`t,y,x,value`).
pub fn traffic_to_csv(map: &TrafficMap) -> String {
    let mut out = String::from("t,y,x,value\n");
    for t in 0..map.len_t() {
        for y in 0..map.height() {
            for x in 0..map.width() {
                out.push_str(&format!("{t},{y},{x},{}\n", map.at(t, y, x)));
            }
        }
    }
    out
}

/// Parses a traffic map from long-format CSV produced by
/// [`traffic_to_csv`]. Dimensions are inferred from the maxima; every
/// cell must be present exactly once.
pub fn traffic_from_csv(csv: &str) -> Result<TrafficMap, IoError> {
    let mut rows: Vec<(usize, usize, usize, f32)> = Vec::new();
    for line in csv.lines().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let mut next = |what: &str| {
            parts
                .next()
                .ok_or_else(|| IoError::BadCsv(format!("{line} (missing {what})")))
        };
        let t = next("t")?
            .trim()
            .parse::<usize>()
            .map_err(|_| IoError::BadCsv(line.into()))?;
        let y = next("y")?
            .trim()
            .parse::<usize>()
            .map_err(|_| IoError::BadCsv(line.into()))?;
        let x = next("x")?
            .trim()
            .parse::<usize>()
            .map_err(|_| IoError::BadCsv(line.into()))?;
        let v = next("value")?
            .trim()
            .parse::<f32>()
            .map_err(|_| IoError::BadCsv(line.into()))?;
        rows.push((t, y, x, v));
    }
    if rows.is_empty() {
        return Err(IoError::BadCsv("empty file".into()));
    }
    let t = rows.iter().map(|r| r.0).max().expect("non-empty") + 1;
    let h = rows.iter().map(|r| r.1).max().expect("non-empty") + 1;
    let w = rows.iter().map(|r| r.2).max().expect("non-empty") + 1;
    if rows.len() != t * h * w {
        return Err(IoError::BadLength {
            expected: t * h * w,
            actual: rows.len(),
        });
    }
    let mut map = TrafficMap::zeros(t, h, w);
    for (ti, y, x, v) in rows {
        *map.at_mut(ti, y, x) = v;
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_traffic() -> TrafficMap {
        TrafficMap::from_vec((0..24).map(|i| i as f32 * 0.25).collect(), 2, 3, 4)
    }

    fn demo_context() -> ContextMap {
        ContextMap::from_vec((0..30).map(|i| i as f32 - 15.0).collect(), 5, 3, 2)
    }

    #[test]
    fn traffic_binary_roundtrip() {
        let map = demo_traffic();
        let bytes = encode_traffic(&map);
        let back = decode_traffic(&bytes).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn context_binary_roundtrip() {
        let map = demo_context();
        let back = decode_context(&encode_context(&map)).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn magic_is_checked_both_ways() {
        let t = encode_traffic(&demo_traffic());
        assert!(matches!(decode_context(&t), Err(IoError::BadMagic)));
        let c = encode_context(&demo_context());
        assert!(matches!(decode_traffic(&c), Err(IoError::BadMagic)));
        assert!(matches!(decode_traffic(b"nope"), Err(IoError::BadMagic)));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let bytes = encode_traffic(&demo_traffic());
        let cut = &bytes[..bytes.len() - 4];
        assert!(matches!(
            decode_traffic(cut),
            Err(IoError::BadLength { .. })
        ));
    }

    #[test]
    fn version_is_checked() {
        let mut bytes = encode_traffic(&demo_traffic()).to_vec();
        bytes[4] = 99;
        assert!(matches!(
            decode_traffic(&bytes),
            Err(IoError::BadVersion(99))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("spectragan_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.sgtm");
        let map = demo_traffic();
        save_traffic(&map, &path).unwrap();
        assert_eq!(load_traffic(&path).unwrap(), map);
    }

    #[test]
    fn csv_roundtrip() {
        let map = demo_traffic();
        let csv = traffic_to_csv(&map);
        let back = traffic_from_csv(&csv).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(traffic_from_csv("t,y,x,value\n1,2,notanumber,0.5\n").is_err());
        assert!(traffic_from_csv("t,y,x,value\n").is_err());
        // Missing cells: declare a 2×1×1 map but provide one row.
        assert!(matches!(
            traffic_from_csv("t,y,x,value\n1,0,0,0.5\n"),
            Err(IoError::BadLength { .. })
        ));
    }
}
