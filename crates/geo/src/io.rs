//! On-disk formats for traffic and context maps, plus the atomic-write
//! and checksummed-container primitives every persistent write in the
//! workspace routes through.
//!
//! Three formats:
//!
//! * **SGTM binary** — a compact little-endian container for sharing
//!   generated datasets (the paper's stated goal is publishing a
//!   reference ensemble of synthetic maps; a few hundred MB of f32s
//!   should not travel as JSON). Layout: magic `SGTM`/`SGCM`, a u16
//!   version, the dimensions as u32s, then the raw f32 payload.
//! * **CSV** — long-format text (`t,y,x,value` / `c,y,x,value`) for
//!   plotting and spreadsheet work.
//! * **Checked container** — a generic `magic + version + length +
//!   CRC-32 + payload` frame ([`encode_checked`]/[`decode_checked`])
//!   for payloads whose silent corruption would be catastrophic
//!   (training checkpoints). Unlike the map headers, which only bound
//!   the payload length, the CRC detects torn writes *and* bit flips.
//!
//! All readers validate magic, version and payload length and return
//! [`IoError`] rather than panicking: files cross trust boundaries.
//!
//! # Crash safety
//!
//! [`atomic_write`] is the single write path: bytes land in a hidden
//! temporary file in the destination directory, are fsynced, and then
//! `rename(2)`d over the target. A crash at any point leaves either the
//! old file or the new file — never a truncated hybrid. Every persistent
//! writer in the workspace ([`save_traffic`], [`save_context`], the
//! CLI's dataset/model/CSV writers and the training checkpoints) goes
//! through it.

use crate::context::ContextMap;
use crate::patch::TrafficBand;
use crate::traffic::TrafficMap;
use spectragan_obs as obs;
use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::OnceLock;
use std::time::Instant;

/// Cached metric handles for the persistent-write path. Recording
/// self-gates on [`obs::enabled`]; disabled cost is one relaxed load
/// per [`atomic_write`].
struct IoMetrics {
    /// Payload bytes handed to [`atomic_write`].
    write_bytes: &'static obs::Counter,
    /// Completed [`atomic_write`] calls.
    writes: &'static obs::Counter,
    /// `fsync` (`File::sync_all`) latency of the payload file.
    fsync_ns: &'static obs::Histogram,
}

fn io_metrics() -> &'static IoMetrics {
    static M: OnceLock<IoMetrics> = OnceLock::new();
    M.get_or_init(|| IoMetrics {
        write_bytes: obs::counter("spectragan_io_write_bytes_total"),
        writes: obs::counter("spectragan_io_writes_total"),
        fsync_ns: obs::histogram("spectragan_io_fsync_ns"),
    })
}

/// Current container version.
pub const FORMAT_VERSION: u16 = 1;

const TRAFFIC_MAGIC: &[u8; 4] = b"SGTM";
const CONTEXT_MAGIC: &[u8; 4] = b"SGCM";
const BAND_MAGIC: &[u8; 4] = b"SGBD";

/// Magic of the sharded-training gradient frames exchanged between the
/// train coordinator and its worker processes (see `spectragan-core`'s
/// `shard` module). The frame body is caller-defined; the container
/// framing (version + length + CRC) is [`encode_checked`]'s.
pub const GRAD_FRAME_MAGIC: &[u8; 4] = b"SGGF";

/// Errors for map (de)serialization.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Fs(std::io::Error),
    /// Wrong magic bytes (not a map file, or the wrong kind of map).
    BadMagic,
    /// Unsupported container version.
    BadVersion(u16),
    /// Payload shorter or longer than the header promises.
    BadLength { expected: usize, actual: usize },
    /// Dimension header would overflow.
    BadDims,
    /// Malformed CSV line.
    BadCsv(String),
    /// Payload checksum mismatch (torn write or bit corruption).
    BadChecksum { expected: u32, actual: u32 },
    /// A frame's length header exceeds the caller's cap. Length
    /// headers are read *before* the CRC can be validated, so they are
    /// untrusted input: without a cap a forged or corrupt header could
    /// drive an arbitrarily large allocation.
    FrameTooLarge { len: u64, max: usize },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Fs(e) => write!(f, "filesystem error: {e}"),
            IoError::BadMagic => write!(f, "not a SpectraGAN map file (bad magic)"),
            IoError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            IoError::BadLength { expected, actual } => {
                write!(
                    f,
                    "payload length {actual} does not match header ({expected})"
                )
            }
            IoError::BadDims => write!(f, "dimension header overflows"),
            IoError::BadCsv(line) => write!(f, "malformed CSV line: {line}"),
            IoError::BadChecksum { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: header says {expected:#010x}, payload hashes to \
                     {actual:#010x} (torn write or corruption)"
                )
            }
            IoError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame length header claims {len} bytes, above the {max}-byte cap \
                     (forged or corrupt frame)"
                )
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Fs(e)
    }
}

// ---------------------------------------------------------------------
// Atomic writes
// ---------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: the data goes to a hidden
/// temporary file in the same directory, is flushed and fsynced, and is
/// then renamed over the target. Readers concurrent with a crash see
/// either the complete old contents or the complete new contents —
/// never a truncated mix. The temporary is removed on failure.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), IoError> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            IoError::Fs(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("not a file path: {}", path.display()),
            ))
        })?
        .to_string_lossy()
        .into_owned();
    // Same-directory temporary so the final rename never crosses a
    // filesystem boundary; the pid suffix keeps concurrent processes
    // (e.g. parallel test binaries) from clobbering each other's tmp.
    let tmp_name = format!(".{file_name}.tmp.{}", std::process::id());
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };
    let write_and_sync = || -> std::io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        let t0 = obs::enabled().then(Instant::now);
        f.sync_all()?;
        if let Some(t0) = t0 {
            io_metrics().fsync_ns.record(t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    };
    if let Err(e) = write_and_sync() {
        let _ = fs::remove_file(&tmp);
        return Err(IoError::Fs(e));
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(IoError::Fs(e));
    }
    if obs::enabled() {
        let m = io_metrics();
        m.write_bytes.inc(bytes.len() as u64);
        m.writes.inc(1);
    }
    // Best-effort directory fsync so the rename itself is durable; some
    // platforms refuse to open directories, which is fine to ignore.
    if let Some(d) = dir {
        if let Ok(df) = fs::File::open(d) {
            let _ = df.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// CRC-32 and the checked container
// ---------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Nibble-driven table: small enough to build per call without a
    // cache, fast enough for multi-MB checkpoint payloads.
    let mut table = [0u32; 16];
    for (i, entry) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..4 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *entry = c;
    }
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0x0F) as usize] ^ (crc >> 4);
        crc = table[((crc ^ (b as u32 >> 4)) & 0x0F) as usize] ^ (crc >> 4);
    }
    !crc
}

/// Header size of the checked container: magic (4) + version (2) +
/// payload length (8) + CRC-32 (4).
const CHECKED_HEADER: usize = 18;

/// Frames `payload` in the checked container: `magic`, the container
/// version, the payload length as u64, the payload's CRC-32, then the
/// payload itself — all little-endian.
pub fn encode_checked(magic: &[u8; 4], payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(CHECKED_HEADER + payload.len());
    buf.extend_from_slice(magic);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Validates a checked container and returns its payload. Rejects wrong
/// magic, unsupported versions, truncated or over-long payloads
/// ([`IoError::BadLength`]) and checksum mismatches
/// ([`IoError::BadChecksum`]) — so a torn or bit-flipped file can never
/// be mistaken for valid data.
pub fn decode_checked<'a>(magic: &[u8; 4], bytes: &'a [u8]) -> Result<&'a [u8], IoError> {
    if bytes.len() < CHECKED_HEADER || &bytes[..4] != magic {
        return Err(IoError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(IoError::BadVersion(version));
    }
    let len = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes")) as usize;
    let expected_crc = u32::from_le_bytes(bytes[14..18].try_into().expect("4 bytes"));
    let payload = &bytes[CHECKED_HEADER..];
    if payload.len() != len {
        return Err(IoError::BadLength {
            expected: len,
            actual: payload.len(),
        });
    }
    let actual_crc = crc32(payload);
    if actual_crc != expected_crc {
        return Err(IoError::BadChecksum {
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    Ok(payload)
}

/// Writes `payload` to `w` as one checked frame ([`encode_checked`])
/// and flushes. The length-prefixed header makes the frame
/// self-delimiting on a byte stream — the transport the sharded
/// trainer's coordinator↔worker pipes use.
pub fn write_checked_frame(
    w: &mut impl Write,
    magic: &[u8; 4],
    payload: &[u8],
) -> Result<(), IoError> {
    w.write_all(&encode_checked(magic, payload))?;
    w.flush()?;
    Ok(())
}

/// Reads one checked frame from `r` and returns its validated payload.
///
/// Reads exactly one header and then exactly the promised payload, so
/// back-to-back frames on the same stream never bleed into each other.
/// Magic, version and CRC failures are the same [`IoError`]s
/// [`decode_checked`] reports; a stream that ends mid-frame surfaces
/// as [`IoError::Fs`] (`UnexpectedEof`).
///
/// The length header is parsed *before* the CRC can possibly be
/// checked (the CRC covers the payload the header delimits), so it is
/// untrusted input. `max_len` caps it: a frame claiming more payload
/// bytes than `max_len` is rejected as [`IoError::FrameTooLarge`]
/// without any allocation, so a forged 2^60-byte header can never OOM
/// the reader. Callers pick a cap from what the protocol can
/// legitimately carry (a command frame is tens of bytes; a gradient
/// frame is bounded by the model size).
pub fn read_checked_frame(
    r: &mut impl Read,
    magic: &[u8; 4],
    max_len: usize,
) -> Result<Vec<u8>, IoError> {
    let mut header = [0u8; CHECKED_HEADER];
    r.read_exact(&mut header)?;
    if &header[..4] != magic {
        return Err(IoError::BadMagic);
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != FORMAT_VERSION {
        return Err(IoError::BadVersion(version));
    }
    let len64 = u64::from_le_bytes(header[6..14].try_into().expect("8 bytes"));
    if len64 > max_len as u64 {
        return Err(IoError::FrameTooLarge {
            len: len64,
            max: max_len,
        });
    }
    let len = len64 as usize;
    let expected_crc = u32::from_le_bytes(header[14..18].try_into().expect("4 bytes"));
    let mut payload = Vec::with_capacity(len);
    r.take(len as u64).read_to_end(&mut payload)?;
    if payload.len() < len {
        // A short read is a torn write, not a filesystem fault: report
        // it as the length mismatch it is.
        return Err(IoError::BadLength {
            expected: len,
            actual: payload.len(),
        });
    }
    let actual_crc = crc32(&payload);
    if actual_crc != expected_crc {
        return Err(IoError::BadChecksum {
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    Ok(payload)
}

/// Encodes a traffic map into the SGTM container.
pub fn encode_traffic(map: &TrafficMap) -> Vec<u8> {
    encode_map(
        TRAFFIC_MAGIC,
        [map.len_t(), map.height(), map.width()],
        map.data(),
    )
}

/// Converts a dimension to its u32 wire form, panicking with a typed
/// message if it does not fit. The container headers store dimensions
/// as u32; a silent `as u32` truncation here would write a header that
/// decodes to the *wrong* (smaller) map without any error.
fn dim_u32(d: usize) -> u32 {
    u32::try_from(d).unwrap_or_else(|_| {
        panic!(
            "dimension {d} exceeds the u32 container limit ({}); \
             the map cannot be encoded without truncation",
            u32::MAX
        )
    })
}

/// Appends `data`'s little-endian byte image to `buf`.
///
/// On little-endian targets this is a single bulk copy of the slice's
/// raw bytes — bit-identical to the portable per-element loop (which
/// remains the big-endian fallback), since an f32's memory image *is*
/// its `to_le_bytes` there.
pub fn extend_f32_le(buf: &mut Vec<u8>, data: &[f32]) {
    #[cfg(target_endian = "little")]
    {
        // Safety: any initialized &[f32] is readable as bytes; size is
        // exactly 4 bytes per element and u8 has no alignment needs.
        let bytes =
            unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), 4 * data.len()) };
        buf.extend_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    for &v in data {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decodes a little-endian f32 payload (`bytes.len()` must be a
/// multiple of 4). Bulk counterpart of [`extend_f32_le`]: one copy on
/// little-endian targets, per-element `from_le_bytes` elsewhere.
pub fn f32s_from_le(bytes: &[u8]) -> Vec<f32> {
    debug_assert_eq!(bytes.len() % 4, 0);
    #[cfg(target_endian = "little")]
    {
        let mut out = vec![0f32; bytes.len() / 4];
        // Safety: the destination owns exactly `bytes.len()` bytes of
        // f32 storage, every bit pattern of which is a valid f32.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                out.as_mut_ptr().cast::<u8>(),
                bytes.len(),
            );
        }
        out
    }
    #[cfg(not(target_endian = "little"))]
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Shared encoder: magic, version, three u32 dims, f32 payload — all
/// little-endian. Panics if a dimension exceeds u32 (see [`dim_u32`]).
fn encode_map(magic: &[u8; 4], dims: [usize; 3], data: &[f32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(18 + 4 * data.len());
    buf.extend_from_slice(magic);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    for d in dims {
        buf.extend_from_slice(&dim_u32(d).to_le_bytes());
    }
    extend_f32_le(&mut buf, data);
    buf
}

/// Reads the little-endian f32 payload that follows a validated header.
fn decode_payload(bytes: &[u8], expected: usize) -> Result<Vec<f32>, IoError> {
    if bytes.len() != 4 * expected {
        return Err(IoError::BadLength {
            expected: 4 * expected,
            actual: bytes.len(),
        });
    }
    Ok(f32s_from_le(bytes))
}

/// Decodes a traffic map from the SGTM container.
pub fn decode_traffic(mut bytes: &[u8]) -> Result<TrafficMap, IoError> {
    let (t, h, w) = decode_header(&mut bytes, TRAFFIC_MAGIC)?;
    let expected = t
        .checked_mul(h)
        .and_then(|v| v.checked_mul(w))
        .ok_or(IoError::BadDims)?;
    let data = decode_payload(bytes, expected)?;
    Ok(TrafficMap::from_vec(data, t, h, w))
}

/// Encodes a context map into the SGCM container.
pub fn encode_context(map: &ContextMap) -> Vec<u8> {
    encode_map(
        CONTEXT_MAGIC,
        [map.channels(), map.height(), map.width()],
        map.data(),
    )
}

/// Decodes a context map from the SGCM container.
pub fn decode_context(mut bytes: &[u8]) -> Result<ContextMap, IoError> {
    let (c, h, w) = decode_header(&mut bytes, CONTEXT_MAGIC)?;
    let expected = c
        .checked_mul(h)
        .and_then(|v| v.checked_mul(w))
        .ok_or(IoError::BadDims)?;
    let data = decode_payload(bytes, expected)?;
    Ok(ContextMap::from_vec(data, c, h, w))
}

fn decode_header(bytes: &mut &[u8], magic: &[u8; 4]) -> Result<(usize, usize, usize), IoError> {
    if bytes.len() < 18 {
        return Err(IoError::BadMagic);
    }
    if &bytes[..4] != magic {
        return Err(IoError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(IoError::BadVersion(version));
    }
    let dim = |i: usize| {
        u32::from_le_bytes([
            bytes[6 + 4 * i],
            bytes[7 + 4 * i],
            bytes[8 + 4 * i],
            bytes[9 + 4 * i],
        ]) as usize
    };
    let (a, b, c) = (dim(0), dim(1), dim(2));
    *bytes = &bytes[18..];
    Ok((a, b, c))
}

/// Encodes one streamed traffic band into a self-describing SGBD
/// frame: magic, version, then `y0`, `rows`, `t`, `w` as u32s and the
/// `[t, rows, w]` f32 payload — all little-endian. Bands are the unit
/// a generation server streams over chunked transfer-encoding; a
/// client that concatenates decoded bands row-wise reconstructs the
/// full map exactly (see [`TrafficBand`]).
pub fn encode_band(band: &TrafficBand) -> Vec<u8> {
    let mut buf = Vec::with_capacity(22 + 4 * band.data.len());
    buf.extend_from_slice(BAND_MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    for d in [band.y0, band.rows, band.t, band.w] {
        buf.extend_from_slice(&dim_u32(d).to_le_bytes());
    }
    extend_f32_le(&mut buf, &band.data);
    buf
}

/// Decodes one SGBD frame produced by [`encode_band`].
pub fn decode_band(bytes: &[u8]) -> Result<TrafficBand, IoError> {
    const HEADER: usize = 22;
    if bytes.len() < HEADER || &bytes[..4] != BAND_MAGIC {
        return Err(IoError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(IoError::BadVersion(version));
    }
    let dim = |i: usize| {
        u32::from_le_bytes([
            bytes[6 + 4 * i],
            bytes[7 + 4 * i],
            bytes[8 + 4 * i],
            bytes[9 + 4 * i],
        ]) as usize
    };
    let (y0, rows, t, w) = (dim(0), dim(1), dim(2), dim(3));
    let expected = rows
        .checked_mul(t)
        .and_then(|v| v.checked_mul(w))
        .ok_or(IoError::BadDims)?;
    let data = decode_payload(&bytes[HEADER..], expected)?;
    Ok(TrafficBand {
        y0,
        rows,
        t,
        w,
        data,
    })
}

/// Writes a traffic map to `path` in the SGTM container, atomically
/// (see [`atomic_write`]).
pub fn save_traffic(map: &TrafficMap, path: impl AsRef<Path>) -> Result<(), IoError> {
    atomic_write(path, &encode_traffic(map))
}

/// Reads a traffic map from a SGTM file.
pub fn load_traffic(path: impl AsRef<Path>) -> Result<TrafficMap, IoError> {
    decode_traffic(&fs::read(path)?)
}

/// Writes a context map to `path` in the SGCM container, atomically
/// (see [`atomic_write`]).
pub fn save_context(map: &ContextMap, path: impl AsRef<Path>) -> Result<(), IoError> {
    atomic_write(path, &encode_context(map))
}

/// Reads a context map from a SGCM file.
pub fn load_context(path: impl AsRef<Path>) -> Result<ContextMap, IoError> {
    decode_context(&fs::read(path)?)
}

/// Renders a traffic map as long-format CSV (`t,y,x,value`).
pub fn traffic_to_csv(map: &TrafficMap) -> String {
    let mut out = String::from("t,y,x,value\n");
    for t in 0..map.len_t() {
        for y in 0..map.height() {
            for x in 0..map.width() {
                out.push_str(&format!("{t},{y},{x},{}\n", map.at(t, y, x)));
            }
        }
    }
    out
}

/// Parses a traffic map from long-format CSV produced by
/// [`traffic_to_csv`]. Dimensions are inferred from the maxima; every
/// cell must be present exactly once.
pub fn traffic_from_csv(csv: &str) -> Result<TrafficMap, IoError> {
    let mut rows: Vec<(usize, usize, usize, f32)> = Vec::new();
    for line in csv.lines().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let mut next = |what: &str| {
            parts
                .next()
                .ok_or_else(|| IoError::BadCsv(format!("{line} (missing {what})")))
        };
        let t = next("t")?
            .trim()
            .parse::<usize>()
            .map_err(|_| IoError::BadCsv(line.into()))?;
        let y = next("y")?
            .trim()
            .parse::<usize>()
            .map_err(|_| IoError::BadCsv(line.into()))?;
        let x = next("x")?
            .trim()
            .parse::<usize>()
            .map_err(|_| IoError::BadCsv(line.into()))?;
        let v = next("value")?
            .trim()
            .parse::<f32>()
            .map_err(|_| IoError::BadCsv(line.into()))?;
        rows.push((t, y, x, v));
    }
    if rows.is_empty() {
        return Err(IoError::BadCsv("empty file".into()));
    }
    let t = rows.iter().map(|r| r.0).max().expect("non-empty") + 1;
    let h = rows.iter().map(|r| r.1).max().expect("non-empty") + 1;
    let w = rows.iter().map(|r| r.2).max().expect("non-empty") + 1;
    if rows.len() != t * h * w {
        return Err(IoError::BadLength {
            expected: t * h * w,
            actual: rows.len(),
        });
    }
    let mut map = TrafficMap::zeros(t, h, w);
    for (ti, y, x, v) in rows {
        *map.at_mut(ti, y, x) = v;
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_traffic() -> TrafficMap {
        TrafficMap::from_vec((0..24).map(|i| i as f32 * 0.25).collect(), 2, 3, 4)
    }

    fn demo_context() -> ContextMap {
        ContextMap::from_vec((0..30).map(|i| i as f32 - 15.0).collect(), 5, 3, 2)
    }

    #[test]
    fn traffic_binary_roundtrip() {
        let map = demo_traffic();
        let bytes = encode_traffic(&map);
        let back = decode_traffic(&bytes).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn context_binary_roundtrip() {
        let map = demo_context();
        let back = decode_context(&encode_context(&map)).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn magic_is_checked_both_ways() {
        let t = encode_traffic(&demo_traffic());
        assert!(matches!(decode_context(&t), Err(IoError::BadMagic)));
        let c = encode_context(&demo_context());
        assert!(matches!(decode_traffic(&c), Err(IoError::BadMagic)));
        assert!(matches!(decode_traffic(b"nope"), Err(IoError::BadMagic)));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let bytes = encode_traffic(&demo_traffic());
        let cut = &bytes[..bytes.len() - 4];
        assert!(matches!(
            decode_traffic(cut),
            Err(IoError::BadLength { .. })
        ));
    }

    #[test]
    fn version_is_checked() {
        let mut bytes = encode_traffic(&demo_traffic()).to_vec();
        bytes[4] = 99;
        assert!(matches!(
            decode_traffic(&bytes),
            Err(IoError::BadVersion(99))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("spectragan_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.sgtm");
        let map = demo_traffic();
        save_traffic(&map, &path).unwrap();
        assert_eq!(load_traffic(&path).unwrap(), map);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("spectragan_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        // No temporary files survive a successful write.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn atomic_write_rejects_directoryless_target() {
        assert!(atomic_write(Path::new("/"), b"x").is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn checked_container_roundtrip_and_rejection() {
        let payload = b"some checkpoint payload".as_slice();
        let framed = encode_checked(b"SGCK", payload);
        assert_eq!(decode_checked(b"SGCK", &framed).unwrap(), payload);

        // Wrong magic.
        assert!(matches!(
            decode_checked(b"XXXX", &framed),
            Err(IoError::BadMagic)
        ));
        // Truncation (torn write) is a length error, never valid data.
        assert!(matches!(
            decode_checked(b"SGCK", &framed[..framed.len() - 3]),
            Err(IoError::BadLength { .. })
        ));
        // A single flipped payload bit fails the checksum.
        let mut flipped = framed.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            decode_checked(b"SGCK", &flipped),
            Err(IoError::BadChecksum { .. })
        ));
        // A flipped header version is a version error.
        let mut badver = framed.clone();
        badver[4] = 0xFF;
        assert!(matches!(
            decode_checked(b"SGCK", &badver),
            Err(IoError::BadVersion(_))
        ));
        // Too short to even hold a header.
        assert!(matches!(
            decode_checked(b"SGCK", b"SGCK"),
            Err(IoError::BadMagic)
        ));
    }

    #[test]
    fn checked_frames_are_self_delimiting_on_a_stream() {
        let mut stream = Vec::new();
        write_checked_frame(&mut stream, GRAD_FRAME_MAGIC, b"first frame").unwrap();
        write_checked_frame(&mut stream, GRAD_FRAME_MAGIC, b"").unwrap();
        write_checked_frame(&mut stream, GRAD_FRAME_MAGIC, &[0xAB; 1000]).unwrap();
        let mut r = stream.as_slice();
        assert_eq!(
            read_checked_frame(&mut r, GRAD_FRAME_MAGIC, 1 << 20).unwrap(),
            b"first frame"
        );
        assert_eq!(
            read_checked_frame(&mut r, GRAD_FRAME_MAGIC, 1 << 20).unwrap(),
            b""
        );
        assert_eq!(
            read_checked_frame(&mut r, GRAD_FRAME_MAGIC, 1 << 20).unwrap(),
            vec![0xAB; 1000]
        );
        // The stream is fully consumed; a further read is a clean EOF.
        assert!(matches!(
            read_checked_frame(&mut r, GRAD_FRAME_MAGIC, 1 << 20),
            Err(IoError::Fs(ref e)) if e.kind() == std::io::ErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn checked_frame_stream_rejects_corruption() {
        let mut stream = Vec::new();
        write_checked_frame(&mut stream, GRAD_FRAME_MAGIC, b"payload bytes").unwrap();
        // Wrong magic.
        assert!(matches!(
            read_checked_frame(&mut stream.as_slice(), b"XXXX", 1 << 20),
            Err(IoError::BadMagic)
        ));
        // A flipped payload bit fails the CRC.
        let mut flipped = stream.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            read_checked_frame(&mut flipped.as_slice(), GRAD_FRAME_MAGIC, 1 << 20),
            Err(IoError::BadChecksum { .. })
        ));
        // Truncation mid-payload is a length mismatch, never valid data.
        let cut = &stream[..stream.len() - 2];
        assert!(matches!(
            read_checked_frame(&mut &cut[..], GRAD_FRAME_MAGIC, 1 << 20),
            Err(IoError::BadLength { .. })
        ));
        // A bad version is reported as such.
        let mut badver = stream.clone();
        badver[4] = 7;
        assert!(matches!(
            read_checked_frame(&mut badver.as_slice(), GRAD_FRAME_MAGIC, 1 << 20),
            Err(IoError::BadVersion(7))
        ));
    }

    #[test]
    fn band_frame_roundtrip_and_rejection() {
        let band = TrafficBand {
            y0: 3,
            rows: 2,
            t: 4,
            w: 5,
            data: (0..2 * 4 * 5).map(|i| i as f32 * 0.5 - 3.0).collect(),
        };
        let bytes = encode_band(&band);
        assert_eq!(decode_band(&bytes).unwrap(), band);
        // Wrong magic / truncation / version are all rejected.
        assert!(matches!(decode_band(b"nope"), Err(IoError::BadMagic)));
        assert!(matches!(
            decode_band(&bytes[..bytes.len() - 2]),
            Err(IoError::BadLength { .. })
        ));
        let mut badver = bytes.clone();
        badver[4] = 9;
        assert!(matches!(decode_band(&badver), Err(IoError::BadVersion(9))));
    }

    #[test]
    fn csv_roundtrip() {
        let map = demo_traffic();
        let csv = traffic_to_csv(&map);
        let back = traffic_from_csv(&csv).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn forged_giant_length_header_is_rejected_without_allocation() {
        // A frame whose header claims 2^60 payload bytes. Reading it
        // must fail typed at the cap check — before the payload buffer
        // is allocated — or a corrupt checkpoint / torn pipe frame
        // could OOM the process.
        let mut forged = Vec::new();
        forged.extend_from_slice(GRAD_FRAME_MAGIC);
        forged.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        forged.extend_from_slice(&(1u64 << 60).to_le_bytes());
        forged.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_checked_frame(&mut forged.as_slice(), GRAD_FRAME_MAGIC, 1 << 20),
            Err(IoError::FrameTooLarge {
                len,
                max: 1_048_576,
            }) if len == 1 << 60
        ));
    }

    #[test]
    fn frame_cap_is_inclusive() {
        // A frame exactly at the cap passes; one byte over fails.
        let payload = vec![0x5Au8; 64];
        let mut stream = Vec::new();
        write_checked_frame(&mut stream, GRAD_FRAME_MAGIC, &payload).unwrap();
        assert_eq!(
            read_checked_frame(&mut stream.as_slice(), GRAD_FRAME_MAGIC, 64).unwrap(),
            payload
        );
        assert!(matches!(
            read_checked_frame(&mut stream.as_slice(), GRAD_FRAME_MAGIC, 63),
            Err(IoError::FrameTooLarge { len: 64, max: 63 })
        ));
    }

    #[test]
    fn dims_at_the_u32_boundary_roundtrip() {
        // u32::MAX is the largest encodable dimension. A zero dim keeps
        // the payload empty so the boundary is cheap to exercise.
        let dims = [u32::MAX as usize, 0, 1];
        let bytes = encode_map(TRAFFIC_MAGIC, dims, &[]);
        let mut rest = bytes.as_slice();
        let (t, h, w) = decode_header(&mut rest, TRAFFIC_MAGIC).unwrap();
        assert_eq!((t, h, w), (u32::MAX as usize, 0, 1));
        assert!(rest.is_empty());
        // Through the public band path too.
        let band = TrafficBand {
            y0: u32::MAX as usize,
            rows: 0,
            t: 3,
            w: 2,
            data: Vec::new(),
        };
        let back = decode_band(&encode_band(&band)).unwrap();
        assert_eq!(back, band);
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    #[should_panic(expected = "exceeds the u32 container limit")]
    fn dims_over_u32_panic_with_typed_message() {
        encode_map(TRAFFIC_MAGIC, [u32::MAX as usize + 1, 0, 1], &[]);
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    #[should_panic(expected = "exceeds the u32 container limit")]
    fn band_dims_over_u32_panic_with_typed_message() {
        encode_band(&TrafficBand {
            y0: u32::MAX as usize + 1,
            rows: 0,
            t: 1,
            w: 1,
            data: Vec::new(),
        });
    }

    #[test]
    fn bulk_f32_paths_are_bit_identical_to_scalar() {
        // Values chosen to have asymmetric byte patterns (NaN payloads,
        // subnormals, -0.0) so any endianness or offset slip shows up.
        let vals = [
            0.0f32,
            -0.0,
            1.5,
            -2.625e-39,
            f32::NAN,
            f32::INFINITY,
            f32::MIN_POSITIVE,
            f32::from_bits(0xDEAD_BEEF),
            f32::from_bits(0x0000_0001),
        ];
        let mut bulk = Vec::new();
        extend_f32_le(&mut bulk, &vals);
        let mut scalar = Vec::new();
        for &v in &vals {
            scalar.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(bulk, scalar);
        let decoded = f32s_from_le(&bulk);
        let reference: Vec<f32> = bulk
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        assert_eq!(
            decoded.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(traffic_from_csv("t,y,x,value\n1,2,notanumber,0.5\n").is_err());
        assert!(traffic_from_csv("t,y,x,value\n").is_err());
        // Missing cells: declare a 2×1×1 map but provide one row.
        assert!(matches!(
            traffic_from_csv("t,y,x,value\n1,0,0,0.5\n"),
            Err(IoError::BadLength { .. })
        ));
    }
}
