//! Spatial substrate of the SpectraGAN reproduction: regular grid
//! tessellations, city-scale traffic and context maps, and the patch
//! machinery of §2.2 (fixed-size training patches with a wider context
//! window, and the sliding-window sew-and-average of Eq. 2 used to
//! generate traffic for cities of arbitrary size).
//!
//! Layout conventions (matching the paper's notation):
//!
//! * a **traffic map** is `x ∈ R^{T×H×W}` — time-major, row-major
//!   frames, each pixel a 250 m × 250 m grid element;
//! * a **context map** is `c ∈ R^{C×H×W}` — `C` static contextual
//!   attributes (census, land use, PoIs);
//! * a **patch** pairs an `H_t×W_t` traffic window with a *larger*
//!   `H_c×W_c` context window centered on it (`H_c > H_t`), zero-padded
//!   where the context window exits the city bounds.

pub mod context;
pub mod grid;
pub mod io;
pub mod patch;
pub mod traffic;

pub use context::ContextMap;
pub use grid::GridSpec;
pub use patch::{PatchLayout, PatchSpec, SewAccumulator, TrafficBand};
pub use traffic::TrafficMap;

/// A named city: its measured (or synthesized) traffic plus the public
/// context attributes, on the same grid.
#[derive(Debug, Clone)]
pub struct City {
    /// Display name, e.g. "CITY A".
    pub name: String,
    /// Spatiotemporal traffic, normalized to the city's peak pixel.
    pub traffic: TrafficMap,
    /// Static context attributes.
    pub context: ContextMap,
}

impl City {
    /// Creates a city, checking that traffic and context share a grid.
    ///
    /// # Panics
    /// Panics if the spatial dimensions disagree.
    pub fn new(name: impl Into<String>, traffic: TrafficMap, context: ContextMap) -> Self {
        assert_eq!(
            (traffic.height(), traffic.width()),
            (context.height(), context.width()),
            "traffic and context grids differ"
        );
        City {
            name: name.into(),
            traffic,
            context,
        }
    }

    /// The city's grid.
    pub fn grid(&self) -> GridSpec {
        GridSpec::new(self.traffic.height(), self.traffic.width())
    }
}
