//! Patch extraction and sew-and-average.
//!
//! SpectraGAN never processes a whole city at once: training and
//! generation both operate on fixed-size square patches (§2.2.1). Each
//! traffic patch of `H_t×W_t` pixels is conditioned on a *wider*
//! `H_c×W_c` context window centered on it (`H_c > H_t`), because
//! context *around* a location also correlates with its traffic. At
//! generation time a sliding window produces overlapping patches that
//! are averaged per pixel (Eq. 2) to sew an arbitrary-size city map.

use crate::context::ContextMap;
use crate::grid::GridSpec;
use crate::traffic::TrafficMap;
use serde::{Deserialize, Serialize};
use spectragan_tensor::Tensor;

/// Patch geometry: square traffic window, square (larger) context
/// window, and the sliding-window stride used at generation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatchSpec {
    /// Traffic patch side `H_t = W_t`.
    pub traffic: usize,
    /// Context patch side `H_c = W_c`; must satisfy
    /// `context ≥ traffic` with an even difference.
    pub context: usize,
    /// Sliding-window stride; `stride < traffic` yields overlap.
    pub stride: usize,
}

impl PatchSpec {
    /// Creates a spec, validating the geometry.
    ///
    /// # Panics
    /// Panics if `context < traffic`, the margin is odd, or the stride
    /// is zero.
    pub fn new(traffic: usize, context: usize, stride: usize) -> Self {
        assert!(traffic > 0, "traffic patch side must be positive");
        assert!(
            context >= traffic,
            "context window must cover the traffic patch"
        );
        assert_eq!(
            (context - traffic) % 2,
            0,
            "context margin must be symmetric"
        );
        assert!(stride > 0, "stride must be positive");
        PatchSpec {
            traffic,
            context,
            stride,
        }
    }

    /// The symmetric context margin `(H_c − H_t)/2`.
    pub fn margin(&self) -> usize {
        (self.context - self.traffic) / 2
    }
}

/// The set of patch positions covering one city, plus extraction and
/// sewing.
#[derive(Debug, Clone)]
pub struct PatchLayout {
    spec: PatchSpec,
    grid: GridSpec,
    /// Top-left corners `(y, x)` of each traffic patch.
    positions: Vec<(usize, usize)>,
}

impl PatchLayout {
    /// Computes the sliding-window positions covering `grid`: every
    /// stride multiple, plus a final position flush with each edge so
    /// no pixel is missed.
    ///
    /// # Panics
    /// Panics if the grid is smaller than one traffic patch.
    pub fn new(grid: GridSpec, spec: PatchSpec) -> Self {
        assert!(
            grid.height >= spec.traffic && grid.width >= spec.traffic,
            "grid {grid:?} smaller than patch {}",
            spec.traffic
        );
        let axis_positions = |extent: usize| -> Vec<usize> {
            let last = extent - spec.traffic;
            let mut out: Vec<usize> = (0..=last).step_by(spec.stride).collect();
            if *out.last().expect("non-empty") != last {
                out.push(last);
            }
            out
        };
        let ys = axis_positions(grid.height);
        let xs = axis_positions(grid.width);
        let positions = ys
            .iter()
            .flat_map(|&y| xs.iter().map(move |&x| (y, x)))
            .collect();
        PatchLayout {
            spec,
            grid,
            positions,
        }
    }

    /// The patch spec this layout was built with.
    pub fn spec(&self) -> PatchSpec {
        self.spec
    }

    /// The grid this layout covers.
    pub fn grid(&self) -> GridSpec {
        self.grid
    }

    /// Top-left corners of all traffic patches.
    pub fn positions(&self) -> &[(usize, usize)] {
        &self.positions
    }

    /// Extracts the context window for the traffic patch at `pos`, as a
    /// `[C, H_c, W_c]` tensor, zero-padded outside the city.
    pub fn extract_context(&self, ctx: &ContextMap, pos: (usize, usize)) -> Tensor {
        let m = self.spec.margin() as isize;
        let side = self.spec.context;
        let c = ctx.channels();
        let (h, w) = (ctx.height() as isize, ctx.width() as isize);
        let mut out = Tensor::zeros([c, side, side]);
        for ch in 0..c {
            for dy in 0..side {
                let sy = pos.0 as isize - m + dy as isize;
                if sy < 0 || sy >= h {
                    continue;
                }
                for dx in 0..side {
                    let sx = pos.1 as isize - m + dx as isize;
                    if sx < 0 || sx >= w {
                        continue;
                    }
                    *out.at_mut(&[ch, dy, dx]) = ctx.at(ch, sy as usize, sx as usize);
                }
            }
        }
        out
    }

    /// Extracts the traffic patch at `pos` over time steps `t0..t1`, as
    /// a `[t1−t0, H_t, W_t]` tensor.
    pub fn extract_traffic(
        &self,
        map: &TrafficMap,
        pos: (usize, usize),
        t0: usize,
        t1: usize,
    ) -> Tensor {
        assert!(t0 <= t1 && t1 <= map.len_t(), "bad time range {t0}..{t1}");
        let side = self.spec.traffic;
        let mut out = Tensor::zeros([t1 - t0, side, side]);
        for (ti, t) in (t0..t1).enumerate() {
            for dy in 0..side {
                for dx in 0..side {
                    *out.at_mut(&[ti, dy, dx]) = map.at(t, pos.0 + dy, pos.1 + dx);
                }
            }
        }
        out
    }

    /// Sews per-patch generated traffic back into a city map (Eq. 2):
    /// each pixel's value is the average over all patches containing
    /// it. `patches[i]` must be `[T, H_t, W_t]` for position `i`.
    ///
    /// Equivalent to pushing every patch through a
    /// [`SewAccumulator`] — the streaming form used by bounded-memory
    /// generation — and bit-identical to it, since both add each
    /// patch's contribution in position order.
    ///
    /// # Panics
    /// Panics on count or shape mismatches.
    pub fn sew(&self, patches: &[Tensor]) -> TrafficMap {
        assert_eq!(
            patches.len(),
            self.positions.len(),
            "expected {} patches, got {}",
            self.positions.len(),
            patches.len()
        );
        let t = patches.first().map(|p| p.shape().dim(0)).unwrap_or(0);
        let mut acc = self.sew_accumulator(t);
        for patch in patches {
            acc.push(patch);
        }
        acc.finish()
    }

    /// Starts a streaming sew over this layout for patches of `t` time
    /// steps. Push patches in position order; peak memory is one
    /// running sum map plus per-pixel counts, independent of how many
    /// patches the city needs.
    pub fn sew_accumulator(&self, t: usize) -> SewAccumulator<'_> {
        let (h, w) = (self.grid.height, self.grid.width);
        SewAccumulator {
            layout: self,
            sum: TrafficMap::zeros(t, h, w),
            count: vec![0u32; h * w],
            next: 0,
            emitted: 0,
        }
    }
}

/// Streaming counterpart of [`PatchLayout::sew`]: patches are folded
/// into a running per-pixel sum/count as they arrive and can be dropped
/// immediately, so sewing a city holds O(1) patch tensors instead of
/// all of them.
///
/// Bit-equality with the batch path holds by construction: every
/// destination element receives exactly one contribution per covering
/// patch, applied in patch-position order, so the accumulation order
/// per element is identical no matter how patches are produced or
/// batched. [`PatchLayout::sew`] is itself implemented on top of this
/// type.
pub struct SewAccumulator<'a> {
    layout: &'a PatchLayout,
    sum: TrafficMap,
    count: Vec<u32>,
    /// Index of the next expected patch position.
    next: usize,
    /// First row not yet handed out by [`SewAccumulator::emit_band`].
    emitted: usize,
}

/// A horizontal slice of a sewn city map: rows `y0 .. y0 + rows` over
/// all `t` time steps, already averaged. Bands are what streaming
/// generation hands to a consumer as soon as every patch touching
/// those rows has been folded — concatenating a run's bands row-wise
/// reproduces [`SewAccumulator::finish`]'s map bit-for-bit, because
/// each element undergoes the same single multiply by the same
/// `1 / count` no matter when it is emitted.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficBand {
    /// First city row this band covers.
    pub y0: usize,
    /// Number of rows in the band.
    pub rows: usize,
    /// Time steps (same for every band of a run).
    pub t: usize,
    /// City width in pixels.
    pub w: usize,
    /// Averaged traffic in `[t, rows, w]` order.
    pub data: Vec<f32>,
}

impl TrafficBand {
    /// Copies the band into its place in a full `[t, h, w]` map.
    ///
    /// # Panics
    /// Panics if the band does not fit the map's dimensions.
    pub fn write_into(&self, map: &mut TrafficMap) {
        assert_eq!(self.t, map.len_t(), "band disagrees with map on T");
        assert_eq!(self.w, map.width(), "band disagrees with map on width");
        assert!(self.y0 + self.rows <= map.height(), "band overflows map");
        let h = map.height();
        let dst = map.data_mut();
        for ti in 0..self.t {
            let s0 = ti * self.rows * self.w;
            let d0 = (ti * h + self.y0) * self.w;
            dst[d0..d0 + self.rows * self.w]
                .copy_from_slice(&self.data[s0..s0 + self.rows * self.w]);
        }
    }
}

impl SewAccumulator<'_> {
    /// Number of patches pushed so far.
    pub fn pushed(&self) -> usize {
        self.next
    }

    /// Adds the patch for the next position (`[T, H_t, W_t]`) into the
    /// running sums. Rows are accumulated as contiguous slices: source
    /// row `(ti, dy)` of the patch adds onto the destination row
    /// starting at `(ti, py+dy, px)`.
    ///
    /// # Panics
    /// Panics if more patches arrive than the layout has positions, or
    /// on a shape mismatch.
    pub fn push(&mut self, patch: &Tensor) {
        let positions = &self.layout.positions;
        assert!(
            self.next < positions.len(),
            "more patches than layout positions ({})",
            positions.len()
        );
        let side = self.layout.spec.traffic;
        let t = self.sum.len_t();
        assert_eq!(patch.shape().ndim(), 3, "patch must be [T, H_t, W_t]");
        assert_eq!(patch.shape().dim(0), t, "patches disagree on T");
        assert_eq!(patch.shape().dim(1), side, "patch height mismatch");
        assert_eq!(patch.shape().dim(2), side, "patch width mismatch");
        let (py, px) = positions[self.next];
        self.next += 1;
        let (h, w) = (self.sum.height(), self.sum.width());
        let src = patch.data();
        let dst = self.sum.data_mut();
        for ti in 0..t {
            for dy in 0..side {
                let s = &src[(ti * side + dy) * side..(ti * side + dy) * side + side];
                let d0 = (ti * h + py + dy) * w + px;
                let d = &mut dst[d0..d0 + side];
                for (dv, sv) in d.iter_mut().zip(s) {
                    *dv += *sv;
                }
            }
        }
        for dy in 0..side {
            let c0 = (py + dy) * w + px;
            for c in &mut self.count[c0..c0 + side] {
                *c += 1;
            }
        }
    }

    /// Rows `0 .. completed_rows()` have received every contribution
    /// they will ever get: positions are row-major, so once the next
    /// expected patch starts at row `y`, no remaining patch can touch
    /// any row above `y`.
    pub fn completed_rows(&self) -> usize {
        let positions = &self.layout.positions;
        if self.next >= positions.len() {
            self.sum.height()
        } else {
            positions[self.next].0
        }
    }

    /// First row not yet emitted by [`SewAccumulator::emit_band`].
    pub fn emitted_rows(&self) -> usize {
        self.emitted
    }

    /// Finalizes (divides by cover counts) and returns the rows that
    /// completed since the last call, or `None` when no new rows are
    /// ready. This is the streaming alternative to
    /// [`SewAccumulator::finish`]: calling it after every push drains
    /// the map as bands, and the concatenated bands are bit-identical
    /// to the map `finish` would have returned — the division is the
    /// same single `sum * (1/count)` per element either way.
    ///
    /// # Panics
    /// Panics if a completed row contains a pixel no patch covered.
    pub fn emit_band(&mut self) -> Option<TrafficBand> {
        let upto = self.completed_rows();
        if upto <= self.emitted {
            return None;
        }
        let (y0, rows) = (self.emitted, upto - self.emitted);
        let t = self.sum.len_t();
        let (h, w) = (self.sum.height(), self.sum.width());
        // Finalize the cover counts once per band row.
        let mut inv = vec![0.0f32; rows * w];
        for (j, slot) in inv.iter_mut().enumerate() {
            let n = self.count[y0 * w + j];
            assert!(n > 0, "pixel {} not covered by any patch", y0 * w + j);
            *slot = 1.0 / n as f32;
        }
        let src = self.sum.data();
        let mut data = vec![0.0f32; t * rows * w];
        for ti in 0..t {
            let s0 = (ti * h + y0) * w;
            let d0 = ti * rows * w;
            for j in 0..rows * w {
                data[d0 + j] = src[s0 + j] * inv[j];
            }
        }
        self.emitted = upto;
        Some(TrafficBand {
            y0,
            rows,
            t,
            w,
            data,
        })
    }

    /// Divides the sums by the per-pixel cover counts and returns the
    /// sewn map.
    ///
    /// # Panics
    /// Panics if any position's patch was never pushed, any pixel is
    /// uncovered, or rows were already drained via
    /// [`SewAccumulator::emit_band`] (the two finalization styles do
    /// not mix).
    pub fn finish(mut self) -> TrafficMap {
        assert_eq!(
            self.emitted, 0,
            "finish() after emit_band(): drain the remaining bands instead"
        );
        assert_eq!(
            self.next,
            self.layout.positions.len(),
            "expected {} patches, got {}",
            self.layout.positions.len(),
            self.next
        );
        let t = self.sum.len_t();
        let (h, w) = (self.sum.height(), self.sum.width());
        let data = self.sum.data_mut();
        for (i, &n) in self.count.iter().enumerate() {
            assert!(n > 0, "pixel {i} not covered by any patch");
            let inv = 1.0 / n as f32;
            for ti in 0..t {
                data[ti * h * w + i] *= inv;
            }
        }
        self.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PatchSpec {
        PatchSpec::new(4, 8, 2)
    }

    #[test]
    fn spec_validates_geometry() {
        assert_eq!(spec().margin(), 2);
    }

    #[test]
    #[should_panic(expected = "margin must be symmetric")]
    fn spec_rejects_odd_margin() {
        PatchSpec::new(4, 7, 2);
    }

    #[test]
    fn positions_cover_every_pixel() {
        let layout = PatchLayout::new(GridSpec::new(10, 11), spec());
        let mut covered = [false; 110];
        for &(y, x) in layout.positions() {
            for dy in 0..4 {
                for dx in 0..4 {
                    covered[(y + dy) * 11 + (x + dx)] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "some pixels uncovered");
        // Last positions must be flush with the far edges.
        assert!(layout.positions().iter().any(|&(y, _)| y == 6));
        assert!(layout.positions().iter().any(|&(_, x)| x == 7));
    }

    #[test]
    fn context_extraction_pads_with_zeros_at_borders() {
        let mut ctx = ContextMap::zeros(1, 6, 6);
        for y in 0..6 {
            for x in 0..6 {
                *ctx.at_mut(0, y, x) = 1.0;
            }
        }
        let layout = PatchLayout::new(GridSpec::new(6, 6), spec());
        // Patch at (0,0): context window starts at (-2,-2) → the first
        // two rows/cols of the window are padding.
        let c = layout.extract_context(&ctx, (0, 0));
        assert_eq!(c.shape().dims(), &[1, 8, 8]);
        assert_eq!(c.at(&[0, 0, 0]), 0.0);
        assert_eq!(c.at(&[0, 1, 5]), 0.0);
        assert_eq!(c.at(&[0, 2, 2]), 1.0);
        assert_eq!(c.at(&[0, 7, 7]), 1.0); // (5,5) inside the city
    }

    #[test]
    fn traffic_extraction_matches_map() {
        let data: Vec<f32> = (0..2 * 6 * 6).map(|i| i as f32).collect();
        let map = TrafficMap::from_vec(data, 2, 6, 6);
        let layout = PatchLayout::new(GridSpec::new(6, 6), spec());
        let p = layout.extract_traffic(&map, (1, 2), 0, 2);
        assert_eq!(p.shape().dims(), &[2, 4, 4]);
        assert_eq!(p.at(&[0, 0, 0]), map.at(0, 1, 2));
        assert_eq!(p.at(&[1, 3, 3]), map.at(1, 4, 5));
    }

    #[test]
    fn sew_of_extracted_patches_reconstructs_the_map() {
        // Round-trip property: extracting overlapping patches from a map
        // and sewing them back must reproduce the map exactly, because
        // every generated value for a pixel equals the original value.
        let data: Vec<f32> = (0..3 * 9 * 10).map(|i| (i % 17) as f32).collect();
        let map = TrafficMap::from_vec(data, 3, 9, 10);
        let layout = PatchLayout::new(map.grid(), spec());
        let patches: Vec<Tensor> = layout
            .positions()
            .to_vec()
            .into_iter()
            .map(|pos| layout.extract_traffic(&map, pos, 0, 3))
            .collect();
        let sewn = layout.sew(&patches);
        for (a, b) in sewn.data().iter().zip(map.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn streaming_sew_is_bitwise_equal_to_batch() {
        let layout = PatchLayout::new(GridSpec::new(9, 10), spec());
        let patches: Vec<Tensor> = (0..layout.positions().len())
            .map(|i| {
                let data: Vec<f32> = (0..3 * 4 * 4)
                    .map(|j| ((i * 31 + j * 7) % 101) as f32 * 0.137)
                    .collect();
                Tensor::from_vec(data, [3, 4, 4])
            })
            .collect();
        let batch = layout.sew(&patches);
        let mut acc = layout.sew_accumulator(3);
        for p in &patches {
            acc.push(p);
        }
        let streamed = acc.finish();
        assert_eq!(
            batch.data(),
            streamed.data(),
            "streaming sew must be bit-identical to batch"
        );
    }

    #[test]
    fn band_emission_is_bitwise_equal_to_finish() {
        let layout = PatchLayout::new(GridSpec::new(9, 10), spec());
        let patches: Vec<Tensor> = (0..layout.positions().len())
            .map(|i| {
                let data: Vec<f32> = (0..3 * 4 * 4)
                    .map(|j| ((i * 13 + j * 5) % 97) as f32 * 0.219 - 3.0)
                    .collect();
                Tensor::from_vec(data, [3, 4, 4])
            })
            .collect();
        let reference = layout.sew(&patches);

        // Drain bands after every push; rebuild the map from them.
        let mut acc = layout.sew_accumulator(3);
        let mut rebuilt = TrafficMap::zeros(3, 9, 10);
        let mut bands = 0usize;
        let mut rows_seen = 0usize;
        for p in &patches {
            acc.push(p);
            while let Some(band) = acc.emit_band() {
                assert_eq!(band.y0, rows_seen, "bands must arrive in row order");
                rows_seen += band.rows;
                bands += 1;
                band.write_into(&mut rebuilt);
            }
        }
        assert_eq!(rows_seen, 9, "bands must cover every row");
        assert!(bands > 1, "a strided layout must emit multiple bands");
        assert_eq!(acc.emitted_rows(), 9);
        assert!(acc.emit_band().is_none(), "drained accumulator is empty");
        assert_eq!(
            rebuilt.data(),
            reference.data(),
            "band emission must be bit-identical to finish()"
        );
    }

    #[test]
    fn bands_only_cover_rows_no_pending_patch_can_touch() {
        let layout = PatchLayout::new(GridSpec::new(9, 10), spec());
        let mut acc = layout.sew_accumulator(1);
        // Nothing pushed: no band can be complete.
        assert_eq!(acc.completed_rows(), 0);
        assert!(acc.emit_band().is_none());
        // Push the first row of patches (positions with y = 0).
        let first_row = layout.positions().iter().filter(|p| p.0 == 0).count();
        for _ in 0..first_row {
            acc.push(&Tensor::full([1, 4, 4], 1.0));
        }
        // The next patch row starts at y = 2, so exactly rows 0..2 are
        // final.
        let band = acc.emit_band().expect("first band ready");
        assert_eq!((band.y0, band.rows), (0, 2));
    }

    #[test]
    #[should_panic(expected = "finish() after emit_band()")]
    fn finish_rejects_partially_drained_accumulator() {
        let layout = PatchLayout::new(GridSpec::new(4, 4), PatchSpec::new(4, 4, 4));
        let mut acc = layout.sew_accumulator(1);
        acc.push(&Tensor::zeros([1, 4, 4]));
        let _ = acc.emit_band();
        let _ = acc.finish();
    }

    #[test]
    #[should_panic(expected = "more patches than layout positions")]
    fn accumulator_rejects_extra_patches() {
        let layout = PatchLayout::new(GridSpec::new(4, 4), PatchSpec::new(4, 4, 4));
        let mut acc = layout.sew_accumulator(1);
        acc.push(&Tensor::zeros([1, 4, 4]));
        acc.push(&Tensor::zeros([1, 4, 4]));
    }

    #[test]
    #[should_panic(expected = "expected 1 patches, got 0")]
    fn accumulator_finish_requires_all_positions() {
        let layout = PatchLayout::new(GridSpec::new(4, 4), PatchSpec::new(4, 4, 4));
        layout.sew_accumulator(2).finish();
    }

    #[test]
    fn sew_averages_disagreeing_patches() {
        // Two fully-overlapping patches with constant values 0 and 2
        // must average to 1.
        let layout = PatchLayout::new(GridSpec::new(4, 4), PatchSpec::new(4, 4, 4));
        assert_eq!(layout.positions().len(), 1);
        // Fake a second patch at the same position by duplicating the
        // layout position list through a custom layout.
        let mut layout2 = layout.clone();
        layout2.positions.push((0, 0));
        let p0 = Tensor::zeros([1, 4, 4]);
        let p2 = Tensor::full([1, 4, 4], 2.0);
        let sewn = layout2.sew(&[p0, p2]);
        assert!(sewn.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }
}
