//! City-scale spatiotemporal traffic maps.

use crate::grid::GridSpec;
use serde::{Deserialize, Serialize};

/// A spatiotemporal traffic tensor `x ∈ R^{T×H×W}`: `t` frames of an
/// `H×W` grid, time-major, each frame row-major.
///
/// Values are normalized traffic volumes; after
/// [`TrafficMap::normalize_peak`] they lie in `[0, 1]` relative to the
/// city's peak pixel, matching the anonymization of the paper's
/// datasets (§3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMap {
    t: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl TrafficMap {
    /// Creates a map from a flat `t·h·w` buffer (time-major).
    ///
    /// # Panics
    /// Panics if the buffer length does not match.
    pub fn from_vec(data: Vec<f32>, t: usize, h: usize, w: usize) -> Self {
        assert_eq!(data.len(), t * h * w, "traffic buffer length mismatch");
        TrafficMap { t, h, w, data }
    }

    /// All-zero map.
    pub fn zeros(t: usize, h: usize, w: usize) -> Self {
        TrafficMap {
            t,
            h,
            w,
            data: vec![0.0; t * h * w],
        }
    }

    /// Number of time steps.
    pub fn len_t(&self) -> usize {
        self.t
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// The grid this map lives on.
    pub fn grid(&self) -> GridSpec {
        GridSpec::new(self.h, self.w)
    }

    /// Flat read-only buffer (time-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable buffer (time-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Value at `(t, y, x)`.
    #[inline]
    pub fn at(&self, t: usize, y: usize, x: usize) -> f32 {
        debug_assert!(t < self.t && y < self.h && x < self.w);
        self.data[(t * self.h + y) * self.w + x]
    }

    /// Mutable value at `(t, y, x)`.
    #[inline]
    pub fn at_mut(&mut self, t: usize, y: usize, x: usize) -> &mut f32 {
        debug_assert!(t < self.t && y < self.h && x < self.w);
        &mut self.data[(t * self.h + y) * self.w + x]
    }

    /// One spatial frame as a slice of `h·w` values.
    pub fn frame(&self, t: usize) -> &[f32] {
        assert!(t < self.t, "frame {t} out of {}", self.t);
        &self.data[t * self.h * self.w..(t + 1) * self.h * self.w]
    }

    /// The traffic time series of one pixel, in `f64` for DSP use.
    pub fn pixel_series(&self, y: usize, x: usize) -> Vec<f64> {
        (0..self.t).map(|t| self.at(t, y, x) as f64).collect()
    }

    /// Time-averaged traffic map (`h·w` values) — the paper's
    /// "time-averaged traffic map" qualitative artefact (Fig. 1a, 7).
    pub fn mean_map(&self) -> Vec<f64> {
        let hw = self.h * self.w;
        let mut out = vec![0.0f64; hw];
        for t in 0..self.t {
            for (o, &v) in out.iter_mut().zip(self.frame(t)) {
                *o += v as f64;
            }
        }
        for o in &mut out {
            *o /= self.t as f64;
        }
        out
    }

    /// Space-averaged city-wide traffic time series (`t` values) —
    /// the paper's "mean city-wide traffic" artefact (Fig. 1c, 8).
    pub fn city_series(&self) -> Vec<f64> {
        let hw = (self.h * self.w) as f64;
        (0..self.t)
            .map(|t| self.frame(t).iter().map(|&v| v as f64).sum::<f64>() / hw)
            .collect()
    }

    /// Extracts the sub-series `t0..t1` as a new map.
    pub fn slice_time(&self, t0: usize, t1: usize) -> TrafficMap {
        assert!(
            t0 <= t1 && t1 <= self.t,
            "bad time slice {t0}..{t1} of {}",
            self.t
        );
        let hw = self.h * self.w;
        TrafficMap {
            t: t1 - t0,
            h: self.h,
            w: self.w,
            data: self.data[t0 * hw..t1 * hw].to_vec(),
        }
    }

    /// Normalizes by the peak pixel value, returning the peak. The
    /// paper's datasets are anonymized exactly this way (§3.1). A zero
    /// map is returned unchanged with peak 0.
    pub fn normalize_peak(&mut self) -> f32 {
        let peak = self.data.iter().copied().fold(0.0f32, f32::max);
        if peak > 0.0 {
            for v in &mut self.data {
                *v /= peak;
            }
        }
        peak
    }

    /// Aggregates consecutive time steps by summing groups of `k`
    /// frames — converts e.g. 15-min data to hourly (`k = 4`). Trailing
    /// frames that do not fill a group are dropped.
    pub fn aggregate_time(&self, k: usize) -> TrafficMap {
        assert!(k >= 1, "aggregation factor must be >= 1");
        let t_out = self.t / k;
        let hw = self.h * self.w;
        let mut out = TrafficMap::zeros(t_out, self.h, self.w);
        for to in 0..t_out {
            for ti in to * k..(to + 1) * k {
                let frame = &self.data[ti * hw..(ti + 1) * hw];
                for (o, &v) in out.data[to * hw..(to + 1) * hw].iter_mut().zip(frame) {
                    *o += v;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_map(t: usize, h: usize, w: usize) -> TrafficMap {
        let data = (0..t * h * w).map(|i| i as f32).collect();
        TrafficMap::from_vec(data, t, h, w)
    }

    #[test]
    fn indexing_is_time_major_row_major() {
        let m = ramp_map(2, 2, 3);
        assert_eq!(m.at(0, 0, 0), 0.0);
        assert_eq!(m.at(0, 1, 2), 5.0);
        assert_eq!(m.at(1, 0, 0), 6.0);
        assert_eq!(m.frame(1), &[6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn pixel_and_city_series() {
        let m = ramp_map(3, 1, 2);
        assert_eq!(m.pixel_series(0, 1), vec![1.0, 3.0, 5.0]);
        assert_eq!(m.city_series(), vec![0.5, 2.5, 4.5]);
    }

    #[test]
    fn mean_map_averages_over_time() {
        let m = ramp_map(2, 1, 2); // frames [0,1], [2,3]
        assert_eq!(m.mean_map(), vec![1.0, 2.0]);
    }

    #[test]
    fn slice_time_extracts_frames() {
        let m = ramp_map(4, 1, 1);
        let s = m.slice_time(1, 3);
        assert_eq!(s.len_t(), 2);
        assert_eq!(s.data(), &[1.0, 2.0]);
    }

    #[test]
    fn normalize_peak_scales_to_unit() {
        let mut m = ramp_map(2, 1, 2);
        let peak = m.normalize_peak();
        assert_eq!(peak, 3.0);
        assert_eq!(m.data(), &[0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0]);
        let mut z = TrafficMap::zeros(1, 1, 1);
        assert_eq!(z.normalize_peak(), 0.0);
    }

    #[test]
    fn aggregate_time_sums_groups() {
        let m = ramp_map(4, 1, 1); // [0,1,2,3]
        let a = m.aggregate_time(2);
        assert_eq!(a.len_t(), 2);
        assert_eq!(a.data(), &[1.0, 5.0]);
        // Trailing remainder dropped.
        let b = ramp_map(5, 1, 1).aggregate_time(2);
        assert_eq!(b.len_t(), 2);
    }
}
