//! Corrupt-input property tests for every `geo::io` decoder.
//!
//! The decoders sit on trust boundaries: files shared between users,
//! bytes streamed from a network peer, pipes shared with a possibly
//! dying worker process. The properties here assert the decoder
//! contract under corruption — a mangled input either decodes to a
//! self-consistent value or returns a *typed* [`IoError`]; it never
//! panics, and length headers can never drive an allocation above the
//! caller's cap.

use proptest::prelude::*;
use spectragan_geo::io::{
    crc32, decode_band, decode_checked, decode_context, decode_traffic, encode_band,
    encode_checked, encode_context, encode_traffic, extend_f32_le, f32s_from_le,
    read_checked_frame, IoError, FORMAT_VERSION, GRAD_FRAME_MAGIC,
};
use spectragan_geo::{ContextMap, TrafficBand, TrafficMap};

/// A deterministic pseudo-random f32 payload.
fn payload(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32) / (1 << 24) as f32 - 0.5
        })
        .collect()
}

proptest! {
    /// Truncating a valid SGTM container at *any* byte offset is a
    /// typed error, never a panic and never silently-valid data.
    #[test]
    fn truncated_traffic_never_panics(t in 1usize..4, h in 1usize..6, w in 1usize..6, seed in 0u64..50) {
        let map = TrafficMap::from_vec(payload(t * h * w, seed), t, h, w);
        let bytes = encode_traffic(&map);
        for cut in 0..bytes.len() {
            prop_assert!(decode_traffic(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
        prop_assert_eq!(decode_traffic(&bytes).unwrap(), map);
    }

    /// Same property for SGCM context containers.
    #[test]
    fn truncated_context_never_panics(c in 1usize..5, h in 1usize..6, w in 1usize..6, seed in 0u64..50) {
        let map = ContextMap::from_vec(payload(c * h * w, seed), c, h, w);
        let bytes = encode_context(&map);
        for cut in 0..bytes.len() {
            prop_assert!(decode_context(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
        prop_assert_eq!(decode_context(&bytes).unwrap(), map);
    }

    /// Same property for SGBD band frames.
    #[test]
    fn truncated_band_never_panics(y0 in 0usize..100, rows in 1usize..4, t in 1usize..5, w in 1usize..6, seed in 0u64..50) {
        let band = TrafficBand { y0, rows, t, w, data: payload(rows * t * w, seed) };
        let bytes = encode_band(&band);
        for cut in 0..bytes.len() {
            prop_assert!(decode_band(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
        prop_assert_eq!(decode_band(&bytes).unwrap(), band);
    }

    /// Overwriting a dimension field with an arbitrary value either
    /// fails typed or yields a map whose element count matches the
    /// mutated header — a decoder must never trust the original
    /// length once the dims changed.
    #[test]
    fn flipped_dims_fail_or_stay_consistent(
        t in 1usize..4, h in 1usize..6, w in 1usize..6,
        which in 0usize..3, newdim in 0u32..1000, seed in 0u64..50,
    ) {
        let map = TrafficMap::from_vec(payload(t * h * w, seed), t, h, w);
        let mut bytes = encode_traffic(&map);
        bytes[6 + 4 * which..6 + 4 * (which + 1)].copy_from_slice(&newdim.to_le_bytes());
        match decode_traffic(&bytes) {
            Ok(back) => {
                let dims = [back.len_t(), back.height(), back.width()];
                prop_assert_eq!(dims[which], newdim as usize);
                prop_assert_eq!(back.data().len(), dims[0] * dims[1] * dims[2]);
            }
            Err(
                IoError::BadLength { .. } | IoError::BadDims | IoError::BadMagic,
            ) => {}
            Err(other) => prop_assert!(false, "untyped rejection: {other}"),
        }
    }

    /// Dim combinations whose product overflows usize are rejected as
    /// BadDims before any allocation is attempted.
    #[test]
    fn overflowing_dim_products_are_rejected(a in u32::MAX - 3..=u32::MAX, b in u32::MAX - 3..=u32::MAX, c in 2u32..=u32::MAX) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"SGTM");
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        for d in [a, b, c] {
            bytes.extend_from_slice(&d.to_le_bytes());
        }
        prop_assert!(matches!(decode_traffic(&bytes), Err(IoError::BadDims)));
    }

    /// Any length header above the cap is a typed FrameTooLarge — the
    /// reader returns before touching (or allocating for) the payload.
    #[test]
    fn oversized_length_headers_are_capped(cap in 0usize..10_000, over in 1u64..u64::MAX / 2) {
        let claimed = (cap as u64).saturating_add(over);
        let mut frame = Vec::new();
        frame.extend_from_slice(GRAD_FRAME_MAGIC);
        frame.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        frame.extend_from_slice(&claimed.to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        let got = read_checked_frame(&mut frame.as_slice(), GRAD_FRAME_MAGIC, cap);
        prop_assert!(
            matches!(got, Err(IoError::FrameTooLarge { len, max }) if len == claimed && max == cap)
        );
    }

    /// Flipping any single byte of a checked container is always a
    /// typed rejection: the CRC covers the payload, and every header
    /// field is validated.
    #[test]
    fn checked_container_rejects_any_single_byte_flip(n in 0usize..200, flip in 0usize..218, bit in 0u8..8, seed in 0u64..50) {
        let body: Vec<u8> = payload(n.div_ceil(4).max(1), seed)
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .take(n)
            .collect();
        let mut framed = encode_checked(GRAD_FRAME_MAGIC, &body);
        prop_assume!(flip < framed.len());
        framed[flip] ^= 1 << bit;
        match decode_checked(GRAD_FRAME_MAGIC, &framed) {
            Err(
                IoError::BadMagic
                | IoError::BadVersion(_)
                | IoError::BadLength { .. }
                | IoError::BadChecksum { .. },
            ) => {}
            Err(other) => prop_assert!(false, "untyped rejection: {other}"),
            // A flip in the CRC field colliding back to valid is
            // impossible for a single-bit flip (CRC-32 detects all
            // single-bit errors), as is a payload flip.
            Ok(_) => prop_assert!(false, "corrupt container accepted"),
        }
    }

    /// The bulk little-endian encode path is bit-identical to a scalar
    /// reference encoding, and decode inverts it bit-exactly.
    #[test]
    fn bulk_f32_encode_matches_scalar_reference(t in 1usize..4, h in 1usize..8, w in 1usize..8, seed in 0u64..200) {
        let data = payload(t * h * w, seed);
        let map = TrafficMap::from_vec(data.clone(), t, h, w);
        let bytes = encode_traffic(&map);
        // Scalar reference: header + per-element to_le_bytes.
        let mut reference = Vec::new();
        reference.extend_from_slice(b"SGTM");
        reference.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        for d in [t, h, w] {
            reference.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for &v in &data {
            reference.extend_from_slice(&v.to_le_bytes());
        }
        prop_assert_eq!(&bytes, &reference);
        let back = decode_traffic(&bytes).unwrap();
        let a: Vec<u32> = back.data().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    /// The bulk f32 little-endian codec — which the SGWT directory's
    /// dequantization scales ride — round-trips *every* 32-bit pattern
    /// bit-exactly, NaN payloads and negative zero included. Nothing
    /// may be normalized in transit: corrupt scales must arrive intact
    /// so the semantic finite/positive check upstairs can refuse them.
    #[test]
    fn f32_le_codec_roundtrips_arbitrary_bit_patterns(
        words in proptest::collection::vec(0u32..=u32::MAX, 0..64),
    ) {
        let vals: Vec<f32> = words.iter().map(|&w| f32::from_bits(w)).collect();
        let mut bytes = Vec::with_capacity(4 * vals.len());
        extend_f32_le(&mut bytes, &vals);
        prop_assert_eq!(bytes.len(), 4 * vals.len());
        let back = f32s_from_le(&bytes);
        let got: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, words);
    }

    /// Flipping one byte of an encoded f32 run perturbs exactly the
    /// containing element — the codec is positional, so a corrupt
    /// scale can never smear into its neighbors.
    #[test]
    fn f32_le_byte_flip_is_contained_to_one_element(
        n in 1usize..32, flip in 0usize..128, bit in 0u8..8, seed in 0u64..50,
    ) {
        let vals = payload(n, seed);
        let mut bytes = Vec::new();
        extend_f32_le(&mut bytes, &vals);
        prop_assume!(flip < bytes.len());
        bytes[flip] ^= 1 << bit;
        let back = f32s_from_le(&bytes);
        prop_assert_eq!(back.len(), n);
        for (i, (&a, &b)) in vals.iter().zip(&back).enumerate() {
            if i == flip / 4 {
                prop_assert!(a.to_bits() != b.to_bits(), "flipped element unchanged");
            } else {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "element {} smeared", i);
            }
        }
    }

    /// CRC-32 detects every single-bit flip in a frame's payload.
    #[test]
    fn crc_differs_on_any_single_bit_flip(n in 1usize..300, flip in 0usize..300, bit in 0u8..8, seed in 0u64..50) {
        let mut body: Vec<u8> = payload(n.div_ceil(4), seed)
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .take(n)
            .collect();
        prop_assume!(flip < body.len());
        let before = crc32(&body);
        body[flip] ^= 1 << bit;
        prop_assert!(crc32(&body) != before);
    }
}
