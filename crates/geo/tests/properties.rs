//! Property-based tests for the spatial substrate.

use proptest::prelude::*;
use spectragan_geo::{ContextMap, GridSpec, PatchLayout, PatchSpec, TrafficMap};
use spectragan_tensor::Tensor;

proptest! {
    /// Sliding-window positions cover every pixel for any grid at
    /// least one patch large, for any stride.
    #[test]
    fn layout_covers_grid(h in 8usize..30, w in 8usize..30, stride in 1usize..8) {
        let spec = PatchSpec::new(8, 16, stride);
        let layout = PatchLayout::new(GridSpec::new(h, w), spec);
        let mut covered = vec![false; h * w];
        for &(y, x) in layout.positions() {
            prop_assert!(y + 8 <= h && x + 8 <= w, "patch exits the grid");
            for dy in 0..8 {
                for dx in 0..8 {
                    covered[(y + dy) * w + (x + dx)] = true;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    /// Extract-then-sew is the identity on any traffic map (every
    /// generated value for a pixel equals the original).
    #[test]
    fn extract_sew_identity(h in 8usize..20, w in 8usize..20, t in 1usize..6, stride in 1usize..8, seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..t * h * w).map(|_| rand::Rng::gen_range(&mut rng, 0.0..1.0)).collect();
        let map = TrafficMap::from_vec(data, t, h, w);
        let layout = PatchLayout::new(map.grid(), PatchSpec::new(8, 16, stride));
        let patches: Vec<Tensor> = layout
            .positions()
            .to_vec()
            .into_iter()
            .map(|pos| layout.extract_traffic(&map, pos, 0, t))
            .collect();
        let sewn = layout.sew(&patches);
        for (a, b) in sewn.data().iter().zip(map.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// Streaming sew (push patches one at a time, drop immediately) is
    /// bit-identical to batch sew for any overlap regime — stride 8
    /// (none), 4 (2×) and 2 (4×) — and any patch length, including odd
    /// lengths that do not divide the batch sizes generation uses.
    #[test]
    fn streaming_sew_bitwise_equals_batch(
        h in 8usize..24,
        w in 8usize..24,
        t in 1usize..9,
        stride_sel in 0usize..3,
        seed in 0u64..100,
    ) {
        use rand::SeedableRng;
        let stride = [8usize, 4, 2][stride_sel];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let layout = PatchLayout::new(GridSpec::new(h, w), PatchSpec::new(8, 16, stride));
        let patches: Vec<Tensor> = (0..layout.positions().len())
            .map(|_| {
                let data: Vec<f32> =
                    (0..t * 64).map(|_| rand::Rng::gen_range(&mut rng, -2.0..2.0)).collect();
                Tensor::from_vec(data, [t, 8, 8])
            })
            .collect();
        let batch = layout.sew(&patches);
        let mut acc = layout.sew_accumulator(t);
        for p in &patches {
            acc.push(p);
        }
        let streamed = acc.finish();
        prop_assert_eq!(batch.data(), streamed.data());
    }

    /// Context extraction agrees with the map inside bounds and is zero
    /// outside, for any position.
    #[test]
    fn context_padding_is_exact(h in 8usize..16, w in 8usize..16, seed in 0u64..50) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut ctx = ContextMap::zeros(3, h, w);
        for v in ctx.data_mut() {
            *v = rand::Rng::gen_range(&mut rng, -1.0..1.0f32);
        }
        let spec = PatchSpec::new(8, 16, 4);
        let layout = PatchLayout::new(GridSpec::new(h, w), spec);
        for &(py, px) in layout.positions() {
            let patch = layout.extract_context(&ctx, (py, px));
            let m = spec.margin() as isize;
            for ch in 0..3 {
                for dy in 0..16usize {
                    for dx in 0..16usize {
                        let sy = py as isize - m + dy as isize;
                        let sx = px as isize - m + dx as isize;
                        let got = patch.at(&[ch, dy, dx]);
                        if sy >= 0 && sx >= 0 && (sy as usize) < h && (sx as usize) < w {
                            prop_assert_eq!(got, ctx.at(ch, sy as usize, sx as usize));
                        } else {
                            prop_assert_eq!(got, 0.0);
                        }
                    }
                }
            }
        }
    }

    /// Time aggregation conserves total traffic over complete groups.
    #[test]
    fn aggregation_conserves_mass(t in 4usize..24, k in 1usize..5, seed in 0u64..50) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..t * 4).map(|_| rand::Rng::gen_range(&mut rng, 0.0..1.0)).collect();
        let map = TrafficMap::from_vec(data, t, 2, 2);
        let agg = map.aggregate_time(k);
        let groups = t / k;
        let mass_in: f32 = map.data()[..groups * k * 4].iter().sum();
        let mass_out: f32 = agg.data().iter().sum();
        prop_assert!((mass_in - mass_out).abs() < 1e-3 * mass_in.max(1.0));
    }

    /// Peak normalization brings any non-zero map into [0, 1] with max
    /// exactly 1.
    #[test]
    fn normalization_bounds(t in 1usize..5, seed in 0u64..50) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..t * 9).map(|_| rand::Rng::gen_range(&mut rng, 0.0..10.0)).collect();
        prop_assume!(data.iter().any(|&v| v > 0.0));
        let mut map = TrafficMap::from_vec(data, t, 3, 3);
        map.normalize_peak();
        let max = map.data().iter().cloned().fold(0.0f32, f32::max);
        prop_assert!((max - 1.0).abs() < 1e-6);
        prop_assert!(map.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
