//! Jain's fairness index — the load-balancing quality measure of the
//! vRAN use case (Table 7).

/// Jain's fairness index `(Σx)² / (n·Σx²)`, in `(0, 1]`; 1 means all
/// loads are equal. An all-zero load vector is defined as perfectly
/// fair (index 1).
pub fn jain_index(loads: &[f64]) -> f64 {
    assert!(!loads.is_empty(), "jain index of empty load vector");
    let sum: f64 = loads.iter().sum();
    let sum_sq: f64 = loads.iter().map(|&x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (loads.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_loads_are_perfectly_fair() {
        assert!((jain_index(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_hot_load_has_index_one_over_n() {
        let j = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_loads_are_fair_by_convention() {
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn mild_imbalance_scores_between() {
        let j = jain_index(&[1.0, 1.2, 0.8]);
        assert!(j > 0.9 && j < 1.0);
    }
}
