//! FVD — Fréchet "video" distance over signature-transform embeddings
//! (§3.2).
//!
//! The paper avoids a pre-trained video network (which could bias the
//! comparison) and instead: (1) spatially flattens the traffic video
//! into a multivariate time series, (2) embeds windows of it with a
//! signature transformation, (3) computes the Fréchet distance between
//! Gaussian fits of the real and synthetic embedding populations.
//!
//! Our implementation follows the same recipe. To keep the signature
//! dimension manageable, the spatial flattening pools the city into a
//! `2×2` quadrant grid plus the city-wide mean (5 channels); windows of
//! one day are embedded with the truncated level-2 signature
//! (1 + d + d² terms for a d-channel path).

use crate::linalg::{matmul_sq, sym_sqrt, trace};
use spectragan_geo::TrafficMap;

/// Number of pooled spatial channels (4 quadrants + city mean).
const CHANNELS: usize = 5;

/// Pools a frame into quadrant means plus the global mean.
fn pool_frame(frame: &[f32], h: usize, w: usize) -> [f64; CHANNELS] {
    let mut sums = [0.0f64; 4];
    let mut counts = [0.0f64; 4];
    for y in 0..h {
        for x in 0..w {
            let q = (y * 2 / h.max(1)).min(1) * 2 + (x * 2 / w.max(1)).min(1);
            sums[q] += frame[y * w + x] as f64;
            counts[q] += 1.0;
        }
    }
    let mut out = [0.0f64; CHANNELS];
    let mut total = 0.0;
    for q in 0..4 {
        out[q] = if counts[q] > 0.0 {
            sums[q] / counts[q]
        } else {
            0.0
        };
        total += sums[q];
    }
    out[4] = total / (h * w) as f64;
    out
}

/// Truncated level-2 signature of a d-channel path given as rows of
/// channel values: `(1, S^i, S^{ij})` with `S^i = Σ Δx_i` and
/// `S^{ij} = Σ_t (x̄_i(t) − x_i(0))·Δx_j(t)` using the midpoint
/// `x̄_i(t) = (x_i(t−1) + x_i(t))/2` — the quadrature under which the
/// integration-by-parts identity `S^{ij} + S^{ji} = Δx_i·Δx_j` holds
/// exactly for discrete paths.
pub fn signature_level2(path: &[[f64; CHANNELS]]) -> Vec<f64> {
    let d = CHANNELS;
    let mut sig = vec![0.0f64; 1 + d + d * d];
    sig[0] = 1.0;
    if path.len() < 2 {
        return sig;
    }
    let x0 = path[0];
    for t in 1..path.len() {
        for j in 0..d {
            let dxj = path[t][j] - path[t - 1][j];
            sig[1 + j] += dxj;
            for i in 0..d {
                let mid_i = 0.5 * (path[t - 1][i] + path[t][i]);
                sig[1 + d + i * d + j] += (mid_i - x0[i]) * dxj;
            }
        }
    }
    sig
}

/// Embeds a traffic map into signature vectors of day-long windows.
/// Returns an empty vector when the series is shorter than one window.
pub fn embed(map: &TrafficMap, window: usize) -> Vec<Vec<f64>> {
    let (h, w) = (map.height(), map.width());
    let pooled: Vec<[f64; CHANNELS]> = (0..map.len_t())
        .map(|t| pool_frame(map.frame(t), h, w))
        .collect();
    let mut out = Vec::new();
    let mut start = 0;
    while start + window <= pooled.len() {
        out.push(signature_level2(&pooled[start..start + window]));
        start += window / 2; // 50 % overlap for more samples
    }
    out
}

/// Fréchet distance between Gaussian fits of two vector populations:
/// `|μ₁ − μ₂|² + tr(Σ₁ + Σ₂ − 2·(Σ₁^{1/2} Σ₂ Σ₁^{1/2})^{1/2})`.
/// Covariances are ridged (`+1e-6·I`) for stability.
pub fn frechet_distance(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "empty embedding population");
    let d = a[0].len();
    let stats = |xs: &[Vec<f64>]| -> (Vec<f64>, Vec<f64>) {
        let n = xs.len() as f64;
        let mut mu = vec![0.0; d];
        for x in xs {
            for (m, v) in mu.iter_mut().zip(x) {
                *m += v / n;
            }
        }
        let mut cov = vec![0.0; d * d];
        for x in xs {
            for i in 0..d {
                for j in 0..d {
                    cov[i * d + j] += (x[i] - mu[i]) * (x[j] - mu[j]) / n;
                }
            }
        }
        for i in 0..d {
            cov[i * d + i] += 1e-6;
        }
        (mu, cov)
    };
    let (mu1, s1) = stats(a);
    let (mu2, s2) = stats(b);
    let mean_term: f64 = mu1.iter().zip(&mu2).map(|(x, y)| (x - y) * (x - y)).sum();
    let s1_half = sym_sqrt(&s1, d);
    let inner = matmul_sq(&matmul_sq(&s1_half, &s2, d), &s1_half, d);
    let cross = sym_sqrt(&inner, d);
    let cov_term = trace(&s1, d) + trace(&s2, d) - 2.0 * trace(&cross, d);
    (mean_term + cov_term).max(0.0)
}

/// **FVD** (§3.2): Fréchet distance between signature embeddings of
/// real and synthetic traffic, using day-long windows
/// (`24·steps_per_hour` frames). Lower is better.
pub fn fvd(real: &TrafficMap, synth: &TrafficMap, steps_per_hour: usize) -> f64 {
    let window = 24 * steps_per_hour;
    let ea = embed(real, window);
    let eb = embed(synth, window);
    frechet_distance(&ea, &eb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_with(f: impl Fn(usize, usize) -> f64, t: usize) -> TrafficMap {
        let (h, w) = (6, 6);
        let mut m = TrafficMap::zeros(t, h, w);
        for ti in 0..t {
            for px in 0..h * w {
                m.data_mut()[ti * h * w + px] = f(ti, px) as f32;
            }
        }
        m
    }

    #[test]
    fn signature_of_constant_path_is_trivial() {
        let path = vec![[1.0; CHANNELS]; 10];
        let sig = signature_level2(&path);
        assert_eq!(sig[0], 1.0);
        assert!(sig[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn signature_level1_is_total_increment() {
        let mut path = vec![[0.0; CHANNELS]; 5];
        for (t, p) in path.iter_mut().enumerate() {
            p[0] = t as f64;
            p[1] = 2.0 * t as f64;
        }
        let sig = signature_level2(&path);
        assert!((sig[1] - 4.0).abs() < 1e-12);
        assert!((sig[2] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn signature_area_antisymmetry() {
        // For any path: S^{ij} + S^{ji} ≈ ΔiΔj (integration by parts).
        let mut path = vec![[0.0; CHANNELS]; 20];
        for (t, p) in path.iter_mut().enumerate() {
            p[0] = (t as f64 * 0.3).sin();
            p[1] = (t as f64 * 0.2).cos();
        }
        let sig = signature_level2(&path);
        let d = CHANNELS;
        let get = |i: usize, j: usize| sig[1 + d + i * d + j];
        let di = path[19][0] - path[0][0];
        let dj = path[19][1] - path[0][1];
        assert!((get(0, 1) + get(1, 0) - di * dj).abs() < 1e-9);
    }

    #[test]
    fn frechet_identical_populations_is_near_zero() {
        let a: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i) as f64 * 0.1, 1.0])
            .collect();
        let d = frechet_distance(&a, &a);
        assert!(d < 1e-9, "d = {d}");
    }

    #[test]
    fn frechet_separated_populations_is_large() {
        let a: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.01, 0.0]).collect();
        let b: Vec<Vec<f64>> = (0..20).map(|i| vec![10.0 + i as f64 * 0.01, 0.0]).collect();
        assert!(frechet_distance(&a, &b) > 50.0);
    }

    #[test]
    fn fvd_prefers_matching_dynamics() {
        let real = map_with(
            |t, px| {
                (1.0 + (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin()) * (px as f64 / 36.0)
            },
            96,
        );
        let similar = map_with(
            |t, px| {
                (1.0 + (2.0 * std::f64::consts::PI * (t as f64 - 0.5) / 24.0).sin())
                    * (px as f64 / 36.0)
            },
            96,
        );
        let flat = map_with(|_, px| px as f64 / 36.0, 96);
        let d_sim = fvd(&real, &similar, 1);
        let d_flat = fvd(&real, &flat, 1);
        assert!(d_sim < d_flat, "similar {d_sim} flat {d_flat}");
    }
}
