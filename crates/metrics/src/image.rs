//! PSNR — peak signal-to-noise ratio, the image-fidelity metric of the
//! population-tracking use case (Table 8). Values above 20 dB are
//! conventionally acceptable quality loss.

/// PSNR in decibels between two equal-length images, with the peak
/// taken as the maximum of the reference image `a` (floored at a tiny
/// positive value to stay defined on empty maps).
///
/// Identical images return `f64::INFINITY`.
pub fn psnr(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "psnr images differ in length");
    assert!(!a.is_empty(), "psnr of empty images");
    let mse: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        / a.len() as f64;
    if mse == 0.0 {
        return f64::INFINITY;
    }
    let peak = a.iter().copied().fold(0.0f64, f64::max).max(1e-12);
    10.0 * (peak * peak / mse).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_infinite_psnr() {
        let a = vec![0.2, 0.5, 0.9];
        assert_eq!(psnr(&a, &a), f64::INFINITY);
    }

    #[test]
    fn known_value() {
        // Peak 1, MSE 0.01 → PSNR = 10·log10(1/0.01) = 20 dB.
        let a = vec![1.0, 0.0];
        let b = vec![0.9, 0.1];
        assert!((psnr(&a, &b) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn closer_images_score_higher() {
        let a = vec![0.5; 100];
        let near: Vec<f64> = a.iter().map(|v| v + 0.01).collect();
        let far: Vec<f64> = a.iter().map(|v| v + 0.2).collect();
        assert!(psnr(&a, &near) > psnr(&a, &far));
    }
}
