//! Fidelity metrics for synthetic spatiotemporal traffic (§3.2 of the
//! paper), plus the small numerical machinery they need (ridge
//! regression, symmetric eigendecomposition), all from scratch.
//!
//! The five quantitative metrics of the evaluation:
//!
//! * [`m_tv`] — **M-TV**: total-variation distance between the marginal
//!   traffic distributions of real and synthetic data (lower better).
//! * [`ssim_mean_maps`] — **SSIM** between time-averaged traffic maps
//!   (spatial fidelity, higher better).
//! * [`ac_l1`] — **AC-L1**: mean per-pixel L1 distance between
//!   autocorrelation functions (temporal fidelity, lower better).
//! * [`tstr_r2`] — **TSTR**: train a linear one-step-ahead regressor on
//!   synthetic data, test on real, report R² (higher better).
//! * [`fvd`] — **FVD**: Fréchet distance between signature-transform
//!   embeddings of real and synthetic traffic "videos" (lower better).
//!
//! Plus the use-case metrics: [`psnr`] (population maps, Table 8) and
//! [`jain_index`] (vRAN load balance, Table 7), and supporting
//! statistics ([`pearson`], [`LogNormal`], [`peak_hour_histogram`]).

pub mod fairness;
pub mod fvd;
pub mod image;
pub mod linalg;
pub mod lognormal;
pub mod ssim;
pub mod stats;
pub mod temporal;
pub mod tstr;

pub use fairness::jain_index;
pub use fvd::fvd;
pub use image::psnr;
pub use lognormal::LogNormal;
pub use ssim::ssim_mean_maps;
pub use stats::{emd, histogram, ks_statistic, m_emd, m_tv, pearson};
pub use temporal::{ac_l1, peak_hour_histogram};
pub use tstr::tstr_r2;
