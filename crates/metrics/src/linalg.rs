//! Small dense linear algebra used by TSTR (ridge regression) and FVD
//! (symmetric matrix square roots): Gaussian elimination with partial
//! pivoting and a Jacobi eigensolver for symmetric matrices.

/// Solves `A·x = b` for square `A` (row-major, `n×n`) by Gaussian
/// elimination with partial pivoting. Returns `None` if `A` is
/// (numerically) singular.
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix size mismatch");
    assert_eq!(b.len(), n, "rhs size mismatch");
    let mut m = a.to_vec();
    let mut x = b.to_vec();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..n {
            if m[row * n + col].abs() > m[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if m[pivot * n + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..n {
                m.swap(col * n + k, pivot * n + k);
            }
            x.swap(col, pivot);
        }
        // Eliminate.
        for row in col + 1..n {
            let f = m[row * n + col] / m[col * n + col];
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= f * m[col * n + k];
            }
            x[row] -= f * x[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = x[col];
        for k in col + 1..n {
            acc -= m[col * n + k] * x[k];
        }
        x[col] = acc / m[col * n + col];
    }
    Some(x)
}

/// Jacobi eigendecomposition of a symmetric matrix (row-major `n×n`).
/// Returns `(eigenvalues, eigenvectors)` where column `j` of the
/// returned row-major eigenvector matrix is the eigenvector of
/// `eigenvalues[j]`.
pub fn symmetric_eigen(a: &[f64], n: usize) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(a.len(), n * n, "matrix size mismatch");
    let mut m = a.to_vec();
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    for _sweep in 0..100 {
        // Largest off-diagonal element.
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[i * n + j] * m[i * n + j];
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eig = (0..n).map(|i| m[i * n + i]).collect();
    (eig, v)
}

/// Symmetric positive-semidefinite square root via eigendecomposition
/// (negative eigenvalues from numerical noise are clamped to zero).
pub fn sym_sqrt(a: &[f64], n: usize) -> Vec<f64> {
    let (eig, v) = symmetric_eigen(a, n);
    // sqrt(A) = V · diag(sqrt(λ)) · Vᵀ
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += v[i * n + k] * eig[k].max(0.0).sqrt() * v[j * n + k];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Row-major matrix product of two `n×n` matrices.
pub fn matmul_sq(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    out
}

/// Trace of a square matrix.
pub fn trace(a: &[f64], n: usize) -> f64 {
    (0..n).map(|i| a[i * n + i]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3]·x = [3; 5] → x = [4/5, 7/5].
        let a = [2.0, 1.0, 1.0, 3.0];
        let x = solve(&a, &[3.0, 5.0], 2).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(solve(&a, &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = [3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, -2.0];
        let (mut eig, _) = symmetric_eigen(&a, 3);
        eig.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((eig[0] + 2.0).abs() < 1e-10);
        assert!((eig[1] - 1.0).abs() < 1e-10);
        assert!((eig[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let a = [4.0, 1.0, 0.5, 1.0, 3.0, -0.2, 0.5, -0.2, 2.0];
        let (eig, v) = symmetric_eigen(&a, 3);
        // A = V diag(λ) Vᵀ
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = 0.0;
                for k in 0..3 {
                    acc += v[i * 3 + k] * eig[k] * v[j * 3 + k];
                }
                assert!((acc - a[i * 3 + j]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn sqrt_squares_back() {
        let a = [2.0, 0.5, 0.5, 1.0];
        let r = sym_sqrt(&a, 2);
        let sq = matmul_sq(&r, &r, 2);
        for (x, y) in sq.iter().zip(&a) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn trace_sums_diagonal() {
        assert_eq!(trace(&[1.0, 9.0, 9.0, 2.0], 2), 3.0);
    }
}
