//! Log-normal distribution fitting — the empirical model the FDAS
//! baseline (and Di Francesco et al. [26], which it reproduces) fits to
//! per-hour traffic before sampling.

/// A log-normal distribution `ln X ~ N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of `ln X`.
    pub mu: f64,
    /// Standard deviation of `ln X`.
    pub sigma: f64,
}

impl LogNormal {
    /// Maximum-likelihood fit on positive samples; non-positive values
    /// are floored at `eps` so zero-traffic pixels don't blow up the
    /// fit (the paper's data is normalized to `(0, 1]`).
    pub fn fit(samples: &[f64], eps: f64) -> Self {
        assert!(!samples.is_empty(), "log-normal fit on empty sample");
        let logs: Vec<f64> = samples.iter().map(|&v| v.max(eps).ln()).collect();
        let n = logs.len() as f64;
        let mu = logs.iter().sum::<f64>() / n;
        let var = logs.iter().map(|l| (l - mu) * (l - mu)).sum::<f64>() / n;
        LogNormal {
            mu,
            sigma: var.sqrt(),
        }
    }

    /// Transforms a standard-normal draw into a sample of this
    /// distribution (kept RNG-agnostic so callers choose their source
    /// of normals).
    pub fn sample_from_normal(&self, z: f64) -> f64 {
        (self.mu + self.sigma * z).exp()
    }

    /// The distribution's mean `exp(μ + σ²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// The distribution's median `exp(μ)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_parameters() {
        // Deterministic "samples" of a log-normal via inverse-ish draw:
        // use exp(mu + sigma * z) over a symmetric z grid.
        let (mu, sigma) = (-1.0, 0.5);
        let samples: Vec<f64> = (-50..=50)
            .map(|i| (mu + sigma * (i as f64 / 20.0)).exp())
            .collect();
        let fit = LogNormal::fit(&samples, 1e-9);
        assert!((fit.mu - mu).abs() < 1e-6, "mu {}", fit.mu);
        // The grid has std ≈ 1.458 of z values × sigma.
        assert!(fit.sigma > 0.0);
    }

    #[test]
    fn zeros_are_floored_not_fatal() {
        let fit = LogNormal::fit(&[0.0, 0.5, 1.0], 1e-6);
        assert!(fit.mu.is_finite() && fit.sigma.is_finite());
    }

    #[test]
    fn mean_exceeds_median_for_positive_sigma() {
        let d = LogNormal {
            mu: 0.0,
            sigma: 1.0,
        };
        assert!(d.mean() > d.median());
        assert!((d.median() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_monotone_in_z() {
        let d = LogNormal {
            mu: -2.0,
            sigma: 0.7,
        };
        assert!(d.sample_from_normal(1.0) > d.sample_from_normal(0.0));
        assert!(d.sample_from_normal(0.0) > d.sample_from_normal(-1.0));
    }
}
