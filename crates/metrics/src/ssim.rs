//! SSIM (structural similarity) between time-averaged traffic maps —
//! the paper's spatial-fidelity metric (§3.2).

use spectragan_geo::TrafficMap;

/// SSIM stabilization constants for a dynamic range of 1.0
/// (`K1 = 0.01`, `K2 = 0.03`, the standard choices).
const C1: f64 = 0.01 * 0.01;
const C2: f64 = 0.03 * 0.03;

/// Windowed SSIM between two equal-size images, using an 8×8 sliding
/// uniform window (stride 1) and averaging the per-window index.
/// Falls back to a single global window when the image is smaller than
/// 8×8. Output lies in `[−1, 1]`; 1 means identical.
pub fn ssim(a: &[f64], b: &[f64], h: usize, w: usize) -> f64 {
    assert_eq!(a.len(), h * w, "image a size mismatch");
    assert_eq!(b.len(), h * w, "image b size mismatch");
    let win = 8usize.min(h).min(w);
    let mut total = 0.0;
    let mut count = 0usize;
    for y0 in 0..=(h - win) {
        for x0 in 0..=(w - win) {
            total += window_ssim(a, b, w, y0, x0, win);
            count += 1;
        }
    }
    total / count as f64
}

fn window_ssim(a: &[f64], b: &[f64], stride: usize, y0: usize, x0: usize, win: usize) -> f64 {
    let n = (win * win) as f64;
    let (mut ma, mut mb) = (0.0, 0.0);
    for dy in 0..win {
        for dx in 0..win {
            ma += a[(y0 + dy) * stride + x0 + dx];
            mb += b[(y0 + dy) * stride + x0 + dx];
        }
    }
    ma /= n;
    mb /= n;
    let (mut va, mut vb, mut cov) = (0.0, 0.0, 0.0);
    for dy in 0..win {
        for dx in 0..win {
            let xa = a[(y0 + dy) * stride + x0 + dx] - ma;
            let xb = b[(y0 + dy) * stride + x0 + dx] - mb;
            va += xa * xa;
            vb += xb * xb;
            cov += xa * xb;
        }
    }
    va /= n;
    vb /= n;
    cov /= n;
    ((2.0 * ma * mb + C1) * (2.0 * cov + C2)) / ((ma * ma + mb * mb + C1) * (va + vb + C2))
}

/// **SSIM** metric of §3.2: SSIM between the time-averaged traffic maps
/// of real and synthetic data.
///
/// # Panics
/// Panics if the maps' spatial extents differ.
pub fn ssim_mean_maps(real: &TrafficMap, synth: &TrafficMap) -> f64 {
    assert_eq!(
        (real.height(), real.width()),
        (synth.height(), synth.width()),
        "SSIM maps must share a grid"
    );
    ssim(
        &real.mean_map(),
        &synth.mean_map(),
        real.height(),
        real.width(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(h: usize, w: usize, f: impl Fn(usize, usize) -> f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(h * w);
        for y in 0..h {
            for x in 0..w {
                out.push(f(y, x));
            }
        }
        out
    }

    #[test]
    fn identical_images_score_one() {
        let a = image(12, 12, |y, x| ((y * x) as f64 * 0.31).sin().abs());
        assert!((ssim(&a, &a, 12, 12) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unrelated_images_score_below_similar_ones() {
        let a = image(16, 16, |y, x| (y + x) as f64 / 30.0);
        let near = image(16, 16, |y, x| ((y + x) as f64 / 30.0) + 0.01);
        let far = image(
            16,
            16,
            |y, x| if (y / 4 + x / 4) % 2 == 0 { 1.0 } else { 0.0 },
        );
        let s_near = ssim(&a, &near, 16, 16);
        let s_far = ssim(&a, &far, 16, 16);
        assert!(s_near > 0.9, "near {s_near}");
        assert!(s_far < s_near, "far {s_far} near {s_near}");
    }

    #[test]
    fn constant_vs_constant_with_offset() {
        let a = vec![0.5; 100];
        let b = vec![0.9; 100];
        let s = ssim(&a, &b, 10, 10);
        assert!(s < 1.0 && s > 0.0);
    }

    #[test]
    fn small_images_use_global_window() {
        let a = image(4, 4, |y, x| (y + x) as f64 / 6.0);
        assert!((ssim(&a, &a, 4, 4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_map_ssim_on_traffic() {
        let real = TrafficMap::from_vec(
            (0..2 * 100).map(|i| (i % 7) as f32 / 7.0).collect(),
            2,
            10,
            10,
        );
        assert!((ssim_mean_maps(&real, &real) - 1.0).abs() < 1e-9);
    }
}
