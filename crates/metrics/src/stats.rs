//! Basic statistics: Pearson correlation, histograms and the M-TV
//! marginal fidelity metric.

use spectragan_geo::TrafficMap;

/// Pearson correlation coefficient of two equal-length samples
/// (0 when either sample is constant or empty).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson inputs differ in length");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 1e-300 || vb <= 1e-300 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Normalized histogram of `values` over `[lo, hi]` with `bins` equal
/// bins; out-of-range values clamp to the edge bins. Sums to 1 for a
/// non-empty input.
pub fn histogram(values: impl Iterator<Item = f64>, lo: f64, hi: f64, bins: usize) -> Vec<f64> {
    assert!(bins > 0 && hi > lo, "bad histogram spec");
    let mut h = vec![0.0f64; bins];
    let mut n = 0usize;
    for v in values {
        let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        let b = ((frac * bins as f64) as usize).min(bins - 1);
        h[b] += 1.0;
        n += 1;
    }
    if n > 0 {
        for x in &mut h {
            *x /= n as f64;
        }
    }
    h
}

/// Total-variation distance between two discrete distributions of the
/// same support: `0.5 Σ |p − q|`, in `[0, 1]`.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "TV supports differ");
    0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

/// 1-Wasserstein (earth mover's) distance between two empirical
/// distributions on the line, computed from sorted samples: the mean
/// absolute difference of matched order statistics (both samples are
/// resampled to `RESAMPLE` quantiles first so sizes may differ).
///
/// A complement to [`m_tv`]: TV is insensitive to *how far* mass moved
/// across bins; EMD measures exactly that.
pub fn emd(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "EMD of empty samples");
    const RESAMPLE: usize = 256;
    let prep = |xs: &[f64]| -> Vec<f64> {
        let mut v = xs.to_vec();
        v.sort_by(|p, q| p.partial_cmp(q).expect("NaN in EMD input"));
        (0..RESAMPLE)
            .map(|i| {
                let idx =
                    (i as f64 / (RESAMPLE - 1) as f64 * (v.len() - 1) as f64).round() as usize;
                v[idx]
            })
            .collect()
    };
    let qa = prep(a);
    let qb = prep(b);
    qa.iter().zip(&qb).map(|(x, y)| (x - y).abs()).sum::<f64>() / RESAMPLE as f64
}

/// Marginal EMD between two traffic maps (all pixels, all steps).
pub fn m_emd(real: &TrafficMap, synth: &TrafficMap) -> f64 {
    let to64 = |m: &TrafficMap| m.data().iter().map(|&v| v as f64).collect::<Vec<_>>();
    emd(&to64(real), &to64(synth))
}

/// Two-sample Kolmogorov–Smirnov statistic: the maximum vertical gap
/// between the empirical CDFs, in `[0, 1]`. A third marginal lens next
/// to [`m_tv`] (bin-sensitive) and [`emd`] (distance-weighted).
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "KS of empty samples");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < sa.len() || j < sb.len() {
        // Process one distinct value: consume every element equal to it
        // from both samples, then measure the CDF gap.
        let v = match (sa.get(i), sb.get(j)) {
            (Some(&x), Some(&y)) => x.min(y),
            (Some(&x), None) => x,
            (None, Some(&y)) => y,
            (None, None) => break,
        };
        while i < sa.len() && sa[i] == v {
            i += 1;
        }
        while j < sb.len() && sb[j] == v {
            j += 1;
        }
        let fa = i as f64 / sa.len() as f64;
        let fb = j as f64 / sb.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

/// Number of histogram bins M-TV uses (traffic is normalized to
/// `[0, 1]`, so 50 bins of width 0.02).
pub const M_TV_BINS: usize = 50;

/// **M-TV** (§3.2): total-variation distance between the empirical
/// marginal distributions of traffic volume across all pixels and time
/// steps of the real and synthetic maps. Lower is better.
pub fn m_tv(real: &TrafficMap, synth: &TrafficMap) -> f64 {
    let hist = |m: &TrafficMap| histogram(m.data().iter().map(|&v| v as f64), 0.0, 1.0, M_TV_BINS);
    total_variation(&hist(real), &hist(synth))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_limits() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b: Vec<f64> = a.iter().map(|v| 2.0 * v + 1.0).collect();
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c: Vec<f64> = a.iter().map(|v| -v).collect();
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[5.0; 4]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn histogram_is_normalized_and_clamped() {
        let h = histogram([0.0, 0.5, 0.999, 2.0, -1.0].into_iter(), 0.0, 1.0, 10);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(h[0], 0.4); // 0.0 and −1.0 (clamped)
        assert_eq!(h[9], 0.4); // 0.999 and 2.0 (clamped)
        assert_eq!(h[5], 0.2);
    }

    #[test]
    fn tv_identical_is_zero_disjoint_is_one() {
        let p = vec![0.5, 0.5, 0.0];
        let q = vec![0.0, 0.0, 1.0];
        assert_eq!(total_variation(&p, &p), 0.0);
        assert_eq!(total_variation(&p, &q), 1.0);
    }

    #[test]
    fn ks_basics() {
        let a = vec![0.1, 0.2, 0.3, 0.4];
        assert!(ks_statistic(&a, &a) < 1e-12);
        // Disjoint supports → KS = 1.
        let b = vec![5.0, 6.0, 7.0];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
        // Half the mass shifted far away → KS = 0.5.
        let c = vec![0.1, 0.2, 9.0, 9.5];
        assert!((ks_statistic(&a, &c) - 0.5).abs() < 1e-9);
        // Symmetry.
        assert!((ks_statistic(&a, &c) - ks_statistic(&c, &a)).abs() < 1e-12);
    }

    #[test]
    fn emd_basics() {
        let a = vec![0.0, 0.5, 1.0];
        assert!(emd(&a, &a) < 1e-12);
        // Shifting a distribution by δ moves EMD by ≈ δ.
        let b: Vec<f64> = a.iter().map(|v| v + 0.25).collect();
        assert!((emd(&a, &b) - 0.25).abs() < 1e-9);
        // EMD is symmetric.
        assert!((emd(&a, &b) - emd(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn emd_sees_distance_where_tv_saturates() {
        // Two disjoint point masses: TV = 1 regardless of separation,
        // EMD grows with it.
        let a = vec![0.0; 64];
        let near = vec![0.1; 64];
        let far = vec![0.9; 64];
        let h = |x: &[f64]| histogram(x.iter().cloned(), 0.0, 1.0, 50);
        assert_eq!(total_variation(&h(&a), &h(&near)), 1.0);
        assert_eq!(total_variation(&h(&a), &h(&far)), 1.0);
        assert!(emd(&a, &far) > 5.0 * emd(&a, &near));
    }

    #[test]
    fn m_tv_zero_for_identical_maps_positive_for_different() {
        let a = TrafficMap::from_vec((0..100).map(|i| (i as f32) / 100.0).collect(), 4, 5, 5);
        assert_eq!(m_tv(&a, &a), 0.0);
        let b = TrafficMap::from_vec(vec![1.0; 100], 4, 5, 5);
        assert!(m_tv(&a, &b) > 0.9);
    }
}
