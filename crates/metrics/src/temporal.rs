//! Temporal fidelity: the AC-L1 metric and the peak-hour distribution
//! of Fig. 9.

use spectragan_dsp::autocorrelation;
use spectragan_geo::TrafficMap;

/// **AC-L1** (§3.2): for every pixel, compute the autocorrelation
/// function of the real and synthetic series up to `max_lag`, take the
/// L1 distance between them, and average over pixels — then scale by
/// the number of lags the paper implicitly sums over. Lower is better.
///
/// The paper reports sums over all lags of the (3-week) series; we
/// follow that convention: the per-pixel distance is the *sum* of
/// absolute differences over lags, averaged across pixels.
///
/// # Panics
/// Panics if the maps' spatial extents differ.
pub fn ac_l1(real: &TrafficMap, synth: &TrafficMap, max_lag: usize) -> f64 {
    assert_eq!(
        (real.height(), real.width()),
        (synth.height(), synth.width()),
        "AC-L1 maps must share a grid"
    );
    let lags = max_lag.min(real.len_t()).min(synth.len_t());
    let mut total = 0.0;
    let n_px = real.height() * real.width();
    for y in 0..real.height() {
        for x in 0..real.width() {
            let ra = autocorrelation(&real.pixel_series(y, x), lags);
            let rs = autocorrelation(&synth.pixel_series(y, x), lags);
            total += ra.iter().zip(&rs).map(|(a, b)| (a - b).abs()).sum::<f64>();
        }
    }
    total / n_px as f64
}

/// Distribution of the hour-of-day at which each pixel's traffic peaks
/// (Fig. 9): returns 24 fractions summing to 1. The peak hour of a
/// pixel is the argmax of its average daily profile.
///
/// `steps_per_hour` converts series indices to hours; the series length
/// is truncated to whole days.
pub fn peak_hour_histogram(map: &TrafficMap, steps_per_hour: usize) -> [f64; 24] {
    let steps_per_day = 24 * steps_per_hour;
    let days = map.len_t() / steps_per_day;
    assert!(days > 0, "need at least one full day of data");
    let mut hist = [0.0f64; 24];
    let n_px = (map.height() * map.width()) as f64;
    for y in 0..map.height() {
        for x in 0..map.width() {
            let s = map.pixel_series(y, x);
            let mut daily = vec![0.0f64; steps_per_day];
            for d in 0..days {
                for (i, slot) in daily.iter_mut().enumerate() {
                    *slot += s[d * steps_per_day + i];
                }
            }
            let (mut bi, mut bv) = (0usize, f64::MIN);
            for (i, &v) in daily.iter().enumerate() {
                if v > bv {
                    bv = v;
                    bi = i;
                }
            }
            hist[bi / steps_per_hour] += 1.0 / n_px;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_map(t: usize, phase_per_pixel: f64) -> TrafficMap {
        let (h, w) = (3, 3);
        let mut m = TrafficMap::zeros(t, h, w);
        for ti in 0..t {
            for y in 0..h {
                for x in 0..w {
                    let p = (y * w + x) as f64 * phase_per_pixel;
                    *m.at_mut(ti, y, x) =
                        (1.0 + (2.0 * std::f64::consts::PI * (ti as f64 - p) / 24.0).sin()) as f32;
                }
            }
        }
        m
    }

    #[test]
    fn ac_l1_is_zero_for_identical_maps() {
        let m = sine_map(96, 1.0);
        assert!(ac_l1(&m, &m, 48) < 1e-9);
    }

    #[test]
    fn ac_l1_grows_with_period_mismatch() {
        let a = sine_map(96, 0.0);
        // Different period → different autocorrelation structure.
        let mut b = TrafficMap::zeros(96, 3, 3);
        for ti in 0..96 {
            for i in 0..9 {
                b.data_mut()[ti * 9 + i] =
                    (1.0 + (2.0 * std::f64::consts::PI * ti as f64 / 10.0).sin()) as f32;
            }
        }
        let same = ac_l1(&a, &a, 48);
        let diff = ac_l1(&a, &b, 48);
        assert!(diff > same + 1.0, "diff {diff} same {same}");
    }

    #[test]
    fn peak_hour_histogram_finds_the_phase() {
        // Peak of (1 + sin(2π(t−p)/24)) is at t = p + 6.
        let m = sine_map(48, 0.0);
        let h = peak_hour_histogram(&m, 1);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((h[6] - 1.0).abs() < 1e-9, "hist {h:?}");
    }

    #[test]
    fn peak_hours_spread_with_diverse_phases() {
        let m = sine_map(48, 3.0);
        let h = peak_hour_histogram(&m, 1);
        let nonzero = h.iter().filter(|&&v| v > 0.0).count();
        assert!(nonzero >= 3, "hist {h:?}");
    }

    #[test]
    #[should_panic(expected = "full day")]
    fn histogram_requires_a_full_day() {
        let m = TrafficMap::zeros(12, 2, 2);
        peak_hour_histogram(&m, 1);
    }
}
