//! TSTR — train-synthetic-test-real (§3.2).
//!
//! The paper trains a linear regressor on synthetic city traffic to
//! predict the next traffic snapshot, then evaluates it on real data
//! and reports R². A high TSTR means the synthetic data carries the
//! same predictive temporal structure as the real data.
//!
//! Our regressor predicts each pixel's next value from a compact
//! feature vector shared across pixels — current value, previous
//! value, and the hour-of-day phase (sin/cos) — fit by ridge regression
//! on the normal equations.

use crate::linalg::solve;
use spectragan_geo::TrafficMap;

/// Number of regression features (bias, x_t, x_{t−1}, sin h, cos h).
const D: usize = 5;

/// A linear one-step-ahead traffic predictor.
#[derive(Debug, Clone)]
pub struct NextStepModel {
    /// Regression coefficients, length [`D`].
    pub coef: [f64; D],
    steps_per_hour: usize,
}

fn features(map: &TrafficMap, t: usize, px: usize, steps_per_hour: usize) -> [f64; D] {
    let hw = map.height() * map.width();
    let x_t = map.data()[t * hw + px] as f64;
    let x_p = map.data()[(t - 1) * hw + px] as f64;
    let hour = (t as f64 / steps_per_hour as f64) * 2.0 * std::f64::consts::PI / 24.0;
    [1.0, x_t, x_p, hour.sin(), hour.cos()]
}

impl NextStepModel {
    /// Fits the model on `train` by ridge regression (`λ = 1e-4`).
    ///
    /// # Panics
    /// Panics if `train` has fewer than 3 time steps.
    pub fn fit(train: &TrafficMap, steps_per_hour: usize) -> Self {
        assert!(train.len_t() >= 3, "need at least 3 time steps to fit");
        let hw = train.height() * train.width();
        let mut xtx = [0.0f64; D * D];
        let mut xty = [0.0f64; D];
        for t in 1..train.len_t() - 1 {
            for px in 0..hw {
                let f = features(train, t, px, steps_per_hour);
                let y = train.data()[(t + 1) * hw + px] as f64;
                for i in 0..D {
                    xty[i] += f[i] * y;
                    for j in 0..D {
                        xtx[i * D + j] += f[i] * f[j];
                    }
                }
            }
        }
        for i in 0..D {
            xtx[i * D + i] += 1e-4;
        }
        let coef = solve(&xtx, &xty, D).expect("ridge system is nonsingular");
        NextStepModel {
            coef: coef.try_into().expect("length D"),
            steps_per_hour,
        }
    }

    /// Predicts the value of pixel `px` at time `t + 1` given `map`.
    pub fn predict(&self, map: &TrafficMap, t: usize, px: usize) -> f64 {
        let f = features(map, t, px, self.steps_per_hour);
        f.iter().zip(&self.coef).map(|(a, b)| a * b).sum()
    }

    /// R² of this model's one-step-ahead predictions on `test`.
    pub fn r2(&self, test: &TrafficMap) -> f64 {
        let hw = test.height() * test.width();
        let mut ss_res = 0.0;
        let mut targets = Vec::new();
        for t in 1..test.len_t() - 1 {
            for px in 0..hw {
                let y = test.data()[(t + 1) * hw + px] as f64;
                let pred = self.predict(test, t, px);
                ss_res += (y - pred) * (y - pred);
                targets.push(y);
            }
        }
        let mean = targets.iter().sum::<f64>() / targets.len() as f64;
        let ss_tot: f64 = targets.iter().map(|y| (y - mean) * (y - mean)).sum();
        if ss_tot <= 1e-300 {
            return 0.0;
        }
        1.0 - ss_res / ss_tot
    }
}

/// **TSTR** (§3.2): fit the next-step regressor on `synth`, evaluate R²
/// on `real`. Higher is better; the DATA reference fits on one real
/// period and tests on another.
pub fn tstr_r2(real: &TrafficMap, synth: &TrafficMap, steps_per_hour: usize) -> f64 {
    NextStepModel::fit(synth, steps_per_hour).r2(real)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic_map(t: usize, noise: f64, seed: u64) -> TrafficMap {
        let (h, w) = (4, 4);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut m = TrafficMap::zeros(t, h, w);
        for ti in 0..t {
            for px in 0..h * w {
                let amp = 0.3 + 0.7 * (px as f64 / 16.0);
                let v = amp * (1.0 + (2.0 * std::f64::consts::PI * ti as f64 / 24.0).sin())
                    + noise * next();
                m.data_mut()[ti * h * w + px] = v.max(0.0) as f32;
            }
        }
        m
    }

    #[test]
    fn model_predicts_smooth_periodic_traffic_well() {
        let train = periodic_map(168, 0.01, 1);
        let test = periodic_map(168, 0.01, 2);
        let r2 = tstr_r2(&test, &train, 1);
        assert!(r2 > 0.9, "r2 = {r2}");
    }

    #[test]
    fn noise_trained_model_scores_worse() {
        let real = periodic_map(168, 0.01, 1);
        // "Synthetic" data that is pure noise without temporal structure.
        let mut noise = periodic_map(168, 0.0, 3);
        let n = noise.data().len();
        for i in 0..n {
            noise.data_mut()[i] = ((i * 2654435761) % 1000) as f32 / 1000.0;
        }
        let good = tstr_r2(&real, &real, 1);
        let bad = tstr_r2(&real, &noise, 1);
        assert!(good > bad, "good {good} bad {bad}");
    }

    #[test]
    fn r2_of_self_fit_is_high() {
        let m = periodic_map(100, 0.05, 4);
        let model = NextStepModel::fit(&m, 1);
        assert!(model.r2(&m) > 0.8);
    }
}
