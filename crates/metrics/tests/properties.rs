//! Property-based tests for the fidelity metrics.

use proptest::prelude::*;
use spectragan_geo::TrafficMap;
use spectragan_metrics::linalg::{matmul_sq, solve, sym_sqrt, symmetric_eigen};
use spectragan_metrics::stats::total_variation;
use spectragan_metrics::{histogram, jain_index, m_tv, pearson, psnr, LogNormal};

fn arb_vals(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, n)
}

proptest! {
    /// Pearson is symmetric, bounded and scale-invariant.
    #[test]
    fn pearson_properties(a in arb_vals(3..50), scale in 0.1f64..10.0, shift in -5.0f64..5.0) {
        let b: Vec<f64> = a.iter().map(|v| v * scale + shift).collect();
        let r = pearson(&a, &b);
        prop_assert!(r.abs() <= 1.0 + 1e-9);
        // A positive affine image correlates perfectly (unless constant).
        if pearson(&a, &a) == 1.0 {
            prop_assert!((r - 1.0).abs() < 1e-6);
        }
        // Symmetry.
        prop_assert!((pearson(&a, &b) - pearson(&b, &a)).abs() < 1e-12);
    }

    /// Histograms are probability vectors; TV is a metric bounded by 1.
    #[test]
    fn histogram_and_tv(a in arb_vals(1..200), b in arb_vals(1..200)) {
        let ha = histogram(a.iter().cloned(), 0.0, 1.0, 20);
        let hb = histogram(b.iter().cloned(), 0.0, 1.0, 20);
        prop_assert!((ha.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let d = total_variation(&ha, &hb);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((d - total_variation(&hb, &ha)).abs() < 1e-12);
        prop_assert!(total_variation(&ha, &ha) < 1e-12);
    }

    /// M-TV of a map with itself is 0; against anything else it is in
    /// [0, 1].
    #[test]
    fn m_tv_bounds(a in arb_vals(36..37), b in arb_vals(36..37)) {
        let ma = TrafficMap::from_vec(a.iter().map(|&v| v as f32).collect(), 4, 3, 3);
        let mb = TrafficMap::from_vec(b.iter().map(|&v| v as f32).collect(), 4, 3, 3);
        prop_assert_eq!(m_tv(&ma, &ma), 0.0);
        let d = m_tv(&ma, &mb);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    /// Jain's index lies in (1/n, 1] and is scale-invariant.
    #[test]
    fn jain_properties(loads in prop::collection::vec(0.01f64..100.0, 1..20), s in 0.1f64..10.0) {
        let j = jain_index(&loads);
        let n = loads.len() as f64;
        prop_assert!(j >= 1.0 / n - 1e-9 && j <= 1.0 + 1e-9);
        let scaled: Vec<f64> = loads.iter().map(|v| v * s).collect();
        prop_assert!((jain_index(&scaled) - j).abs() < 1e-9);
    }

    /// PSNR decreases (or stays equal) as uniform noise grows.
    #[test]
    fn psnr_monotone_in_noise(a in arb_vals(10..50), eps in 0.01f64..0.2) {
        prop_assume!(a.iter().cloned().fold(0.0, f64::max) > 0.1);
        let near: Vec<f64> = a.iter().map(|v| v + eps).collect();
        let far: Vec<f64> = a.iter().map(|v| v + 2.0 * eps).collect();
        prop_assert!(psnr(&a, &near) >= psnr(&a, &far) - 1e-9);
    }

    /// Log-normal fit round-trip: fitting samples of exp(mu + sigma z)
    /// recovers a mu within the sample spread.
    #[test]
    fn lognormal_fit_is_sane(mu in -3.0f64..1.0, sigma in 0.05f64..1.0) {
        let samples: Vec<f64> = (-20..=20)
            .map(|i| (mu + sigma * (i as f64 / 10.0)).exp())
            .collect();
        let fit = LogNormal::fit(&samples, 1e-12);
        prop_assert!((fit.mu - mu).abs() < 1e-9);
        prop_assert!(fit.sigma > 0.0 && fit.sigma < 2.0 * sigma);
    }

    /// Gaussian elimination solves random diagonally-dominant systems.
    #[test]
    fn solver_solves(n in 1usize..6, seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = rng.gen_range(-1.0..1.0);
            }
            a[i * n + i] += n as f64 + 1.0; // dominance → nonsingular
        }
        let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| a[i * n + j] * x_true[j]).sum())
            .collect();
        let x = solve(&a, &b, n).expect("dominant system is solvable");
        for (xs, xt) in x.iter().zip(&x_true) {
            prop_assert!((xs - xt).abs() < 1e-8);
        }
    }

    /// Symmetric square root squares back to the original PSD matrix.
    #[test]
    fn sym_sqrt_squares_back(n in 1usize..5, seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Build PSD as GᵀG.
        let mut g = vec![0.0f64; n * n];
        for v in &mut g {
            *v = rng.gen_range(-1.0..1.0);
        }
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = (0..n).map(|k| g[k * n + i] * g[k * n + j]).sum();
            }
        }
        let r = sym_sqrt(&a, n);
        let sq = matmul_sq(&r, &r, n);
        for (x, y) in sq.iter().zip(&a) {
            prop_assert!((x - y).abs() < 1e-7);
        }
        // Eigenvalues of a PSD matrix are non-negative.
        let (eig, _) = symmetric_eigen(&a, n);
        for e in eig {
            prop_assert!(e > -1e-9);
        }
    }
}
