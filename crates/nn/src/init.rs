//! Weight initializers.
//!
//! Xavier/Glorot for tanh/sigmoid layers, He/Kaiming for (leaky-)ReLU
//! layers. Both are the uniform variants.

use rand::Rng;
use spectragan_tensor::{Shape, Tensor};

/// Xavier/Glorot uniform: `U(−a, a)` with `a = √(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(
    shape: impl Into<Shape>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(shape, -a, a, rng)
}

/// He/Kaiming uniform: `U(−a, a)` with `a = √(6 / fan_in)`.
pub fn he_uniform(shape: impl Into<Shape>, fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / fan_in as f32).sqrt();
    Tensor::rand_uniform(shape, -a, a, rng)
}

/// Fan-in/fan-out of a conv weight `[Cout, Cin, KH, KW]`.
pub fn conv_fans(cout: usize, cin: usize, kh: usize, kw: usize) -> (usize, usize) {
    (cin * kh * kw, cout * kh * kw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = xavier_uniform([100, 100], 100, 100, &mut rng);
        let a = (6.0f32 / 200.0).sqrt();
        assert!(t.max() <= a && t.min() >= -a);
        // Not degenerate.
        assert!(t.max() > 0.5 * a && t.min() < -0.5 * a);
    }

    #[test]
    fn he_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = he_uniform([64, 64], 64, &mut rng);
        let a = (6.0f32 / 64.0).sqrt();
        assert!(t.max() <= a && t.min() >= -a);
    }

    #[test]
    fn conv_fans_formula() {
        assert_eq!(conv_fans(8, 3, 3, 3), (27, 72));
    }
}
