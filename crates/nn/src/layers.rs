//! Feed-forward layers: [`Linear`], [`Conv2d`] and the [`Mlp`] stack.

use crate::init;
use crate::param::{Binding, ParamId, ParamStore};
use rand::Rng;
use spectragan_tensor::{FusedAct, Tensor, Var};

/// Activation applied between layers of an [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Leaky ReLU with slope 0.2 (the GAN default).
    LeakyRelu,
    /// ReLU.
    Relu,
    /// tanh.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No activation.
    Identity,
}

impl Activation {
    /// Applies the activation to a variable.
    pub fn apply(self, x: &Var) -> Var {
        match self {
            Activation::LeakyRelu => x.leaky_relu(0.2),
            Activation::Relu => x.relu(),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => x.sigmoid(),
            Activation::Identity => x.clone(),
        }
    }

    /// The fused-kernel equivalent, bit-equal to [`Activation::apply`].
    pub fn fused(self) -> FusedAct {
        match self {
            Activation::LeakyRelu => FusedAct::LeakyRelu(0.2),
            Activation::Relu => FusedAct::Relu,
            Activation::Tanh => FusedAct::Tanh,
            Activation::Sigmoid => FusedAct::Sigmoid,
            Activation::Identity => FusedAct::Identity,
        }
    }
}

/// Fully-connected layer `y = x·W + b` with `x: [N, in]`, `y: [N, out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Registers a new Xavier-initialized linear layer in `store`.
    pub fn new(
        store: &mut ParamStore,
        in_features: usize,
        out_features: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self::new_scaled(store, in_features, out_features, 1.0, rng)
    }

    /// Like [`Linear::new`] but with the Xavier weights multiplied by
    /// `gain`. Output heads of generators use a small gain (e.g. 0.1)
    /// so the model starts from a near-zero signal and the explicit
    /// loss shapes it, instead of starting from large random output
    /// that the adversary can latch onto.
    pub fn new_scaled(
        store: &mut ParamStore,
        in_features: usize,
        out_features: usize,
        gain: f32,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.register(
            format!("linear.w[{in_features}x{out_features}]"),
            init::xavier_uniform([in_features, out_features], in_features, out_features, rng)
                .scale(gain),
        );
        let b = store.register(
            format!("linear.b[{out_features}]"),
            Tensor::zeros([out_features]),
        );
        Linear {
            w,
            b,
            in_features,
            out_features,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Applies the layer to `x: [N, in]`.
    pub fn forward(&self, bind: &Binding<'_>, x: &Var) -> Var {
        self.forward_act(bind, x, Activation::Identity)
    }

    /// Applies the layer followed by `act` as one fused tape node
    /// (bit-equal to `act.apply(&self.forward(bind, x))`, one node and
    /// two fewer intermediate buffers).
    pub fn forward_act(&self, bind: &Binding<'_>, x: &Var, act: Activation) -> Var {
        x.matmul_bias_act(&bind.var(self.w), &bind.var(self.b), act.fused())
    }

    /// Tape-free forward pass for inference. Int8-stored weights
    /// stream through the backend's dequantizing GEMM (see
    /// [`ParamStore::infer_matmul`]); everything else is the plain
    /// widen-and-matmul path.
    pub fn forward_infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut y = store.infer_matmul(x, self.w);
        let b = store.weight(self.b);
        let (n, m) = (y.shape().dim(0), y.shape().dim(1));
        for row in 0..n {
            for col in 0..m {
                y.data_mut()[row * m + col] += b.data()[col];
            }
        }
        y
    }
}

/// 2-D convolution layer (stride 1, configurable symmetric zero padding).
#[derive(Debug, Clone)]
pub struct Conv2d {
    w: ParamId,
    b: ParamId,
    pad: usize,
}

impl Conv2d {
    /// Registers a He-initialized conv layer: `in_ch → out_ch`, square
    /// `k×k` kernel, zero padding `pad` on all sides.
    pub fn new(
        store: &mut ParamStore,
        in_ch: usize,
        out_ch: usize,
        k: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let (fan_in, _) = init::conv_fans(out_ch, in_ch, k, k);
        let w = store.register(
            format!("conv.w[{out_ch}x{in_ch}x{k}x{k}]"),
            init::he_uniform([out_ch, in_ch, k, k], fan_in, rng),
        );
        let b = store.register(format!("conv.b[{out_ch}]"), Tensor::zeros([out_ch]));
        Conv2d { w, b, pad }
    }

    /// Applies the layer to `x: [N, Cin, H, W]` as one fused
    /// conv2d+bias tape node.
    pub fn forward(&self, bind: &Binding<'_>, x: &Var) -> Var {
        x.conv2d_bias(&bind.var(self.w), &bind.var(self.b), self.pad)
    }

    /// Tape-free forward pass for inference.
    pub fn forward_infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut y = x.conv2d(&store.weight(self.w), self.pad);
        let b = store.weight(self.b);
        let (n, c) = (y.shape().dim(0), y.shape().dim(1));
        let hw = y.shape().dim(2) * y.shape().dim(3);
        for bi in 0..n {
            for ci in 0..c {
                let base = (bi * c + ci) * hw;
                let bv = b.data()[ci];
                for v in &mut y.data_mut()[base..base + hw] {
                    *v += bv;
                }
            }
        }
        y
    }
}

/// A stack of [`Linear`] layers with a shared hidden activation and a
/// configurable output activation — the paper's spectrum discriminator
/// `R^s` is exactly this shape.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden: Activation,
    output: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[64, 32, 1]`
    /// creates `64→32→1`.
    ///
    /// # Panics
    /// Panics if fewer than two widths are given.
    pub fn new(
        store: &mut ParamStore,
        widths: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            widths.len() >= 2,
            "Mlp needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .map(|w| Linear::new(store, w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            hidden,
            output,
        }
    }

    /// Tape-free forward pass for inference.
    pub fn forward_infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward_infer(store, &h);
            let act = if i == last { self.output } else { self.hidden };
            h = match act {
                Activation::LeakyRelu => h.map(|v| if v > 0.0 { v } else { 0.2 * v }),
                Activation::Relu => h.map(|v| v.max(0.0)),
                Activation::Tanh => h.map(f32::tanh),
                Activation::Sigmoid => h.map(|v| 1.0 / (1.0 + (-v).exp())),
                Activation::Identity => h,
            };
        }
        h
    }

    /// Applies the stack to `x: [N, widths[0]]`; each layer+activation
    /// pair is a single fused tape node.
    pub fn forward(&self, bind: &Binding<'_>, x: &Var) -> Var {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i == last { self.output } else { self.hidden };
            h = layer.forward_act(bind, &h, act);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spectragan_tensor::Tape;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, 3, 2, &mut rng);
        assert_eq!(layer.in_features(), 3);
        assert_eq!(layer.out_features(), 2);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let x = tape.leaf(Tensor::zeros([4, 3]));
        let y = layer.forward(&bind, &x);
        assert_eq!(y.shape().dims(), &[4, 2]);
        // Zero input → output equals bias (zero-initialized).
        assert!(y.value().data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn conv2d_preserves_spatial_dims_with_same_padding() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = Conv2d::new(&mut store, 3, 8, 3, 1, &mut rng);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let x = tape.leaf(Tensor::zeros([2, 3, 10, 10]));
        let y = layer.forward(&bind, &x);
        assert_eq!(y.shape().dims(), &[2, 8, 10, 10]);
    }

    #[test]
    fn mlp_output_activation_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            &[5, 8, 1],
            Activation::LeakyRelu,
            Activation::Sigmoid,
            &mut rng,
        );
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let x = tape.leaf(Tensor::randn([6, 5], &mut rng));
        let y = mlp.forward(&bind, &x);
        assert_eq!(y.shape().dims(), &[6, 1]);
        assert!(y.value().data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn infer_matches_tape_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, 4, 3, &mut rng);
        let conv = Conv2d::new(&mut store, 2, 3, 3, 1, &mut rng);
        let mlp = Mlp::new(
            &mut store,
            &[4, 6, 2],
            Activation::LeakyRelu,
            Activation::Sigmoid,
            &mut rng,
        );
        let x2 = Tensor::randn([5, 4], &mut rng);
        let x4 = Tensor::randn([2, 2, 6, 6], &mut rng);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let a = lin.forward(&bind, &tape.leaf(x2.clone()));
        let b = conv.forward(&bind, &tape.leaf(x4.clone()));
        let c = mlp.forward(&bind, &tape.leaf(x2.clone()));
        for (tape_out, infer_out) in [
            (a.value(), lin.forward_infer(&store, &x2)),
            (b.value(), conv.forward_infer(&store, &x4)),
            (c.value(), mlp.forward_infer(&store, &x2)),
        ] {
            for (p, q) in tape_out.data().iter().zip(infer_out.data()) {
                assert!((p - q).abs() < 1e-6);
            }
        }
    }

    /// End-to-end sanity: a linear layer can fit a known linear map.
    #[test]
    fn linear_regression_converges() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, 2, 1, &mut rng);
        let mut opt = Adam::new(5e-2);
        // Target: y = 2·x0 − 3·x1 + 1.
        let xs = Tensor::randn([64, 2], &mut rng);
        let mut ys = Tensor::zeros([64, 1]);
        for i in 0..64 {
            ys.data_mut()[i] = 2.0 * xs.data()[2 * i] - 3.0 * xs.data()[2 * i + 1] + 1.0;
        }
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let tape = Tape::new();
            let bind = Binding::new(&tape, &store);
            let x = tape.leaf(xs.clone());
            let loss = layer.forward(&bind, &x).mse_to(&ys);
            last = loss.value().item();
            let grads = tape.backward(&loss);
            let bound = bind.bound();
            opt.step(&mut store, &bound, &grads);
        }
        assert!(last < 1e-3, "did not converge: loss {last}");
    }
}
