//! Neural-network building blocks on top of [`spectragan_tensor`].
//!
//! The SpectraGAN architecture (§2.2) is assembled from three layer
//! types — 2-D convolutions (encoder and spectrum generator), linear
//! layers (spectrum discriminator MLP) and LSTMs (residual time-series
//! generator and time discriminator). This crate provides those layers,
//! plus the plumbing a from-scratch framework needs:
//!
//! * [`ParamStore`] / [`ParamId`] — persistent parameter storage that
//!   outlives the per-step autodiff tape.
//! * [`Binding`] — binds parameters to leaf [`Var`]s on a fresh tape for
//!   one forward/backward pass.
//! * [`Adam`] / [`Sgd`] — optimizers that consume the tape's gradients
//!   and update the store in place, with optional global-norm clipping.
//! * [`init`] — Xavier/He initializers.
//!
//! Training loop shape:
//!
//! ```
//! use spectragan_nn::{Adam, Binding, Linear, ParamStore};
//! use spectragan_tensor::{Tape, Tensor};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let layer = Linear::new(&mut store, 4, 1, &mut rng);
//! let mut opt = Adam::new(1e-2);
//!
//! for _ in 0..10 {
//!     let tape = Tape::new();
//!     let mut bind = Binding::new(&tape, &store);
//!     let x = tape.leaf(Tensor::ones([3, 4]));
//!     let loss = layer.forward(&mut bind, &x).mse_to(&Tensor::zeros([3, 1]));
//!     let grads = tape.backward(&loss);
//!     let bound = bind.bound();
//!     opt.step(&mut store, &bound, &grads);
//! }
//! ```

pub mod init;
pub mod layers;
pub mod lstm;
pub mod optim;
pub mod param;

pub use layers::{Activation, Conv2d, Linear, Mlp};
pub use lstm::{Lstm, LstmState};
pub use optim::{collect_updates, Adam, AdamParamState, AdamState, Sgd};
pub use param::{Binding, F16Slice, LazySource, ParamId, ParamStore, Q8Buf, Q8Slice, WeightRef};

// Re-exported so downstream crates depend on one prelude.
pub use spectragan_tensor::{Shape, Tape, Tensor, Var};
