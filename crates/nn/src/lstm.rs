//! LSTM layer.
//!
//! The paper uses "batched LSTM" networks for the residual time-series
//! generator `G^t` and the time-domain discriminator `R^t` (§2.2.2-3).
//! This is a standard single-layer LSTM with the usual gate equations:
//!
//! ```text
//! i = σ(x·Wxi + h·Whi + bi)      f = σ(x·Wxf + h·Whf + bf)
//! g = tanh(x·Wxg + h·Whg + bg)   o = σ(x·Wxo + h·Who + bo)
//! c' = f ⊙ c + i ⊙ g             h' = o ⊙ tanh(c')
//! ```
//!
//! The four gates are fused into single `[in, 4·hidden]` / `[hidden,
//! 4·hidden]` weight matrices in i, f, g, o order. The forget-gate bias
//! is initialized to 1, the standard trick to keep memory open early in
//! training.

use crate::init;
use crate::param::{Binding, ParamId, ParamStore};
use rand::Rng;
use spectragan_tensor::{Tensor, Var};

/// Hidden and cell state of an LSTM, each `[N, hidden]`.
#[derive(Clone)]
pub struct LstmState {
    /// Hidden state `h`.
    pub h: Var,
    /// Cell state `c`.
    pub c: Var,
}

/// A single-layer LSTM.
#[derive(Debug, Clone)]
pub struct Lstm {
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
    input_size: usize,
    hidden_size: usize,
}

impl Lstm {
    /// Registers a new LSTM with Xavier-initialized weights.
    pub fn new(
        store: &mut ParamStore,
        input_size: usize,
        hidden_size: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let wx = store.register(
            format!("lstm.wx[{input_size}x{}]", 4 * hidden_size),
            init::xavier_uniform([input_size, 4 * hidden_size], input_size, hidden_size, rng),
        );
        let wh = store.register(
            format!("lstm.wh[{hidden_size}x{}]", 4 * hidden_size),
            init::xavier_uniform(
                [hidden_size, 4 * hidden_size],
                hidden_size,
                hidden_size,
                rng,
            ),
        );
        // Bias layout [i | f | g | o]; forget gate biased to 1.
        let mut bias = Tensor::zeros([4 * hidden_size]);
        for v in &mut bias.data_mut()[hidden_size..2 * hidden_size] {
            *v = 1.0;
        }
        let b = store.register(format!("lstm.b[{}]", 4 * hidden_size), bias);
        Lstm {
            wx,
            wh,
            b,
            input_size,
            hidden_size,
        }
    }

    /// Input feature width.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Handle of the input weight `Wx` (e.g. to pre-project a
    /// time-constant input once outside an inference loop).
    pub fn wx_param(&self) -> ParamId {
        self.wx
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Zero initial state for a batch of `n` sequences on `bind`'s tape.
    pub fn zero_state(&self, bind: &Binding<'_>, n: usize) -> LstmState {
        LstmState {
            h: bind.tape().leaf(Tensor::zeros([n, self.hidden_size])),
            c: bind.tape().leaf(Tensor::zeros([n, self.hidden_size])),
        }
    }

    /// One time step: consumes `x: [N, input]` and the previous state,
    /// returns the next state.
    pub fn step(&self, bind: &Binding<'_>, x: &Var, state: &LstmState) -> LstmState {
        let hs = self.hidden_size;
        let gates = x
            .matmul(&bind.var(self.wx))
            .add(&state.h.matmul(&bind.var(self.wh)))
            .add_rowvec(&bind.var(self.b));
        let i = gates.narrow(1, 0, hs).sigmoid();
        let f = gates.narrow(1, hs, hs).sigmoid();
        let g = gates.narrow(1, 2 * hs, hs).tanh();
        let o = gates.narrow(1, 3 * hs, hs).sigmoid();
        let c = f.mul(&state.c).add(&i.mul(&g));
        let h = o.mul(&c.tanh());
        LstmState { h, c }
    }

    /// Precomputes the input projection `x·Wx` once, for inputs that do
    /// not change across time steps (the residual generator `G^t` feeds
    /// the same context features at every step — hoisting this matmul
    /// out of the time loop removes `T − 1` of the `T` input products).
    pub fn precompute_input(&self, bind: &Binding<'_>, x: &Var) -> Var {
        x.matmul(&bind.var(self.wx))
    }

    /// One time step given the precomputed input projection `xw = x·Wx`
    /// (see [`Lstm::precompute_input`]).
    pub fn step_projected(&self, bind: &Binding<'_>, xw: &Var, state: &LstmState) -> LstmState {
        let hs = self.hidden_size;
        let gates = xw
            .add(&state.h.matmul(&bind.var(self.wh)))
            .add_rowvec(&bind.var(self.b));
        let i = gates.narrow(1, 0, hs).sigmoid();
        let f = gates.narrow(1, hs, hs).sigmoid();
        let g = gates.narrow(1, 2 * hs, hs).tanh();
        let o = gates.narrow(1, 3 * hs, hs).sigmoid();
        let c = f.mul(&state.c).add(&i.mul(&g));
        let h = o.mul(&c.tanh());
        LstmState { h, c }
    }

    /// Tape-free step for inference: `(h, c) → (h', c')` given input
    /// `x: [N, input]` as plain tensors.
    pub fn step_infer(
        &self,
        store: &ParamStore,
        x: &Tensor,
        h: &Tensor,
        c: &Tensor,
    ) -> (Tensor, Tensor) {
        self.step_infer_projected(store, &store.infer_matmul(x, self.wx), h, c)
    }

    /// Tape-free step for inference with a precomputed input projection.
    pub fn step_infer_projected(
        &self,
        store: &ParamStore,
        xw: &Tensor,
        h: &Tensor,
        c: &Tensor,
    ) -> (Tensor, Tensor) {
        let hs = self.hidden_size;
        let mut gates = xw.add(&store.infer_matmul(h, self.wh));
        let b = store.weight(self.b);
        let n = gates.shape().dim(0);
        for row in 0..n {
            for col in 0..4 * hs {
                gates.data_mut()[row * 4 * hs + col] += b.data()[col];
            }
        }
        let mut h_new = Tensor::zeros([n, hs]);
        let mut c_new = Tensor::zeros([n, hs]);
        for row in 0..n {
            for k in 0..hs {
                let g_row = &gates.data()[row * 4 * hs..(row + 1) * 4 * hs];
                let i = sigmoid(g_row[k]);
                let f = sigmoid(g_row[hs + k]);
                let g = g_row[2 * hs + k].tanh();
                let o = sigmoid(g_row[3 * hs + k]);
                let c_val = f * c.data()[row * hs + k] + i * g;
                c_new.data_mut()[row * hs + k] = c_val;
                h_new.data_mut()[row * hs + k] = o * c_val.tanh();
            }
        }
        (h_new, c_new)
    }

    /// Zero initial state as plain tensors (for inference).
    pub fn zero_state_infer(&self, n: usize) -> (Tensor, Tensor) {
        (
            Tensor::zeros([n, self.hidden_size]),
            Tensor::zeros([n, self.hidden_size]),
        )
    }

    /// Runs the LSTM over a sequence of inputs, returning the hidden
    /// state after every step.
    pub fn forward_seq(&self, bind: &Binding<'_>, xs: &[Var], init: Option<LstmState>) -> Vec<Var> {
        assert!(!xs.is_empty(), "forward_seq on empty sequence");
        let n = xs[0].shape().dim(0);
        let mut state = init.unwrap_or_else(|| self.zero_state(bind, n));
        let mut out = Vec::with_capacity(xs.len());
        for x in xs {
            state = self.step(bind, x, &state);
            out.push(state.h.clone());
        }
        out
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spectragan_tensor::Tape;

    #[test]
    fn step_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, 3, 5, &mut rng);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let x = tape.leaf(Tensor::randn([2, 3], &mut rng));
        let s = lstm.step(&bind, &x, &lstm.zero_state(&bind, 2));
        assert_eq!(s.h.shape().dims(), &[2, 5]);
        assert_eq!(s.c.shape().dims(), &[2, 5]);
    }

    #[test]
    fn hidden_state_is_bounded_by_tanh() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, 4, 8, &mut rng);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let xs: Vec<Var> = (0..20)
            .map(|_| tape.leaf(Tensor::randn([3, 4], &mut rng).scale(5.0)))
            .collect();
        let hs = lstm.forward_seq(&bind, &xs, None);
        for h in hs {
            assert!(h.value().max() <= 1.0 && h.value().min() >= -1.0);
        }
    }

    #[test]
    fn zero_input_keeps_state_near_zero_initially() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, 2, 4, &mut rng);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let x = tape.leaf(Tensor::zeros([1, 2]));
        let s = lstm.step(&bind, &x, &lstm.zero_state(&bind, 1));
        // With zero input/state, gates are pure bias; c' = i(b)·g(b) and
        // g(bias 0) = 0, so the new cell is exactly 0.
        assert!(s.c.value().data().iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn infer_matches_tape_step() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, 3, 5, &mut rng);
        let x = Tensor::randn([2, 3], &mut rng);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let mut state = lstm.zero_state(&bind, 2);
        let xw = lstm.precompute_input(&bind, &tape.leaf(x.clone()));
        state = lstm.step_projected(&bind, &xw, &state);
        state = lstm.step_projected(&bind, &xw, &state);

        let (mut h, mut c) = lstm.zero_state_infer(2);
        for _ in 0..2 {
            let (h2, c2) = lstm.step_infer(&store, &x, &h, &c);
            h = h2;
            c = c2;
        }
        for (p, q) in state.h.value().data().iter().zip(h.data()) {
            assert!((p - q).abs() < 1e-6);
        }
        for (p, q) in state.c.value().data().iter().zip(c.data()) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    /// The LSTM can learn a tiny memory task: output the *first* input
    /// of the sequence at the last step.
    #[test]
    fn learns_to_remember_first_input() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, 1, 8, &mut rng);
        let head = crate::layers::Linear::new(&mut store, 8, 1, &mut rng);
        let mut opt = Adam::new(2e-2);
        let seq_len = 5;
        let batch = 16;

        let mut last = f32::INFINITY;
        for epoch in 0..200 {
            let mut step_rng = StdRng::seed_from_u64(1000 + epoch);
            let first = Tensor::randn([batch, 1], &mut step_rng);
            let tape = Tape::new();
            let bind = Binding::new(&tape, &store);
            let mut xs = vec![tape.leaf(first.clone())];
            for _ in 1..seq_len {
                xs.push(tape.leaf(Tensor::randn([batch, 1], &mut step_rng)));
            }
            let hs = lstm.forward_seq(&bind, &xs, None);
            let pred = head.forward(&bind, hs.last().unwrap());
            let loss = pred.mse_to(&first);
            last = loss.value().item();
            let grads = tape.backward(&loss);
            let bound = bind.bound();
            opt.step(&mut store, &bound, &grads);
        }
        assert!(last < 0.1, "memory task did not converge: {last}");
    }
}
