//! Optimizers: [`Adam`] (the paper's choice for GAN training) and
//! plain [`Sgd`], both with optional global-norm gradient clipping.
//!
//! Optimizer state is keyed by [`ParamId`], so one optimizer instance
//! can drive any subset of a [`ParamStore`] — which is how the GAN
//! trainer alternates generator and discriminator updates from separate
//! optimizers over one shared store.

use crate::param::{ParamId, ParamStore};
use serde::{Deserialize, Serialize};
use spectragan_obs as obs;
use spectragan_tensor::{Gradients, Tensor};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Cached metric handles for optimizer steps. Recording self-gates on
/// [`obs::enabled`]; disabled cost is one relaxed load per step.
struct OptimMetrics {
    /// Pre-clip global gradient L2 norm of the most recent step.
    grad_norm: &'static obs::Gauge,
    /// Optimizer steps taken.
    steps: &'static obs::Counter,
    /// Steps whose gradients were rescaled by the clip.
    clips: &'static obs::Counter,
}

fn optim_metrics() -> &'static OptimMetrics {
    static M: OnceLock<OptimMetrics> = OnceLock::new();
    M.get_or_init(|| OptimMetrics {
        grad_norm: obs::gauge("spectragan_optim_grad_norm"),
        steps: obs::counter("spectragan_optim_steps_total"),
        clips: obs::counter("spectragan_optim_clip_total"),
    })
}

/// Serializable snapshot of one parameter's Adam moments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamParamState {
    /// The parameter's registration index ([`ParamId::index`]).
    pub index: usize,
    /// First-moment estimate `m`.
    pub m: Tensor,
    /// Second-moment estimate `v`.
    pub v: Tensor,
    /// Per-parameter step count `t` (drives bias correction).
    pub t: u64,
}

/// Serializable snapshot of a whole [`Adam`] instance's mutable state —
/// everything beyond the constructor hyper-parameters. Restoring it
/// into a freshly built optimizer resumes the exact update sequence:
/// checkpoint/resume training is bit-identical to an uninterrupted run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AdamState {
    /// Per-parameter moments, sorted by parameter index so the snapshot
    /// (and anything hashed or diffed from it) is deterministic.
    pub entries: Vec<AdamParamState>,
}

/// Adam optimizer (Kingma & Ba) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    clip_norm: Option<f32>,
    /// Per-parameter `(m, v, t)` moments.
    state: HashMap<ParamId, (Tensor, Tensor, u64)>,
}

impl Adam {
    /// Creates Adam with the given learning rate and the standard
    /// `β₁ = 0.9, β₂ = 0.999, ε = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: None,
            state: HashMap::new(),
        }
    }

    /// GAN-style Adam (`β₁ = 0.5`), the setting conditional-GAN papers
    /// including Pix2Pix use for stability.
    pub fn gan(lr: f32) -> Self {
        Adam {
            beta1: 0.5,
            ..Adam::new(lr)
        }
    }

    /// Enables global-norm gradient clipping at `max_norm`.
    pub fn with_clip_norm(mut self, max_norm: f32) -> Self {
        self.clip_norm = Some(max_norm);
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Exports the optimizer's mutable state (moments and step counts)
    /// for checkpointing. Entries are sorted by parameter index, so two
    /// optimizers in the same state export identical snapshots.
    pub fn export_state(&self) -> AdamState {
        let mut entries: Vec<AdamParamState> = self
            .state
            .iter()
            .map(|(id, (m, v, t))| AdamParamState {
                index: id.index(),
                m: m.clone(),
                v: v.clone(),
                t: *t,
            })
            .collect();
        entries.sort_by_key(|e| e.index);
        AdamState { entries }
    }

    /// Replaces the optimizer's mutable state with a snapshot from
    /// [`Adam::export_state`]. Hyper-parameters (lr, betas, clipping)
    /// are untouched — the caller reconstructs those from its own
    /// configuration — so resuming requires building the optimizer the
    /// same way the original run did.
    pub fn import_state(&mut self, snapshot: &AdamState) {
        self.state.clear();
        for e in &snapshot.entries {
            self.state
                .insert(ParamId(e.index), (e.m.clone(), e.v.clone(), e.t));
        }
    }

    /// Applies one update using the gradients of the given bound
    /// parameters (from [`crate::param::Binding::bound`], which ends the
    /// store borrow so the store can be mutated here). Parameters
    /// without a gradient are skipped.
    pub fn step(
        &mut self,
        store: &mut ParamStore,
        bound: &[(ParamId, spectragan_tensor::Var)],
        grads: &Gradients,
    ) {
        self.apply_updates(store, collect_updates(bound, grads));
    }

    /// The apply phase of [`Adam::step`], decoupled from the tape:
    /// takes already-collected `(param, gradient)` updates — in bound
    /// (ascending-index) order, as [`collect_updates`] produces them —
    /// clips, and applies the Adam rule. `step` is exactly
    /// `apply_updates(store, collect_updates(bound, grads))`, so a
    /// caller that reduces gradients elsewhere (the sharded trainer's
    /// reduce phase) and feeds the identical update list through here
    /// updates the store bit-identically to the fused path.
    pub fn apply_updates(&mut self, store: &mut ParamStore, mut updates: Vec<(ParamId, Tensor)>) {
        apply_clip(&mut updates, self.clip_norm);
        for (id, g) in updates {
            let (m, v, t) = self.state.entry(id).or_insert_with(|| {
                let shape = store.get(id).shape().clone();
                (Tensor::zeros(shape.clone()), Tensor::zeros(shape), 0)
            });
            *t += 1;
            let (b1, b2) = (self.beta1, self.beta2);
            for ((mi, vi), &gi) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(g.data())
            {
                *mi = b1 * *mi + (1.0 - b1) * gi;
                *vi = b2 * *vi + (1.0 - b2) * gi * gi;
            }
            let bc1 = 1.0 - b1.powi(*t as i32);
            let bc2 = 1.0 - b2.powi(*t as i32);
            let lr = self.lr;
            let eps = self.eps;
            let param = store.get_mut(id);
            for ((pi, &mi), &vi) in param.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                *pi -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
    }
}

/// Plain stochastic gradient descent.
pub struct Sgd {
    lr: f32,
    clip_norm: Option<f32>,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            clip_norm: None,
        }
    }

    /// Enables global-norm gradient clipping at `max_norm`.
    pub fn with_clip_norm(mut self, max_norm: f32) -> Self {
        self.clip_norm = Some(max_norm);
        self
    }

    /// Applies one descent step (see [`Adam::step`] for semantics).
    pub fn step(
        &mut self,
        store: &mut ParamStore,
        bound: &[(ParamId, spectragan_tensor::Var)],
        grads: &Gradients,
    ) {
        self.apply_updates(store, collect_updates(bound, grads));
    }

    /// The apply phase of [`Sgd::step`]; same contract as
    /// [`Adam::apply_updates`].
    pub fn apply_updates(&mut self, store: &mut ParamStore, mut updates: Vec<(ParamId, Tensor)>) {
        apply_clip(&mut updates, self.clip_norm);
        for (id, g) in updates {
            store.get_mut(id).axpy(-self.lr, &g);
        }
    }
}

/// Collects the compute phase's output in the form the apply phase
/// consumes: one `(param, gradient)` pair per bound parameter that has
/// a gradient, in bound order — ascending [`ParamId::index`], which is
/// what makes the clip's float-sum order (and therefore the whole
/// update) reproducible from the list alone.
pub fn collect_updates(
    bound: &[(ParamId, spectragan_tensor::Var)],
    grads: &Gradients,
) -> Vec<(ParamId, Tensor)> {
    let mut updates: Vec<(ParamId, Tensor)> = Vec::new();
    for (id, var) in bound {
        if let Some(g) = grads.get(var) {
            updates.push((*id, g.clone()));
        }
    }
    updates
}

/// Scales all gradients so their joint L2 norm does not exceed
/// `max_norm` (no-op when `None` or already within bounds). Also
/// feeds the grad-norm/clip-rate observability gauges; the norm is
/// computed only when clipping or observability needs it, and reading
/// it never changes the update math.
fn apply_clip(updates: &mut [(ParamId, Tensor)], clip: Option<f32>) {
    let observing = obs::enabled();
    if clip.is_none() && !observing {
        return;
    }
    let total: f32 = updates
        .iter()
        .flat_map(|(_, g)| g.data())
        .map(|&v| v * v)
        .sum::<f32>()
        .sqrt();
    let mut clipped = false;
    if let Some(max_norm) = clip {
        if total > max_norm && total > 0.0 {
            clipped = true;
            let s = max_norm / total;
            for (_, g) in updates.iter_mut() {
                *g = g.scale(s);
            }
        }
    }
    if observing {
        let m = optim_metrics();
        m.grad_norm.set(total as f64);
        m.steps.inc(1);
        if clipped {
            m.clips.inc(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectragan_tensor::Tape;

    use crate::param::Binding;

    /// Minimizes `(w − 3)²` with each optimizer.
    fn converge<F: FnMut(&mut ParamStore, &[(ParamId, spectragan_tensor::Var)], &Gradients)>(
        mut step: F,
    ) -> f32 {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(0.0));
        for _ in 0..500 {
            let tape = Tape::new();
            let bind = Binding::new(&tape, &store);
            let wv = bind.var(w);
            let loss = wv.add_scalar(-3.0).mul(&wv.add_scalar(-3.0)).sum();
            let grads = tape.backward(&loss);
            let bound = bind.bound();
            step(&mut store, &bound, &grads);
        }
        store.get(w).item()
    }

    #[test]
    fn adam_converges_to_minimum() {
        let mut opt = Adam::new(5e-2);
        let w = converge(|s, b, g| opt.step(s, b, g));
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn sgd_converges_to_minimum() {
        let mut opt = Sgd::new(1e-1);
        let w = converge(|s, b, g| opt.step(s, b, g));
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(0.0));
        let mut opt = Sgd::new(1.0).with_clip_norm(0.5);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let wv = bind.var(w);
        // Loss 100·w → gradient 100, clipped to 0.5.
        let loss = wv.scale(100.0).sum();
        let grads = tape.backward(&loss);
        let bound = bind.bound();
        opt.step(&mut store, &bound, &grads);
        assert!((store.get(w).item() + 0.5).abs() < 1e-6);
    }

    /// Resuming from an exported state continues the exact update
    /// sequence: (K steps, snapshot, L steps) equals (K+L steps),
    /// bit-for-bit, and the snapshot survives a JSON roundtrip.
    #[test]
    fn state_snapshot_resumes_bit_identically() {
        let steps = |k: usize, l: usize, via_json: bool| -> Vec<u32> {
            let mut store = ParamStore::new();
            let w = store.register("w", Tensor::from_vec(vec![0.0, 1.0, -2.0], [3]));
            let mut opt = Adam::gan(5e-2).with_clip_norm(5.0);
            let one = |opt: &mut Adam, store: &mut ParamStore| {
                let tape = Tape::new();
                let bind = Binding::new(&tape, store);
                let wv = bind.var(w);
                let loss = wv.add_scalar(-3.0).mul(&wv.add_scalar(-3.0)).sum();
                let grads = tape.backward(&loss);
                let bound = bind.bound();
                opt.step(store, &bound, &grads);
            };
            for _ in 0..k {
                one(&mut opt, &mut store);
            }
            let mut resumed = Adam::gan(5e-2).with_clip_norm(5.0);
            let snap = opt.export_state();
            let snap = if via_json {
                let json = serde_json::to_string(&snap).unwrap();
                serde_json::from_str(&json).unwrap()
            } else {
                snap
            };
            resumed.import_state(&snap);
            for _ in 0..l {
                one(&mut resumed, &mut store);
            }
            store.get(w).data().iter().map(|v| v.to_bits()).collect()
        };
        let uninterrupted = steps(7, 0, false);
        assert_eq!(steps(3, 4, false), uninterrupted);
        assert_eq!(steps(5, 2, true), uninterrupted);
        assert_ne!(
            steps(6, 0, false),
            uninterrupted,
            "sanity: fewer steps differ"
        );
    }

    #[test]
    fn exported_state_is_sorted_and_complete() {
        let mut store = ParamStore::new();
        let ids: Vec<_> = (0..4)
            .map(|i| store.register(format!("p{i}"), Tensor::scalar(i as f32)))
            .collect();
        let mut opt = Adam::new(0.1);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        // Bind in reverse so the HashMap sees a scrambled insert order.
        let mut loss = bind.var(ids[3]).sum();
        for &id in ids[..3].iter().rev() {
            loss = loss.add(&bind.var(id).sum());
        }
        let grads = tape.backward(&loss);
        let bound = bind.bound();
        opt.step(&mut store, &bound, &grads);
        let snap = opt.export_state();
        let indices: Vec<_> = snap.entries.iter().map(|e| e.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3]);
        assert!(snap.entries.iter().all(|e| e.t == 1));
    }

    /// `step` and `collect_updates` → `apply_updates` are the same
    /// computation, bit-for-bit — the contract the sharded trainer's
    /// split compute/apply phases rely on.
    #[test]
    fn split_collect_apply_matches_fused_step() {
        let run = |split: bool| -> Vec<u32> {
            let mut store = ParamStore::new();
            let w = store.register("w", Tensor::from_vec(vec![0.5, -1.5, 2.5], [3]));
            let mut opt = Adam::gan(5e-2).with_clip_norm(0.75);
            for _ in 0..6 {
                let tape = Tape::new();
                let bind = Binding::new(&tape, &store);
                let wv = bind.var(w);
                let loss = wv.add_scalar(-3.0).mul(&wv.add_scalar(-3.0)).sum();
                let grads = tape.backward(&loss);
                let bound = bind.bound();
                if split {
                    let updates = collect_updates(&bound, &grads);
                    opt.apply_updates(&mut store, updates);
                } else {
                    opt.step(&mut store, &bound, &grads);
                }
            }
            store.get(w).data().iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn unbound_params_are_untouched() {
        let mut store = ParamStore::new();
        let used = store.register("used", Tensor::scalar(1.0));
        let unused = store.register("unused", Tensor::scalar(7.0));
        let mut opt = Adam::new(0.1);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let loss = bind.var(used).sum();
        let grads = tape.backward(&loss);
        let bound = bind.bound();
        opt.step(&mut store, &bound, &grads);
        assert_eq!(store.get(unused).item(), 7.0);
        assert!(store.get(used).item() < 1.0);
    }
}
