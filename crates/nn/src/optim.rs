//! Optimizers: [`Adam`] (the paper's choice for GAN training) and
//! plain [`Sgd`], both with optional global-norm gradient clipping.
//!
//! Optimizer state is keyed by [`ParamId`], so one optimizer instance
//! can drive any subset of a [`ParamStore`] — which is how the GAN
//! trainer alternates generator and discriminator updates from separate
//! optimizers over one shared store.

use crate::param::{ParamId, ParamStore};
use spectragan_tensor::{Gradients, Tensor};
use std::collections::HashMap;

/// Adam optimizer (Kingma & Ba) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    clip_norm: Option<f32>,
    /// Per-parameter `(m, v, t)` moments.
    state: HashMap<ParamId, (Tensor, Tensor, u64)>,
}

impl Adam {
    /// Creates Adam with the given learning rate and the standard
    /// `β₁ = 0.9, β₂ = 0.999, ε = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: None,
            state: HashMap::new(),
        }
    }

    /// GAN-style Adam (`β₁ = 0.5`), the setting conditional-GAN papers
    /// including Pix2Pix use for stability.
    pub fn gan(lr: f32) -> Self {
        Adam {
            beta1: 0.5,
            ..Adam::new(lr)
        }
    }

    /// Enables global-norm gradient clipping at `max_norm`.
    pub fn with_clip_norm(mut self, max_norm: f32) -> Self {
        self.clip_norm = Some(max_norm);
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update using the gradients of the given bound
    /// parameters (from [`crate::param::Binding::bound`], which ends the
    /// store borrow so the store can be mutated here). Parameters
    /// without a gradient are skipped.
    pub fn step(
        &mut self,
        store: &mut ParamStore,
        bound: &[(ParamId, spectragan_tensor::Var)],
        grads: &Gradients,
    ) {
        let mut updates: Vec<(ParamId, Tensor)> = Vec::new();
        for (id, var) in bound {
            let (id, var) = (*id, var);
            if let Some(g) = grads.get(var) {
                updates.push((id, g.clone()));
            }
        }
        apply_clip(&mut updates, self.clip_norm);
        for (id, g) in updates {
            let (m, v, t) = self.state.entry(id).or_insert_with(|| {
                let shape = store.get(id).shape().clone();
                (Tensor::zeros(shape.clone()), Tensor::zeros(shape), 0)
            });
            *t += 1;
            let (b1, b2) = (self.beta1, self.beta2);
            for ((mi, vi), &gi) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(g.data())
            {
                *mi = b1 * *mi + (1.0 - b1) * gi;
                *vi = b2 * *vi + (1.0 - b2) * gi * gi;
            }
            let bc1 = 1.0 - b1.powi(*t as i32);
            let bc2 = 1.0 - b2.powi(*t as i32);
            let lr = self.lr;
            let eps = self.eps;
            let param = store.get_mut(id);
            for ((pi, &mi), &vi) in param.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                *pi -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
    }
}

/// Plain stochastic gradient descent.
pub struct Sgd {
    lr: f32,
    clip_norm: Option<f32>,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            clip_norm: None,
        }
    }

    /// Enables global-norm gradient clipping at `max_norm`.
    pub fn with_clip_norm(mut self, max_norm: f32) -> Self {
        self.clip_norm = Some(max_norm);
        self
    }

    /// Applies one descent step (see [`Adam::step`] for semantics).
    pub fn step(
        &mut self,
        store: &mut ParamStore,
        bound: &[(ParamId, spectragan_tensor::Var)],
        grads: &Gradients,
    ) {
        let mut updates: Vec<(ParamId, Tensor)> = Vec::new();
        for (id, var) in bound {
            let (id, var) = (*id, var);
            if let Some(g) = grads.get(var) {
                updates.push((id, g.clone()));
            }
        }
        apply_clip(&mut updates, self.clip_norm);
        for (id, g) in updates {
            store.get_mut(id).axpy(-self.lr, &g);
        }
    }
}

/// Scales all gradients so their joint L2 norm does not exceed
/// `max_norm` (no-op when `None` or already within bounds).
fn apply_clip(updates: &mut [(ParamId, Tensor)], clip: Option<f32>) {
    let Some(max_norm) = clip else { return };
    let total: f32 = updates
        .iter()
        .flat_map(|(_, g)| g.data())
        .map(|&v| v * v)
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let s = max_norm / total;
        for (_, g) in updates.iter_mut() {
            *g = g.scale(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectragan_tensor::Tape;

    use crate::param::Binding;

    /// Minimizes `(w − 3)²` with each optimizer.
    fn converge<F: FnMut(&mut ParamStore, &[(ParamId, spectragan_tensor::Var)], &Gradients)>(
        mut step: F,
    ) -> f32 {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(0.0));
        for _ in 0..500 {
            let tape = Tape::new();
            let bind = Binding::new(&tape, &store);
            let wv = bind.var(w);
            let loss = wv.add_scalar(-3.0).mul(&wv.add_scalar(-3.0)).sum();
            let grads = tape.backward(&loss);
            let bound = bind.bound();
            step(&mut store, &bound, &grads);
        }
        store.get(w).item()
    }

    #[test]
    fn adam_converges_to_minimum() {
        let mut opt = Adam::new(5e-2);
        let w = converge(|s, b, g| opt.step(s, b, g));
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn sgd_converges_to_minimum() {
        let mut opt = Sgd::new(1e-1);
        let w = converge(|s, b, g| opt.step(s, b, g));
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(0.0));
        let mut opt = Sgd::new(1.0).with_clip_norm(0.5);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let wv = bind.var(w);
        // Loss 100·w → gradient 100, clipped to 0.5.
        let loss = wv.scale(100.0).sum();
        let grads = tape.backward(&loss);
        let bound = bind.bound();
        opt.step(&mut store, &bound, &grads);
        assert!((store.get(w).item() + 0.5).abs() < 1e-6);
    }

    #[test]
    fn unbound_params_are_untouched() {
        let mut store = ParamStore::new();
        let used = store.register("used", Tensor::scalar(1.0));
        let unused = store.register("unused", Tensor::scalar(7.0));
        let mut opt = Adam::new(0.1);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let loss = bind.var(used).sum();
        let grads = tape.backward(&loss);
        let bound = bind.bound();
        opt.step(&mut store, &bound, &grads);
        assert_eq!(store.get(unused).item(), 7.0);
        assert!(store.get(used).item() < 1.0);
    }
}
