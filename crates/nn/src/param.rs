//! Persistent parameter storage and per-tape binding.
//!
//! An autodiff [`Tape`](spectragan_tensor::Tape) lives for one training
//! step; model parameters live for the whole run. [`ParamStore`] owns
//! the parameter tensors, [`ParamId`] is a stable handle that layers
//! keep, and [`Binding`] lazily creates one leaf [`Var`] per parameter
//! on the current tape so a forward pass can use them and the optimizer
//! can look their gradients up afterwards.

use serde::{Deserialize, Serialize};
use spectragan_tensor::{Tape, Tensor, Var};
use std::cell::RefCell;
use std::rc::Rc;

/// Stable handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The registration index (parameters are numbered in registration
    /// order, so a model built after another occupies a contiguous
    /// later range — which is how the GAN trainer partitions generator
    /// and discriminator parameters).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Owns all trainable tensors of one or more models.
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle. Names are for
    /// diagnostics and serialization; duplicates are allowed.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.names.push(name.into());
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.values.iter().map(Tensor::numel).sum()
    }

    /// Read access to a parameter's current value.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable access to a parameter's current value.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// The diagnostic name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ParamId(i), self.names[i].as_str(), v))
    }

    /// Serializes the whole store (names + weights) to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ParamStore serialization cannot fail")
    }

    /// Restores a store previously produced by [`ParamStore::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Copies all parameter values from `other` into this store. Used
    /// to load saved weights into a freshly constructed model of the
    /// same architecture.
    ///
    /// # Panics
    /// Panics if the stores differ in parameter count or any shape.
    pub fn copy_values_from(&mut self, other: &ParamStore) {
        assert_eq!(
            self.len(),
            other.len(),
            "parameter count mismatch: {} vs {}",
            self.len(),
            other.len()
        );
        for i in 0..self.values.len() {
            assert_eq!(
                self.values[i].shape(),
                other.values[i].shape(),
                "shape mismatch for parameter {} ({})",
                i,
                self.names[i]
            );
            self.values[i] = other.values[i].clone();
        }
    }
}

/// Binds parameters of a [`ParamStore`] to leaf [`Var`]s on one tape.
///
/// Interior mutability lets layers bind parameters during a forward
/// pass that only holds `&Binding`.
pub struct Binding<'s> {
    tape: Rc<Tape>,
    store: &'s ParamStore,
    vars: RefCell<Vec<Option<Var>>>,
}

impl<'s> Binding<'s> {
    /// Creates a binding of `store` onto `tape`.
    pub fn new(tape: &Rc<Tape>, store: &'s ParamStore) -> Self {
        Binding {
            tape: Rc::clone(tape),
            store,
            vars: RefCell::new(vec![None; store.len()]),
        }
    }

    /// The tape this binding records onto.
    pub fn tape(&self) -> &Rc<Tape> {
        &self.tape
    }

    /// Returns the leaf [`Var`] for `id`, creating it on first use.
    pub fn var(&self, id: ParamId) -> Var {
        let mut vars = self.vars.borrow_mut();
        if let Some(v) = &vars[id.0] {
            return v.clone();
        }
        let v = self.tape.leaf(self.store.get(id).clone());
        vars[id.0] = Some(v.clone());
        v
    }

    /// Iterates over the parameters that were actually bound (used)
    /// during this pass, as `(id, var)` pairs.
    pub fn bound(&self) -> Vec<(ParamId, Var)> {
        self.vars
            .borrow()
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (ParamId(i), v.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_access() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::ones([2, 2]));
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_weights(), 4);
        assert_eq!(store.name(id), "w");
        store.get_mut(id).data_mut()[0] = 5.0;
        assert_eq!(store.get(id).data()[0], 5.0);
    }

    #[test]
    fn binding_is_lazy_and_cached() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::scalar(1.0));
        let _b = store.register("b", Tensor::scalar(2.0));
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        assert!(bind.bound().is_empty());
        let v1 = bind.var(a);
        let v2 = bind.var(a);
        assert_eq!(tape.len(), 1, "second bind must reuse the leaf");
        assert_eq!(v1.value().item(), v2.value().item());
        assert_eq!(bind.bound().len(), 1);
    }

    #[test]
    fn json_roundtrip_preserves_weights() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::from_vec(vec![1.5, -2.5], [2]));
        let json = store.to_json();
        let restored = ParamStore::from_json(&json).unwrap();
        assert_eq!(restored.get(ParamId(id.0)).data(), &[1.5, -2.5]);
        assert_eq!(restored.name(id), "w");
    }
}
