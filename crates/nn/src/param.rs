//! Persistent parameter storage and per-tape binding.
//!
//! An autodiff [`Tape`](spectragan_tensor::Tape) lives for one training
//! step; model parameters live for the whole run. [`ParamStore`] owns
//! the parameter tensors, [`ParamId`] is a stable handle that layers
//! keep, and [`Binding`] lazily creates one leaf [`Var`] per parameter
//! on the current tape so a forward pass can use them and the optimizer
//! can look their gradients up afterwards.
//!
//! # Reduced-precision storage
//!
//! A parameter is normally a resident f32 [`Tensor`] ([`Slot::Dense`]).
//! For serving, a store may instead hold **f16 storage bytes**
//! ([`Slot::Half`] backed by an [`F16Slice`]) or **symmetric-int8
//! storage** ([`Slot::Int8`] backed by a [`Q8Slice`]: 1 byte per
//! element plus per-row f32 scales) — typically sections of a
//! memory-mapped weight container owned by `spectragan-core`. The
//! split keeps the precision contract structural:
//!
//! * [`ParamStore::get`]/[`ParamStore::get_mut`] — the training and
//!   optimizer path — return `&Tensor` and **panic** on a
//!   reduced-precision slot: training stays f32 by construction, not
//!   by convention.
//! * [`ParamStore::weight`] — the inference path — returns a
//!   [`WeightRef`] that borrows a dense tensor directly and widens a
//!   reduced-precision slot transiently (exact per-element widening
//!   and `q · s` dequantization, see `spectragan_tensor::{f16, q8}`).
//!   Nothing f32 stays resident between calls, which is where the
//!   ~2× (f16) / ~4× (int8) serving-memory reduction comes from.
//! * [`ParamStore::infer_matmul`] — the GEMM fast path — streams an
//!   int8 2-D parameter through the backend's dequantizing matmul
//!   without materializing the widened layer at all.

use serde::{DeError, Deserialize, Serialize, Value};
use spectragan_tensor::{backend, Shape, Tape, Tensor, Var};
use std::cell::RefCell;
use std::ops::Deref;
use std::rc::Rc;
use std::sync::{Arc, OnceLock};

/// Stable handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The registration index (parameters are numbered in registration
    /// order, so a model built after another occupies a contiguous
    /// later range — which is how the GAN trainer partitions generator
    /// and discriminator parameters).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Storage-only f16 bytes for one parameter: little-endian pairs, two
/// bytes per element, in the tensor's row-major element order.
///
/// Implementations live where the bytes live — `spectragan-core`'s
/// weight store hands out views into a memory-mapped (or buffered)
/// container file. The trait keeps `nn` independent of how the bytes
/// are held while letting the store widen them on demand.
pub trait F16Slice: Send + Sync {
    /// The raw little-endian f16 bytes (`2 × numel` of them).
    fn bytes(&self) -> &[u8];

    /// Byte count without touching the bytes. Mapped sources override
    /// this so a size check does not fault in (and checksum) the
    /// section; the default just measures [`F16Slice::bytes`].
    fn byte_len(&self) -> usize {
        self.bytes().len()
    }
}

impl F16Slice for Vec<u8> {
    fn bytes(&self) -> &[u8] {
        self
    }

    fn byte_len(&self) -> usize {
        self.len()
    }
}

/// Storage-only symmetric-int8 payload for one parameter: one byte per
/// element (two's complement, row-major element order) plus one f32
/// scale per quantization row (`spectragan_tensor::q8::scale_rows` of
/// the parameter's shape: the leading dimension for `ndim ≥ 2`, the
/// whole tensor otherwise).
///
/// Like [`F16Slice`], implementations live where the bytes live — the
/// weight container hands out views into mapped sections; in-memory
/// narrowing uses [`Q8Buf`].
pub trait Q8Slice: Send + Sync {
    /// The raw quantized bytes (`numel` of them).
    fn bytes(&self) -> &[u8];

    /// The per-row dequantization scales.
    fn scales(&self) -> &[f32];

    /// Byte count without touching the payload (mapped sources
    /// override so a size check does not fault the section in).
    fn byte_len(&self) -> usize {
        self.bytes().len()
    }
}

/// Heap-resident [`Q8Slice`], produced by in-memory narrowing
/// (`narrow_to_int8` in `spectragan-core`).
pub struct Q8Buf {
    /// Quantized payload, 1 byte per element.
    pub data: Vec<u8>,
    /// Per-row scales.
    pub scales: Vec<f32>,
}

impl Q8Slice for Q8Buf {
    fn bytes(&self) -> &[u8] {
        &self.data
    }

    fn scales(&self) -> &[f32] {
        &self.scales
    }

    fn byte_len(&self) -> usize {
        self.data.len()
    }
}

/// Deferred f32 storage for one parameter: the value stays wherever
/// the source keeps it (a mapped weight-container section) until the
/// parameter is first touched, at which point [`LazySource::load`]
/// materializes it exactly once per store.
///
/// `load` panics on a corrupt source (checksum mismatch) — callers who
/// need a typed error validate the container before first touch.
pub trait LazySource: Send + Sync {
    /// Materializes the tensor. Must return the registered shape.
    fn load(&self) -> Tensor;
}

/// One parameter's storage.
enum Slot {
    /// Resident f32 tensor — the training representation.
    Dense(Tensor),
    /// Deferred f32: materialized on first touch, resident afterwards.
    Lazy {
        shape: Shape,
        source: Arc<dyn LazySource>,
        cache: OnceLock<Tensor>,
    },
    /// f16 storage bytes plus the shape they decode to; widened
    /// transiently by [`ParamStore::weight`].
    Half {
        shape: Shape,
        bytes: Arc<dyn F16Slice>,
    },
    /// Symmetric-int8 storage (1 byte per element + per-row scales);
    /// streamed through the dequantizing GEMM by
    /// [`ParamStore::infer_matmul`], widened transiently everywhere
    /// else.
    Int8 {
        shape: Shape,
        data: Arc<dyn Q8Slice>,
    },
}

impl Clone for Slot {
    fn clone(&self) -> Self {
        match self {
            Slot::Dense(t) => Slot::Dense(t.clone()),
            // The clone shares the source but re-materializes
            // independently (OnceLock is not Clone); an already-cached
            // value is carried over to keep clones cheap to touch.
            Slot::Lazy {
                shape,
                source,
                cache,
            } => {
                let fresh = OnceLock::new();
                if let Some(t) = cache.get() {
                    let _ = fresh.set(t.clone());
                }
                Slot::Lazy {
                    shape: shape.clone(),
                    source: Arc::clone(source),
                    cache: fresh,
                }
            }
            Slot::Half { shape, bytes } => Slot::Half {
                shape: shape.clone(),
                bytes: Arc::clone(bytes),
            },
            Slot::Int8 { shape, data } => Slot::Int8 {
                shape: shape.clone(),
                data: Arc::clone(data),
            },
        }
    }
}

impl Slot {
    fn numel(&self) -> usize {
        self.shape().numel()
    }

    fn shape(&self) -> &Shape {
        match self {
            Slot::Dense(t) => t.shape(),
            Slot::Lazy { shape, .. } => shape,
            Slot::Half { shape, .. } => shape,
            Slot::Int8 { shape, .. } => shape,
        }
    }
}

/// A read view of one parameter: either a borrow of the resident f32
/// tensor or a transiently widened copy of f16 storage. Derefs to
/// [`Tensor`], so kernel call sites take `&store.weight(id)` exactly
/// where they took `store.get(id)`.
pub enum WeightRef<'a> {
    /// Borrowed resident tensor (f32 slots; zero cost).
    Borrowed(&'a Tensor),
    /// Widened-on-demand tensor (f16 slots; dropped after use).
    Widened(Tensor),
}

impl Deref for WeightRef<'_> {
    type Target = Tensor;

    fn deref(&self) -> &Tensor {
        match self {
            WeightRef::Borrowed(t) => t,
            WeightRef::Widened(t) => t,
        }
    }
}

/// Owns all trainable tensors of one or more models.
#[derive(Clone, Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Slot>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle. Names are for
    /// diagnostics and serialization; duplicates are allowed.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.names.push(name.into());
        self.values.push(Slot::Dense(value));
        ParamId(self.values.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.values.iter().map(Slot::numel).sum()
    }

    /// Bytes of parameter storage resident in this process: 4 per
    /// element for dense f32 slots, 2 per element for f16 storage
    /// slots, 1 per element plus 4 per scale row for int8 storage
    /// slots. (For memory-mapped reduced-precision slots even those
    /// bytes are shared, clean page-cache pages.) This is the number
    /// the serve registry reports per city and the perf gate's
    /// resident-weight sweep measures.
    pub fn resident_weight_bytes(&self) -> usize {
        self.values
            .iter()
            .map(|s| match s {
                Slot::Dense(t) => 4 * t.numel(),
                Slot::Lazy { cache, .. } => cache.get().map_or(0, |t| 4 * t.numel()),
                Slot::Half { bytes, .. } => bytes.byte_len(),
                Slot::Int8 { data, .. } => data.byte_len() + 4 * data.scales().len(),
            })
            .sum()
    }

    /// Whether any parameter is held as f16 storage.
    pub fn has_half_storage(&self) -> bool {
        self.values.iter().any(|s| matches!(s, Slot::Half { .. }))
    }

    /// Whether any parameter is held as int8 storage.
    pub fn has_int8_storage(&self) -> bool {
        self.values.iter().any(|s| matches!(s, Slot::Int8 { .. }))
    }

    /// Read access to a parameter's current value — the training path.
    ///
    /// # Panics
    /// Panics on an f16 storage slot: training and optimizer state
    /// require resident f32 values. Inference goes through
    /// [`ParamStore::weight`], which handles both representations.
    pub fn get(&self, id: ParamId) -> &Tensor {
        match &self.values[id.0] {
            Slot::Dense(t) => t,
            Slot::Lazy {
                shape,
                source,
                cache,
            } => {
                let t = cache.get_or_init(|| source.load());
                assert_eq!(
                    t.shape(),
                    shape,
                    "lazy parameter '{}' materialized the wrong shape",
                    self.names[id.0]
                );
                t
            }
            Slot::Half { .. } | Slot::Int8 { .. } => panic!(
                "parameter '{}' is reduced-precision storage; training requires f32 — \
                 load f32 weights, or use weight() on the inference path",
                self.names[id.0]
            ),
        }
    }

    /// Read view of a parameter for inference: borrows dense slots,
    /// transiently widens f16 slots (exact widening; every kernel
    /// still computes in f32) and int8 slots (exact `q · s`
    /// dequantization). The widened copy lives only as long as the
    /// returned [`WeightRef`].
    pub fn weight(&self, id: ParamId) -> WeightRef<'_> {
        match &self.values[id.0] {
            Slot::Dense(_) | Slot::Lazy { .. } => WeightRef::Borrowed(self.get(id)),
            Slot::Half { shape, bytes } => {
                let mut out = vec![0f32; shape.numel()];
                backend::active().widen_f16_le(bytes.bytes(), &mut out);
                WeightRef::Widened(Tensor::from_vec(out, shape.clone()))
            }
            Slot::Int8 { shape, data } => {
                let mut out = vec![0f32; shape.numel()];
                backend::active().widen_i8_scaled(data.bytes(), data.scales(), &mut out);
                WeightRef::Widened(Tensor::from_vec(out, shape.clone()))
            }
        }
    }

    /// Inference matmul against a parameter used as the right operand:
    /// `x @ W`. Int8-stored 2-D parameters stream through the
    /// backend's dequantizing GEMM — reading the weight at 1 byte per
    /// element with the per-row scale applied inside the kernel,
    /// instead of widening the whole layer up front — every other
    /// representation routes through [`ParamStore::weight`] exactly as
    /// the call sites did before int8 existed.
    pub fn infer_matmul(&self, x: &Tensor, id: ParamId) -> Tensor {
        if let Slot::Int8 { shape, data } = &self.values[id.0] {
            if shape.ndim() == 2 {
                return backend::active().matmul_q8(x, data.bytes(), data.scales(), shape.dim(1));
            }
        }
        x.matmul(&self.weight(id))
    }

    /// Mutable access to a parameter's current value.
    ///
    /// # Panics
    /// Panics on an f16 storage slot (see [`ParamStore::get`]).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        // Promote a lazy slot to dense first; mutation implies the
        // value diverges from its on-disk source for good.
        if matches!(self.values[id.0], Slot::Lazy { .. }) {
            let t = self.get(id).clone();
            self.values[id.0] = Slot::Dense(t);
        }
        match &mut self.values[id.0] {
            Slot::Dense(t) => t,
            Slot::Lazy { .. } => unreachable!("promoted above"),
            Slot::Half { .. } | Slot::Int8 { .. } => panic!(
                "parameter '{}' is reduced-precision storage and cannot be mutated",
                self.names[id.0]
            ),
        }
    }

    /// The diagnostic name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// The shape of a parameter, for either storage representation.
    pub fn shape(&self, id: ParamId) -> &Shape {
        self.values[id.0].shape()
    }

    /// Iterates over `(id, name, value)` triples. Training-path
    /// iteration: panics on f16 slots like [`ParamStore::get`].
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, _)| (ParamId(i), self.names[i].as_str(), self.get(ParamId(i))))
    }

    /// Iterates over every parameter id without touching any value, so
    /// it works regardless of storage representation (unlike
    /// [`ParamStore::iter`], which materializes).
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Replaces a dense parameter's value with a deferred f32 source
    /// of the same shape. The first training or inference touch
    /// materializes it ([`LazySource::load`]) and it stays resident
    /// from then on.
    pub fn demote_to_lazy(&mut self, id: ParamId, source: Arc<dyn LazySource>) {
        let shape = self.values[id.0].shape().clone();
        self.values[id.0] = Slot::Lazy {
            shape,
            source,
            cache: OnceLock::new(),
        };
    }

    /// Replaces a dense parameter's value with f16 storage of the same
    /// shape. The inference accessor ([`ParamStore::weight`]) widens it
    /// on demand; the training accessors panic from then on.
    ///
    /// # Panics
    /// Panics if `bytes` is not exactly 2 bytes per element of the
    /// parameter's current shape.
    pub fn demote_to_half(&mut self, id: ParamId, bytes: Arc<dyn F16Slice>) {
        let shape = self.values[id.0].shape().clone();
        assert_eq!(
            bytes.byte_len(),
            2 * shape.numel(),
            "parameter '{}': {} f16 bytes cannot fill shape {:?}",
            self.names[id.0],
            bytes.byte_len(),
            shape.dims()
        );
        self.values[id.0] = Slot::Half { shape, bytes };
    }

    /// Replaces a parameter's value with symmetric-int8 storage of the
    /// same shape. The inference accessors ([`ParamStore::weight`],
    /// [`ParamStore::infer_matmul`]) dequantize it on demand; the
    /// training accessors panic from then on.
    ///
    /// # Panics
    /// Panics if `data` is not exactly 1 byte per element of the
    /// parameter's current shape, or its scale count differs from the
    /// canonical `q8::scale_rows` granularity, or any scale is
    /// non-finite or non-positive (a non-finite scale would dequantize
    /// to NaN — the weight-container load path refuses such files with
    /// a typed error before ever reaching here).
    pub fn demote_to_int8(&mut self, id: ParamId, data: Arc<dyn Q8Slice>) {
        let shape = self.values[id.0].shape().clone();
        assert_eq!(
            data.byte_len(),
            shape.numel(),
            "parameter '{}': {} int8 bytes cannot fill shape {:?}",
            self.names[id.0],
            data.byte_len(),
            shape.dims()
        );
        let rows = spectragan_tensor::q8::scale_rows(&shape);
        assert_eq!(
            data.scales().len(),
            rows,
            "parameter '{}': {} scales for {rows} quantization rows",
            self.names[id.0],
            data.scales().len()
        );
        assert!(
            data.scales().iter().all(|s| s.is_finite() && *s > 0.0),
            "parameter '{}': non-finite or non-positive dequantization scale",
            self.names[id.0]
        );
        self.values[id.0] = Slot::Int8 { shape, data };
    }

    /// Serializes the whole store (names + weights) to JSON.
    ///
    /// # Panics
    /// Panics if any parameter is f16 storage — JSON is the training
    /// and interchange format and is defined over f32 values only.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ParamStore serialization cannot fail")
    }

    /// Restores a store previously produced by [`ParamStore::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Copies all parameter values from `other` into this store. Used
    /// to load saved weights into a freshly constructed model of the
    /// same architecture.
    ///
    /// # Panics
    /// Panics if the stores differ in parameter count or any shape, or
    /// if either store holds f16 storage slots.
    pub fn copy_values_from(&mut self, other: &ParamStore) {
        assert_eq!(
            self.len(),
            other.len(),
            "parameter count mismatch: {} vs {}",
            self.len(),
            other.len()
        );
        for i in 0..self.values.len() {
            assert_eq!(
                self.values[i].shape(),
                other.values[i].shape(),
                "shape mismatch for parameter {} ({})",
                i,
                self.names[i]
            );
            self.values[i] = Slot::Dense(other.get(ParamId(i)).clone());
        }
    }
}

// Manual serde impls preserving the exact `{"names": [...], "values":
// [...]}` object layout the former derive produced — every existing
// weights/model/checkpoint JSON file stays byte-compatible. (The
// derive cannot be used anymore: `Slot` is a data-carrying enum, and
// the JSON surface must stay `Vec<Tensor>`-shaped regardless of the
// storage representation.)
impl Serialize for ParamStore {
    fn to_value(&self) -> Value {
        let values: Vec<Value> = self
            .values
            .iter()
            .enumerate()
            .map(|(i, s)| match s {
                Slot::Dense(t) => t.to_value(),
                Slot::Lazy { source, cache, .. } => cache.get_or_init(|| source.load()).to_value(),
                Slot::Half { .. } | Slot::Int8 { .. } => panic!(
                    "parameter '{}' is reduced-precision storage; JSON serialization is \
                     f32-only (export an f32 weight container instead)",
                    self.names[i]
                ),
            })
            .collect();
        Value::Obj(vec![
            ("names".to_string(), self.names.to_value()),
            ("values".to_string(), Value::Arr(values)),
        ])
    }
}

impl Deserialize for ParamStore {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let names: Vec<String> = Deserialize::from_value(v.get("names").unwrap_or(&Value::Null))?;
        let tensors: Vec<Tensor> =
            Deserialize::from_value(v.get("values").unwrap_or(&Value::Null))?;
        if names.len() != tensors.len() {
            return Err(DeError(format!(
                "ParamStore: {} names but {} values",
                names.len(),
                tensors.len()
            )));
        }
        Ok(ParamStore {
            names,
            values: tensors.into_iter().map(Slot::Dense).collect(),
        })
    }
}

/// Binds parameters of a [`ParamStore`] to leaf [`Var`]s on one tape.
///
/// Interior mutability lets layers bind parameters during a forward
/// pass that only holds `&Binding`.
pub struct Binding<'s> {
    tape: Rc<Tape>,
    store: &'s ParamStore,
    vars: RefCell<Vec<Option<Var>>>,
}

impl<'s> Binding<'s> {
    /// Creates a binding of `store` onto `tape`.
    pub fn new(tape: &Rc<Tape>, store: &'s ParamStore) -> Self {
        Binding {
            tape: Rc::clone(tape),
            store,
            vars: RefCell::new(vec![None; store.len()]),
        }
    }

    /// The tape this binding records onto.
    pub fn tape(&self) -> &Rc<Tape> {
        &self.tape
    }

    /// Returns the leaf [`Var`] for `id`, creating it on first use.
    pub fn var(&self, id: ParamId) -> Var {
        let mut vars = self.vars.borrow_mut();
        if let Some(v) = &vars[id.0] {
            return v.clone();
        }
        let v = self.tape.leaf(self.store.get(id).clone());
        vars[id.0] = Some(v.clone());
        v
    }

    /// Iterates over the parameters that were actually bound (used)
    /// during this pass, as `(id, var)` pairs.
    pub fn bound(&self) -> Vec<(ParamId, Var)> {
        self.vars
            .borrow()
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (ParamId(i), v.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_access() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::ones([2, 2]));
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_weights(), 4);
        assert_eq!(store.name(id), "w");
        store.get_mut(id).data_mut()[0] = 5.0;
        assert_eq!(store.get(id).data()[0], 5.0);
    }

    #[test]
    fn binding_is_lazy_and_cached() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::scalar(1.0));
        let _b = store.register("b", Tensor::scalar(2.0));
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        assert!(bind.bound().is_empty());
        let v1 = bind.var(a);
        let v2 = bind.var(a);
        assert_eq!(tape.len(), 1, "second bind must reuse the leaf");
        assert_eq!(v1.value().item(), v2.value().item());
        assert_eq!(bind.bound().len(), 1);
    }

    #[test]
    fn json_roundtrip_preserves_weights() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::from_vec(vec![1.5, -2.5], [2]));
        let json = store.to_json();
        let restored = ParamStore::from_json(&json).unwrap();
        assert_eq!(restored.get(ParamId(id.0)).data(), &[1.5, -2.5]);
        assert_eq!(restored.name(id), "w");
    }

    #[test]
    fn weight_borrows_dense_and_widens_half() {
        let mut store = ParamStore::new();
        let vals = vec![1.5f32, -2.25, 0.0, 65504.0];
        let id = store.register("w", Tensor::from_vec(vals.clone(), [2, 2]));
        // Dense: the view is a borrow of the same data.
        assert_eq!(store.weight(id).data(), vals.as_slice());
        assert_eq!(store.resident_weight_bytes(), 16);
        // Demote to f16 storage (these values are all exactly
        // representable, so widening returns them bit-identically).
        let half = spectragan_tensor::f16::narrow_slice_le(&vals);
        store.demote_to_half(id, Arc::new(half));
        assert!(store.has_half_storage());
        assert_eq!(store.resident_weight_bytes(), 8);
        assert_eq!(store.num_weights(), 4);
        assert_eq!(store.shape(id).dims(), &[2, 2]);
        let w = store.weight(id);
        assert_eq!(w.data(), vals.as_slice());
        assert_eq!(w.shape().dims(), &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "reduced-precision storage")]
    fn training_access_to_half_storage_panics() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::from_vec(vec![1.0, 2.0], [2]));
        store.demote_to_half(
            id,
            Arc::new(spectragan_tensor::f16::narrow_slice_le(&[1.0, 2.0])),
        );
        let _ = store.get(id);
    }

    #[test]
    #[should_panic(expected = "f32-only")]
    fn json_serialization_of_half_storage_panics() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::from_vec(vec![1.0], [1]));
        store.demote_to_half(
            id,
            Arc::new(spectragan_tensor::f16::narrow_slice_le(&[1.0])),
        );
        let _ = store.to_json();
    }

    #[test]
    #[should_panic(expected = "cannot fill shape")]
    fn demote_rejects_wrong_byte_count() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]));
        store.demote_to_half(id, Arc::new(vec![0u8; 4]));
    }

    #[test]
    fn int8_storage_widens_and_streams_through_the_gemm() {
        let mut store = ParamStore::new();
        // Exactly representable under absmax/127 scaling: row absmaxes
        // 127 and 63.5 → scales 1.0 and 0.5 (both powers of two), so
        // q · scale reproduces every value bit-exactly.
        let vals = vec![127.0f32, -127.0, 64.0, 63.5, 0.0, -2.0];
        let id = store.register("w", Tensor::from_vec(vals.clone(), [2, 3]));
        let q = spectragan_tensor::q8::quantize_tensor(&vals, store.shape(id));
        store.demote_to_int8(
            id,
            Arc::new(Q8Buf {
                data: q.data,
                scales: q.scales,
            }),
        );
        assert!(store.has_int8_storage());
        // 6 payload bytes + 2 row scales × 4 bytes.
        assert_eq!(store.resident_weight_bytes(), 6 + 8);
        assert_eq!(store.weight(id).data(), vals.as_slice());
        let x = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
        let y = store.infer_matmul(&x, id);
        let want = x.matmul(&store.weight(id));
        assert_eq!(y.data(), want.data());
        assert_eq!(y.shape().dims(), &[1, 3]);
    }

    #[test]
    #[should_panic(expected = "reduced-precision storage")]
    fn training_access_to_int8_storage_panics() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::from_vec(vec![1.0, 2.0], [1, 2]));
        let q = spectragan_tensor::q8::quantize_tensor(&[1.0, 2.0], store.shape(id));
        store.demote_to_int8(
            id,
            Arc::new(Q8Buf {
                data: q.data,
                scales: q.scales,
            }),
        );
        let _ = store.get(id);
    }

    #[test]
    #[should_panic(expected = "non-finite or non-positive")]
    fn demote_to_int8_rejects_bad_scales() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::from_vec(vec![1.0, 2.0], [1, 2]));
        store.demote_to_int8(
            id,
            Arc::new(Q8Buf {
                data: vec![1, 2],
                scales: vec![f32::NAN],
            }),
        );
    }
}
