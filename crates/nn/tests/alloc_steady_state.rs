//! Buffer-pool regression test: a constant-shape training loop must be
//! served entirely from the arena after warm-up.
//!
//! Every training step builds the same graph with the same shapes, so
//! once the pool holds one step's worth of buffers (plus the optimizer
//! moments), subsequent steps should hit the pool on every tensor —
//! zero fresh heap allocations per step. A regression here (an op
//! building temporaries with `Vec::with_capacity` instead of the arena,
//! or a tape that drops buffers instead of recycling them) shows up as
//! a nonzero `fresh_allocs` count.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spectragan_nn::{Activation, Adam, Binding, Conv2d, Mlp, ParamStore};
use spectragan_tensor::{arena, Tape, Tensor};

#[test]
fn steady_state_training_steps_allocate_nothing_fresh() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let conv = Conv2d::new(&mut store, 2, 4, 3, 1, &mut rng);
    let mlp = Mlp::new(
        &mut store,
        &[4 * 8 * 8, 16, 1],
        Activation::LeakyRelu,
        Activation::Identity,
        &mut rng,
    );
    let mut opt = Adam::new(1e-3);

    // Hoisted tape, as the real training loops use it.
    let tape = Tape::new();
    let step = |rng: &mut StdRng, store: &mut ParamStore, opt: &mut Adam| {
        tape.reset_keep_capacity();
        let bind = Binding::new(&tape, store);
        let x = tape.leaf(Tensor::randn([2, 2, 8, 8], rng));
        let h = conv.forward(&bind, &x).leaky_relu(0.2);
        let rows = h.reshape([2, 4 * 8 * 8]);
        let loss = mlp.forward(&bind, &rows).square().mean();
        let grads = tape.backward(&loss);
        let bound = bind.bound();
        opt.step(store, &bound, &grads);
    };

    // Warm-up: populate the pool (and Adam's moment tensors, which are
    // created on the first update).
    for _ in 0..3 {
        step(&mut rng, &mut store, &mut opt);
    }
    // Release the last warm-up step's graph so its buffers are back in
    // the pool before counting starts.
    tape.reset_keep_capacity();

    arena::stats_take();
    let steps = 5;
    for _ in 0..steps {
        step(&mut rng, &mut store, &mut opt);
    }
    let stats = arena::stats_take();
    assert!(
        stats.reused > 0,
        "expected pool traffic, got none — is the arena wired in?"
    );
    assert_eq!(
        stats.fresh_allocs, 0,
        "steady-state steps allocated fresh buffers ({} allocs, {} bytes over {steps} steps) — \
         some op is bypassing the pool or the tape is dropping buffers",
        stats.fresh_allocs, stats.fresh_bytes
    );
}
