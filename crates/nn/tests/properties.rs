//! Property-based tests for layers and optimizers.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spectragan_nn::layers::Activation;
use spectragan_nn::{Adam, Binding, Linear, Lstm, Mlp, ParamStore, Sgd};
use spectragan_tensor::{Tape, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Linear layers are affine: f(αx) − f(0) = α(f(x) − f(0)).
    #[test]
    fn linear_is_affine(n_in in 1usize..6, n_out in 1usize..6, alpha in -3.0f32..3.0, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, n_in, n_out, &mut rng);
        let x = Tensor::randn([2, n_in], &mut rng);
        let f = |t: &Tensor| layer.forward_infer(&store, t);
        let f0 = f(&Tensor::zeros([2, n_in]));
        let fx = f(&x);
        let fax = f(&x.scale(alpha));
        for i in 0..fx.numel() {
            let lhs = fax.data()[i] - f0.data()[i];
            let rhs = alpha * (fx.data()[i] - f0.data()[i]);
            prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + rhs.abs()));
        }
    }

    /// Tape forward and inference forward agree for random MLPs.
    #[test]
    fn mlp_tape_matches_infer(w1 in 1usize..5, w2 in 1usize..5, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, &[3, w1, w2], Activation::Tanh, Activation::Identity, &mut rng);
        let x = Tensor::randn([4, 3], &mut rng);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let tape_out = mlp.forward(&bind, &tape.leaf(x.clone()));
        let infer_out = mlp.forward_infer(&store, &x);
        for (a, b) in tape_out.value().data().iter().zip(infer_out.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// LSTM state stays bounded (|h| ≤ 1, cell finite) under any input
    /// magnitude and sequence length.
    #[test]
    fn lstm_state_is_bounded(scale in 0.1f32..50.0, steps in 1usize..40, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, 3, 4, &mut rng);
        let (mut h, mut c) = lstm.zero_state_infer(2);
        for _ in 0..steps {
            let x = Tensor::randn([2, 3], &mut rng).scale(scale);
            let (h2, c2) = lstm.step_infer(&store, &x, &h, &c);
            h = h2;
            c = c2;
        }
        prop_assert!(h.data().iter().all(|v| v.abs() <= 1.0 + 1e-6));
        prop_assert!(c.data().iter().all(|v| v.is_finite()));
    }

    /// One optimizer step moves parameters opposite to the gradient
    /// (descent direction) for both Adam and SGD. SGD's step also
    /// shrinks the loss (lr < 1 on a quadratic cannot overshoot), but
    /// Adam's bias-corrected first step is ≈ lr·sign(gradient)
    /// *regardless of magnitude*, so for targets closer than lr it
    /// legitimately overshoots — we assert direction and step bound
    /// instead of monotone loss there.
    #[test]
    fn optimizers_descend(target in -5.0f32..5.0, lr in 0.001f32..0.1) {
        for use_adam in [true, false] {
            let mut store = ParamStore::new();
            let w = store.register("w", Tensor::scalar(0.0));
            let tape = Tape::new();
            let bind = Binding::new(&tape, &store);
            let wv = bind.var(w);
            // loss = (w − target)²; gradient at w=0 is −2·target.
            let loss = wv.add_scalar(-target).mul(&wv.add_scalar(-target)).sum();
            let before = loss.value().item();
            let grads = tape.backward(&loss);
            let bound = bind.bound();
            if use_adam {
                Adam::new(lr).step(&mut store, &bound, &grads);
            } else {
                Sgd::new(lr).step(&mut store, &bound, &grads);
            }
            let w_after = store.get(w).item();
            prop_assert!(
                w_after * target >= 0.0,
                "adam={use_adam}: moved against the gradient: w {w_after}, target {target}"
            );
            if use_adam {
                prop_assert!(
                    w_after.abs() <= lr + 1e-6,
                    "adam step {w_after} exceeds lr {lr}"
                );
            } else {
                let after = (w_after - target).powi(2);
                prop_assert!(after <= before + 1e-6, "sgd: {before} -> {after}");
            }
        }
    }

    /// Weight serialization round-trips exactly.
    #[test]
    fn param_store_json_roundtrip(n in 1usize..5, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        for i in 0..n {
            store.register(format!("p{i}"), Tensor::randn([i + 1, 2], &mut rng));
        }
        let restored = ParamStore::from_json(&store.to_json()).unwrap();
        prop_assert_eq!(restored.len(), store.len());
        for (id, _, value) in store.iter() {
            prop_assert_eq!(restored.get(id), value);
        }
    }
}
