//! Exporters over drained span events and the metrics registry.
//!
//! * [`aggregate_spans`] — collapses raw events into per-path
//!   call/time totals, the compact form embedded in each
//!   `train_log.jsonl` record.
//! * [`prometheus_snapshot`] — Prometheus text exposition of every
//!   registered metric (cumulative `_bucket{le=…}` rows for
//!   histograms).
//! * [`chrome_trace`] — Chrome trace-event JSON (`ph:"X"` complete
//!   events) loadable in `chrome://tracing` / Perfetto.

use crate::metrics::{bucket_upper_bound, metrics_snapshot, MetricKind, HIST_BUCKETS};
use crate::span::SpanEvent;
use serde::{Deserialize, Serialize, Value};
use serde_json::json;
use std::collections::BTreeMap;

/// Aggregated totals for one span path (e.g.
/// `"train_step/backward"`). Serialized into `train_log.jsonl`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanStat {
    /// `/`-joined names from the outermost ancestor in the drained
    /// batch down to this span.
    pub path: String,
    /// Number of completed spans with this path.
    pub calls: u64,
    /// Total inclusive nanoseconds across those spans.
    pub nanos: u64,
}

/// Collapses a drained event batch into per-path totals, sorted by
/// path. A span whose parent is missing from the batch is treated as
/// a root (this happens when a parent is still live at drain time).
pub fn aggregate_spans(events: &[SpanEvent]) -> Vec<SpanStat> {
    let by_id: BTreeMap<u64, &SpanEvent> = events.iter().map(|e| (e.id, e)).collect();
    let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for ev in events {
        let mut names = vec![ev.name];
        let mut parent = ev.parent;
        // Parent chains are strictly older span ids, so this walk
        // terminates even on adversarial input (each id visited once).
        let mut hops = 0usize;
        while parent != 0 && hops <= events.len() {
            match by_id.get(&parent) {
                Some(p) => {
                    names.push(p.name);
                    parent = p.parent;
                }
                None => break,
            }
            hops += 1;
        }
        names.reverse();
        let path = names.join("/");
        let slot = totals.entry(path).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += ev.dur_ns;
    }
    totals
        .into_iter()
        .map(|(path, (calls, nanos))| SpanStat { path, calls, nanos })
        .collect()
}

/// Renders every registered metric in Prometheus text exposition
/// format, sorted by metric name. Histograms emit cumulative
/// `_bucket{le="…"}` rows plus `_sum` and `_count`.
pub fn prometheus_snapshot() -> String {
    let mut out = String::new();
    for m in metrics_snapshot() {
        match m.kind {
            MetricKind::Counter => {
                out.push_str(&format!(
                    "# TYPE {} counter\n{} {}\n",
                    m.name, m.name, m.counter
                ));
            }
            MetricKind::Gauge => {
                let v = m.gauge;
                let rendered = if v.is_finite() {
                    format!("{v}")
                } else if v.is_nan() {
                    "NaN".to_string()
                } else if v > 0.0 {
                    "+Inf".to_string()
                } else {
                    "-Inf".to_string()
                };
                out.push_str(&format!(
                    "# TYPE {} gauge\n{} {}\n",
                    m.name, m.name, rendered
                ));
            }
            MetricKind::Histogram => {
                let h = m.histogram.expect("histogram snapshot");
                out.push_str(&format!("# TYPE {} histogram\n", m.name));
                let mut cum = 0u64;
                for (i, c) in h.buckets.iter().enumerate().take(HIST_BUCKETS) {
                    cum += c;
                    let le = if i == HIST_BUCKETS - 1 {
                        "+Inf".to_string()
                    } else {
                        format!("{}", bucket_upper_bound(i))
                    };
                    out.push_str(&format!("{}_bucket{{le=\"{le}\"}} {cum}\n", m.name));
                }
                out.push_str(&format!("{}_sum {}\n", m.name, h.sum));
                out.push_str(&format!("{}_count {}\n", m.name, cum));
            }
        }
    }
    out
}

/// Serializes events as Chrome trace-event JSON: one `ph:"X"`
/// complete event per span, microsecond timestamps relative to the
/// process epoch. Load the file in `chrome://tracing` or
/// <https://ui.perfetto.dev>.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let evs: Vec<Value> = events
        .iter()
        .map(|e| {
            json!({
                "name": e.name,
                "cat": e.cat,
                "ph": "X",
                "ts": e.start_ns as f64 / 1000.0,
                "dur": e.dur_ns as f64 / 1000.0,
                "pid": 1u64,
                "tid": e.tid
            })
        })
        .collect();
    let doc = json!({
        "traceEvents": json!(evs),
        "displayTimeUnit": "ms"
    });
    serde_json::to_string(&doc).expect("trace serialization")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{counter, gauge, histogram};
    use crate::set_enabled;

    fn ev(name: &'static str, id: u64, parent: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            name,
            cat: "t",
            id,
            parent,
            tid: 1,
            start_ns: id * 10,
            dur_ns: dur,
        }
    }

    #[test]
    fn aggregate_builds_paths_and_sums() {
        let events = [
            ev("step", 1, 0, 100),
            ev("fwd", 2, 1, 40),
            ev("fwd", 3, 1, 50),
            ev("orphan_child", 9, 777, 5),
        ];
        let stats = aggregate_spans(&events);
        let fwd = stats.iter().find(|s| s.path == "step/fwd").unwrap();
        assert_eq!((fwd.calls, fwd.nanos), (2, 90));
        let step = stats.iter().find(|s| s.path == "step").unwrap();
        assert_eq!((step.calls, step.nanos), (1, 100));
        // Missing parent ⇒ treated as root.
        assert!(stats.iter().any(|s| s.path == "orphan_child"));
    }

    #[test]
    fn chrome_trace_parses_and_preserves_events() {
        let events = [ev("alpha", 1, 0, 1500), ev("beta", 2, 1, 250)];
        let text = chrome_trace(&events);
        let v: Value = serde_json::from_str(&text).unwrap();
        let list = match v.get("traceEvents") {
            Some(Value::Arr(items)) => items,
            other => panic!("traceEvents missing: {other:?}"),
        };
        assert_eq!(list.len(), 2);
        let first = &list[0];
        assert_eq!(first.get("name"), Some(&Value::Str("alpha".into())));
        assert_eq!(first.get("ph"), Some(&Value::Str("X".into())));
        assert_eq!(first.get("dur"), Some(&Value::Num(1.5)));
    }

    #[test]
    fn prometheus_text_has_expected_rows() {
        let _l = crate::span::test_lock();
        set_enabled(true);
        let c = counter("test_prom_counter_total");
        c.inc(2);
        gauge("test_prom_gauge").set(1.25);
        let h = histogram("test_prom_hist_ns");
        h.record(3);
        h.record(300);
        let text = prometheus_snapshot();
        set_enabled(false);
        assert!(text.contains("# TYPE test_prom_counter_total counter"));
        assert!(text.contains("test_prom_gauge 1.25"));
        assert!(text.contains("test_prom_hist_ns_bucket{le=\"+Inf\"}"));
        assert!(text.contains("test_prom_hist_ns_sum"));
        assert!(text.contains("test_prom_hist_ns_count"));
        // Cumulative buckets: +Inf row equals _count.
        let count_line = text
            .lines()
            .find(|l| l.starts_with("test_prom_hist_ns_count"))
            .unwrap();
        let inf_line = text
            .lines()
            .find(|l| l.starts_with("test_prom_hist_ns_bucket{le=\"+Inf\"}"))
            .unwrap();
        assert_eq!(
            count_line.split_whitespace().last(),
            inf_line.split_whitespace().last()
        );
    }

    #[test]
    fn span_stats_roundtrip_through_json() {
        let stats = vec![SpanStat {
            path: "a/b".into(),
            calls: 3,
            nanos: 12345,
        }];
        let text = serde_json::to_string(&stats).unwrap();
        let back: Vec<SpanStat> = serde_json::from_str(&text).unwrap();
        assert_eq!(back, stats);
    }
}
