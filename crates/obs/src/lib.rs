//! Unified observability layer for the SpectraGAN workspace.
//!
//! Three pieces, all gated behind one global flag with the same cost
//! contract as `spectragan_tensor::stats`: **one relaxed atomic load
//! per instrumentation site when disabled**, and no allocation on the
//! hot path when enabled (span events go to pre-grown thread-local
//! buffers, metrics are plain atomics).
//!
//! * [`span`] — hierarchical RAII spans with monotonic timing. Each
//!   span records `(name, id, parent, tid, start_ns, dur_ns)` relative
//!   to a process-wide epoch; [`drain_events`] collects everything
//!   recorded so far (callers drain after worker threads have joined,
//!   which the scoped pool guarantees).
//! * [`metrics`] — a registry of named counters, gauges and fixed
//!   log2-bucketed histograms. Handles are `&'static` (leaked once per
//!   name) so hot sites cache them in a `OnceLock` and pay no lookup.
//! * [`export`] — three serializers over the drained data: per-step
//!   aggregated span stats for `train_log.jsonl`, a Prometheus-style
//!   text snapshot, and Chrome trace-event JSON loadable in
//!   `chrome://tracing` / Perfetto.
//!
//! Nothing in this crate touches RNG streams, tensor math or
//! summation order, so enabling it cannot perturb the workspace's
//! bit-determinism contracts (enforced by `core/tests/
//! obs_determinism.rs`).

mod export;
mod metrics;
mod span;

pub use export::{aggregate_spans, chrome_trace, prometheus_snapshot, SpanStat};
pub use metrics::{
    counter, gauge, histogram, metrics_snapshot, reset_metrics, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricKind, MetricSnapshot, HIST_BUCKETS,
};
pub use span::{drain_events, span, span_cat, Span, SpanEvent};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enables or disables the observability layer.
///
/// Disabling does not clear already-recorded events or metric values;
/// pair with [`drain_events`] / [`reset_metrics`] to scope a run.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the layer is currently enabled — the single relaxed load
/// every instrumentation site pays when observability is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide observability epoch (the first
/// call wins the race to define t=0; all threads share it, so span
/// timestamps are mutually comparable).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// RAII guard that enables the layer on construction and restores the
/// previous state on drop. `ObsGuard::new(false)` is a no-op guard, so
/// call sites can write `let _g = ObsGuard::new(opts.obs);`
/// unconditionally.
pub struct ObsGuard {
    prev: bool,
    armed: bool,
}

impl ObsGuard {
    /// When `on`, enables the layer and clears any stale span events
    /// so the scope starts from a clean sink.
    pub fn new(on: bool) -> Self {
        let prev = enabled();
        if on {
            set_enabled(true);
            if !prev {
                drain_events();
            }
        }
        ObsGuard { prev, armed: on }
    }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        if self.armed {
            set_enabled(self.prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_restores_previous_state() {
        let _l = crate::span::test_lock();
        set_enabled(false);
        {
            let _g = ObsGuard::new(true);
            assert!(enabled());
        }
        assert!(!enabled());
        // Unarmed guard never flips the flag.
        set_enabled(true);
        {
            let _g = ObsGuard::new(false);
            assert!(enabled());
        }
        assert!(enabled());
        set_enabled(false);
    }

    #[test]
    fn epoch_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
