//! Lock-free metrics registry: counters, gauges and fixed
//! log2-bucketed histograms.
//!
//! Handles are `&'static` references leaked once per name, so a hot
//! site caches its handles in a `OnceLock` struct and each record is
//! one or two relaxed atomic RMWs — no locks, no allocation. Every
//! record method self-gates on [`crate::enabled`], so instrumented
//! code can call them unconditionally for the usual one-relaxed-load
//! disabled cost.

use crate::enabled;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotonically increasing counter.
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n`; a no-op when the layer is disabled.
    #[inline]
    pub fn inc(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins gauge holding an `f64`.
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    const fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0),
        }
    }

    /// Sets the gauge; a no-op when the layer is disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if !enabled() {
            return;
        }
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets. Bucket 0 holds exactly the value 0;
/// bucket `i` (1 ≤ i < last) holds `[2^(i-1), 2^i)`; the last bucket
/// is the overflow `[2^(HIST_BUCKETS-2), ∞)`.
pub const HIST_BUCKETS: usize = 40;

/// Fixed log2-bucketed histogram of `u64` samples (typically
/// nanoseconds or bytes). Recording is one relaxed RMW per sample on
/// two atomics; buckets never reallocate.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

/// Index of the bucket a value lands in (shared by record and tests).
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        let idx = 64 - v.leading_zeros() as usize;
        idx.min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the overflow
/// bucket). Bounds are strictly monotone — property-tested.
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample; a no-op when the layer is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Copies the current state out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(HIST_BUCKETS);
        for b in &self.buckets {
            buckets.push(b.load(Ordering::Relaxed));
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of a [`Histogram`] (serializable, mergeable).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, length [`HIST_BUCKETS`].
    pub buckets: Vec<u64>,
    /// Sum of all recorded samples (saturating).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Snapshot with no samples.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HIST_BUCKETS],
            sum: 0,
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Bucket-wise associative merge (property-tested: `(a⊕b)⊕c ==
    /// a⊕(b⊕c)` and counts are conserved).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = vec![0u64; HIST_BUCKETS];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets.get(i).copied().unwrap_or(0)
                + other.buckets.get(i).copied().unwrap_or(0);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.saturating_add(other.sum),
        }
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` = overflow).
    pub fn upper_bound(i: usize) -> u64 {
        bucket_upper_bound(i)
    }

    /// Bucket index a value lands in.
    pub fn index_of(v: u64) -> usize {
        bucket_index(v)
    }
}

enum Slot {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

static REGISTRY: Mutex<Vec<(&'static str, Slot)>> = Mutex::new(Vec::new());

fn with_registry<T>(f: impl FnOnce(&mut Vec<(&'static str, Slot)>) -> T) -> T {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    f(&mut reg)
}

/// Returns the counter registered under `name`, creating it on first
/// use. Panics if `name` is already registered as a different kind.
pub fn counter(name: &'static str) -> &'static Counter {
    with_registry(|reg| {
        for (n, s) in reg.iter() {
            if *n == name {
                match s {
                    Slot::Counter(c) => return *c,
                    _ => panic!("metric {name:?} already registered as a different kind"),
                }
            }
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        reg.push((name, Slot::Counter(c)));
        c
    })
}

/// Returns the gauge registered under `name`, creating it on first
/// use. Panics if `name` is already registered as a different kind.
pub fn gauge(name: &'static str) -> &'static Gauge {
    with_registry(|reg| {
        for (n, s) in reg.iter() {
            if *n == name {
                match s {
                    Slot::Gauge(g) => return *g,
                    _ => panic!("metric {name:?} already registered as a different kind"),
                }
            }
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        reg.push((name, Slot::Gauge(g)));
        g
    })
}

/// Returns the histogram registered under `name`, creating it on
/// first use. Panics if `name` is already registered as a different
/// kind.
pub fn histogram(name: &'static str) -> &'static Histogram {
    with_registry(|reg| {
        for (n, s) in reg.iter() {
            if *n == name {
                match s {
                    Slot::Histogram(h) => return *h,
                    _ => panic!("metric {name:?} already registered as a different kind"),
                }
            }
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        reg.push((name, Slot::Histogram(h)));
        h
    })
}

/// What kind of metric a snapshot row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Last-write-wins gauge.
    Gauge,
    /// Log2-bucketed histogram.
    Histogram,
}

/// One registry entry copied out by [`metrics_snapshot`].
pub struct MetricSnapshot {
    /// Registered metric name.
    pub name: &'static str,
    /// Metric kind.
    pub kind: MetricKind,
    /// Counter value (0 for other kinds).
    pub counter: u64,
    /// Gauge value (0.0 for other kinds).
    pub gauge: f64,
    /// Histogram state (`None` for other kinds).
    pub histogram: Option<HistogramSnapshot>,
}

/// Copies every registered metric, sorted by name so exporter output
/// is deterministic.
pub fn metrics_snapshot() -> Vec<MetricSnapshot> {
    let mut out = with_registry(|reg| {
        reg.iter()
            .map(|(name, slot)| match slot {
                Slot::Counter(c) => MetricSnapshot {
                    name,
                    kind: MetricKind::Counter,
                    counter: c.get(),
                    gauge: 0.0,
                    histogram: None,
                },
                Slot::Gauge(g) => MetricSnapshot {
                    name,
                    kind: MetricKind::Gauge,
                    counter: 0,
                    gauge: g.get(),
                    histogram: None,
                },
                Slot::Histogram(h) => MetricSnapshot {
                    name,
                    kind: MetricKind::Histogram,
                    counter: 0,
                    gauge: 0.0,
                    histogram: Some(h.snapshot()),
                },
            })
            .collect::<Vec<_>>()
    });
    out.sort_by(|a, b| a.name.cmp(b.name));
    out
}

/// Zeroes every registered metric (names stay registered). Used to
/// scope metric values to one run.
pub fn reset_metrics() {
    with_registry(|reg| {
        for (_, slot) in reg.iter() {
            match slot {
                Slot::Counter(c) => c.reset(),
                Slot::Gauge(g) => g.reset(),
                Slot::Histogram(h) => h.reset(),
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;

    #[test]
    fn disabled_metrics_do_not_record() {
        let _l = crate::span::test_lock();
        set_enabled(false);
        let c = counter("test_disabled_counter");
        let before = c.get();
        c.inc(5);
        assert_eq!(c.get(), before);
        let h = histogram("test_disabled_hist");
        let n = h.snapshot().count();
        h.record(7);
        assert_eq!(h.snapshot().count(), n);
    }

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let _l = crate::span::test_lock();
        set_enabled(true);
        let c = counter("test_rt_counter");
        c.reset();
        c.inc(3);
        c.inc(4);
        assert_eq!(c.get(), 7);
        let g = gauge("test_rt_gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        let h = histogram("test_rt_hist");
        h.reset();
        h.record(0);
        h.record(1);
        h.record(1023);
        h.record(1024);
        let s = h.snapshot();
        set_enabled(false);
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum, 2048);
        assert!(s.buckets[bucket_index(0)] >= 1);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
    }

    #[test]
    fn same_name_returns_same_handle() {
        let a = counter("test_same_handle") as *const Counter;
        let b = counter("test_same_handle") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        for i in 1..HIST_BUCKETS {
            assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1), "i={i}");
        }
    }
}
