//! Hierarchical RAII spans.
//!
//! A [`Span`] opened while another span on the same thread is live
//! becomes its child (parent links come from a thread-local stack).
//! Completed spans are pushed to a global sink; [`drain_events`]
//! takes the sink. Spans are deliberately coarse-grained (pipeline
//! sections, not per-tensor ops — those belong to
//! `spectragan_tensor::stats`), so one short uncontended lock per
//! completed span is the enabled-mode cost; the sink push is the
//! *only* point where enabled-mode recording can allocate (amortized
//! `Vec` growth). Completion is synchronous with `Drop`, so once a
//! worker thread has been joined — scoped-pool workers always are —
//! its events are guaranteed visible to the drainer. (A thread-local
//! flush-on-exit buffer would *not* give that guarantee:
//! `std::thread::scope` can observe a worker as finished before its
//! TLS destructors run.)

use crate::enabled;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name (e.g. `"forward"`).
    pub name: &'static str,
    /// Category for trace viewers (e.g. `"train"`, `"generate"`).
    pub cat: &'static str,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for roots.
    pub parent: u64,
    /// Small dense thread id assigned by this crate (not the OS tid).
    pub tid: u64,
    /// Start, nanoseconds since [`crate::now_ns`]'s epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

static SINK: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

struct ThreadState {
    tid: u64,
    stack: Vec<u64>,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            stack: Vec::with_capacity(16),
        }
    }
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState::new());
}

/// Live span; records a [`SpanEvent`] when dropped.
pub struct Span {
    name: &'static str,
    cat: &'static str,
    id: u64,
    parent: u64,
    tid: u64,
    start_ns: u64,
    start: Instant,
}

impl Span {
    /// Process-unique id of this span (matches the emitted event's).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Opens a span in the default category (`"span"`). Returns `None`
/// when the layer is disabled — the call then costs one relaxed load.
#[inline]
pub fn span(name: &'static str) -> Option<Span> {
    span_cat(name, "span")
}

/// Opens a span with an explicit trace-viewer category.
#[inline]
pub fn span_cat(name: &'static str, cat: &'static str) -> Option<Span> {
    if !enabled() {
        return None;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let (tid, parent) = TLS
        .try_with(|t| {
            let mut t = t.borrow_mut();
            let parent = t.stack.last().copied().unwrap_or(0);
            t.stack.push(id);
            (t.tid, parent)
        })
        .ok()?;
    Some(Span {
        name,
        cat,
        id,
        parent,
        tid,
        start_ns: crate::now_ns(),
        start: Instant::now(),
    })
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        let ev = SpanEvent {
            name: self.name,
            cat: self.cat,
            id: self.id,
            parent: self.parent,
            tid: self.tid,
            start_ns: self.start_ns,
            dur_ns,
        };
        // Spans normally drop in LIFO order; truncating at our id
        // keeps the stack consistent even if a child was leaked.
        let _ = TLS.try_with(|t| {
            let mut t = t.borrow_mut();
            if let Some(pos) = t.stack.iter().rposition(|&x| x == self.id) {
                t.stack.truncate(pos);
            }
        });
        SINK.lock().unwrap_or_else(|e| e.into_inner()).push(ev);
    }
}

/// Takes every event recorded so far. Completion is synchronous with
/// span drop, so events from already-joined worker threads are always
/// included; spans still *live* on other threads are not (they have
/// not completed).
pub fn drain_events() -> Vec<SpanEvent> {
    std::mem::take(&mut *SINK.lock().unwrap_or_else(|e| e.into_inner()))
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;

    #[test]
    fn disabled_records_nothing() {
        let _l = test_lock();
        set_enabled(false);
        drain_events();
        assert!(span("nothing").is_none());
        assert!(drain_events().is_empty());
    }

    #[test]
    fn nesting_links_parents() {
        let _l = test_lock();
        set_enabled(true);
        drain_events();
        {
            let outer = span("outer").unwrap();
            {
                let _inner = span_cat("inner", "test");
            }
            drop(outer);
        }
        set_enabled(false);
        let evs = drain_events();
        assert_eq!(evs.len(), 2);
        // Children drop first, so they precede parents in the sink.
        let inner = evs.iter().find(|e| e.name == "inner").unwrap();
        let outer = evs.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.cat, "test");
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_ns >= outer.start_ns);
    }

    #[test]
    fn sibling_spans_share_parent() {
        let _l = test_lock();
        set_enabled(true);
        drain_events();
        {
            let _root = span("root");
            let _a = span("a");
        }
        {
            let _b = span("solo");
        }
        set_enabled(false);
        let evs = drain_events();
        let root = evs.iter().find(|e| e.name == "root").unwrap();
        let a = evs.iter().find(|e| e.name == "a").unwrap();
        let solo = evs.iter().find(|e| e.name == "solo").unwrap();
        assert_eq!(a.parent, root.id);
        assert_eq!(solo.parent, 0);
    }

    #[test]
    fn worker_thread_events_visible_after_join() {
        let _l = test_lock();
        set_enabled(true);
        drain_events();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _sp = span("worker_task");
                });
            }
        });
        set_enabled(false);
        let evs = drain_events();
        let workers: Vec<_> = evs.iter().filter(|e| e.name == "worker_task").collect();
        assert_eq!(workers.len(), 2);
        // Distinct threads get distinct tids.
        assert_ne!(workers[0].tid, workers[1].tid);
    }
}
