//! Property tests for the observability layer: histogram bucketing
//! algebra, span nesting/exactly-once emission, and the exporters
//! (Chrome trace + Prometheus text) parsing and conserving events.
//!
//! The span sink, the enabled flag and the metrics registry are
//! process-global, so every property that toggles them holds `GLOBAL`
//! for its whole body (cases inside one property run sequentially; the
//! lock serializes *across* properties in this binary).

use proptest::prelude::*;
use proptest::TestCaseError;
use spectragan_obs as obs;
use spectragan_obs::{HistogramSnapshot, HIST_BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

static GLOBAL: Mutex<()> = Mutex::new(());

fn global_lock() -> MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A metric name nobody else in the process has registered, so each
/// case starts from zero counts (registry handles are `&'static` and
/// never deregistered).
fn fresh_name(prefix: &str) -> &'static str {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    Box::leak(format!("{prefix}_{n}").into_boxed_str())
}

/// Bucket upper bounds are strictly monotone with the overflow bucket
/// last — deterministic over the whole (tiny) domain, so a plain test.
#[test]
fn bucket_bounds_strictly_monotone() {
    for i in 1..HIST_BUCKETS {
        assert!(
            HistogramSnapshot::upper_bound(i) > HistogramSnapshot::upper_bound(i - 1),
            "bounds not strictly increasing at bucket {i}"
        );
    }
    assert_eq!(HistogramSnapshot::upper_bound(HIST_BUCKETS - 1), u64::MAX);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every value lands in the unique bucket whose bounds bracket it:
    /// `bound(i-1) < v <= bound(i)`.
    #[test]
    fn bucket_index_brackets_value(v in 0u64..=u64::MAX) {
        let i = HistogramSnapshot::index_of(v);
        prop_assert!(i < HIST_BUCKETS);
        prop_assert!(v <= HistogramSnapshot::upper_bound(i));
        if i > 0 {
            prop_assert!(v > HistogramSnapshot::upper_bound(i - 1));
        }
    }

    /// Recording N samples into a fresh histogram conserves both the
    /// count (bucket totals == N) and the exact sum, and each sample
    /// sits in the bucket `index_of` names.
    #[test]
    fn histogram_conserves_count_and_sum(values in prop::collection::vec(0u64..(1u64 << 48), 1..200)) {
        let _g = global_lock();
        let _obs = obs::ObsGuard::new(true);
        let h = obs::histogram(fresh_name("prop_hist"));
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        let mut expect = vec![0u64; HIST_BUCKETS];
        for &v in &values {
            expect[HistogramSnapshot::index_of(v)] += 1;
        }
        prop_assert_eq!(snap.buckets, expect);
    }

    /// Merge is associative and commutative and conserves counts/sums.
    #[test]
    fn merge_is_associative_and_conserving(
        a in prop::collection::vec(0u64..(1u64 << 32), HIST_BUCKETS..HIST_BUCKETS + 1),
        b in prop::collection::vec(0u64..(1u64 << 32), HIST_BUCKETS..HIST_BUCKETS + 1),
        c in prop::collection::vec(0u64..(1u64 << 32), HIST_BUCKETS..HIST_BUCKETS + 1),
        (sa, sb, sc) in (0u64..(1u64 << 40), 0u64..(1u64 << 40), 0u64..(1u64 << 40)),
    ) {
        let a = HistogramSnapshot { buckets: a, sum: sa };
        let b = HistogramSnapshot { buckets: b, sum: sb };
        let c = HistogramSnapshot { buckets: c, sum: sc };
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        prop_assert_eq!(a.merge(&b).count(), a.count() + b.count());
        prop_assert_eq!(a.merge(&HistogramSnapshot::empty()), a.clone());
    }

    /// Spans are emitted exactly once each, with unique ids, and the
    /// parent links reproduce the lexical nesting: `width` roots each
    /// holding a chain of `depth` children.
    #[test]
    fn spans_emit_exactly_once_and_nest(width in 1usize..5, depth in 1usize..7) {
        let _g = global_lock();
        let _obs = obs::ObsGuard::new(true);
        obs::drain_events();
        let mut root_ids = Vec::new();
        for _ in 0..width {
            let root = obs::span("root").unwrap();
            root_ids.push(root.id());
            let mut chain = Vec::new();
            for _ in 0..depth {
                chain.push(obs::span("child").unwrap());
            }
            // LIFO teardown: innermost child first, root last.
            while let Some(s) = chain.pop() {
                drop(s);
            }
            drop(root);
        }
        let events = obs::drain_events();
        prop_assert_eq!(events.len(), width * (depth + 1));
        let mut ids: Vec<u64> = events.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), events.len(), "duplicate span ids emitted");
        for e in &events {
            match e.name {
                "root" => prop_assert_eq!(e.parent, 0, "roots must be parentless"),
                _ => prop_assert!(
                    e.parent != 0 && !root_ids.contains(&e.id),
                    "child span lost its parent link"
                ),
            }
        }
        // Interval containment: every child lies inside its parent.
        // `start_ns` (epoch clock) and `dur_ns` (the span's own
        // `Instant`) are read a few ns apart, so allow a small skew.
        const SKEW_NS: u64 = 50_000;
        for e in &events {
            if e.parent == 0 {
                continue;
            }
            let p = events.iter().find(|pe| pe.id == e.parent);
            prop_assert!(p.is_some(), "parent event not emitted");
            let p = p.unwrap();
            prop_assert!(p.start_ns <= e.start_ns);
            prop_assert!(
                e.start_ns + e.dur_ns <= p.start_ns + p.dur_ns + SKEW_NS,
                "child [{}, +{}] escapes parent [{}, +{}]",
                e.start_ns,
                e.dur_ns,
                p.start_ns,
                p.dur_ns
            );
        }
        prop_assert!(obs::drain_events().is_empty(), "events emitted twice");
    }

    /// The Chrome trace export parses as JSON and carries every event
    /// exactly once with the µs timestamps the ns inputs imply.
    #[test]
    fn chrome_trace_parses_and_conserves_events(width in 1usize..4, depth in 1usize..5) {
        let _g = global_lock();
        let _obs = obs::ObsGuard::new(true);
        obs::drain_events();
        for _ in 0..width {
            let _root = obs::span("trace_root");
            for _ in 0..depth {
                let _c = obs::span("trace_child");
            }
        }
        let events = obs::drain_events();
        let doc: serde::Value = serde_json::from_str(&obs::chrome_trace(&events))
            .map_err(|e| TestCaseError::Fail(format!("trace does not parse: {e}")))?;
        let arr = match doc.get("traceEvents") {
            Some(serde::Value::Arr(a)) => a,
            other => return Err(TestCaseError::Fail(format!("traceEvents missing: {other:?}"))),
        };
        prop_assert_eq!(arr.len(), events.len());
        for (row, e) in arr.iter().zip(&events) {
            match (row.get("ph"), row.get("ts"), row.get("name")) {
                (
                    Some(serde::Value::Str(ph)),
                    Some(serde::Value::Num(ts)),
                    Some(serde::Value::Str(name)),
                ) => {
                    prop_assert_eq!(ph.as_str(), "X");
                    prop_assert!((ts - e.start_ns as f64 / 1000.0).abs() < 1e-6);
                    prop_assert_eq!(name.as_str(), e.name);
                }
                other => return Err(TestCaseError::Fail(format!("bad trace row: {other:?}"))),
            }
        }
    }

    /// The Prometheus snapshot renders every recorded sample exactly
    /// once: cumulative bucket rows are monotone, the `+Inf` bucket and
    /// `_count` both equal the sample count, `_sum` is exact.
    #[test]
    fn prometheus_histogram_rows_are_cumulative(values in prop::collection::vec(0u64..(1u64 << 20), 1..50)) {
        let _g = global_lock();
        let _obs = obs::ObsGuard::new(true);
        let name = fresh_name("prop_prom_hist");
        let h = obs::histogram(name);
        for &v in &values {
            h.record(v);
        }
        let text = obs::prometheus_snapshot();
        let mut cumulative_rows = Vec::new();
        let mut count_row = None;
        let mut sum_row = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix(&format!("{name}_bucket{{le=\"")) {
                let v: u64 = rest
                    .rsplit(' ')
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| TestCaseError::Fail(format!("bad bucket row: {line}")))?;
                cumulative_rows.push(v);
            } else if let Some(rest) = line.strip_prefix(&format!("{name}_count ")) {
                count_row = rest.trim().parse::<u64>().ok();
            } else if let Some(rest) = line.strip_prefix(&format!("{name}_sum ")) {
                sum_row = rest.trim().parse::<u64>().ok();
            }
        }
        prop_assert!(!cumulative_rows.is_empty(), "histogram missing from snapshot");
        prop_assert!(
            cumulative_rows.windows(2).all(|w| w[0] <= w[1]),
            "cumulative buckets must be monotone: {cumulative_rows:?}"
        );
        let n = values.len() as u64;
        prop_assert_eq!(*cumulative_rows.last().unwrap(), n, "+Inf bucket != sample count");
        prop_assert_eq!(count_row, Some(n));
        prop_assert_eq!(sum_row, Some(values.iter().sum::<u64>()));
    }

    /// Aggregating spans conserves calls (one per event) and total
    /// nanoseconds per path, and round-trips through JSON — the same
    /// shape `train_log.jsonl` embeds per step.
    #[test]
    fn aggregation_conserves_calls_and_roundtrips(width in 1usize..5, depth in 1usize..5) {
        let _g = global_lock();
        let _obs = obs::ObsGuard::new(true);
        obs::drain_events();
        for _ in 0..width {
            let _root = obs::span("agg_root");
            for _ in 0..depth {
                let _c = obs::span("agg_child");
            }
        }
        let events = obs::drain_events();
        let stats = obs::aggregate_spans(&events);
        let calls: u64 = stats.iter().map(|s| s.calls).sum();
        prop_assert_eq!(calls, events.len() as u64);
        let paths: Vec<&str> = stats.iter().map(|s| s.path.as_str()).collect();
        let sorted = paths.windows(2).all(|w| w[0] < w[1]);
        prop_assert!(sorted, "aggregate paths must be sorted and unique: {paths:?}");
        let json = serde_json::to_string(&stats)
            .map_err(|e| TestCaseError::Fail(format!("serialize: {e}")))?;
        let back: Vec<obs::SpanStat> = serde_json::from_str(&json)
            .map_err(|e| TestCaseError::Fail(format!("parse: {e}")))?;
        prop_assert_eq!(back, stats);
    }
}
