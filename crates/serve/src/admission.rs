//! Admission control on a global arena-bytes budget.
//!
//! Every `/generate` request reserves its estimated peak working set
//! before any tensor work starts; when the reservation does not fit in
//! what remains of the budget the server answers `503` with
//! `Retry-After` instead of letting concurrent generations OOM the
//! process. Reservations are released by RAII when the request
//! finishes, succeed or fail.
//!
//! The estimate is deliberately on the generous side — admission
//! control exists to bound the *sum* of concurrent requests, not to
//! model one request's allocator behavior exactly.

use spectragan_core::config::SpectraGanConfig;
use spectragan_obs as obs;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The shared budget.
pub struct Admission {
    budget: usize,
    reserved: AtomicUsize,
}

impl Admission {
    /// A budget of `budget` bytes.
    pub fn new(budget: usize) -> Self {
        Admission {
            budget,
            reserved: AtomicUsize::new(0),
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently reserved by admitted requests.
    pub fn reserved(&self) -> usize {
        self.reserved.load(Ordering::Relaxed)
    }

    /// Tries to reserve `bytes`; `None` means the caller should shed
    /// load (503). A single request larger than the whole budget is
    /// admitted when nothing else is running — rejecting it forever
    /// would turn a big-city request into a permanent failure.
    pub fn try_admit(&self, bytes: usize) -> Option<Permit<'_>> {
        let mut current = self.reserved.load(Ordering::Relaxed);
        loop {
            let fits = current.saturating_add(bytes) <= self.budget || current == 0;
            if !fits {
                obs::counter("spectragan_serve_admission_rejects_total").inc(1);
                return None;
            }
            match self.reserved.compare_exchange_weak(
                current,
                current + bytes,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    obs::gauge("spectragan_serve_admitted_bytes").set((current + bytes) as f64);
                    return Some(Permit {
                        admission: self,
                        bytes,
                    });
                }
                Err(seen) => current = seen,
            }
        }
    }
}

/// An admitted reservation; dropping it returns the bytes.
pub struct Permit<'a> {
    admission: &'a Admission,
    bytes: usize,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let before = self
            .admission
            .reserved
            .fetch_sub(self.bytes, Ordering::AcqRel);
        obs::gauge("spectragan_serve_admitted_bytes").set(before.saturating_sub(self.bytes) as f64);
    }
}

/// Estimated peak arena bytes of one generation request: the output
/// map (collected or reassembled client-side, but the band path also
/// buffers up to one window of patch chunks), plus the in-flight
/// window of generator chunks — each chunk holds `gen_batch` patches
/// of `px` pixels over `k·train_len` steps, in a handful of
/// intermediate tensors (context batch, spectrum rows, expanded
/// series, patch output), covered by the `×4` factor.
pub fn estimate_request_bytes(
    cfg: &SpectraGanConfig,
    height: usize,
    width: usize,
    t_out: usize,
    gen_batch: usize,
) -> usize {
    let f32s = std::mem::size_of::<f32>();
    let map = t_out * height * width * f32s;
    let k = t_out.div_ceil(cfg.train_len).max(1);
    let px = cfg.pixels_per_patch();
    let window = (spectragan_tensor::pool::threads() * 2).max(2);
    let chunk = gen_batch * px * k * cfg.train_len * f32s;
    map + window * chunk * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_within_budget_and_releases_on_drop() {
        let adm = Admission::new(1000);
        let a = adm.try_admit(600).expect("fits");
        assert_eq!(adm.reserved(), 600);
        assert!(adm.try_admit(600).is_none(), "would exceed the budget");
        drop(a);
        assert_eq!(adm.reserved(), 0);
        let b = adm.try_admit(600).expect("fits again after release");
        drop(b);
    }

    #[test]
    fn oversized_request_is_admitted_only_when_idle() {
        let adm = Admission::new(100);
        let big = adm.try_admit(500).expect("idle server takes the big one");
        assert!(adm.try_admit(1).is_none(), "budget exhausted");
        drop(big);
        assert!(adm.try_admit(50).is_some());
    }

    #[test]
    fn estimate_grows_with_request_size() {
        let cfg = SpectraGanConfig::tiny();
        let small = estimate_request_bytes(&cfg, 30, 30, 24, 4);
        let long = estimate_request_bytes(&cfg, 30, 30, 240, 4);
        let wide = estimate_request_bytes(&cfg, 90, 90, 24, 4);
        assert!(long > small && wide > small);
        assert!(small > 0);
    }
}
