//! A minimal blocking HTTP/1.1 client for the server's own tests, the
//! load-test harness and smoke scripts — enough to POST a generation
//! request, decode a chunked band stream, and reassemble the map.

use crate::http::HttpError;
use spectragan_geo::io::decode_band;
use spectragan_geo::{TrafficBand, TrafficMap};
use std::io::{Read, Write};
use std::net::TcpStream;

/// A fully-read response. For chunked bodies, `chunks` preserves the
/// chunk boundaries (the server frames one band per chunk) and `body`
/// is their concatenation.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code, e.g. 200.
    pub status: u16,
    /// Lower-cased header name/value pairs.
    pub headers: Vec<(String, String)>,
    /// The whole body.
    pub body: Vec<u8>,
    /// Individual transfer chunks (empty for `Content-Length` bodies).
    pub chunks: Vec<Vec<u8>>,
}

impl HttpResponse {
    /// First value of a header, by lower-cased name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the whole response.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<HttpResponse, HttpError> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    read_response(&mut stream)
}

fn read_response(stream: &mut TcpStream) -> Result<HttpResponse, HttpError> {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| HttpError::Malformed("no header terminator".into()))?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| HttpError::Malformed("non-UTF-8 response head".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty response".into()))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let rest = &raw[header_end + 4..];
    let (body, chunks) = if chunked {
        let chunks = decode_chunked(rest)?;
        (chunks.concat(), chunks)
    } else {
        (rest.to_vec(), Vec::new())
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
        chunks,
    })
}

/// Decodes a chunked transfer-encoding body into its chunks.
fn decode_chunked(mut rest: &[u8]) -> Result<Vec<Vec<u8>>, HttpError> {
    let mut chunks = Vec::new();
    loop {
        let line_end = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or_else(|| HttpError::Malformed("chunk size line never ends".into()))?;
        let size_str = std::str::from_utf8(&rest[..line_end])
            .map_err(|_| HttpError::Malformed("non-UTF-8 chunk size".into()))?;
        let size = usize::from_str_radix(size_str.trim(), 16)
            .map_err(|_| HttpError::Malformed(format!("bad chunk size {size_str:?}")))?;
        rest = &rest[line_end + 2..];
        if size == 0 {
            return Ok(chunks);
        }
        if rest.len() < size + 2 {
            return Err(HttpError::Malformed("truncated chunk".into()));
        }
        chunks.push(rest[..size].to_vec());
        rest = &rest[size + 2..];
    }
}

/// Decodes every SGBD chunk of a streamed `/generate` response and
/// reassembles the full map, checking the bands arrive in row order
/// and tile the grid exactly.
pub fn assemble_bands(response: &HttpResponse) -> Result<TrafficMap, HttpError> {
    let bands: Vec<TrafficBand> = response
        .chunks
        .iter()
        .map(|c| decode_band(c).map_err(|e| HttpError::Malformed(format!("bad band: {e}"))))
        .collect::<Result<_, _>>()?;
    let first = bands
        .first()
        .ok_or_else(|| HttpError::Malformed("no bands in response".into()))?;
    let t = first.t;
    let w = first.w;
    let h: usize = bands.iter().map(|b| b.rows).sum();
    let mut map = TrafficMap::zeros(t, h, w);
    let mut next_row = 0;
    for band in &bands {
        if band.y0 != next_row || band.t != t || band.w != w {
            return Err(HttpError::Malformed(format!(
                "band at y0={} does not continue row {next_row}",
                band.y0
            )));
        }
        band.write_into(&mut map);
        next_row += band.rows;
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_decoding_preserves_boundaries() {
        let raw = b"3\r\nabc\r\n2\r\nde\r\n0\r\n\r\n";
        let chunks = decode_chunked(raw).unwrap();
        assert_eq!(chunks, vec![b"abc".to_vec(), b"de".to_vec()]);
        assert!(decode_chunked(b"zz\r\n").is_err());
        assert!(decode_chunked(b"5\r\nab").is_err());
    }
}
