//! Minimal HTTP/1.1 on std TCP — just the slice of the protocol the
//! generation server needs. The build environment has no registry
//! access, so rather than a web framework this is a few hundred lines
//! of request parsing with hard limits, plain responses, and a chunked
//! transfer-encoding writer for streamed bodies.
//!
//! Scope decisions, all deliberate:
//!
//! * one request per connection (`Connection: close`) — generation
//!   responses are large and long-lived, keep-alive buys nothing;
//! * request bodies must carry `Content-Length` (no chunked uploads);
//! * header block capped at 16 KiB, body at the caller's limit —
//!   a malformed or hostile peer costs bounded memory, never OOM.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers.
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// A parsed request: method, path (query string split off), lower-cased
/// headers and the body.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method, e.g. `GET`.
    pub method: String,
    /// Path component, without the query string.
    pub path: String,
    /// `(lower-cased name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-cased name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; every variant maps to a 4xx.
#[derive(Debug)]
pub enum HttpError {
    /// Socket error or premature close.
    Io(io::Error),
    /// Request line / header syntax error.
    Malformed(String),
    /// Headers exceed [`MAX_HEADER_BYTES`] or the body exceeds the
    /// caller's limit.
    TooLarge(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::TooLarge(why) => write!(f, "request too large: {why}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads and parses one request from the stream, enforcing the header
/// cap and `max_body` on the `Content-Length` body.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    // Read until the blank line, byte-wise over a small buffer; header
    // blocks are tiny and this keeps any body bytes we over-read in
    // hand.
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(HttpError::TooLarge("header block over 16 KiB".into()));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-headers".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| HttpError::Malformed("non-UTF-8 header block".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version}"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without colon: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed(
            "chunked request bodies are not supported".into(),
        ));
    }
    let content_length = match req.header("content-length") {
        None => 0usize,
        Some(v) => v
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if content_length > max_body {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {max_body}-byte limit"
        )));
    }
    let mut body = buf[header_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::Malformed(
            "more body bytes than content-length".into(),
        ));
    }
    let start = body.len();
    body.resize(content_length, 0);
    stream.read_exact(&mut body[start..])?;
    req.body = body;
    Ok(req)
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a complete (non-streamed) response with `Content-Length`.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Streams a chunked transfer-encoding body: the caller writes the
/// status/headers via [`ChunkedWriter::start`], then one chunk per
/// call, then [`ChunkedWriter::finish`] for the terminating chunk.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head with `Transfer-Encoding: chunked` and
    /// returns the writer.
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        reason: &str,
        content_type: &str,
        extra_headers: &[(&str, &str)],
    ) -> io::Result<Self> {
        let mut head = format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
        );
        for (name, value) in extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk (empty slices are skipped — a zero-length
    /// chunk would terminate the body).
    pub fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        Ok(())
    }

    /// Writes the terminating zero chunk and flushes.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn, max_body);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_request_with_body_and_headers() {
        let raw = b"POST /generate?x=1 HTTP/1.1\r\nHost: a\r\nContent-Length: 4\r\n\r\nabcd";
        let req = roundtrip(raw, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/generate");
        assert_eq!(req.header("host"), Some("a"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_oversized_body_and_bad_syntax() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n";
        assert!(matches!(roundtrip(raw, 10), Err(HttpError::TooLarge(_))));
        let raw = b"NOT-HTTP\r\n\r\n";
        assert!(matches!(roundtrip(raw, 10), Err(HttpError::Malformed(_))));
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(roundtrip(raw, 10), Err(HttpError::Malformed(_))));
    }
}
