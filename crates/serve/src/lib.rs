//! `spectragan serve` — generation as a service.
//!
//! A long-running multi-city traffic generation server over std TCP
//! with a hand-rolled HTTP/1.1 layer (the build environment has no
//! registry access, so no web framework). The design leans on the
//! workspace's determinism contracts:
//!
//! * **Byte identity.** A request's output bytes are identical to the
//!   offline `spectragan generate` CLI for the same `(city, seed,
//!   t_out, gen_batch)`, at any worker-thread count — generation
//!   funnels through the same `try_generate_*` core.
//! * **Streaming.** `POST /generate` answers with chunked
//!   transfer-encoding, one SGBD band frame per chunk, emitted the
//!   moment `generate_batched`'s ordered fold finishes the band's rows
//!   — the client sees the top of the city while the bottom is still
//!   being generated. `format: "sgtm"` instead buffers the full map
//!   and responds with a `Content-Length` SGTM body byte-identical to
//!   the offline output file.
//! * **Admission control.** Each request reserves its estimated peak
//!   arena bytes against a global budget before any tensor work;
//!   over-budget requests get `503` + `Retry-After` instead of letting
//!   concurrent generations OOM the process.
//! * **No panics from the wire.** Request validation happens *before*
//!   response headers are written, through typed
//!   [`CoreError::InvalidRequest`](spectragan_core::CoreError) errors;
//!   a worker additionally wraps each connection in `catch_unwind`.
//!
//! Endpoints: `POST /generate` (JSON body `{"city", "t_out", "seed"?,
//! "gen_batch"?, "format"?}`), `GET /healthz`, `GET /metrics`
//! (Prometheus text from `spectragan-obs`), `GET /cities`.

pub mod admission;
pub mod client;
pub mod http;
pub mod registry;
pub mod signal;

use admission::{estimate_request_bytes, Admission};
use http::{ChunkedWriter, Request};
use registry::{Registry, RegistryError};
use serde::Deserialize;
use spectragan_core::CoreError;
use spectragan_geo::io::{encode_band, encode_traffic};
use spectragan_obs as obs;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Server configuration; every knob has a service-shaped default.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7077` (`:0` picks a free port).
    pub addr: String,
    /// Directory of `<city>.sgcm` context maps plus `model.json` /
    /// `<city>.json` weights.
    pub models_dir: PathBuf,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Bounded accept queue; connections beyond it are answered `503`
    /// immediately instead of queueing unboundedly.
    pub queue_depth: usize,
    /// Global admission budget in estimated arena bytes.
    pub arena_budget_bytes: usize,
    /// Request body size limit.
    pub max_body_bytes: usize,
    /// Upper bound on `t_out` a request may ask for.
    pub max_t_out: usize,
    /// Serve-time weight precision override. `Some(F16)` narrows every
    /// loaded model to half-precision storage (halving its resident
    /// weight bytes) regardless of the on-disk format; `None` serves
    /// each model at the precision it was stored with.
    pub weights_precision: Option<spectragan_core::Precision>,
}

impl ServeConfig {
    /// Defaults for `addr` and `models_dir`.
    pub fn new(addr: impl Into<String>, models_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: addr.into(),
            models_dir: models_dir.into(),
            workers: 4,
            queue_depth: 16,
            arena_budget_bytes: 2 << 30,
            max_body_bytes: 64 * 1024,
            max_t_out: 24 * 366,
            weights_precision: None,
        }
    }
}

/// Errors starting or running the server.
#[derive(Debug)]
pub enum ServeError {
    /// Bad configuration (zero workers, missing models dir…).
    Config(String),
    /// Socket-level failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(why) => write!(f, "serve config error: {why}"),
            ServeError::Io(e) => write!(f, "serve i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Shared server state: registry, admission budget, limits.
struct ServerState {
    registry: Registry,
    admission: Arc<Admission>,
    max_body_bytes: usize,
    max_t_out: usize,
}

/// The server. [`Server::bind`] opens the socket (so callers learn the
/// real port before serving); [`Server::run`] blocks until a
/// [`ServerHandle`] asks for shutdown, then drains in-flight requests.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    workers: usize,
    queue_depth: usize,
}

/// A clonable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Asks the server to stop accepting and drain; returns
    /// immediately.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Server {
    /// Binds the listener and validates the configuration.
    pub fn bind(cfg: ServeConfig) -> Result<Server, ServeError> {
        if cfg.workers == 0 {
            return Err(ServeError::Config("workers must be at least 1".into()));
        }
        if !cfg.models_dir.is_dir() {
            return Err(ServeError::Config(format!(
                "models dir {} is not a directory",
                cfg.models_dir.display()
            )));
        }
        let listener = TcpListener::bind(&cfg.addr).map_err(ServeError::Io)?;
        // /metrics is part of the contract, so the metrics layer is on
        // for the server's lifetime.
        obs::set_enabled(true);
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                registry: Registry::with_precision(&cfg.models_dir, cfg.weights_precision),
                admission: Arc::new(Admission::new(cfg.arena_budget_bytes)),
                max_body_bytes: cfg.max_body_bytes,
                max_t_out: cfg.max_t_out,
            }),
            shutdown: Arc::new(AtomicBool::new(false)),
            workers: cfg.workers,
            queue_depth: cfg.queue_depth,
        })
    }

    /// The bound address (use after `addr: "127.0.0.1:0"`).
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener.local_addr().map_err(ServeError::Io)
    }

    /// The server's admission budget — load harnesses and tests use
    /// this to observe reservations or pin the budget down
    /// deterministically.
    pub fn admission(&self) -> Arc<Admission> {
        Arc::clone(&self.state.admission)
    }

    /// A handle that can stop this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// Accept loop: worker-per-connection over a bounded queue. Blocks
    /// until [`ServerHandle::shutdown`], then stops accepting, drains
    /// queued and in-flight connections, and joins the workers.
    pub fn run(self) -> Result<(), ServeError> {
        self.listener
            .set_nonblocking(true)
            .map_err(ServeError::Io)?;
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(self.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            workers.push(std::thread::spawn(move || loop {
                let conn = rx.lock().expect("worker queue lock").recv();
                match conn {
                    Ok(stream) => {
                        // One hostile or buggy request must not take
                        // the worker down.
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            handle_connection(stream, &state);
                        }));
                        if r.is_err() {
                            obs::counter("spectragan_serve_panics_total").inc(1);
                        }
                    }
                    Err(_) => return, // sender dropped: shutdown
                }
            }));
        }

        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    obs::counter("spectragan_serve_connections_total").inc(1);
                    if let Err(mpsc::TrySendError::Full(mut stream)) = tx.try_send(stream) {
                        // Queue full: shed load right here rather than
                        // queue unboundedly; the write is tiny.
                        obs::counter("spectragan_serve_queue_rejects_total").inc(1);
                        let _ = http::write_response(
                            &mut stream,
                            503,
                            "Service Unavailable",
                            "text/plain",
                            &[("Retry-After", "1")],
                            b"server busy: accept queue full\n",
                        );
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(ServeError::Io(e)),
            }
        }
        // Graceful drain: close the queue, let workers finish what
        // they hold, join.
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// A `/generate` request body. Every field is optional at the JSON
/// layer so missing fields produce a clean 400, not a parse panic.
#[derive(Debug, Deserialize)]
struct GenerateRequest {
    city: Option<String>,
    t_out: Option<usize>,
    seed: Option<u64>,
    gen_batch: Option<usize>,
    format: Option<String>,
}

/// How a `/generate` response is framed.
enum OutputFormat {
    /// Chunked SGBD band frames, streamed while generation runs.
    Bands,
    /// A single `Content-Length` SGTM body, byte-identical to the
    /// offline CLI's output file.
    Sgtm,
}

/// One connection, one request, one response.
fn handle_connection(mut stream: TcpStream, state: &ServerState) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let req = match http::read_request(&mut stream, state.max_body_bytes) {
        Ok(req) => req,
        Err(http::HttpError::TooLarge(why)) => {
            respond_error(&mut stream, 413, "Payload Too Large", &why);
            return;
        }
        Err(e) => {
            respond_error(&mut stream, 400, "Bad Request", &e.to_string());
            return;
        }
    };
    let _sp = obs::span_cat("serve_request", "serve");
    obs::counter("spectragan_serve_requests_total").inc(1);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = http::write_response(&mut stream, 200, "OK", "text/plain", &[], b"ok\n");
        }
        ("GET", "/metrics") => {
            obs::gauge("spectragan_serve_admitted_bytes").set(state.admission.reserved() as f64);
            obs::gauge("spectragan_basis_cache_bytes")
                .set(spectragan_core::fourier::basis_cache_bytes() as f64);
            let body = obs::prometheus_snapshot();
            let _ = http::write_response(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                &[],
                body.as_bytes(),
            );
        }
        ("GET", "/cities") => {
            let body = serde_json::to_string(&state.registry.status()).unwrap_or_default();
            let _ = http::write_response(
                &mut stream,
                200,
                "OK",
                "application/json",
                &[],
                body.as_bytes(),
            );
        }
        ("POST", "/generate") => handle_generate(stream, state, &req),
        (_, "/healthz" | "/metrics" | "/cities") => {
            let _ = http::write_response(
                &mut stream,
                405,
                "Method Not Allowed",
                "text/plain",
                &[("Allow", "GET")],
                b"method not allowed\n",
            );
        }
        (_, "/generate") => {
            let _ = http::write_response(
                &mut stream,
                405,
                "Method Not Allowed",
                "text/plain",
                &[("Allow", "POST")],
                b"method not allowed\n",
            );
        }
        _ => respond_error(&mut stream, 404, "Not Found", "no such endpoint"),
    }
}

fn respond_error(stream: &mut TcpStream, status: u16, reason: &str, why: &str) {
    obs::counter(match status {
        400 | 404 | 405 | 413 => "spectragan_serve_4xx_total",
        503 => "spectragan_serve_503_total",
        _ => "spectragan_serve_5xx_total",
    })
    .inc(1);
    let body = format!("{why}\n");
    let _ = http::write_response(stream, status, reason, "text/plain", &[], body.as_bytes());
}

/// The `/generate` path. Everything that can fail is checked *before*
/// the response head goes out; once streaming starts the only failure
/// mode left is the client hanging up, which just stops delivery.
fn handle_generate(mut stream: TcpStream, state: &ServerState, req: &Request) {
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => {
            respond_error(&mut stream, 400, "Bad Request", "body is not UTF-8 JSON");
            return;
        }
    };
    let gen_req: GenerateRequest = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => {
            respond_error(&mut stream, 400, "Bad Request", &format!("bad JSON: {e}"));
            return;
        }
    };
    let Some(city) = gen_req.city.as_deref() else {
        respond_error(&mut stream, 400, "Bad Request", "missing field: city");
        return;
    };
    let Some(t_out) = gen_req.t_out else {
        respond_error(&mut stream, 400, "Bad Request", "missing field: t_out");
        return;
    };
    if t_out > state.max_t_out {
        respond_error(
            &mut stream,
            400,
            "Bad Request",
            &format!("t_out {t_out} exceeds the server limit {}", state.max_t_out),
        );
        return;
    }
    let seed = gen_req.seed.unwrap_or(0);
    let gen_batch = gen_req.gen_batch.unwrap_or(16);
    let format = match gen_req.format.as_deref() {
        None | Some("bands") => OutputFormat::Bands,
        Some("sgtm") => OutputFormat::Sgtm,
        Some(other) => {
            respond_error(
                &mut stream,
                400,
                "Bad Request",
                &format!("unknown format {other:?} (expected \"bands\" or \"sgtm\")"),
            );
            return;
        }
    };

    let entry = match state.registry.get(city) {
        Ok(entry) => entry,
        Err(e @ (RegistryError::BadName(_) | RegistryError::UnknownCity(_))) => {
            respond_error(&mut stream, 404, "Not Found", &e.to_string());
            return;
        }
        Err(e @ RegistryError::Load(_)) => {
            respond_error(&mut stream, 500, "Internal Server Error", &e.to_string());
            return;
        }
    };
    // Pre-flight validation: a streamed response cannot change its
    // status after the first band, so every request error must be
    // caught here.
    if let Err(e) = entry
        .model
        .validate_generate(&entry.prepared, t_out, gen_batch)
    {
        respond_error(&mut stream, 400, "Bad Request", &e.to_string());
        return;
    }

    let estimate = estimate_request_bytes(
        entry.model.config(),
        entry.prepared.height(),
        entry.prepared.width(),
        t_out,
        gen_batch,
    );
    let Some(_permit) = state.admission.try_admit(estimate) else {
        obs::counter("spectragan_serve_503_total").inc(1);
        let _ = http::write_response(
            &mut stream,
            503,
            "Service Unavailable",
            "text/plain",
            &[("Retry-After", "1")],
            b"admission budget exhausted, retry shortly\n",
        );
        return;
    };

    let started = Instant::now();
    let dims = format!(
        "{t_out} {} {}",
        entry.prepared.height(),
        entry.prepared.width()
    );
    let result: Result<(), CoreError> = match format {
        OutputFormat::Sgtm => entry
            .model
            .try_generate_prepared_report(&entry.prepared, t_out, seed, true, gen_batch)
            .map(|(map, _)| {
                let _ = http::write_response(
                    &mut stream,
                    200,
                    "OK",
                    "application/octet-stream",
                    &[("X-Spectragan-Dims", &dims)],
                    &encode_traffic(&map),
                );
            }),
        OutputFormat::Bands => {
            let mut writer = match ChunkedWriter::start(
                &mut stream,
                200,
                "OK",
                "application/octet-stream",
                &[("X-Spectragan-Dims", &dims)],
            ) {
                Ok(w) => w,
                Err(_) => return, // client gone before the head
            };
            let mut streamed = 0usize;
            let run = entry.model.try_generate_stream(
                &entry.prepared,
                t_out,
                seed,
                true,
                gen_batch,
                &mut |band| {
                    streamed += band.rows;
                    writer.write_chunk(&encode_band(&band)).is_ok()
                },
            );
            run.map(|_| {
                let _ = writer.finish();
                obs::counter("spectragan_serve_streamed_rows_total").inc(streamed as u64);
            })
        }
    };
    match result {
        Ok(()) => {
            obs::counter("spectragan_serve_generated_total").inc(1);
            obs::histogram("spectragan_serve_request_ns")
                .record(started.elapsed().as_nanos() as u64);
        }
        // Unreachable after pre-flight validation, but a typed error
        // must never kill the worker.
        Err(e) => respond_error(&mut stream, 400, "Bad Request", &e.to_string()),
    }
    let _ = stream.flush();
}
