//! Lazy multi-city model registry.
//!
//! The models directory holds, per city, a context map `<city>.sgcm`
//! and a model — per-city (`<city>.sgwt` / `<city>.json`) or shared
//! (`model.sgwt` / `model.json`) across every city (the usual case:
//! one SpectraGAN trained on many cities, applied to each city's
//! context). `SGWT` weight containers are preferred over JSON at each
//! tier: they open via `mmap`, validate every section checksum at
//! load (a corrupt container is rejected at registration, never on a
//! request), and keep only the touched layers resident — the
//! per-city resident footprint is reported by
//! [`Registry::status`]. Nothing is loaded at boot;
//! a city's weights and *standardized* context tensor are read on the
//! first request that names it and shared — one `Arc` — by every
//! request thereafter, so concurrent requests for one city reuse a
//! single context standardization and a single weight set.
//!
//! Loading happens under a per-city lock, never the registry-wide one:
//! a cold multi-second model load for CITY A does not stall a warm
//! request for CITY B.

use spectragan_core::{weights, PreparedContext, SpectraGan};
use spectragan_geo::io::load_context;
use spectragan_obs as obs;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A city ready to serve: weights plus its standardized context.
pub struct CityEntry {
    /// City name (the `.sgcm` stem).
    pub name: String,
    /// The generator.
    pub model: SpectraGan,
    /// Standardized context, shared across requests.
    pub prepared: PreparedContext,
    /// Whether the weights are served out of a memory-mapped `SGWT`
    /// container (vs. heap-resident JSON weights).
    pub mapped: bool,
}

/// One city's load state, as reported by `GET /cities`.
#[derive(serde::Serialize)]
pub struct CityStatus {
    /// City name.
    pub name: String,
    /// Whether the model has been loaded (first request seen).
    pub loaded: bool,
    /// Whether the weights are memory-mapped from an `SGWT` container.
    pub mapped: bool,
    /// Bytes of weight storage currently resident for this city:
    /// materialized f32 layers plus reduced-precision section bytes
    /// (f16 payloads; int8 payloads plus their f32 scales). Grows as
    /// lazy layers are first touched; 0 until the city is loaded.
    pub resident_weight_bytes: usize,
}

/// Why a city could not be served.
#[derive(Debug)]
pub enum RegistryError {
    /// The name fails validation (path traversal, odd characters).
    BadName(String),
    /// No `<city>.sgcm` in the models directory.
    UnknownCity(String),
    /// The context or model file exists but failed to load.
    Load(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::BadName(name) => write!(f, "invalid city name {name:?}"),
            RegistryError::UnknownCity(name) => write!(f, "unknown city {name:?}"),
            RegistryError::Load(why) => write!(f, "model load failed: {why}"),
        }
    }
}

/// One city's lazily-filled slot. The per-city mutex serializes the
/// first load; afterwards every `get` clones the `Arc` under a
/// momentary lock.
struct CitySlot {
    entry: Mutex<Option<Arc<CityEntry>>>,
}

/// The registry itself. Cheap to share behind an `Arc`.
pub struct Registry {
    dir: PathBuf,
    /// When set, every loaded model is narrowed to this reduced
    /// precision (f16 or int8) whatever its on-disk precision.
    precision: Option<weights::Precision>,
    slots: Mutex<HashMap<String, Arc<CitySlot>>>,
}

impl Registry {
    /// Creates a registry over `dir`. The directory is not scanned
    /// until [`Registry::cities`] or a request needs it.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Registry::with_precision(dir, None)
    }

    /// Like [`Registry::new`], with a serve-time precision override.
    pub fn with_precision(dir: impl Into<PathBuf>, precision: Option<weights::Precision>) -> Self {
        Registry {
            dir: dir.into(),
            precision,
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// The models directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// City names available for serving: the `.sgcm` stems present in
    /// the models directory, sorted.
    pub fn cities(&self) -> Vec<String> {
        let mut names = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(stem) = name.strip_suffix(".sgcm") {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        names
    }

    /// Per-city load state: which cities are loaded, whether their
    /// weights are mapped, and how many weight bytes are resident.
    /// Never blocks behind an in-flight model load — a city mid-load
    /// reports as not loaded yet.
    pub fn status(&self) -> Vec<CityStatus> {
        let slots = self.slots.lock().expect("registry lock poisoned");
        self.cities()
            .into_iter()
            .map(|name| {
                let entry = slots
                    .get(&name)
                    .and_then(|slot| slot.entry.try_lock().ok().and_then(|e| e.clone()));
                match entry {
                    Some(e) => CityStatus {
                        name,
                        loaded: true,
                        mapped: e.mapped,
                        resident_weight_bytes: e.model.store().resident_weight_bytes(),
                    },
                    None => CityStatus {
                        name,
                        loaded: false,
                        mapped: false,
                        resident_weight_bytes: 0,
                    },
                }
            })
            .collect()
    }

    /// The city's entry, loading it on first touch.
    pub fn get(&self, city: &str) -> Result<Arc<CityEntry>, RegistryError> {
        if !valid_city_name(city) {
            return Err(RegistryError::BadName(city.to_string()));
        }
        let slot = {
            let mut slots = self.slots.lock().expect("registry lock poisoned");
            Arc::clone(slots.entry(city.to_string()).or_insert_with(|| {
                Arc::new(CitySlot {
                    entry: Mutex::new(None),
                })
            }))
        };
        // Per-city lock: a concurrent first request for the same city
        // waits for this load instead of duplicating it; requests for
        // other cities proceed on their own slots.
        let mut entry = slot.entry.lock().expect("city slot poisoned");
        if let Some(loaded) = entry.as_ref() {
            return Ok(Arc::clone(loaded));
        }
        let loaded = Arc::new(self.load_city(city)?);
        *entry = Some(Arc::clone(&loaded));
        obs::counter("spectragan_serve_model_loads_total").inc(1);
        Ok(loaded)
    }

    fn load_city(&self, city: &str) -> Result<CityEntry, RegistryError> {
        let _sp = obs::span_cat("model_load", "serve");
        let ctx_path = self.dir.join(format!("{city}.sgcm"));
        if !ctx_path.exists() {
            return Err(RegistryError::UnknownCity(city.to_string()));
        }
        let context = load_context(&ctx_path)
            .map_err(|e| RegistryError::Load(format!("{}: {e}", ctx_path.display())))?;
        // Per-city models win over the shared one; at each tier the
        // SGWT container wins over JSON.
        let candidates = [
            format!("{city}.sgwt"),
            format!("{city}.json"),
            "model.sgwt".to_string(),
            "model.json".to_string(),
        ];
        let model_path = candidates
            .iter()
            .map(|n| self.dir.join(n))
            .find(|p| p.exists())
            .ok_or_else(|| {
                RegistryError::Load(format!(
                    "no model for {city:?}: none of {} exist in {}",
                    candidates.join(", "),
                    self.dir.display()
                ))
            })?;
        let err = |e: &dyn std::fmt::Display| {
            RegistryError::Load(format!("{}: {e}", model_path.display()))
        };
        let is_sgwt = weights::is_weight_container(&model_path).map_err(|e| err(&e))?;
        let (mut model, mapped) = if is_sgwt {
            let store = weights::WeightStore::open(&model_path).map_err(|e| err(&e))?;
            // Every section checksum is verified here, at load, so a
            // corrupt container surfaces as a typed registration
            // error instead of a panic inside a request.
            store.validate_all().map_err(|e| err(&e))?;
            let mapped = store.is_mapped();
            (store.load_model().map_err(|e| err(&e))?, mapped)
        } else {
            let json = std::fs::read_to_string(&model_path).map_err(|e| err(&e))?;
            (
                SpectraGan::from_model_json(&json).map_err(|e| err(&e))?,
                false,
            )
        };
        match self.precision {
            Some(weights::Precision::F16) if !model.store().has_half_storage() => {
                weights::narrow_to_f16(&mut model);
            }
            Some(weights::Precision::Int8) if !model.store().has_int8_storage() => {
                weights::narrow_to_int8(&mut model);
            }
            _ => {}
        }
        Ok(CityEntry {
            name: city.to_string(),
            model,
            prepared: PreparedContext::new(&context),
            mapped,
        })
    }
}

/// City names come off the wire; confine them to one path segment of
/// ordinary characters so they can never escape the models directory.
fn valid_city_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ' '))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_names_are_confined_to_one_segment() {
        assert!(valid_city_name("city_1"));
        assert!(valid_city_name("CITY A"));
        assert!(!valid_city_name(""));
        assert!(!valid_city_name("../etc/passwd"));
        assert!(!valid_city_name("a/b"));
        assert!(!valid_city_name(".hidden"));
        assert!(!valid_city_name("x\0y"));
    }

    #[test]
    fn unknown_and_invalid_cities_are_typed_errors() {
        let dir = std::env::temp_dir().join(format!("sg_registry_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let reg = Registry::new(&dir);
        assert!(matches!(
            reg.get("no_such_city"),
            Err(RegistryError::UnknownCity(_))
        ));
        assert!(matches!(reg.get("../x"), Err(RegistryError::BadName(_))));
        assert!(reg.cities().is_empty());
    }
}
