//! SIGTERM/SIGINT → graceful-drain flag.
//!
//! The workspace vendors no `libc` crate, so the handler is installed
//! through the C `signal` symbol directly. The handler itself does the
//! only async-signal-safe thing possible: set an atomic flag, which
//! the CLI's monitor thread polls and translates into
//! [`ServerHandle::shutdown`](crate::ServerHandle::shutdown).

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_terminate(_signum: i32) {
    TERMINATED.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM and SIGINT handlers. Idempotent.
pub fn install_handlers() {
    unsafe {
        signal(SIGTERM, on_terminate as *const () as usize);
        signal(SIGINT, on_terminate as *const () as usize);
    }
}

/// Whether a termination signal has arrived since
/// [`install_handlers`].
pub fn terminated() -> bool {
    TERMINATED.load(Ordering::SeqCst)
}

/// Test/CLI hook: raise the flag without an actual signal.
pub fn request_termination() {
    TERMINATED.store(true, Ordering::SeqCst);
}
